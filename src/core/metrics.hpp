// Derived normalized metrics: delay, energy×delay, and average power — the
// quantities Figures 5, 6 and 8 plot.
#pragma once

#include "core/energy_bound.hpp"

namespace enb::core {

struct MetricFactors {
  double energy = 1.0;     // E_tot,ε / E_tot,0 (lower bound)
  double delay = 1.0;      // D_ε / D_0 (lower bound; +inf when infeasible)
  double edp = 1.0;        // energy × delay
  double avg_power = 1.0;  // energy / delay (NOT a lower bound: the energy
                           // bound divided by the delay bound — the paper's
                           // Figures 6/8 construction)
  bool feasible = true;    // Theorem 4 regime check
};

// Combines an energy factor with the Theorem 4 delay factor at average
// fanin k. When infeasible, delay and edp are +inf and avg_power is 0.
[[nodiscard]] MetricFactors combine_metrics(double energy_factor,
                                            double fanin_k, double epsilon);

}  // namespace enb::core
