// Section 5.2's delay model and voltage-scaling trade-offs.
//
// Gate delay follows the Chen–Hu alpha-power law: D ∝ d · V/(V − V_T)^α,
// where d is logic depth, V the supply and α a technology exponent (≈1.3 for
// short-channel CMOS, 2.0 for the classic long-channel square law). Since
// added redundancy raises both switched capacitance and depth, the paper
// discusses two compensation strategies:
//   * iso-energy: lower V to keep energy flat, paying extra delay,
//   * iso-delay: raise V to keep latency flat, paying extra energy.
// The solvers below compute the required supply and the resulting factors.
#pragma once

namespace enb::core {

struct TechnologyParams {
  double vdd = 1.2;       // nominal supply (V)
  double vt = 0.3;        // threshold voltage (V)
  double alpha = 1.3;     // velocity-saturation exponent
  double max_vdd = 3.0;   // solver search ceiling
};

// Per-gate delay shape V/(V − V_T)^α (arbitrary units). Requires V > V_T.
[[nodiscard]] double gate_delay_shape(double vdd, const TechnologyParams& tech);

// Relative delay of running at `vdd` vs the nominal supply.
[[nodiscard]] double delay_scale(double vdd, const TechnologyParams& tech);

// Relative switching energy of running at `vdd` vs nominal (CV² law).
[[nodiscard]] double energy_scale(double vdd, const TechnologyParams& tech);

// Iso-energy supply: the V' with (V'/V)² · energy_factor == 1, i.e.
// V' = V/sqrt(energy_factor). Throws if V' would not stay above V_T.
[[nodiscard]] double iso_energy_vdd(double energy_factor,
                                    const TechnologyParams& tech);

// Iso-delay supply: the V' such that delay_factor · delay_scale(V') == 1
// (found by bisection in (V_T, max_vdd]). Throws if even max_vdd cannot
// compensate the depth increase.
[[nodiscard]] double iso_delay_vdd(double delay_factor,
                                   const TechnologyParams& tech);

// Composite outcome of a voltage-scaling strategy.
struct ScalingOutcome {
  double vdd = 0.0;            // chosen supply
  double energy_factor = 1.0;  // total energy vs error-free nominal
  double delay_factor = 1.0;   // total delay vs error-free nominal
};

// Applies iso-energy scaling to a fault-tolerant design whose unscaled
// energy/delay factors are given; returns the post-scaling factors
// (energy_factor ≈ 1 by construction).
[[nodiscard]] ScalingOutcome apply_iso_energy(double raw_energy_factor,
                                              double raw_delay_factor,
                                              const TechnologyParams& tech);

// Applies iso-delay scaling (delay_factor ≈ 1 by construction).
[[nodiscard]] ScalingOutcome apply_iso_delay(double raw_energy_factor,
                                             double raw_delay_factor,
                                             const TechnologyParams& tech);

}  // namespace enb::core
