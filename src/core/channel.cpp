#include "core/channel.hpp"

#include <cmath>

namespace enb::core {

double compose_epsilon_n(double epsilon, int count) {
  check_epsilon(epsilon);
  if (count < 0) {
    throw std::invalid_argument("compose_epsilon_n: count must be >= 0");
  }
  return (1.0 - std::pow(xi_of_epsilon(epsilon), count)) / 2.0;
}

}  // namespace enb::core
