#include "core/leakage_model.hpp"

#include <stdexcept>
#include <string>

#include "core/activity_model.hpp"

namespace enb::core {

double leakage_ratio(double sw_clean, double epsilon) {
  if (!(sw_clean > 0.0 && sw_clean < 1.0)) {
    throw std::invalid_argument("leakage_ratio: sw0 must be in (0, 1), got " +
                                std::to_string(sw_clean));
  }
  return idle_ratio(sw_clean, epsilon) / activity_ratio(sw_clean, epsilon);
}

double noisy_leakage_fraction(double wl_clean, double sw_clean,
                              double epsilon) {
  if (wl_clean < 0.0) {
    throw std::invalid_argument("noisy_leakage_fraction: W_L,0 must be >= 0");
  }
  return wl_clean * leakage_ratio(sw_clean, epsilon);
}

}  // namespace enb::core
