// Empirical validation of the Theorem 2 lower bound: a real redundancy
// scheme (NMR, multiplexing, ...) achieving measured output error δ̂ with a
// given gate count must sit at or above the theoretical size curve. The
// paper presents the bound analytically; this module is the missing
// experimental soundness check.
#pragma once

#include <string>
#include <vector>

#include "core/profile.hpp"

namespace enb::core {

// One achieved design point of a redundancy scheme.
struct EmpiricalPoint {
  std::string scheme;       // e.g. "tmr", "nmr5", "mux5r1"
  double total_gates = 0;   // gate count of the redundant implementation
  double delta_hat = 0.0;   // measured output error probability
  double delta_ci_high = 0.0;  // upper 95% bound on delta_hat
};

struct BoundCheck {
  EmpiricalPoint point;
  // The implementation-independent part of the Theorem 2 floor: the
  // redundancy term R(s, k, ε, δ̂). The theorem bounds the gates *added on
  // top of the minimal error-free implementation*; that minimal size is
  // unknown (our S0 is just one implementation), so the checker demands only
  // total_gates >= R — the strongest claim that can never produce a false
  // violation.
  double required_size = 0.0;
  double slack = 0.0;       // total_gates − required_size
  bool consistent = false;  // slack >= 0 (the bound holds)
  bool vacuous = false;     // δ̂ >= 1/2: outside the theorem's domain
};

// Checks one point against the bound for the base function described by
// `profile` (sensitivity and fanin of the redundant implementation's gates)
// at gate error `epsilon`. Uses the *conservative* end of the confidence
// interval (delta_ci_high) so statistical noise cannot produce a false
// violation either.
[[nodiscard]] BoundCheck check_point(const CircuitProfile& profile,
                                     double epsilon,
                                     const EmpiricalPoint& point);

[[nodiscard]] std::vector<BoundCheck> check_points(
    const CircuitProfile& profile, double epsilon,
    const std::vector<EmpiricalPoint>& points);

}  // namespace enb::core
