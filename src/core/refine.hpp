// Functionality-dependent refinement of the size bound — the paper's second
// "future work" item ("the refinement of the lower bounds depending on the
// circuit functionality").
//
// Corollary 1 applies Theorem 2 to a multi-output function through its
// characteristic function, using one global sensitivity. But each primary
// output individually is a Boolean function that the same circuit must
// (1−δ)-reliably compute, so each output cone yields its own Theorem 2
// bound; since every cone is part of the one circuit, the maximum of the
// per-output redundancy floors is also a valid floor — and it can exceed
// the whole-function bound when a single output concentrates sensitivity
// inside a small cone.
#pragma once

#include <string>
#include <vector>

#include "core/profile.hpp"
#include "netlist/circuit.hpp"

namespace enb::core {

struct OutputBound {
  std::string output_name;
  CircuitProfile cone_profile;   // profile of the output's fanin cone
  double redundancy_gates = 0.0; // Theorem 2 floor for this output alone
  double size_factor = 1.0;      // vs the cone's own S0
};

struct RefinedReport {
  double whole_redundancy = 0.0;    // Corollary 1 (global sensitivity)
  double refined_redundancy = 0.0;  // max over per-output floors
  std::vector<OutputBound> outputs;
  // True when the per-output refinement beats the whole-function bound.
  [[nodiscard]] bool refinement_helps() const {
    return refined_redundancy > whole_redundancy;
  }
};

// Computes both the whole-function bound and the per-output refinement.
// Per-output sensitivities are exact when the cone's support allows
// (options.sensitivity_exact_max_inputs), sampled otherwise.
[[nodiscard]] RefinedReport refine_size_bound(const netlist::Circuit& circuit,
                                              double epsilon, double delta,
                                              const ProfileOptions& options = {});

}  // namespace enb::core
