#include "core/activity_model.hpp"

#include <stdexcept>
#include <string>

namespace enb::core {

namespace {

void check_activity(double sw, const char* who) {
  if (!(sw >= 0.0 && sw <= 1.0)) {
    throw std::invalid_argument(std::string(who) +
                                ": switching activity must be in [0, 1], got " +
                                std::to_string(sw));
  }
}

}  // namespace

double noisy_activity(double sw_clean, double epsilon) {
  check_epsilon(epsilon);
  check_activity(sw_clean, "noisy_activity");
  return activity_contraction(epsilon) * sw_clean + activity_offset(epsilon);
}

double clean_activity(double sw_noisy, double epsilon) {
  check_epsilon(epsilon);
  check_activity(sw_noisy, "clean_activity");
  const double contraction = activity_contraction(epsilon);
  if (contraction == 0.0) {
    throw std::invalid_argument(
        "clean_activity: map is not invertible at epsilon = 0.5");
  }
  return (sw_noisy - activity_offset(epsilon)) / contraction;
}

double activity_ratio(double sw_clean, double epsilon) {
  check_epsilon(epsilon);
  check_activity(sw_clean, "activity_ratio");
  if (sw_clean <= 0.0) {
    throw std::invalid_argument(
        "activity_ratio: requires sw_clean > 0 (a gate that never switches "
        "has an unbounded ratio)");
  }
  return activity_contraction(epsilon) + activity_offset(epsilon) / sw_clean;
}

double idle_ratio(double sw_clean, double epsilon) {
  check_epsilon(epsilon);
  check_activity(sw_clean, "idle_ratio");
  if (sw_clean >= 1.0) {
    throw std::invalid_argument("idle_ratio: requires sw_clean < 1");
  }
  // 1 − sw(z) = (1 − 2ε)²(1 − sw0) + 2ε(1 − ε), by the identity
  // (1 − 2ε)² + 4ε(1 − ε) = 1.
  return activity_contraction(epsilon) +
         activity_offset(epsilon) / (1.0 - sw_clean);
}

}  // namespace enb::core
