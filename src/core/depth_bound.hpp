// Theorem 4 (Evans–Schulman): logic-depth lower bound for noisy circuits.
//
// With ξ = 1 − 2ε and Δ(δ) = 1 + δ·log₂δ + (1−δ)·log₂(1−δ) = 1 − H(δ):
//   * if ξ² > 1/k:  d_{ε,δ} ≥ log₂(n·Δ) / log₂(k·ξ²)
//   * if ξ² ≤ 1/k:  no circuit computes f (1−δ)-reliably unless n ≤ 1/Δ.
//
// Normalizing by the noiseless limit of the same bound, d₀ = log₂(nΔ)/log₂ k,
// gives the delay factor  log₂ k / log₂(k·ξ²), which depends only on the
// fanin — exactly the paper's observation that "the only circuit specific
// information [the delay bound] relies on is the average fanin k".
#pragma once

namespace enb::core {

// Δ(δ) = 1 − H(δ); Δ(0) = 1, Δ→0 as δ→1/2.
[[nodiscard]] double delta_capacity(double delta);

// Feasibility: ξ² > 1/k. At equality or below, only functions of at most
// 1/Δ inputs are reliably computable.
[[nodiscard]] bool depth_feasible(double epsilon, double fanin);

// Largest ε for which the regime is feasible at fanin k: (1 − k^{-1/2})/2.
[[nodiscard]] double max_feasible_epsilon(double fanin);

// Maximum input count in the infeasible regime: n ≤ 1/Δ(δ).
[[nodiscard]] double max_inputs_infeasible(double delta);

// The depth lower bound log₂(nΔ)/log₂(kξ²); requires feasibility. Returns 0
// when nΔ <= 1 (the bound is vacuous). `fanin` may be fractional (average
// fanin of a mapped netlist).
[[nodiscard]] double depth_lower_bound(int num_inputs, double fanin,
                                       double epsilon, double delta);

// Normalized delay factor log₂ k / log₂(kξ²) (>= 1; +inf when infeasible).
[[nodiscard]] double delay_factor_lower_bound(double fanin, double epsilon);

}  // namespace enb::core
