#include "core/profile.hpp"

#include <algorithm>
#include <stdexcept>

#include "bdd/bdd_analysis.hpp"
#include "netlist/stats.hpp"
#include "sim/activity.hpp"
#include "sim/sensitivity.hpp"

namespace enb::core {

CircuitProfile extract_profile(const netlist::Circuit& circuit,
                               const ProfileOptions& options,
                               exec::Parallelism how) {
  if (circuit.gate_count() == 0) {
    throw std::invalid_argument(
        "extract_profile: circuit has no gates to profile");
  }
  const netlist::CircuitStats stats = netlist::compute_stats(circuit);

  CircuitProfile p;
  p.name = circuit.name();
  p.num_inputs = static_cast<int>(stats.num_inputs);
  p.num_outputs = static_cast<int>(stats.num_outputs);
  p.size_s0 = static_cast<double>(stats.num_gates);
  p.depth_d0 = stats.depth;
  p.avg_fanin_k = stats.avg_fanin;
  p.max_fanin = stats.max_fanin;

  // Activity: exact (BDD) when small enough, Monte-Carlo otherwise. The BDD
  // route can still blow up on worst-case structures; fall back silently.
  bool have_activity = false;
  if (options.prefer_exact_activity &&
      p.num_inputs <= options.exact_activity_max_inputs) {
    try {
      p.avg_activity_sw0 =
          bdd::exact_activity_bdd(circuit).avg_gate_toggle_rate;
      have_activity = true;
    } catch (const bdd::BddLimitExceeded&) {
      have_activity = false;
    }
  }
  if (!have_activity) {
    sim::ActivityOptions activity_options;
    activity_options.sample_pairs = options.activity_pairs;
    activity_options.seed = options.seed;
    p.avg_activity_sw0 =
        sim::estimate_activity(circuit, activity_options, how)
            .avg_gate_toggle_rate;
  }

  sim::SensitivityOptions sens_options;
  sens_options.max_exact_inputs = options.sensitivity_exact_max_inputs;
  sens_options.sample_words = options.sensitivity_sample_words;
  sens_options.seed = options.seed + 1;
  const sim::SensitivityResult sens =
      sim::compute_sensitivity(circuit, sens_options, how);
  p.sensitivity_s = std::max(1, sens.sensitivity);
  p.sensitivity_exact = sens.exact;
  return p;
}

CircuitProfile extract_profile(const netlist::Circuit& circuit,
                               const ProfileOptions& options) {
  const exec::Parallelism how{options.threads};
  return extract_profile(circuit, options, how);
}

CircuitProfile make_profile(std::string name, double sensitivity,
                            double size_s0, double sw0, double fanin_k,
                            int num_inputs) {
  if (sensitivity < 1.0 || size_s0 <= 0.0 || fanin_k < 1.0 ||
      num_inputs < 1 || !(sw0 > 0.0 && sw0 < 1.0)) {
    throw std::invalid_argument("make_profile: parameter out of range");
  }
  CircuitProfile p;
  p.name = std::move(name);
  p.num_inputs = num_inputs;
  p.sensitivity_s = sensitivity;
  p.sensitivity_exact = true;
  p.size_s0 = size_s0;
  p.avg_activity_sw0 = sw0;
  p.avg_fanin_k = fanin_k;
  p.max_fanin = static_cast<int>(fanin_k + 0.999);
  return p;
}

}  // namespace enb::core
