// Theorem 1: switching activity of an ε-noisy device output.
//
//   sw(z) = (1 − 2ε)² · sw(y) + 2ε(1 − ε)
//
// where y is the error-free output and z the observed one. The map is an
// affine contraction toward the fixed point sw = 1/2 with rate (1 − 2ε)²:
// noise makes quiet gates busier and busy gates quieter, and at ε = 1/2 every
// output looks like a fair coin (Figure 2).
#pragma once

#include "core/channel.hpp"

namespace enb::core {

// sw(z) as a function of the error-free activity sw(y) (both in [0, 1]).
[[nodiscard]] double noisy_activity(double sw_clean, double epsilon);

// Inverse map (defined for ε < 1/2): the clean activity that would produce
// the observed noisy activity.
[[nodiscard]] double clean_activity(double sw_noisy, double epsilon);

// The contraction rate (1 − 2ε)² of Theorem 1's affine map.
[[nodiscard]] constexpr double activity_contraction(double epsilon) noexcept {
  const double xi = xi_of_epsilon(epsilon);
  return xi * xi;
}

// The additive term 2ε(1 − ε) of Theorem 1.
[[nodiscard]] constexpr double activity_offset(double epsilon) noexcept {
  return 2.0 * epsilon * (1.0 - epsilon);
}

// The fixed point of the map (sw = 1/2 for every ε).
inline constexpr double kActivityFixedPoint = 0.5;

// Ratio sw(z)/sw(y): the switching-activity factor of Corollary 2,
// (1 − 2ε)² + 2ε(1 − ε)/sw0. Requires sw_clean > 0.
[[nodiscard]] double activity_ratio(double sw_clean, double epsilon);

// Complement ratio (1 − sw(z))/(1 − sw(y)): the idle-fraction factor used by
// the leakage model. Requires sw_clean < 1.
[[nodiscard]] double idle_ratio(double sw_clean, double epsilon);

}  // namespace enb::core
