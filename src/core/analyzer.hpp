// The front door of the bounds framework: evaluate every bound of the paper
// for one circuit profile at one (ε, δ) operating point, or sweep ε.
#pragma once

#include <string>
#include <vector>

#include "core/energy_bound.hpp"
#include "core/metrics.hpp"
#include "core/profile.hpp"

namespace enb::core {

struct BoundReport {
  std::string name;
  double epsilon = 0.0;
  double delta = 0.0;

  // Theorem 1.
  double sw_noisy = 0.0;          // per-gate activity under noise
  // Theorem 2 / Corollary 1.
  double redundancy_gates = 0.0;  // additional gates (lower bound)
  double size_factor = 1.0;       // (S0+R)/S0
  // Corollary 2 + leakage split.
  EnergyBreakdown energy;
  // Theorem 3.
  double leakage_ratio = 1.0;     // W_L,ε / W_L,0
  // Theorem 4 + derived metrics.
  bool depth_feasible = true;
  double depth_bound = 0.0;       // absolute depth lower bound (0 if vacuous)
  MetricFactors metrics;          // energy/delay/EDP/avg-power factors
};

// Evaluates all bounds for `profile` at (epsilon, delta).
[[nodiscard]] BoundReport analyze(const CircuitProfile& profile,
                                  double epsilon, double delta,
                                  const EnergyModelOptions& options = {});

// Sweeps epsilon (inclusive endpoints, log or linear grid is the caller's
// choice of `epsilons`).
[[nodiscard]] std::vector<BoundReport> sweep_epsilon(
    const CircuitProfile& profile, const std::vector<double>& epsilons,
    double delta, const EnergyModelOptions& options = {});

// Convenience: logarithmic epsilon grid from lo to hi (inclusive), `points`
// entries.
[[nodiscard]] std::vector<double> log_grid(double lo, double hi, int points);

// Convenience: linear grid.
[[nodiscard]] std::vector<double> linear_grid(double lo, double hi, int points);

}  // namespace enb::core
