#include "core/validate_bounds.hpp"

#include <algorithm>

#include "core/size_bound.hpp"

namespace enb::core {

BoundCheck check_point(const CircuitProfile& profile, double epsilon,
                       const EmpiricalPoint& point) {
  BoundCheck check;
  check.point = point;
  // The theorem's domain is δ < 1/2; a scheme measured at or above 1/2 is
  // not computing the function reliably at all.
  const double delta = std::max(point.delta_hat, point.delta_ci_high);
  if (delta >= 0.5) {
    check.vacuous = true;
    check.required_size = 0.0;
    check.slack = point.total_gates;
    check.consistent = true;  // no claim is made in this regime
    return check;
  }
  check.required_size = redundancy_lower_bound(
      profile.sensitivity_s, profile.avg_fanin_k, epsilon, delta);
  check.slack = point.total_gates - check.required_size;
  check.consistent = check.slack >= 0.0;
  return check;
}

std::vector<BoundCheck> check_points(const CircuitProfile& profile,
                                     double epsilon,
                                     const std::vector<EmpiricalPoint>& points) {
  std::vector<BoundCheck> out;
  out.reserve(points.size());
  for (const EmpiricalPoint& p : points) {
    out.push_back(check_point(profile, epsilon, p));
  }
  return out;
}

}  // namespace enb::core
