#include "core/delay_model.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace enb::core {

namespace {

void check_tech(const TechnologyParams& tech) {
  if (!(tech.vt > 0.0) || !(tech.vdd > tech.vt) ||
      !(tech.max_vdd >= tech.vdd) || !(tech.alpha > 0.0)) {
    throw std::invalid_argument(
        "TechnologyParams: need 0 < vt < vdd <= max_vdd and alpha > 0");
  }
}

}  // namespace

double gate_delay_shape(double vdd, const TechnologyParams& tech) {
  check_tech(tech);
  if (!(vdd > tech.vt)) {
    throw std::invalid_argument("gate_delay_shape: vdd must exceed vt");
  }
  return vdd / std::pow(vdd - tech.vt, tech.alpha);
}

double delay_scale(double vdd, const TechnologyParams& tech) {
  return gate_delay_shape(vdd, tech) / gate_delay_shape(tech.vdd, tech);
}

double energy_scale(double vdd, const TechnologyParams& tech) {
  check_tech(tech);
  return (vdd * vdd) / (tech.vdd * tech.vdd);
}

double iso_energy_vdd(double energy_factor, const TechnologyParams& tech) {
  check_tech(tech);
  if (!(energy_factor >= 1.0)) {
    throw std::invalid_argument(
        "iso_energy_vdd: energy factor must be >= 1 (redundancy only adds)");
  }
  const double vdd = tech.vdd / std::sqrt(energy_factor);
  if (!(vdd > tech.vt)) {
    throw std::invalid_argument(
        "iso_energy_vdd: required supply " + std::to_string(vdd) +
        " V does not stay above vt = " + std::to_string(tech.vt) + " V");
  }
  return vdd;
}

double iso_delay_vdd(double delay_factor, const TechnologyParams& tech) {
  check_tech(tech);
  if (!(delay_factor >= 1.0)) {
    throw std::invalid_argument("iso_delay_vdd: delay factor must be >= 1");
  }
  // Find V with delay_scale(V) == 1/delay_factor. delay_scale is strictly
  // decreasing in V for alpha >= 1 (and for the ranges we care about), so
  // bisection on [vdd, max_vdd] works.
  const double target = 1.0 / delay_factor;
  if (delay_scale(tech.max_vdd, tech) > target) {
    throw std::invalid_argument(
        "iso_delay_vdd: cannot compensate delay factor " +
        std::to_string(delay_factor) + " within max_vdd");
  }
  double lo = tech.vdd;
  double hi = tech.max_vdd;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (delay_scale(mid, tech) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

ScalingOutcome apply_iso_energy(double raw_energy_factor,
                                double raw_delay_factor,
                                const TechnologyParams& tech) {
  const double vdd = iso_energy_vdd(raw_energy_factor, tech);
  ScalingOutcome out;
  out.vdd = vdd;
  out.energy_factor = raw_energy_factor * energy_scale(vdd, tech);
  out.delay_factor = raw_delay_factor * delay_scale(vdd, tech);
  return out;
}

ScalingOutcome apply_iso_delay(double raw_energy_factor,
                               double raw_delay_factor,
                               const TechnologyParams& tech) {
  const double vdd = iso_delay_vdd(raw_delay_factor, tech);
  ScalingOutcome out;
  out.vdd = vdd;
  out.energy_factor = raw_energy_factor * energy_scale(vdd, tech);
  out.delay_factor = raw_delay_factor * delay_scale(vdd, tech);
  return out;
}

}  // namespace enb::core
