// Theorem 3: how noise shifts the leakage/switching energy balance.
//
// With E_sw ∝ S·V²·sw and E_L ∝ (1 − sw)·S·V·K, the ratio W_L = E_L/E_sw of
// an ε-noisy circuit relative to the error-free one is
//
//   W_L,ε,δ     (1−2ε)² + 2ε(1−ε)/(1 − sw0)
//   -------  =  ----------------------------
//    W_L,0        (1−2ε)² + 2ε(1−ε)/sw0
//
// (independent of δ and of circuit size — size cancels in the ratio). For
// sw0 < 1/2 noise makes gates busier, so the leakage share *drops*; for
// sw0 > 1/2 it rises; at sw0 = 1/2 it is invariant (Figure 4).
#pragma once

namespace enb::core {

// The normalized ratio W_L,ε / W_L,0 above. Requires sw0 in (0, 1).
[[nodiscard]] double leakage_ratio(double sw_clean, double epsilon);

// Absolute W_L of the noisy circuit given the error-free ratio W_L,0.
[[nodiscard]] double noisy_leakage_fraction(double wl_clean, double sw_clean,
                                            double epsilon);

}  // namespace enb::core
