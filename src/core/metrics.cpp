#include "core/metrics.hpp"

#include <limits>

#include "core/depth_bound.hpp"

namespace enb::core {

MetricFactors combine_metrics(double energy_factor, double fanin_k,
                              double epsilon) {
  MetricFactors out;
  out.energy = energy_factor;
  out.feasible = depth_feasible(epsilon, fanin_k);
  if (!out.feasible) {
    out.delay = std::numeric_limits<double>::infinity();
    out.edp = std::numeric_limits<double>::infinity();
    out.avg_power = 0.0;
    return out;
  }
  out.delay = delay_factor_lower_bound(fanin_k, epsilon);
  out.edp = out.energy * out.delay;
  out.avg_power = out.energy / out.delay;
  return out;
}

}  // namespace enb::core
