// Symmetric-channel algebra for the paper's error model (Figure 1): a
// failure-prone device is an error-free device cascaded with a binary
// symmetric channel of crossover probability ε.
//
// The natural parameter for composition is the correlation ξ = 1 − 2ε:
// cascading channels multiplies ξ, and every bound in the paper is a function
// of ξ (Theorem 1's (1−2ε)², Theorem 4's ξ² thresholds).
#pragma once

#include <stdexcept>
#include <string>

namespace enb::core {

// Validates ε ∈ [0, 0.5]; returns ε (for inline use in initializers).
inline double check_epsilon(double epsilon) {
  if (!(epsilon >= 0.0 && epsilon <= 0.5)) {
    throw std::invalid_argument("epsilon must be in [0, 0.5], got " +
                                std::to_string(epsilon));
  }
  return epsilon;
}

// Validates δ ∈ [0, 0.5); returns δ.
inline double check_delta(double delta) {
  if (!(delta >= 0.0 && delta < 0.5)) {
    throw std::invalid_argument("delta must be in [0, 0.5), got " +
                                std::to_string(delta));
  }
  return delta;
}

// ξ = 1 − 2ε, the signal correlation surviving one channel.
[[nodiscard]] constexpr double xi_of_epsilon(double epsilon) noexcept {
  return 1.0 - 2.0 * epsilon;
}

// ε = (1 − ξ)/2 (the paper's substitution in Theorem 4).
[[nodiscard]] constexpr double epsilon_of_xi(double xi) noexcept {
  return (1.0 - xi) / 2.0;
}

// Crossover probability of two cascaded channels:
// ε₁₂ = ε₁ + ε₂ − 2ε₁ε₂ (equivalently ξ₁₂ = ξ₁ξ₂).
[[nodiscard]] constexpr double compose_epsilon(double e1, double e2) noexcept {
  return e1 + e2 - 2.0 * e1 * e2;
}

// Crossover probability of k identical cascaded channels: (1 − ξᵏ)/2.
[[nodiscard]] double compose_epsilon_n(double epsilon, int count);

struct SymmetricChannel {
  double epsilon = 0.0;

  explicit SymmetricChannel(double eps) : epsilon(check_epsilon(eps)) {}

  [[nodiscard]] double xi() const noexcept { return xi_of_epsilon(epsilon); }

  // Channel of `this` followed by `other`.
  [[nodiscard]] SymmetricChannel then(const SymmetricChannel& other) const {
    return SymmetricChannel(compose_epsilon(epsilon, other.epsilon));
  }

  // P(output = 1) for an input that is 1 with probability p.
  [[nodiscard]] double transform_probability(double p) const noexcept {
    return p * (1.0 - epsilon) + (1.0 - p) * epsilon;
  }
};

}  // namespace enb::core
