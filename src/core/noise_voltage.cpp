#include "core/noise_voltage.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace enb::core {

double epsilon_of_vdd(double vdd, const NoiseVoltageParams& params) {
  if (vdd < 0.0) {
    throw std::invalid_argument("epsilon_of_vdd: vdd must be >= 0");
  }
  if (!(params.sigma > 0.0)) {
    throw std::invalid_argument("epsilon_of_vdd: sigma must be > 0");
  }
  const double eps =
      0.5 * std::erfc(vdd / (2.0 * std::sqrt(2.0) * params.sigma));
  return std::max(eps, params.min_epsilon);
}

double vdd_for_epsilon(double epsilon, const NoiseVoltageParams& params,
                       double max_vdd) {
  if (!(epsilon > 0.0 && epsilon <= 0.5)) {
    throw std::invalid_argument("vdd_for_epsilon: epsilon must be in (0, 0.5]");
  }
  if (epsilon_of_vdd(max_vdd, params) > epsilon) {
    throw std::invalid_argument(
        "vdd_for_epsilon: target " + std::to_string(epsilon) +
        " unreachable below max_vdd");
  }
  double lo = 0.0;
  double hi = max_vdd;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (epsilon_of_vdd(mid, params) > epsilon) {
      lo = mid;  // too noisy: need more voltage
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace enb::core
