#include "core/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/activity_model.hpp"
#include "core/depth_bound.hpp"
#include "core/leakage_model.hpp"
#include "core/size_bound.hpp"

namespace enb::core {

BoundReport analyze(const CircuitProfile& profile, double epsilon,
                    double delta, const EnergyModelOptions& options) {
  check_epsilon(epsilon);
  check_delta(delta);
  if (profile.size_s0 <= 0.0) {
    throw std::invalid_argument("analyze: profile has no gates");
  }

  BoundReport r;
  r.name = profile.name;
  r.epsilon = epsilon;
  r.delta = delta;

  r.sw_noisy = noisy_activity(profile.avg_activity_sw0, epsilon);
  r.redundancy_gates = redundancy_lower_bound(
      profile.sensitivity_s, profile.avg_fanin_k, epsilon, delta);
  r.size_factor =
      size_factor_lower_bound(profile.sensitivity_s, profile.size_s0,
                              profile.avg_fanin_k, epsilon, delta);
  r.leakage_ratio = leakage_ratio(profile.avg_activity_sw0, epsilon);

  r.depth_feasible = depth_feasible(epsilon, profile.avg_fanin_k);
  const double delay_factor =
      delay_factor_lower_bound(profile.avg_fanin_k, epsilon);
  r.depth_bound =
      r.depth_feasible
          ? depth_lower_bound(profile.num_inputs, profile.avg_fanin_k,
                              epsilon, delta)
          : std::numeric_limits<double>::infinity();

  r.energy = total_energy_factor(
      profile.sensitivity_s, profile.size_s0, profile.avg_activity_sw0,
      profile.avg_fanin_k, epsilon, delta, options,
      std::isfinite(delay_factor) ? std::max(1.0, delay_factor) : 1.0);
  r.metrics =
      combine_metrics(r.energy.total_factor, profile.avg_fanin_k, epsilon);
  return r;
}

std::vector<BoundReport> sweep_epsilon(const CircuitProfile& profile,
                                       const std::vector<double>& epsilons,
                                       double delta,
                                       const EnergyModelOptions& options) {
  std::vector<BoundReport> out;
  out.reserve(epsilons.size());
  for (double eps : epsilons) out.push_back(analyze(profile, eps, delta, options));
  return out;
}

std::vector<double> log_grid(double lo, double hi, int points) {
  if (!(lo > 0.0) || !(hi > lo) || points < 2) {
    throw std::invalid_argument("log_grid: need 0 < lo < hi and points >= 2");
  }
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(points));
  const double step = (std::log(hi) - std::log(lo)) / (points - 1);
  for (int i = 0; i < points; ++i) {
    grid.push_back(std::exp(std::log(lo) + step * i));
  }
  grid.back() = hi;  // avoid drift on the endpoint
  return grid;
}

std::vector<double> linear_grid(double lo, double hi, int points) {
  if (!(hi > lo) || points < 2) {
    throw std::invalid_argument("linear_grid: need lo < hi and points >= 2");
  }
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(points));
  const double step = (hi - lo) / (points - 1);
  for (int i = 0; i < points; ++i) grid.push_back(lo + step * i);
  grid.back() = hi;
  return grid;
}

}  // namespace enb::core
