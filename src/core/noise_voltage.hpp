// Voltage-dependent gate error: the Hegde–Shanbhag link (paper ref [11])
// between supply scaling and noise. With additive Gaussian noise of RMS σ at
// a gate output and a decision threshold at Vdd/2, the flip probability of a
// full-swing signal is
//
//   ε(Vdd) = Q(Vdd / (2σ)) = ½·erfc(Vdd / (2·√2·σ))
//
// The paper *contrasts* its redundancy-driven bounds with [11]'s
// voltage-scaling trade-off; this module makes the comparison executable:
// lowering Vdd saves CV² energy but raises ε, which raises every bound in
// the framework — the closed loop of experiment `ext_voltage_noise`.
#pragma once

namespace enb::core {

struct NoiseVoltageParams {
  double sigma = 0.08;  // RMS noise voltage (V)
  double min_epsilon = 1e-12;  // floor to keep downstream logs finite
};

// ε(Vdd): monotone decreasing in Vdd, 0.5 at Vdd = 0.
[[nodiscard]] double epsilon_of_vdd(double vdd,
                                    const NoiseVoltageParams& params = {});

// Inverse: the supply needed to reach a target gate error (bisection;
// target must be in (0, 0.5]).
[[nodiscard]] double vdd_for_epsilon(double epsilon,
                                     const NoiseVoltageParams& params = {},
                                     double max_vdd = 5.0);

}  // namespace enb::core
