// Corollary 2 and the composite energy model behind Figures 5–8.
//
// Switching energy (Corollary 2):
//   E_{ε,δ}/E₀ ≥ size_factor · activity_factor
//     size_factor     = 1 + R(s,k,ε,δ)/S₀          (Theorem 2)
//     activity_factor = (1−2ε)² + 2ε(1−ε)/sw₀      (Theorem 1)
//
// Total energy with a leakage share: the paper's benchmark figures assume
// the error-free design splits its energy as
//   E_tot,0 = (1−λ₀)·E_sw,0 + λ₀·E_L,0   with λ₀ = 0.5 ("contributions of
// switching and leakage energy are assumed equal").  Leakage scales with the
// idle fraction and device count, E_L ∝ (1−sw)·S·V·K (Theorem 3's premise):
//   E_tot,ε/E_tot,0 = (1−λ₀)·SF·AF + λ₀·SF·IF·(delay coupling)
// where IF = (1−sw_ε)/(1−sw₀) and the optional delay coupling multiplies
// leakage by the latency factor (leakage power integrates over time). The
// paper's own model is the uncoupled one; the coupled variant ships as
// ablation A1.
#pragma once

namespace enb::core {

struct EnergyModelOptions {
  // λ₀: leakage share of total energy in the error-free baseline.
  double leakage_fraction = 0.5;
  // Multiply the leakage term by the delay factor (ablation A1). The paper's
  // model keeps leakage per operation independent of latency.
  bool couple_leakage_to_delay = false;
};

struct EnergyBreakdown {
  double size_factor = 1.0;        // (S0 + R)/S0
  double activity_factor = 1.0;    // sw_eps / sw0
  double idle_factor = 1.0;        // (1 - sw_eps)/(1 - sw0)
  double switching_factor = 1.0;   // Corollary 2: size * activity
  double leakage_factor = 1.0;     // size * idle (* delay if coupled)
  double total_factor = 1.0;       // (1-λ0)*switching + λ0*leakage
};

// Corollary 2's switching-energy lower-bound factor.
[[nodiscard]] double switching_energy_factor(double sensitivity,
                                             double base_size, double sw_clean,
                                             double fanin_k, double epsilon,
                                             double delta);

// Full breakdown including the leakage share. `delay_factor` is only used
// when options.couple_leakage_to_delay is set (pass the Theorem 4 factor).
[[nodiscard]] EnergyBreakdown total_energy_factor(
    double sensitivity, double base_size, double sw_clean, double fanin_k,
    double epsilon, double delta, const EnergyModelOptions& options = {},
    double delay_factor = 1.0);

}  // namespace enb::core
