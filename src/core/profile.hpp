// CircuitProfile: the (s, S0, sw0, k, n, d0) tuple the bounds consume,
// extracted from a gate-level netlist with the simulation / BDD substrates.
// This mirrors the paper's Section 6 flow: map the benchmark, measure average
// switching activity under random inputs, take sensitivity and size from the
// function/netlist, then plug into Theorems 1–4.
#pragma once

#include <cstdint>
#include <string>

#include "exec/thread_pool.hpp"
#include "netlist/circuit.hpp"

namespace enb::core {

struct CircuitProfile {
  std::string name;
  int num_inputs = 0;
  int num_outputs = 0;
  double size_s0 = 0.0;        // gate count S0
  int depth_d0 = 0;            // logic depth
  double avg_fanin_k = 0.0;    // average gate fanin (the bound's k)
  int max_fanin = 0;
  double avg_activity_sw0 = 0.0;  // mean per-gate toggle rate
  double sensitivity_s = 0.0;     // Boolean sensitivity (>= 1 for nontrivial f)
  bool sensitivity_exact = false; // false => sampled lower bound
};

struct ProfileOptions {
  // Monte-Carlo activity estimation (pairs of 64-lane vectors).
  std::size_t activity_pairs = 1 << 12;
  // Use the BDD engine for exact activity when the input count allows.
  bool prefer_exact_activity = true;
  int exact_activity_max_inputs = 16;
  // Sensitivity: exhaustive up to this many inputs, sampled beyond.
  int sensitivity_exact_max_inputs = 20;
  std::uint64_t sensitivity_sample_words = 256;
  std::uint64_t seed = 17;
  // Deprecated dual knob: only the extract_profile overload without an
  // exec::Parallelism parameter still honours it. Results are bit-identical
  // for any thread count either way.
  unsigned threads = 0;
};

// Measures a profile from a (typically mapped) netlist, parallelizing the
// Monte-Carlo substrates per `how`.
[[nodiscard]] CircuitProfile extract_profile(const netlist::Circuit& circuit,
                                             const ProfileOptions& options,
                                             exec::Parallelism how);

// Deprecated-knob form: honours options.threads.
[[nodiscard]] CircuitProfile extract_profile(const netlist::Circuit& circuit,
                                             const ProfileOptions& options = {});

// A profile from explicit numbers (e.g. the paper's s=10, S0=21 parity).
[[nodiscard]] CircuitProfile make_profile(std::string name, double sensitivity,
                                          double size_s0, double sw0,
                                          double fanin_k, int num_inputs);

}  // namespace enb::core
