#include "core/size_bound.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/channel.hpp"

namespace enb::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void check_fanin(double fanin) {
  if (!(fanin >= 1.0)) {
    throw std::invalid_argument("fanin must be >= 1, got " +
                                std::to_string(fanin));
  }
}

}  // namespace

double omega(double epsilon, double fanin) {
  check_epsilon(epsilon);
  check_fanin(fanin);
  return (1.0 - std::pow(xi_of_epsilon(epsilon), fanin)) / 2.0;
}

double t_of_omega(double w) {
  if (!(w > 0.0 && w < 1.0)) {
    throw std::invalid_argument("t_of_omega: omega must be in (0, 1), got " +
                                std::to_string(w));
  }
  const double w3 = w * w * w;
  const double v = 1.0 - w;
  const double v3 = v * v * v;
  return (w3 + v3) / (w * v);
}

double redundancy_lower_bound(double sensitivity, double fanin, double epsilon,
                              double delta) {
  check_epsilon(epsilon);
  check_delta(delta);
  check_fanin(fanin);
  if (sensitivity < 1.0) {
    throw std::invalid_argument("redundancy_lower_bound: sensitivity must be >= 1");
  }
  if (epsilon == 0.0) return 0.0;  // t -> inf, denominator -> inf

  const double w = omega(epsilon, fanin);
  if (w >= 0.5) return kInf;  // epsilon == 0.5: log t == 0
  const double log_t = std::log2(t_of_omega(w));
  const double numerator =
      sensitivity * std::log2(sensitivity) +
      2.0 * sensitivity * std::log2(2.0 * (1.0 - 2.0 * delta));
  const double bound = numerator / (fanin * log_t);
  return bound > 0.0 ? bound : 0.0;
}

double size_factor_lower_bound(double sensitivity, double base_size,
                               double fanin, double epsilon, double delta) {
  if (base_size <= 0.0) {
    throw std::invalid_argument("size_factor_lower_bound: base_size must be > 0");
  }
  return 1.0 +
         redundancy_lower_bound(sensitivity, fanin, epsilon, delta) /
             base_size;
}

double classical_nlogn_bound(double sensitivity) {
  if (sensitivity < 1.0) {
    throw std::invalid_argument("classical_nlogn_bound: sensitivity must be >= 1");
  }
  return sensitivity * std::log2(sensitivity);
}

double size_upper_bound_shape(double base_size) {
  if (base_size < 1.0) {
    throw std::invalid_argument("size_upper_bound_shape: base_size must be >= 1");
  }
  return base_size * std::log2(base_size + 1.0);
}

}  // namespace enb::core
