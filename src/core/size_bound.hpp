// Theorem 2 / Corollary 1: the circuit-size lower bound for reliable
// computation with noisy gates (Evans' information-theoretic bound, the
// tightest known — paper Section 4.2).
//
// For a Boolean function f of sensitivity s, (1−δ)-reliably computed by a
// circuit of ε-noisy k-input gates, the additional redundancy satisfies
//
//            s·log₂ s + 2s·log₂(2(1 − 2δ))
//   R  >=  ---------------------------------
//                     k · log₂ t
//
//   t = (ω³ + (1−ω)³) / (ω(1−ω)),     ω = (1 − (1−2ε)ᵏ) / 2.
//
// ω is the crossover probability of k cascaded ε-channels — the information
// about one input surviving a depth-1 gate — which is the only reading of
// the (OCR-damaged) formula consistent with the paper's limits: R → 0 as
// ε → 0 (t → ∞) and R → ∞ as ε → 1/2 (t → 1). Corollary 1 extends the bound
// to m-output functions via the characteristic function, which preserves
// sensitivity, so the same formula applies.
#pragma once

namespace enb::core {

// ω(ε, k): effective input-to-output crossover through one k-input gate.
// `fanin` may be fractional (average fanin of a mapped netlist).
[[nodiscard]] double omega(double epsilon, double fanin);

// t(ω) = (ω³ + (1−ω)³)/(ω(1−ω)), defined on (0, 1); t(1/2) = 1 and
// t → ∞ at the edges.
[[nodiscard]] double t_of_omega(double w);

// The redundancy lower bound R(s, k, ε, δ) in gates. Clamped at 0 when the
// formula goes vacuous (δ close to 1/4 makes the numerator negative for
// small s). Returns +inf when ε = 1/2 (log t = 0) and 0 when ε = 0.
[[nodiscard]] double redundancy_lower_bound(double sensitivity, double fanin,
                                            double epsilon, double delta);

// Size factor (S0 + R)/S0 = 1 + R/S0 — the first factor of Corollary 2.
[[nodiscard]] double size_factor_lower_bound(double sensitivity,
                                             double base_size, double fanin,
                                             double epsilon, double delta);

// The classical s·log₂ s lower-bound shape (Reischuk–Schmeltz / Gál) the
// paper cites for comparison; vacuous constants, shape only.
[[nodiscard]] double classical_nlogn_bound(double sensitivity);

// The O(S0 log S0) *upper* bound on fault-tolerant size the paper quotes
// from Pippenger / Gács–Gál (reported with unit constant; shape only).
[[nodiscard]] double size_upper_bound_shape(double base_size);

}  // namespace enb::core
