#include "core/refine.hpp"

#include <algorithm>

#include "core/size_bound.hpp"
#include "netlist/transform.hpp"

namespace enb::core {

RefinedReport refine_size_bound(const netlist::Circuit& circuit,
                                double epsilon, double delta,
                                const ProfileOptions& options) {
  RefinedReport report;
  const CircuitProfile whole = extract_profile(circuit, options);
  report.whole_redundancy = redundancy_lower_bound(
      whole.sensitivity_s, whole.avg_fanin_k, epsilon, delta);

  for (std::size_t pos = 0; pos < circuit.num_outputs(); ++pos) {
    const std::vector<std::size_t> one{pos};
    netlist::Circuit cone = netlist::extract_cone(circuit, one);
    // Constant outputs (possible after folding) carry no bound.
    if (cone.gate_count() == 0) continue;
    OutputBound ob;
    ob.output_name = circuit.output_name(pos);
    ob.cone_profile = extract_profile(cone, options);
    ob.redundancy_gates =
        redundancy_lower_bound(ob.cone_profile.sensitivity_s,
                               ob.cone_profile.avg_fanin_k, epsilon, delta);
    ob.size_factor = 1.0 + ob.redundancy_gates / ob.cone_profile.size_s0;
    report.refined_redundancy =
        std::max(report.refined_redundancy, ob.redundancy_gates);
    report.outputs.push_back(std::move(ob));
  }
  return report;
}

}  // namespace enb::core
