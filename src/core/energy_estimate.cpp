#include "core/energy_estimate.hpp"

#include <stdexcept>

#include "netlist/topo.hpp"
#include "sim/noise.hpp"

namespace enb::core {

using netlist::Circuit;
using netlist::NodeId;

EnergyEstimate estimate_energy(const Circuit& circuit,
                               const sim::ActivityResult& activity,
                               const EnergyEstimateParams& params) {
  if (activity.toggle_rate.size() != circuit.node_count()) {
    throw std::invalid_argument(
        "estimate_energy: activity profile does not match the circuit");
  }
  if (!(params.vdd > 0.0) || params.cap_base < 0.0 ||
      params.cap_per_fanout < 0.0 || params.leakage_k < 0.0) {
    throw std::invalid_argument("estimate_energy: bad parameters");
  }
  const std::vector<int> fanout = netlist::fanout_counts(circuit);
  EnergyEstimate estimate;
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    if (!counts_as_gate(circuit.type(id))) continue;
    const double cap =
        params.cap_base + params.cap_per_fanout * fanout[id];
    estimate.switching +=
        0.5 * params.vdd * params.vdd * cap * activity.toggle_rate[id];
    estimate.leakage +=
        params.leakage_k * params.vdd * (1.0 - activity.toggle_rate[id]);
  }
  return estimate;
}

double calibrate_leakage_k(const Circuit& circuit,
                           const sim::ActivityResult& activity,
                           const EnergyEstimateParams& params,
                           double target_wl0) {
  if (target_wl0 < 0.0) {
    throw std::invalid_argument("calibrate_leakage_k: target must be >= 0");
  }
  EnergyEstimateParams probe = params;
  probe.leakage_k = 1.0;
  const EnergyEstimate at_unit_k = estimate_energy(circuit, activity, probe);
  if (at_unit_k.leakage <= 0.0) {
    throw std::invalid_argument(
        "calibrate_leakage_k: circuit has no idle weight to calibrate "
        "against (all gates toggling every cycle?)");
  }
  // Leakage is linear in K: K = target * E_sw / E_L(K=1).
  return target_wl0 * at_unit_k.switching / at_unit_k.leakage;
}

EmpiricalEnergyFactor empirical_energy_factor(
    const Circuit& base, const Circuit& redundant, double epsilon,
    double target_wl0, const EnergyEstimateParams& params,
    const sim::ActivityOptions& activity_options) {
  const sim::ActivityResult base_activity =
      sim::estimate_activity(base, activity_options);
  EnergyEstimateParams calibrated = params;
  calibrated.leakage_k =
      calibrate_leakage_k(base, base_activity, params, target_wl0);

  const EnergyEstimate base_energy =
      estimate_energy(base, base_activity, calibrated);
  const sim::ActivityResult noisy_activity =
      sim::estimate_noisy_activity(redundant, epsilon, activity_options);
  const EnergyEstimate redundant_energy =
      estimate_energy(redundant, noisy_activity, calibrated);

  EmpiricalEnergyFactor result;
  result.base_energy = base_energy.total();
  result.redundant_energy = redundant_energy.total();
  result.factor = result.base_energy > 0.0
                      ? result.redundant_energy / result.base_energy
                      : 0.0;
  result.wl_base = base_energy.leakage_ratio();
  result.wl_redundant = redundant_energy.leakage_ratio();
  return result;
}

}  // namespace enb::core
