#include "core/energy_bound.hpp"

#include <stdexcept>
#include <string>

#include "core/activity_model.hpp"
#include "core/size_bound.hpp"

namespace enb::core {

double switching_energy_factor(double sensitivity, double base_size,
                               double sw_clean, double fanin_k, double epsilon,
                               double delta) {
  return size_factor_lower_bound(sensitivity, base_size, fanin_k, epsilon,
                                 delta) *
         activity_ratio(sw_clean, epsilon);
}

EnergyBreakdown total_energy_factor(double sensitivity, double base_size,
                                    double sw_clean, double fanin_k,
                                    double epsilon, double delta,
                                    const EnergyModelOptions& options,
                                    double delay_factor) {
  if (!(options.leakage_fraction >= 0.0 && options.leakage_fraction <= 1.0)) {
    throw std::invalid_argument(
        "total_energy_factor: leakage_fraction must be in [0, 1], got " +
        std::to_string(options.leakage_fraction));
  }
  if (!(delay_factor >= 1.0)) {
    throw std::invalid_argument(
        "total_energy_factor: delay_factor must be >= 1");
  }
  EnergyBreakdown out;
  out.size_factor =
      size_factor_lower_bound(sensitivity, base_size, fanin_k, epsilon, delta);
  out.activity_factor = activity_ratio(sw_clean, epsilon);
  out.idle_factor = idle_ratio(sw_clean, epsilon);
  out.switching_factor = out.size_factor * out.activity_factor;
  out.leakage_factor = out.size_factor * out.idle_factor *
                       (options.couple_leakage_to_delay ? delay_factor : 1.0);
  const double lambda = options.leakage_fraction;
  out.total_factor =
      (1.0 - lambda) * out.switching_factor + lambda * out.leakage_factor;
  return out;
}

}  // namespace enb::core
