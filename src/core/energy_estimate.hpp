// High-level energy estimation — the paper's refs [16, 17] (Nemani–Najm and
// Marculescu–Marculescu–Pedram): total switched capacitance is, to first
// order, proportional to device count, with per-gate load growing with
// fanout. This module turns a netlist plus an activity profile into absolute
// (model-unit) switching/leakage energies, so a *real* redundant design's
// measured energy factor can be compared against Corollary 2's floor — the
// energy analog of the size-bound validation in validate_bounds.hpp.
//
//   E_sw  = ½·V²·Σ_g C_g·sw_g,   C_g = cap_base + cap_per_fanout·fanout(g)
//   E_L   = K·V·Σ_g (1 − sw_g)               (Theorem 3's premise)
#pragma once

#include "netlist/circuit.hpp"
#include "sim/activity.hpp"

namespace enb::core {

struct EnergyEstimateParams {
  double vdd = 1.2;
  double cap_base = 1.0;         // intrinsic output cap per gate (unit C)
  double cap_per_fanout = 0.5;   // added cap per fanout edge
  double leakage_k = 0.0;        // technology factor K; 0 = no leakage term
};

struct EnergyEstimate {
  double switching = 0.0;
  double leakage = 0.0;
  [[nodiscard]] double total() const noexcept { return switching + leakage; }
  // W_L = E_L / E_sw (the paper's leakage/switching ratio).
  [[nodiscard]] double leakage_ratio() const noexcept {
    return switching > 0.0 ? leakage / switching : 0.0;
  }
};

// Energy of one evaluation interval given per-node toggle rates. Activities
// must cover every node of the circuit (sim::estimate_activity /
// exact_activity / estimate_noisy_activity output shape).
[[nodiscard]] EnergyEstimate estimate_energy(
    const netlist::Circuit& circuit, const sim::ActivityResult& activity,
    const EnergyEstimateParams& params = {});

// Chooses K so that the estimate's leakage/switching ratio equals
// `target_wl0` for this circuit/activity (the paper's baseline calibration:
// "50% of the total energy is leakage" == W_L,0 = 1).
[[nodiscard]] double calibrate_leakage_k(const netlist::Circuit& circuit,
                                         const sim::ActivityResult& activity,
                                         const EnergyEstimateParams& params,
                                         double target_wl0);

// Measured energy factor of a redundant implementation at gate error eps:
// noisy-activity energy of `redundant` over clean-activity energy of `base`,
// both under the same calibrated parameters. Compare against Corollary 2.
struct EmpiricalEnergyFactor {
  double base_energy = 0.0;
  double redundant_energy = 0.0;
  double factor = 0.0;
  double wl_base = 0.0;       // leakage/switching ratio of the baseline
  double wl_redundant = 0.0;  // and of the noisy redundant design
};

[[nodiscard]] EmpiricalEnergyFactor empirical_energy_factor(
    const netlist::Circuit& base, const netlist::Circuit& redundant,
    double epsilon, double target_wl0 = 1.0,
    const EnergyEstimateParams& params = {},
    const sim::ActivityOptions& activity_options = {});

}  // namespace enb::core
