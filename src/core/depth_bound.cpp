#include "core/depth_bound.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/channel.hpp"

namespace enb::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void check_fanin(double fanin) {
  if (!(fanin > 1.0)) {
    throw std::invalid_argument("fanin must be > 1, got " +
                                std::to_string(fanin));
  }
}

}  // namespace

double delta_capacity(double delta) {
  check_delta(delta);
  if (delta == 0.0) return 1.0;
  return 1.0 + delta * std::log2(delta) +
         (1.0 - delta) * std::log2(1.0 - delta);
}

bool depth_feasible(double epsilon, double fanin) {
  check_epsilon(epsilon);
  check_fanin(fanin);
  const double xi = xi_of_epsilon(epsilon);
  return xi * xi > 1.0 / fanin;
}

double max_feasible_epsilon(double fanin) {
  check_fanin(fanin);
  return (1.0 - 1.0 / std::sqrt(fanin)) / 2.0;
}

double max_inputs_infeasible(double delta) {
  const double cap = delta_capacity(delta);
  if (cap <= 0.0) return kInf;
  return 1.0 / cap;
}

double depth_lower_bound(int num_inputs, double fanin, double epsilon,
                         double delta) {
  if (num_inputs < 1) {
    throw std::invalid_argument("depth_lower_bound: num_inputs must be >= 1");
  }
  if (!depth_feasible(epsilon, fanin)) {
    throw std::invalid_argument(
        "depth_lower_bound: infeasible regime (xi^2 <= 1/k); no depth bound "
        "exists — check depth_feasible first");
  }
  const double n_delta =
      static_cast<double>(num_inputs) * delta_capacity(delta);
  if (n_delta <= 1.0) return 0.0;  // vacuous
  const double xi = xi_of_epsilon(epsilon);
  return std::log2(n_delta) / std::log2(fanin * xi * xi);
}

double delay_factor_lower_bound(double fanin, double epsilon) {
  check_epsilon(epsilon);
  check_fanin(fanin);
  if (!depth_feasible(epsilon, fanin)) return kInf;
  const double xi = xi_of_epsilon(epsilon);
  return std::log2(fanin) / std::log2(fanin * xi * xi);
}

}  // namespace enb::core
