// Self-contained SHA-256 (FIPS 180-4), for the judge-style golden-digest
// tests: pinning the hash of a campaign's `.ans` bytes turns "did any
// engine change perturb the output?" into one string comparison, the
// discipline of the as6325400 fault-simulation judge. Not a cryptographic
// dependency — just a stable fingerprint.
#pragma once

#include <string>
#include <string_view>

namespace enb::util {

// Lowercase hex digest (64 chars) of `data`.
[[nodiscard]] std::string sha256_hex(std::string_view data);

}  // namespace enb::util
