#include "util/numeric.hpp"

#include <stdexcept>

namespace enb::util {

bool parse_double(const std::string& text, double& slot) {
  std::size_t consumed = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(text, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  if (text.empty() || consumed != text.size()) return false;
  slot = parsed;
  return true;
}

bool parse_int(const std::string& text, int& slot) {
  std::size_t consumed = 0;
  int parsed = 0;
  try {
    parsed = std::stoi(text, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  if (text.empty() || consumed != text.size()) return false;
  slot = parsed;
  return true;
}

bool parse_uint64(const std::string& text, std::uint64_t& slot) {
  if (text.empty() || text.find('-') != std::string::npos) return false;
  std::size_t consumed = 0;
  std::uint64_t parsed = 0;
  try {
    parsed = std::stoull(text, &consumed);
  } catch (const std::exception&) {
    return false;
  }
  if (consumed != text.size()) return false;
  slot = parsed;
  return true;
}

}  // namespace enb::util
