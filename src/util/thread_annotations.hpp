// Macros for clang's thread-safety analysis (-Wthread-safety): a static
// checker that proves, at compile time, that every access to a
// lock-protected member happens with its lock held. The attributes expand
// to nothing under other compilers (gcc builds them as plain code), so the
// annotations cost nothing outside the dedicated clang CI lane, which
// builds with -Werror=thread-safety.
//
// Vocabulary (see util/sync.hpp for the annotated primitives):
//   ENB_CAPABILITY("mutex")      on a class: instances are lockable things.
//   ENB_GUARDED_BY(mu)           on a member: reads/writes require mu held.
//   ENB_PT_GUARDED_BY(mu)        on a pointer member: the *pointee* requires
//                                mu held (the pointer itself does not).
//   ENB_REQUIRES(mu)             on a function: callers must hold mu.
//   ENB_ACQUIRE(mu) / ENB_RELEASE(mu)
//                                the function takes / drops mu.
//   ENB_EXCLUDES(mu)             callers must NOT hold mu (deadlock guard).
//   ENB_SCOPED_CAPABILITY        RAII classes whose ctor acquires and dtor
//                                releases.
//   ENB_ASSERT_CAPABILITY(mu)    runtime no-op that tells the analysis mu is
//                                held — for lambdas that run under a lock
//                                taken by their caller (CV predicates).
//   ENB_NO_THREAD_SAFETY_ANALYSIS
//                                opt a function out (init/destroy paths).
#pragma once

#if defined(__clang__)
#define ENB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ENB_THREAD_ANNOTATION(x)
#endif

#define ENB_CAPABILITY(x) ENB_THREAD_ANNOTATION(capability(x))
#define ENB_SCOPED_CAPABILITY ENB_THREAD_ANNOTATION(scoped_lockable)
#define ENB_GUARDED_BY(x) ENB_THREAD_ANNOTATION(guarded_by(x))
#define ENB_PT_GUARDED_BY(x) ENB_THREAD_ANNOTATION(pt_guarded_by(x))
#define ENB_REQUIRES(...) ENB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ENB_ACQUIRE(...) ENB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ENB_RELEASE(...) ENB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ENB_EXCLUDES(...) ENB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ENB_ASSERT_CAPABILITY(x) ENB_THREAD_ANNOTATION(assert_capability(x))
#define ENB_RETURN_CAPABILITY(x) ENB_THREAD_ANNOTATION(lock_returned(x))
#define ENB_NO_THREAD_SAFETY_ANALYSIS \
  ENB_THREAD_ANNOTATION(no_thread_safety_analysis)
