// Annotated synchronization primitives: std::mutex / lock_guard /
// unique_lock / condition_variable wrapped so clang's thread-safety
// analysis (util/thread_annotations.hpp) can see which lock guards which
// member. Zero-overhead: every method is an inline forward to the std
// type, and the attributes vanish off clang.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace enb::util {

class CondVar;
class LockGuard;
class UniqueLock;

// A std::mutex declared as a capability, so members can be annotated
// ENB_GUARDED_BY(mutex_) and functions ENB_REQUIRES(mutex_).
class ENB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ENB_ACQUIRE() { mutex_.lock(); }
  void unlock() ENB_RELEASE() { mutex_.unlock(); }

  // Tells the analysis this mutex is held without taking it — for lambdas
  // (condition-variable predicates, evaluator callbacks) that always run
  // under a lock acquired by their caller, where the acquisition is out of
  // the analysis's intraprocedural sight. Runtime no-op.
  void assert_held() const ENB_ASSERT_CAPABILITY(this) {}

 private:
  friend class LockGuard;
  friend class UniqueLock;
  mutable std::mutex mutex_;
};

// std::lock_guard over util::Mutex.
class ENB_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) ENB_ACQUIRE(mutex) : lock_(mutex.mutex_) {}
  ~LockGuard() ENB_RELEASE() {}

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  std::lock_guard<std::mutex> lock_;
};

// std::unique_lock over util::Mutex: a scoped capability that can be
// dropped and re-acquired mid-scope (the registry's load-outside-the-lock
// pattern) and that CondVar can wait on. The analysis checks call sites
// against the scoped shape: held on construction, held again by the time
// the scope ends. (At runtime an unlocked UniqueLock destructs safely —
// the inner std::unique_lock tracks ownership.)
class ENB_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) ENB_ACQUIRE(mutex) : lock_(mutex.mutex_) {}
  ~UniqueLock() ENB_RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() ENB_ACQUIRE() { lock_.lock(); }
  void unlock() ENB_RELEASE() { lock_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// std::condition_variable waiting on a UniqueLock. From the analysis's
// point of view the capability stays held across wait() — which matches
// the caller's contract: guarded state may be touched before and after the
// wait, never during (the mutex is atomically released while sleeping and
// re-held on wakeup).
class CondVar {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(UniqueLock& lock) { cv_.wait(lock.lock_); }

  template <typename Predicate>
  void wait(UniqueLock& lock, Predicate predicate) {
    while (!predicate()) wait(lock);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace enb::util
