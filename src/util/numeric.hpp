// Strict full-consumption numeric parsing, shared by the CLI argument
// parser and the batch-manifest reader so their hardening stays in sync.
// "0.1x", "", and (for counts) "-1" are errors, not prefixes or wraparounds.
#pragma once

#include <cstdint>
#include <string>

namespace enb::util {

// Each returns false unless the whole string parses (no trailing junk, no
// overflow). `slot` is unchanged on failure.
[[nodiscard]] bool parse_double(const std::string& text, double& slot);
[[nodiscard]] bool parse_int(const std::string& text, int& slot);
// Rejects negative input outright: std::stoull would silently wrap "-1" to
// 2^64-1, which downstream trial-count arithmetic then overflows to zero.
[[nodiscard]] bool parse_uint64(const std::string& text, std::uint64_t& slot);

}  // namespace enb::util
