// Structural hashing: merges gates with identical (type, canonical fanins),
// so logically shared subtrees become physically shared. Commutative gates
// canonicalize by sorting fanins.
#pragma once

#include "netlist/circuit.hpp"

namespace enb::synth {

[[nodiscard]] netlist::Circuit strash(const netlist::Circuit& circuit);

}  // namespace enb::synth
