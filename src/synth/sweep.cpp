#include "synth/sweep.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "netlist/transform.hpp"

namespace enb::synth {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

namespace {

// Helpers that inspect nodes already emitted into the new circuit.
std::optional<bool> const_value(const Circuit& c, NodeId id) {
  const GateType type = c.type(id);
  if (type == GateType::kConst0) return false;
  if (type == GateType::kConst1) return true;
  return std::nullopt;
}

NodeId emit_const(Circuit& c, bool value) { return c.add_const(value); }

NodeId emit_not(Circuit& c, NodeId x) {
  // NOT(NOT(y)) collapses to y.
  if (c.type(x) == GateType::kNot) return c.fanins(x)[0];
  if (const auto k = const_value(c, x)) return emit_const(c, !*k);
  return c.add_gate(GateType::kNot, x);
}

// Simplifies an AND/OR operand list in the new circuit. `identity` is the
// neutral constant (1 for AND, 0 for OR); its complement dominates.
struct ReducedOperands {
  std::vector<NodeId> operands;  // deduplicated, constants removed
  bool dominated = false;        // a dominating constant was seen
};

ReducedOperands reduce_and_or(const Circuit& c, std::vector<NodeId> fanins,
                              bool identity) {
  ReducedOperands out;
  std::sort(fanins.begin(), fanins.end());
  fanins.erase(std::unique(fanins.begin(), fanins.end()), fanins.end());
  for (NodeId f : fanins) {
    if (const auto k = const_value(c, f)) {
      if (*k != identity) out.dominated = true;
      continue;  // neutral constants drop
    }
    out.operands.push_back(f);
  }
  return out;
}

// Simplifies an XOR operand list: constants fold into `invert`, duplicate
// operands cancel in pairs.
struct XorReduced {
  std::vector<NodeId> operands;
  bool invert = false;
};

XorReduced reduce_xor(const Circuit& c, std::vector<NodeId> fanins) {
  XorReduced out;
  std::sort(fanins.begin(), fanins.end());
  std::size_t i = 0;
  while (i < fanins.size()) {
    std::size_t j = i;
    while (j < fanins.size() && fanins[j] == fanins[i]) ++j;
    const std::size_t count = j - i;
    if (const auto k = const_value(c, fanins[i])) {
      if (*k && count % 2 == 1) out.invert = !out.invert;
    } else if (count % 2 == 1) {
      out.operands.push_back(fanins[i]);
    }
    i = j;
  }
  return out;
}

class SweepPass {
 public:
  SweepPass(const Circuit& circuit, const SweepOptions& options)
      : old_(circuit), options_(options) {}

  Circuit run() {
    Circuit next(old_.name());
    map_.assign(old_.node_count(), netlist::kInvalidNode);
    for (NodeId id = 0; id < old_.node_count(); ++id) {
      map_[id] = rewrite(next, id);
    }
    for (std::size_t pos = 0; pos < old_.num_outputs(); ++pos) {
      next.add_output(map_[old_.outputs()[pos]], old_.output_name(pos));
    }
    return remove_dead_nodes(next);
  }

 private:
  NodeId rewrite(Circuit& next, NodeId id) {
    const auto& node = old_.node(id);
    std::vector<NodeId> fanins;
    fanins.reserve(node.fanins.size());
    for (NodeId f : node.fanins) fanins.push_back(map_[f]);

    switch (node.type) {
      case GateType::kInput:
        return next.add_input(old_.node_name(id));
      case GateType::kConst0:
        return emit_const(next, false);
      case GateType::kConst1:
        return emit_const(next, true);
      case GateType::kBuf:
        if (options_.keep_buffers && !const_value(next, fanins[0])) {
          return next.add_gate(GateType::kBuf, fanins[0]);
        }
        return fanins[0];
      case GateType::kNot:
        return emit_not(next, fanins[0]);
      case GateType::kAnd:
      case GateType::kNand: {
        const bool negated = node.type == GateType::kNand;
        const ReducedOperands r = reduce_and_or(next, std::move(fanins), true);
        if (r.dominated) return emit_const(next, negated);
        if (r.operands.empty()) return emit_const(next, !negated);
        if (r.operands.size() == 1) {
          return negated ? emit_not(next, r.operands[0]) : r.operands[0];
        }
        return next.add_gate(negated ? GateType::kNand : GateType::kAnd,
                             r.operands);
      }
      case GateType::kOr:
      case GateType::kNor: {
        const bool negated = node.type == GateType::kNor;
        const ReducedOperands r = reduce_and_or(next, std::move(fanins), false);
        if (r.dominated) return emit_const(next, !negated);
        if (r.operands.empty()) return emit_const(next, negated);
        if (r.operands.size() == 1) {
          return negated ? emit_not(next, r.operands[0]) : r.operands[0];
        }
        return next.add_gate(negated ? GateType::kNor : GateType::kOr,
                             r.operands);
      }
      case GateType::kXor:
      case GateType::kXnor: {
        XorReduced r = reduce_xor(next, std::move(fanins));
        if (node.type == GateType::kXnor) r.invert = !r.invert;
        if (r.operands.empty()) return emit_const(next, r.invert);
        if (r.operands.size() == 1) {
          return r.invert ? emit_not(next, r.operands[0]) : r.operands[0];
        }
        return next.add_gate(r.invert ? GateType::kXnor : GateType::kXor,
                             r.operands);
      }
      case GateType::kMaj:
        return rewrite_maj(next, fanins);
    }
    return netlist::kInvalidNode;  // unreachable
  }

  NodeId rewrite_maj(Circuit& next, const std::vector<NodeId>& f) {
    // Equal pair dominates: MAJ(x, x, y) == x.
    if (f[0] == f[1] || f[0] == f[2]) return f[0];
    if (f[1] == f[2]) return f[1];
    // Constant operand reduces to AND/OR of the others.
    for (int i = 0; i < 3; ++i) {
      if (const auto k = const_value(next, f[i])) {
        const NodeId a = f[(i + 1) % 3];
        const NodeId b = f[(i + 2) % 3];
        const ReducedOperands r =
            reduce_and_or(next, std::vector<NodeId>{a, b}, /*identity=*/!*k);
        // MAJ(a, b, 1) == OR(a, b); MAJ(a, b, 0) == AND(a, b). The dominating
        // constant of that gate equals *k, the neutral one equals !*k.
        if (r.dominated) return emit_const(next, *k);
        if (r.operands.empty()) return emit_const(next, !*k);
        if (r.operands.size() == 1) return r.operands[0];
        return next.add_gate(*k ? GateType::kOr : GateType::kAnd, r.operands);
      }
    }
    return next.add_gate(GateType::kMaj, f[0], f[1], f[2]);
  }

  const Circuit& old_;
  const SweepOptions& options_;
  std::vector<NodeId> map_;
};

}  // namespace

Circuit sweep(const Circuit& circuit, const SweepOptions& options) {
  Circuit current = SweepPass(circuit, options).run();
  for (int iter = 1; iter < options.max_iterations; ++iter) {
    Circuit next = SweepPass(current, options).run();
    if (next.node_count() == current.node_count() &&
        next.gate_count() == current.gate_count()) {
      return next;
    }
    current = std::move(next);
  }
  return current;
}

}  // namespace enb::synth
