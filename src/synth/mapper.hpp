// The mapping pipeline: sweep -> strash -> basis conversion -> fanin
// reduction -> sweep -> strash, with built-in equivalence verification.
// This is the repo's stand-in for "optimized in SIS using script.rugged and
// mapped using a generic library" (paper, Section 6).
#pragma once

#include <cstdint>

#include "netlist/circuit.hpp"
#include "netlist/stats.hpp"
#include "synth/library.hpp"

namespace enb::synth {

struct MapOptions {
  Library library = Library::generic(3);
  // Verify the mapped circuit against the original: exhaustively when the
  // input count allows, otherwise with random vectors.
  bool verify = true;
  int verify_exact_max_inputs = 14;
  std::uint64_t verify_random_words = 512;
  std::uint64_t seed = 0x5EED;
};

struct MapResult {
  netlist::Circuit circuit;
  netlist::CircuitStats before;
  netlist::CircuitStats after;
  bool verified = false;       // true when a check ran and passed
  bool verified_exact = false; // the check was exhaustive
};

// Throws std::runtime_error if verification fails (a mapper bug — the mapped
// netlist must be functionally identical).
[[nodiscard]] MapResult map_to_library(const netlist::Circuit& circuit,
                                       const MapOptions& options = {});

}  // namespace enb::synth
