#include "synth/decompose.hpp"

#include <stdexcept>
#include <vector>

namespace enb::synth {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

namespace {

// Reduces `operands` to at most `k` nodes by repeatedly combining groups of k
// with `combine`-type gates (balanced: each round shrinks the list by ~k).
std::vector<NodeId> tree_reduce(Circuit& c, std::vector<NodeId> operands,
                                GateType combine, int k) {
  while (static_cast<int>(operands.size()) > k) {
    std::vector<NodeId> next;
    next.reserve(operands.size() / k + 1);
    std::size_t i = 0;
    while (i < operands.size()) {
      const std::size_t take =
          std::min<std::size_t>(k, operands.size() - i);
      if (take == 1) {
        next.push_back(operands[i]);
      } else {
        next.push_back(c.add_gate(
            combine, std::vector<NodeId>(operands.begin() + i,
                                         operands.begin() + i + take)));
      }
      i += take;
    }
    operands = std::move(next);
  }
  return operands;
}

// Emits `type` over `fanins`, splitting into a tree when wider than k. For
// negated types the subtrees use the positive base op and only the root
// inverts, preserving the overall function.
NodeId emit_bounded(Circuit& c, GateType type, std::vector<NodeId> fanins,
                    int k) {
  if (static_cast<int>(fanins.size()) <= k) {
    return c.add_gate(type, std::move(fanins));
  }
  GateType base = type;
  switch (type) {
    case GateType::kNand:
      base = GateType::kAnd;
      break;
    case GateType::kNor:
      base = GateType::kOr;
      break;
    case GateType::kXnor:
      base = GateType::kXor;
      break;
    default:
      break;
  }
  std::vector<NodeId> reduced = tree_reduce(c, std::move(fanins), base, k);
  return c.add_gate(type, std::move(reduced));
}

}  // namespace

Circuit reduce_fanin(const Circuit& circuit, int max_fanin) {
  if (max_fanin < 2) {
    throw std::invalid_argument("reduce_fanin: max_fanin must be >= 2");
  }
  Circuit next(circuit.name());
  std::vector<NodeId> map(circuit.node_count(), netlist::kInvalidNode);
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    const auto& node = circuit.node(id);
    switch (node.type) {
      case GateType::kInput:
        map[id] = next.add_input(circuit.node_name(id));
        continue;
      case GateType::kConst0:
      case GateType::kConst1:
        map[id] = next.add_const(node.type == GateType::kConst1);
        continue;
      default:
        break;
    }
    std::vector<NodeId> fanins;
    fanins.reserve(node.fanins.size());
    for (NodeId f : node.fanins) fanins.push_back(map[f]);
    if (node.type == GateType::kMaj && max_fanin < 3) {
      // MAJ3 cannot narrow by tree reduction; expand to ab + c(a|b).
      const NodeId ab = next.add_gate(GateType::kAnd, fanins[0], fanins[1]);
      const NodeId a_or_b = next.add_gate(GateType::kOr, fanins[0], fanins[1]);
      const NodeId c_sel = next.add_gate(GateType::kAnd, fanins[2], a_or_b);
      map[id] = next.add_gate(GateType::kOr, ab, c_sel);
      continue;
    }
    map[id] = emit_bounded(next, node.type, std::move(fanins), max_fanin);
  }
  for (std::size_t pos = 0; pos < circuit.num_outputs(); ++pos) {
    next.add_output(map[circuit.outputs()[pos]], circuit.output_name(pos));
  }
  return next;
}

namespace {

// Basis-conversion emitters. Each returns a node computing the requested
// function using only types the library allows. They assume the library
// always allows NOT (all shipped bases do).
class BasisEmitter {
 public:
  BasisEmitter(Circuit& c, const Library& lib) : c_(c), lib_(lib) {}

  NodeId land(NodeId a, NodeId b) {
    if (lib_.allows_type(GateType::kAnd)) {
      return c_.add_gate(GateType::kAnd, a, b);
    }
    // NAND basis: AND == NOT(NAND).
    return lnot(c_.add_gate(GateType::kNand, a, b));
  }

  NodeId lor(NodeId a, NodeId b) {
    if (lib_.allows_type(GateType::kOr)) {
      return c_.add_gate(GateType::kOr, a, b);
    }
    // NAND basis: OR == NAND(NOT, NOT).
    return c_.add_gate(GateType::kNand, lnot(a), lnot(b));
  }

  NodeId lnot(NodeId a) { return c_.add_gate(GateType::kNot, a); }

  NodeId lxor(NodeId a, NodeId b) {
    if (lib_.allows_type(GateType::kXor)) {
      return c_.add_gate(GateType::kXor, a, b);
    }
    if (lib_.allows_type(GateType::kNand)) {
      // Four-NAND XOR.
      const NodeId nab = c_.add_gate(GateType::kNand, a, b);
      const NodeId t1 = c_.add_gate(GateType::kNand, a, nab);
      const NodeId t2 = c_.add_gate(GateType::kNand, b, nab);
      return c_.add_gate(GateType::kNand, t1, t2);
    }
    // AND/OR/NOT basis: a^b == (a | b) & !(a & b).
    return land(lor(a, b), lnot(land(a, b)));
  }

  NodeId lmaj(NodeId a, NodeId b, NodeId c) {
    if (lib_.allows(GateType::kMaj, 3)) {
      return c_.add_gate(GateType::kMaj, a, b, c);
    }
    // maj(a,b,c) == ab + c(a|b).
    return lor(land(a, b), land(c, lor(a, b)));
  }

  // n-ary folds.
  NodeId fold_and(const std::vector<NodeId>& xs) {
    NodeId acc = xs[0];
    for (std::size_t i = 1; i < xs.size(); ++i) acc = land(acc, xs[i]);
    return acc;
  }
  NodeId fold_or(const std::vector<NodeId>& xs) {
    NodeId acc = xs[0];
    for (std::size_t i = 1; i < xs.size(); ++i) acc = lor(acc, xs[i]);
    return acc;
  }
  NodeId fold_xor(const std::vector<NodeId>& xs) {
    NodeId acc = xs[0];
    for (std::size_t i = 1; i < xs.size(); ++i) acc = lxor(acc, xs[i]);
    return acc;
  }

 private:
  Circuit& c_;
  const Library& lib_;
};

}  // namespace

Circuit convert_to_basis(const Circuit& circuit, const Library& library) {
  if (!library.allows_type(GateType::kNot)) {
    throw std::invalid_argument(
        "convert_to_basis: library must allow inverters");
  }
  Circuit next(circuit.name());
  BasisEmitter emit(next, library);
  std::vector<NodeId> map(circuit.node_count(), netlist::kInvalidNode);
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    const auto& node = circuit.node(id);
    if (node.type == GateType::kInput) {
      map[id] = next.add_input(circuit.node_name(id));
      continue;
    }
    if (netlist::is_constant(node.type)) {
      map[id] = next.add_const(node.type == GateType::kConst1);
      continue;
    }
    std::vector<NodeId> fanins;
    fanins.reserve(node.fanins.size());
    for (NodeId f : node.fanins) fanins.push_back(map[f]);

    // A type the library already accepts passes through unchanged (fanin
    // width is reduce_fanin's job, not ours).
    if (library.allows_type(node.type)) {
      map[id] = next.add_gate(node.type, std::move(fanins));
      continue;
    }
    switch (node.type) {
      case GateType::kAnd:
        map[id] = emit.fold_and(fanins);
        break;
      case GateType::kNand:
        map[id] = emit.lnot(emit.fold_and(fanins));
        break;
      case GateType::kOr:
        map[id] = emit.fold_or(fanins);
        break;
      case GateType::kNor:
        map[id] = emit.lnot(emit.fold_or(fanins));
        break;
      case GateType::kXor:
        map[id] = emit.fold_xor(fanins);
        break;
      case GateType::kXnor:
        map[id] = emit.lnot(emit.fold_xor(fanins));
        break;
      case GateType::kMaj:
        map[id] = emit.lmaj(fanins[0], fanins[1], fanins[2]);
        break;
      case GateType::kBuf:
        map[id] = emit.lnot(emit.lnot(fanins[0]));
        break;
      default:
        throw std::logic_error("convert_to_basis: unexpected gate type");
    }
  }
  for (std::size_t pos = 0; pos < circuit.num_outputs(); ++pos) {
    next.add_output(map[circuit.outputs()[pos]], circuit.output_name(pos));
  }
  return next;
}

}  // namespace enb::synth
