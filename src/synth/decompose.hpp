// Fanin reduction and basis conversion.
//
// reduce_fanin() splits gates wider than k into balanced trees of <= k-input
// gates of the same polarity (a NAND of 9 operands becomes AND subtrees
// feeding one top-level NAND, keeping a single inversion). convert_to_basis()
// rewrites gate types a target library forbids (e.g. XOR into NAND logic).
// Together they implement the paper's "mapped using a generic library
// comprised of gates with a maximum fanin of three".
#pragma once

#include "netlist/circuit.hpp"
#include "synth/library.hpp"

namespace enb::synth {

// Splits every gate with more than `max_fanin` operands into a balanced tree.
// Gate count grows, logic depth grows logarithmically; function is preserved.
[[nodiscard]] netlist::Circuit reduce_fanin(const netlist::Circuit& circuit,
                                            int max_fanin);

// Rewrites gates whose type the library forbids into allowed logic:
//   XOR/XNOR -> AND/OR/NOT or NAND expansions
//   MAJ      -> AND/OR network (ab + c(a|b))
//   AND/OR/NOR/... -> NAND/NOT when the basis is nand_not
// The result may still contain gates wider than the library's max fanin;
// run reduce_fanin afterwards (map_to_library does both).
[[nodiscard]] netlist::Circuit convert_to_basis(const netlist::Circuit& circuit,
                                                const Library& library);

}  // namespace enb::synth
