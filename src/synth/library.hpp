// Gate-library descriptor: which gate types a mapped netlist may contain and
// the maximum fanin k. The paper's evaluation maps benchmarks onto "a generic
// library comprised of gates with a maximum fanin of three"; Library::generic(3)
// reproduces that target.
#pragma once

#include <string>
#include <vector>

#include "netlist/gate_type.hpp"

namespace enb::synth {

class Library {
 public:
  // Full structural vocabulary (AND/NAND/OR/NOR/XOR/XNOR/NOT/BUF, plus MAJ
  // when k >= 3), fanin limited to `max_fanin`.
  [[nodiscard]] static Library generic(int max_fanin);

  // NAND/NOT/BUF only (classic universal basis), fanin limited to k.
  [[nodiscard]] static Library nand_not(int max_fanin);

  // AND/OR/NOT/BUF (no parity gates) — useful for the XOR-expansion path.
  [[nodiscard]] static Library and_or_not(int max_fanin);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int max_fanin() const noexcept { return max_fanin_; }

  // True when a gate of this type and fanin count may appear in a mapped
  // netlist. Inputs and constants are always allowed.
  [[nodiscard]] bool allows(netlist::GateType type, int fanin) const noexcept;

  // True when the type is allowed at some fanin.
  [[nodiscard]] bool allows_type(netlist::GateType type) const noexcept;

 private:
  Library(std::string name, int max_fanin,
          std::vector<netlist::GateType> types);

  std::string name_;
  int max_fanin_;
  std::vector<netlist::GateType> types_;
};

}  // namespace enb::synth
