#include "synth/library.hpp"

#include <algorithm>
#include <stdexcept>

namespace enb::synth {

using netlist::GateType;

Library::Library(std::string name, int max_fanin, std::vector<GateType> types)
    : name_(std::move(name)), max_fanin_(max_fanin), types_(std::move(types)) {
  if (max_fanin_ < 2) {
    throw std::invalid_argument("Library: max_fanin must be >= 2");
  }
}

Library Library::generic(int max_fanin) {
  std::vector<GateType> types = {
      GateType::kBuf, GateType::kNot,  GateType::kAnd, GateType::kNand,
      GateType::kOr,  GateType::kNor,  GateType::kXor, GateType::kXnor};
  if (max_fanin >= 3) types.push_back(GateType::kMaj);
  return Library("generic" + std::to_string(max_fanin), max_fanin,
                 std::move(types));
}

Library Library::nand_not(int max_fanin) {
  return Library("nand_not" + std::to_string(max_fanin), max_fanin,
                 {GateType::kBuf, GateType::kNot, GateType::kNand});
}

Library Library::and_or_not(int max_fanin) {
  return Library("and_or_not" + std::to_string(max_fanin), max_fanin,
                 {GateType::kBuf, GateType::kNot, GateType::kAnd,
                  GateType::kOr});
}

bool Library::allows_type(GateType type) const noexcept {
  if (!counts_as_gate(type)) return true;
  return std::find(types_.begin(), types_.end(), type) != types_.end();
}

bool Library::allows(GateType type, int fanin) const noexcept {
  if (!counts_as_gate(type)) return true;
  if (!allows_type(type)) return false;
  const auto range = netlist::arity_range(type);
  if (fanin < range.min || fanin > range.max) return false;
  return fanin <= max_fanin_;
}

}  // namespace enb::synth
