// Combinational cleanup: constant propagation, algebraic identity rules,
// duplicate-operand reduction, buffer/double-inverter collapsing, and dead
// logic removal. The stand-in for SIS script.rugged's cleanup steps.
#pragma once

#include "netlist/circuit.hpp"

namespace enb::synth {

struct SweepOptions {
  // Upper bound on the simplify-and-rebuild passes; the loop also stops as
  // soon as a pass makes no change.
  int max_iterations = 8;
  // Keep buffers (some flows want explicit fanout buffering preserved).
  bool keep_buffers = false;
};

// Returns a functionally equivalent circuit with the rules applied:
//   * gates whose operands are constants fold (AND with a 0, OR with a 1...)
//   * neutral operands drop (AND with 1, XOR with 0, ...)
//   * duplicate operands reduce (AND(x,x) == x, XOR(x,x) == 0, MAJ(x,x,y)==x)
//   * single-operand associative gates collapse (AND(x) == BUF(x))
//   * BUF chains and NOT(NOT(x)) collapse
//   * logic not reachable from any primary output is deleted
[[nodiscard]] netlist::Circuit sweep(const netlist::Circuit& circuit,
                                     const SweepOptions& options = {});

}  // namespace enb::synth
