#include "synth/strash.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "netlist/transform.hpp"

namespace enb::synth {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

Circuit strash(const Circuit& circuit) {
  Circuit next(circuit.name());
  std::vector<NodeId> map(circuit.node_count(), netlist::kInvalidNode);
  // Key: (type, canonical fanin list). std::map keeps this dependency-free;
  // netlists here are small enough that log-factor lookups are immaterial.
  std::map<std::pair<GateType, std::vector<NodeId>>, NodeId> seen;

  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    const auto& node = circuit.node(id);
    if (node.type == GateType::kInput) {
      map[id] = next.add_input(circuit.node_name(id));
      continue;
    }
    std::vector<NodeId> fanins;
    fanins.reserve(node.fanins.size());
    for (NodeId f : node.fanins) fanins.push_back(map[f]);
    if (is_commutative(node.type)) {
      std::sort(fanins.begin(), fanins.end());
    }
    const auto key = std::make_pair(node.type, fanins);
    const auto it = seen.find(key);
    if (it != seen.end()) {
      map[id] = it->second;
      continue;
    }
    if (netlist::is_constant(node.type)) {
      map[id] = next.add_const(node.type == GateType::kConst1);
    } else {
      map[id] = next.add_gate(node.type, std::move(fanins));
    }
    seen.emplace(key, map[id]);
  }
  for (std::size_t pos = 0; pos < circuit.num_outputs(); ++pos) {
    next.add_output(map[circuit.outputs()[pos]], circuit.output_name(pos));
  }
  return remove_dead_nodes(next);
}

}  // namespace enb::synth
