#include "synth/mapper.hpp"

#include <stdexcept>

#include "sim/exhaustive.hpp"
#include "synth/decompose.hpp"
#include "synth/strash.hpp"
#include "synth/sweep.hpp"

namespace enb::synth {

using netlist::Circuit;

MapResult map_to_library(const Circuit& circuit, const MapOptions& options) {
  MapResult result;
  result.before = netlist::compute_stats(circuit);

  // Order matters: fanin reduction runs before basis conversion because the
  // tree splitter may introduce AND/OR helper gates (e.g. under a wide NAND
  // root) that a restricted basis must then rewrite; the basis emitters
  // themselves only produce 2-input gates, so widths stay bounded.
  Circuit mapped = sweep(circuit);
  mapped = strash(mapped);
  mapped = reduce_fanin(mapped, options.library.max_fanin());
  mapped = convert_to_basis(mapped, options.library);
  mapped = sweep(mapped);
  mapped = strash(mapped);
  mapped.set_name(circuit.name());

  if (options.verify) {
    const bool exact =
        static_cast<int>(circuit.num_inputs()) <=
        options.verify_exact_max_inputs;
    const bool ok =
        exact ? sim::exhaustive_equivalent(circuit, mapped)
              : sim::random_equivalent(circuit, mapped,
                                       options.verify_random_words,
                                       options.seed);
    if (!ok) {
      throw std::runtime_error("map_to_library: mapped circuit for '" +
                               circuit.name() +
                               "' is not equivalent to the original");
    }
    result.verified = true;
    result.verified_exact = exact;
  }

  result.after = netlist::compute_stats(mapped);
  result.circuit = std::move(mapped);
  return result;
}

}  // namespace enb::synth
