// Switching-activity and signal-probability estimation.
//
// The paper's circuit profiles need the average per-gate switching activity
// sw0 under random inputs (Section 6: "average switching activity of a
// generic gate ... obtained considering randomly generated inputs"). Under
// temporally independent vectors, sw(x) = P(x_t != x_{t+1}) = 2 p (1-p);
// the Monte-Carlo estimator below applies independent vector *pairs*, which
// realizes that definition directly; the identity is also exposed so exact
// probabilities (from the BDD package) can be converted.
#pragma once

#include <vector>

#include "netlist/circuit.hpp"
#include "sim/bitpack.hpp"

namespace enb::sim {

struct ActivityResult {
  std::vector<double> one_probability;   // per node
  std::vector<double> toggle_rate;       // per node: P(value changes)
  double avg_gate_one_probability = 0.0; // mean over counts_as_gate nodes
  double avg_gate_toggle_rate = 0.0;     // the paper's sw0
  std::size_t sample_pairs = 0;
};

struct ActivityOptions {
  std::size_t sample_pairs = 1 << 14;  // vector pairs (64 lanes each)
  std::uint64_t seed = 1;
  double input_one_probability = 0.5;
  // Parallel execution. The pair budget is split into shards of
  // `shard_pairs`; shard i draws all randomness from a counter-based stream
  // seeded by (seed, i), so the estimate is bit-identical for every thread
  // count (threads: 0 = global pool, 1 = serial, N = dedicated pool).
  std::size_t shard_pairs = 256;
  unsigned threads = 0;
};

// Monte-Carlo estimate over random vector pairs.
[[nodiscard]] ActivityResult estimate_activity(
    const netlist::Circuit& circuit, const ActivityOptions& options = {});

// Exhaustive (exact) activity for small circuits: one-probabilities from the
// full truth table, toggle rates via sw = 2 p (1-p) (temporal independence).
[[nodiscard]] ActivityResult exact_activity(const netlist::Circuit& circuit);

// Temporal-independence identity sw = 2 p (1 - p).
[[nodiscard]] constexpr double activity_from_probability(double p) noexcept {
  return 2.0 * p * (1.0 - p);
}

}  // namespace enb::sim
