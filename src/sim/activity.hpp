// Switching-activity and signal-probability estimation.
//
// The paper's circuit profiles need the average per-gate switching activity
// sw0 under random inputs (Section 6: "average switching activity of a
// generic gate ... obtained considering randomly generated inputs"). Under
// temporally independent vectors, sw(x) = P(x_t != x_{t+1}) = 2 p (1-p);
// the Monte-Carlo estimator below applies independent vector *pairs*, which
// realizes that definition directly; the identity is also exposed so exact
// probabilities (from the BDD package) can be converted.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/stream.hpp"
#include "exec/thread_pool.hpp"
#include "netlist/circuit.hpp"
#include "sim/bitpack.hpp"

namespace enb::sim {

struct ActivityResult {
  std::vector<double> one_probability;   // per node
  std::vector<double> toggle_rate;       // per node: P(value changes)
  double avg_gate_one_probability = 0.0; // mean over counts_as_gate nodes
  double avg_gate_toggle_rate = 0.0;     // the paper's sw0
  std::size_t sample_pairs = 0;
};

struct ActivityOptions {
  std::size_t sample_pairs = 1 << 14;  // vector pairs (64 lanes each)
  std::uint64_t seed = 1;
  double input_one_probability = 0.5;
  // Parallel execution. The pair budget is split into shards of
  // `shard_pairs`; shard i draws all randomness from a counter-based stream
  // seeded by (seed, i), so the estimate is bit-identical for every thread
  // count.
  std::size_t shard_pairs = 256;
  // Deprecated dual knob: only the two-argument estimate_activity overload
  // still honours it. Route thread control through the exec::Parallelism
  // parameter instead.
  unsigned threads = 0;
};

// Monte-Carlo estimate over random vector pairs, parallelized per `how`
// (results are bit-identical for any thread count).
[[nodiscard]] ActivityResult estimate_activity(const netlist::Circuit& circuit,
                                               const ActivityOptions& options,
                                               exec::Parallelism how);

// Deprecated-knob form: honours options.threads.
[[nodiscard]] ActivityResult estimate_activity(
    const netlist::Circuit& circuit, const ActivityOptions& options = {});

// ---- shard-level building blocks -----------------------------------------
//
// estimate_activity decomposes into independent shard tasks whose integer
// accumulators merge by sum; the batch engine (exec/batch.hpp) schedules the
// same tasks interleaved with other jobs' shards, so a batched activity job
// is bit-identical to a direct estimator call by construction.

// Per-node integer accumulators of one or more shards; merge by +.
struct ActivityCounts {
  std::vector<std::uint64_t> ones;     // set lanes per node
  std::vector<std::uint64_t> toggles;  // differing lanes per node pair
  explicit ActivityCounts(std::size_t nodes)
      : ones(nodes, 0), toggles(nodes, 0) {}
  void merge(const ActivityCounts& other);
};

// Throws std::invalid_argument on a zero sample budget — the validation
// estimate_activity applies before sharding.
void validate_activity_inputs(const ActivityOptions& options);

// The pair decomposition implied by `options`: sample_pairs split into
// shards of shard_pairs.
[[nodiscard]] exec::ShardPlan activity_shard_plan(
    const ActivityOptions& options);

// Counts contributed by one shard of the plan; a pure function of
// (options.seed, shard.index).
[[nodiscard]] ActivityCounts activity_shard_counts(
    const netlist::Circuit& circuit, const ActivityOptions& options,
    const exec::Shard& shard);

// Turns merged counts into the estimator's result (rates + gate averages).
[[nodiscard]] ActivityResult finalize_activity(const netlist::Circuit& circuit,
                                               const ActivityOptions& options,
                                               const ActivityCounts& counts);

// Exhaustive (exact) activity for small circuits: one-probabilities from the
// full truth table, toggle rates via sw = 2 p (1-p) (temporal independence).
[[nodiscard]] ActivityResult exact_activity(const netlist::Circuit& circuit);

// Temporal-independence identity sw = 2 p (1 - p).
[[nodiscard]] constexpr double activity_from_probability(double p) noexcept {
  return 2.0 * p * (1.0 - p);
}

}  // namespace enb::sim
