#include "sim/bitpack.hpp"

#include <algorithm>
#include <stdexcept>

namespace enb::sim {

LaneCounter::LaneCounter(int max_count) {
  if (max_count < 1) {
    throw std::invalid_argument("LaneCounter: max_count must be >= 1");
  }
  int bits = 1;
  while ((1 << bits) - 1 < max_count) ++bits;
  slices_.assign(static_cast<std::size_t>(bits), 0);
}

void LaneCounter::add(Word indicator) noexcept {
  Word carry = indicator;
  for (Word& slice : slices_) {
    const Word sum = slice ^ carry;
    carry = slice & carry;
    slice = sum;
    if (carry == 0) break;
  }
  // By construction max_count bounds the total, so a surviving carry cannot
  // occur for well-behaved callers; dropping it keeps add() noexcept.
}

int LaneCounter::lane(int lane_index) const noexcept {
  int value = 0;
  for (std::size_t i = 0; i < slices_.size(); ++i) {
    value |= static_cast<int>((slices_[i] >> lane_index) & 1U) << i;
  }
  return value;
}

Word LaneCounter::greater_than(int threshold) const noexcept {
  // Lane-parallel comparison: count > threshold.
  Word gt = 0;
  Word eq = kAllOnes;
  for (std::size_t i = slices_.size(); i-- > 0;) {
    const Word t = ((static_cast<Word>(threshold) >> i) & 1U) != 0 ? kAllOnes : 0;
    gt |= eq & slices_[i] & ~t;
    eq &= ~(slices_[i] ^ t);
  }
  return gt;
}

int LaneCounter::max_lane(Word lane_mask) const noexcept {
  int best = 0;
  for (int l = 0; l < kWordBits; ++l) {
    if (((lane_mask >> l) & 1U) == 0) continue;
    best = std::max(best, lane(l));
  }
  return best;
}

void LaneCounter::reset() noexcept {
  std::fill(slices_.begin(), slices_.end(), Word{0});
}

}  // namespace enb::sim
