// Noisy (ε-flip) simulation: the paper's error model in executable form.
//
// Each failure-prone gate is modeled as an error-free gate cascaded with a
// symmetric channel of error probability ε (paper Figure 1): after the gate's
// word is computed, each lane independently flips with probability ε.
// Primary inputs and constants never fail; per-gate ε overrides support
// heterogeneous-noise ablations.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "netlist/circuit.hpp"
#include "sim/activity.hpp"
#include "sim/bitpack.hpp"
#include "sim/prng.hpp"

namespace enb::sim {

class NoisySim {
 public:
  // Uniform gate error probability `epsilon` in [0, 0.5].
  NoisySim(const netlist::Circuit& circuit, double epsilon,
           std::uint64_t seed);

  // Heterogeneous variant: `epsilons` holds one entry per node (entries for
  // inputs/constants are ignored).
  NoisySim(const netlist::Circuit& circuit, std::vector<double> epsilons,
           std::uint64_t seed);

  // Evaluates with fresh error draws. Each call consumes randomness, so two
  // calls with the same inputs model two independent noisy executions.
  void eval(std::span<const Word> input_words);

  [[nodiscard]] Word value(netlist::NodeId id) const { return values_.at(id); }
  [[nodiscard]] std::span<const Word> values() const noexcept { return values_; }
  [[nodiscard]] std::vector<Word> output_values() const;

  // Error words applied on the last eval (bit set == lane flipped), useful
  // for tests and fault-coverage statistics.
  [[nodiscard]] std::span<const Word> last_error_words() const noexcept {
    return errors_;
  }

 private:
  const netlist::Circuit* circuit_;
  std::vector<double> epsilons_;
  Xoshiro256 rng_;
  std::vector<Word> values_;
  std::vector<Word> errors_;
  std::vector<Word> fanin_buffer_;
};

// Monte-Carlo switching activity of the *noisy* circuit: temporally
// independent vector pairs, each evaluated with fresh error draws — the
// executable version of Theorem 1's sw(z). Returns the usual ActivityResult
// (per-node toggle rates, per-gate average = the paper's sw_eps).
[[nodiscard]] ActivityResult estimate_noisy_activity(
    const netlist::Circuit& circuit, double epsilon,
    const ActivityOptions& options, exec::Parallelism how);

// Deprecated-knob form: honours options.threads.
[[nodiscard]] ActivityResult estimate_noisy_activity(
    const netlist::Circuit& circuit, double epsilon,
    const ActivityOptions& options = {});

}  // namespace enb::sim
