// Deterministic pseudo-random number generation.
//
// Self-contained xoshiro256** seeded via splitmix64 so that every experiment
// in the repo is reproducible from a single integer seed, independent of the
// standard library's unspecified distributions.
#pragma once

#include <array>
#include <cstdint>

namespace enb::sim {

// One splitmix64 step; used for seeding and for cheap stateless streams.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  // Uniform 64-bit word.
  [[nodiscard]] std::uint64_t next() noexcept;

  // Uniform double in [0, 1).
  [[nodiscard]] double next_real() noexcept;

  // Uniform integer in [0, bound) (bound > 0), bias-free rejection sampling.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  // One Bernoulli(p) draw.
  [[nodiscard]] bool bernoulli(double p) noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

// A 64-lane word whose bits are iid Bernoulli(p), with `precision_bits` of
// resolution in p (default 2^-32). Uses the binary-expansion construction:
// combining independent uniform words with AND/OR per bit of p costs one
// uniform word per precision bit, i.e. ~0.5 PRNG calls per output bit.
[[nodiscard]] std::uint64_t bernoulli_word(Xoshiro256& rng, double p,
                                           int precision_bits = 32) noexcept;

}  // namespace enb::sim
