// Word-level bit utilities shared by the simulators.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

namespace enb::sim {

using Word = std::uint64_t;
inline constexpr int kWordBits = 64;
inline constexpr Word kAllOnes = ~Word{0};

[[nodiscard]] inline int popcount(Word w) noexcept { return std::popcount(w); }

// Mask with the low `n` bits set (n in [0, 64]).
[[nodiscard]] constexpr Word low_mask(int n) noexcept {
  return n >= kWordBits ? kAllOnes : ((Word{1} << n) - 1);
}

// Bit-sliced per-lane counter: accumulates up to 2^Slices - 1 indicator words
// into 64 independent lane counts using bitwise ripple-carry addition. Used
// for per-lane sensitivity counts and bundle-majority decoding, where keeping
// 64 parallel small integers beats unpacking lanes.
class LaneCounter {
 public:
  // `max_count` is the largest total that will be accumulated; counts beyond
  // it would overflow silently, so the constructor sizes the slice vector to
  // hold it.
  explicit LaneCounter(int max_count);

  // Adds 1 to every lane whose bit is set in `indicator`.
  void add(Word indicator) noexcept;

  // Count currently held for `lane` (0..63).
  [[nodiscard]] int lane(int lane_index) const noexcept;

  // Word whose lane bits are set where count > threshold.
  [[nodiscard]] Word greater_than(int threshold) const noexcept;

  // Maximum lane count, optionally restricted to lanes set in `lane_mask`.
  [[nodiscard]] int max_lane(Word lane_mask = kAllOnes) const noexcept;

  void reset() noexcept;
  [[nodiscard]] int num_slices() const noexcept {
    return static_cast<int>(slices_.size());
  }

 private:
  std::vector<Word> slices_;  // slices_[i] holds bit i of each lane's count
};

}  // namespace enb::sim
