#include "sim/logic_sim.hpp"

#include <stdexcept>
#include <string>

namespace enb::sim {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

LogicSim::LogicSim(const Circuit& circuit)
    : circuit_(&circuit), values_(circuit.node_count(), 0) {}

void LogicSim::eval(std::span<const Word> input_words) {
  if (input_words.size() != circuit_->num_inputs()) {
    throw std::invalid_argument(
        "LogicSim::eval: expected " + std::to_string(circuit_->num_inputs()) +
        " input words, got " + std::to_string(input_words.size()));
  }
  for (NodeId id = 0; id < circuit_->node_count(); ++id) {
    const auto& node = circuit_->node(id);
    if (node.type == GateType::kInput) {
      values_[id] = input_words[static_cast<std::size_t>(
          circuit_->input_index(id))];
      continue;
    }
    fanin_buffer_.clear();
    for (NodeId f : node.fanins) fanin_buffer_.push_back(values_[f]);
    values_[id] = netlist::eval_word(node.type, fanin_buffer_);
  }
}

std::vector<Word> LogicSim::output_values() const {
  std::vector<Word> out;
  out.reserve(circuit_->num_outputs());
  for (NodeId id : circuit_->outputs()) out.push_back(values_[id]);
  return out;
}

std::vector<bool> eval_single(const Circuit& circuit,
                              const std::vector<bool>& inputs) {
  if (inputs.size() != circuit.num_inputs()) {
    throw std::invalid_argument("eval_single: input count mismatch");
  }
  std::vector<Word> words(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    words[i] = inputs[i] ? kAllOnes : 0;
  }
  LogicSim sim(circuit);
  sim.eval(words);
  std::vector<bool> out;
  out.reserve(circuit.num_outputs());
  for (NodeId id : circuit.outputs()) out.push_back((sim.value(id) & 1U) != 0);
  return out;
}

}  // namespace enb::sim
