#include "sim/noise.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <string>

#include "exec/stream.hpp"
#include "exec/thread_pool.hpp"

namespace enb::sim {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

NoisySim::NoisySim(const Circuit& circuit, double epsilon, std::uint64_t seed)
    : NoisySim(circuit,
               std::vector<double>(circuit.node_count(), epsilon), seed) {}

NoisySim::NoisySim(const Circuit& circuit, std::vector<double> epsilons,
                   std::uint64_t seed)
    : circuit_(&circuit),
      epsilons_(std::move(epsilons)),
      rng_(seed),
      values_(circuit.node_count(), 0),
      errors_(circuit.node_count(), 0) {
  if (epsilons_.size() != circuit.node_count()) {
    throw std::invalid_argument("NoisySim: epsilon vector size mismatch");
  }
  for (double e : epsilons_) {
    if (e < 0.0 || e > 0.5) {
      throw std::invalid_argument(
          "NoisySim: epsilon must be in [0, 0.5], got " + std::to_string(e));
    }
  }
}

void NoisySim::eval(std::span<const Word> input_words) {
  if (input_words.size() != circuit_->num_inputs()) {
    throw std::invalid_argument("NoisySim::eval: input word count mismatch");
  }
  for (NodeId id = 0; id < circuit_->node_count(); ++id) {
    const auto& node = circuit_->node(id);
    if (node.type == GateType::kInput) {
      values_[id] =
          input_words[static_cast<std::size_t>(circuit_->input_index(id))];
      errors_[id] = 0;
      continue;
    }
    fanin_buffer_.clear();
    for (NodeId f : node.fanins) fanin_buffer_.push_back(values_[f]);
    const Word clean = netlist::eval_word(node.type, fanin_buffer_);
    if (counts_as_gate(node.type) && epsilons_[id] > 0.0) {
      errors_[id] = bernoulli_word(rng_, epsilons_[id]);
      values_[id] = clean ^ errors_[id];
    } else {
      errors_[id] = 0;
      values_[id] = clean;
    }
  }
}

std::vector<Word> NoisySim::output_values() const {
  std::vector<Word> out;
  out.reserve(circuit_->num_outputs());
  for (NodeId id : circuit_->outputs()) out.push_back(values_[id]);
  return out;
}

ActivityResult estimate_noisy_activity(const Circuit& circuit, double epsilon,
                                       const ActivityOptions& options,
                                       exec::Parallelism how) {
  if (options.sample_pairs == 0) {
    throw std::invalid_argument(
        "estimate_noisy_activity: sample_pairs must be > 0");
  }
  const std::size_t n = circuit.node_count();
  std::vector<std::uint64_t> ones(n, 0);
  std::vector<std::uint64_t> toggles(n, 0);

  // Sharded exactly like estimate_activity: per-shard counter-based streams
  // (inputs and the shard's private noise source both derive from the shard
  // stream) plus order-insensitive integer merges keep the estimate
  // bit-identical across thread counts.
  const exec::ShardPlan plan(options.sample_pairs, options.shard_pairs);
  std::mutex merge_mutex;
  exec::for_each_shard(
      plan,
      [&](const exec::Shard& shard) {
        Xoshiro256 rng(exec::stream_seed(options.seed, shard.index));
        NoisySim sim(circuit, epsilon, rng.next());
        std::vector<Word> in_a(circuit.num_inputs());
        std::vector<Word> in_b(circuit.num_inputs());
        std::vector<Word> first(n);
        std::vector<std::uint64_t> local_ones(n, 0);
        std::vector<std::uint64_t> local_toggles(n, 0);

        for (std::size_t pair = shard.begin; pair < shard.end; ++pair) {
          for (Word& w : in_a) {
            w = options.input_one_probability == 0.5
                    ? rng.next()
                    : bernoulli_word(rng, options.input_one_probability);
          }
          for (Word& w : in_b) {
            w = options.input_one_probability == 0.5
                    ? rng.next()
                    : bernoulli_word(rng, options.input_one_probability);
          }
          sim.eval(in_a);
          std::copy(sim.values().begin(), sim.values().end(), first.begin());
          sim.eval(in_b);
          for (std::size_t id = 0; id < n; ++id) {
            local_ones[id] +=
                static_cast<std::uint64_t>(popcount(first[id])) +
                static_cast<std::uint64_t>(popcount(sim.values()[id]));
            local_toggles[id] += static_cast<std::uint64_t>(
                popcount(first[id] ^ sim.values()[id]));
          }
        }

        const std::lock_guard<std::mutex> lock(merge_mutex);
        for (std::size_t id = 0; id < n; ++id) {
          ones[id] += local_ones[id];
          toggles[id] += local_toggles[id];
        }
      },
      how);

  const double lanes =
      static_cast<double>(options.sample_pairs) * kWordBits;
  ActivityResult result;
  result.sample_pairs = options.sample_pairs;
  result.one_probability.resize(circuit.node_count());
  result.toggle_rate.resize(circuit.node_count());
  double p_sum = 0.0;
  double sw_sum = 0.0;
  std::size_t gates = 0;
  for (std::size_t id = 0; id < circuit.node_count(); ++id) {
    result.one_probability[id] =
        static_cast<double>(ones[id]) / (2.0 * lanes);
    result.toggle_rate[id] = static_cast<double>(toggles[id]) / lanes;
    if (!counts_as_gate(circuit.type(id))) continue;
    p_sum += result.one_probability[id];
    sw_sum += result.toggle_rate[id];
    ++gates;
  }
  result.avg_gate_one_probability =
      gates == 0 ? 0.0 : p_sum / static_cast<double>(gates);
  result.avg_gate_toggle_rate =
      gates == 0 ? 0.0 : sw_sum / static_cast<double>(gates);
  return result;
}

ActivityResult estimate_noisy_activity(const Circuit& circuit, double epsilon,
                                       const ActivityOptions& options) {
  const exec::Parallelism how{options.threads};
  return estimate_noisy_activity(circuit, epsilon, options, how);
}

}  // namespace enb::sim
