#include "sim/reliability.hpp"

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "exec/thread_pool.hpp"
#include "sim/logic_sim.hpp"
#include "sim/noise.hpp"
#include "sim/prng.hpp"

namespace enb::sim {

using netlist::Circuit;

namespace {

// One fixed assignment per worst-case sample, broadcast to all lanes: every
// lane is an independent noise draw for the *same* input. The assignment is
// a pure function of (seed, sample), so callers re-derive the argmax winner
// instead of storing every candidate. The first draw of the sample's stream
// seeds its private noise source; the assignment bits follow.
std::pair<std::vector<bool>, std::uint64_t> worst_case_sample_assignment(
    const Circuit& noisy, const WorstCaseOptions& options, std::size_t sample,
    std::vector<Word>* inputs) {
  Xoshiro256 rng(
      exec::stream_seed(options.seed, static_cast<std::uint64_t>(sample)));
  const std::uint64_t noise_seed = rng.next();
  std::vector<bool> current(noisy.num_inputs());
  for (std::size_t i = 0; i < current.size(); ++i) {
    current[i] = (rng.next() & 1U) != 0;
    if (inputs != nullptr) (*inputs)[i] = current[i] ? kAllOnes : 0;
  }
  return {std::move(current), noise_seed};
}

std::uint64_t worst_case_passes(const WorstCaseOptions& options) {
  return (options.trials_per_input + kWordBits - 1) / kWordBits;
}

}  // namespace

ReliabilityResult wilson_interval(std::uint64_t failures,
                                  std::uint64_t trials) {
  ReliabilityResult r;
  r.trials = trials;
  r.requested_trials = trials;
  r.failures = failures;
  if (trials == 0) return r;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(failures) / n;
  r.delta_hat = p;
  constexpr double z = 1.959963984540054;  // 97.5th percentile of N(0,1)
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  r.ci_low = std::max(0.0, center - half);
  r.ci_high = std::min(1.0, center + half);
  return r;
}

void validate_reliability_inputs(const Circuit& noisy, const Circuit& golden,
                                 const ReliabilityOptions& options) {
  if (noisy.num_inputs() != golden.num_inputs() ||
      noisy.num_outputs() != golden.num_outputs()) {
    throw std::invalid_argument(
        "estimate_reliability_vs: interface mismatch between noisy and "
        "golden circuits");
  }
  if (options.trials == 0) {
    throw std::invalid_argument("estimate_reliability: trials must be > 0");
  }
}

exec::ShardPlan reliability_shard_plan(const ReliabilityOptions& options) {
  const std::uint64_t passes = (options.trials + kWordBits - 1) / kWordBits;
  return exec::ShardPlan(static_cast<std::size_t>(passes),
                         static_cast<std::size_t>(options.shard_passes));
}

std::uint64_t reliability_shard_failures(const Circuit& noisy,
                                         const Circuit& golden, double epsilon,
                                         const ReliabilityOptions& options,
                                         const exec::Shard& shard) {
  Xoshiro256 rng(exec::stream_seed(options.seed, shard.index));
  NoisySim noisy_sim(noisy, epsilon, rng.next());
  LogicSim golden_sim(golden);
  std::vector<Word> inputs(noisy.num_inputs());

  std::uint64_t failures = 0;
  for (std::size_t pass = shard.begin; pass < shard.end; ++pass) {
    for (Word& w : inputs) {
      w = options.input_one_probability == 0.5
              ? rng.next()
              : bernoulli_word(rng, options.input_one_probability);
    }
    noisy_sim.eval(inputs);
    golden_sim.eval(inputs);
    Word wrong = 0;
    for (std::size_t o = 0; o < noisy.num_outputs(); ++o) {
      wrong |= noisy_sim.value(noisy.outputs()[o]) ^
               golden_sim.value(golden.outputs()[o]);
    }
    failures += static_cast<std::uint64_t>(popcount(wrong));
  }
  return failures;
}

ReliabilityResult estimate_reliability_vs(const Circuit& noisy,
                                          const Circuit& golden,
                                          double epsilon,
                                          const ReliabilityOptions& options,
                                          exec::Parallelism how) {
  validate_reliability_inputs(noisy, golden, options);

  // Sharded over word passes: shard i's inputs and fault injections derive
  // from the counter-based stream of (seed, i), and failures combine through
  // an order-insensitive integer sum — bit-identical for any thread count.
  const exec::ShardPlan plan = reliability_shard_plan(options);
  std::atomic<std::uint64_t> failures{0};
  exec::for_each_shard(
      plan,
      [&](const exec::Shard& shard) {
        failures.fetch_add(
            reliability_shard_failures(noisy, golden, epsilon, options, shard),
            std::memory_order_relaxed);
      },
      how);
  ReliabilityResult result =
      wilson_interval(failures.load(), plan.total() * kWordBits);
  result.requested_trials = options.trials;
  return result;
}

ReliabilityResult estimate_reliability_vs(const Circuit& noisy,
                                          const Circuit& golden,
                                          double epsilon,
                                          const ReliabilityOptions& options) {
  const exec::Parallelism how{options.threads};
  return estimate_reliability_vs(noisy, golden, epsilon, options, how);
}

ReliabilityResult estimate_reliability(const Circuit& circuit, double epsilon,
                                       const ReliabilityOptions& options,
                                       exec::Parallelism how) {
  return estimate_reliability_vs(circuit, circuit, epsilon, options, how);
}

ReliabilityResult estimate_reliability(const Circuit& circuit, double epsilon,
                                       const ReliabilityOptions& options) {
  const exec::Parallelism how{options.threads};
  return estimate_reliability_vs(circuit, circuit, epsilon, options, how);
}

void validate_worst_case_inputs(const Circuit& noisy, const Circuit& golden,
                                const WorstCaseOptions& options) {
  if (noisy.num_inputs() != golden.num_inputs() ||
      noisy.num_outputs() != golden.num_outputs()) {
    throw std::invalid_argument(
        "estimate_worst_case_reliability: interface mismatch");
  }
  if (options.num_inputs == 0 || options.trials_per_input == 0) {
    throw std::invalid_argument(
        "estimate_worst_case_reliability: counts must be > 0");
  }
}

std::uint64_t worst_case_sample_failures(const Circuit& noisy,
                                         const Circuit& golden, double epsilon,
                                         const WorstCaseOptions& options,
                                         std::size_t sample) {
  std::vector<Word> inputs(noisy.num_inputs());
  const std::uint64_t noise_seed =
      worst_case_sample_assignment(noisy, options, sample, &inputs).second;
  NoisySim noisy_sim(noisy, epsilon, noise_seed);
  LogicSim golden_sim(golden);
  golden_sim.eval(inputs);
  std::uint64_t failures = 0;
  const std::uint64_t passes = worst_case_passes(options);
  for (std::uint64_t pass = 0; pass < passes; ++pass) {
    noisy_sim.eval(inputs);
    Word wrong = 0;
    for (std::size_t o = 0; o < noisy.num_outputs(); ++o) {
      wrong |= noisy_sim.value(noisy.outputs()[o]) ^
               golden_sim.value(golden.outputs()[o]);
    }
    failures += static_cast<std::uint64_t>(popcount(wrong));
  }
  return failures;
}

WorstCaseResult finalize_worst_case(
    const Circuit& noisy, const WorstCaseOptions& options,
    const std::vector<std::uint64_t>& sample_failures) {
  const std::uint64_t executed = worst_case_passes(options) * kWordBits;
  WorstCaseResult result;
  std::uint64_t worst_failures = 0;
  std::size_t worst_sample = 0;
  double delta_sum = 0.0;
  for (std::size_t sample = 0; sample < sample_failures.size(); ++sample) {
    delta_sum += static_cast<double>(sample_failures[sample]) /
                 static_cast<double>(executed);
    if (sample_failures[sample] >= worst_failures) {
      worst_failures = sample_failures[sample];
      worst_sample = sample;
    }
  }
  result.worst_input =
      worst_case_sample_assignment(noisy, options, worst_sample, nullptr)
          .first;
  result.worst = wilson_interval(worst_failures, executed);
  result.worst.requested_trials = options.trials_per_input;
  result.average_delta = delta_sum / static_cast<double>(options.num_inputs);
  return result;
}

WorstCaseResult estimate_worst_case_reliability(
    const Circuit& noisy, const Circuit& golden, double epsilon,
    const WorstCaseOptions& options, exec::Parallelism how) {
  validate_worst_case_inputs(noisy, golden, options);

  // Every sampled input is an independent experiment with its own
  // counter-based stream, so samples parallelize freely; the per-sample
  // failure counts land in slots indexed by sample and the argmax/average
  // reduction runs serially in sample order — the result cannot depend on
  // the thread count.
  const std::size_t num_samples =
      static_cast<std::size_t>(options.num_inputs);
  std::vector<std::uint64_t> sample_failures(num_samples, 0);
  exec::for_each_index(
      num_samples,
      [&](std::size_t sample) {
        sample_failures[sample] =
            worst_case_sample_failures(noisy, golden, epsilon, options, sample);
      },
      how);
  return finalize_worst_case(noisy, options, sample_failures);
}

WorstCaseResult estimate_worst_case_reliability(
    const Circuit& noisy, const Circuit& golden, double epsilon,
    const WorstCaseOptions& options) {
  const exec::Parallelism how{options.threads};
  return estimate_worst_case_reliability(noisy, golden, epsilon, options, how);
}

}  // namespace enb::sim
