#include "sim/reliability.hpp"

#include <cmath>
#include <stdexcept>

#include "sim/logic_sim.hpp"
#include "sim/noise.hpp"
#include "sim/prng.hpp"

namespace enb::sim {

using netlist::Circuit;

ReliabilityResult wilson_interval(std::uint64_t failures,
                                  std::uint64_t trials) {
  ReliabilityResult r;
  r.trials = trials;
  r.failures = failures;
  if (trials == 0) return r;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(failures) / n;
  r.delta_hat = p;
  constexpr double z = 1.959963984540054;  // 97.5th percentile of N(0,1)
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  r.ci_low = std::max(0.0, center - half);
  r.ci_high = std::min(1.0, center + half);
  return r;
}

ReliabilityResult estimate_reliability_vs(const Circuit& noisy,
                                          const Circuit& golden,
                                          double epsilon,
                                          const ReliabilityOptions& options) {
  if (noisy.num_inputs() != golden.num_inputs() ||
      noisy.num_outputs() != golden.num_outputs()) {
    throw std::invalid_argument(
        "estimate_reliability_vs: interface mismatch between noisy and "
        "golden circuits");
  }
  if (options.trials == 0) {
    throw std::invalid_argument("estimate_reliability: trials must be > 0");
  }
  const std::uint64_t passes = (options.trials + kWordBits - 1) / kWordBits;

  Xoshiro256 rng(options.seed);
  NoisySim noisy_sim(noisy, epsilon, rng.next());
  LogicSim golden_sim(golden);
  std::vector<Word> inputs(noisy.num_inputs());

  std::uint64_t failures = 0;
  for (std::uint64_t pass = 0; pass < passes; ++pass) {
    for (Word& w : inputs) {
      w = options.input_one_probability == 0.5
              ? rng.next()
              : bernoulli_word(rng, options.input_one_probability);
    }
    noisy_sim.eval(inputs);
    golden_sim.eval(inputs);
    Word wrong = 0;
    for (std::size_t o = 0; o < noisy.num_outputs(); ++o) {
      wrong |= noisy_sim.value(noisy.outputs()[o]) ^
               golden_sim.value(golden.outputs()[o]);
    }
    failures += static_cast<std::uint64_t>(popcount(wrong));
  }
  return wilson_interval(failures, passes * kWordBits);
}

ReliabilityResult estimate_reliability(const Circuit& circuit, double epsilon,
                                       const ReliabilityOptions& options) {
  return estimate_reliability_vs(circuit, circuit, epsilon, options);
}

WorstCaseResult estimate_worst_case_reliability(
    const Circuit& noisy, const Circuit& golden, double epsilon,
    const WorstCaseOptions& options) {
  if (noisy.num_inputs() != golden.num_inputs() ||
      noisy.num_outputs() != golden.num_outputs()) {
    throw std::invalid_argument(
        "estimate_worst_case_reliability: interface mismatch");
  }
  if (options.num_inputs == 0 || options.trials_per_input == 0) {
    throw std::invalid_argument(
        "estimate_worst_case_reliability: counts must be > 0");
  }
  const std::uint64_t passes =
      (options.trials_per_input + kWordBits - 1) / kWordBits;

  Xoshiro256 rng(options.seed);
  NoisySim noisy_sim(noisy, epsilon, rng.next());
  LogicSim golden_sim(golden);
  std::vector<Word> inputs(noisy.num_inputs());

  WorstCaseResult result;
  std::uint64_t worst_failures = 0;
  double delta_sum = 0.0;
  std::vector<bool> current(noisy.num_inputs());

  for (std::uint64_t sample = 0; sample < options.num_inputs; ++sample) {
    // One fixed assignment, broadcast to all lanes: every lane is an
    // independent noise draw for the *same* input.
    for (std::size_t i = 0; i < current.size(); ++i) {
      current[i] = (rng.next() & 1U) != 0;
      inputs[i] = current[i] ? kAllOnes : 0;
    }
    golden_sim.eval(inputs);
    std::uint64_t failures = 0;
    for (std::uint64_t pass = 0; pass < passes; ++pass) {
      noisy_sim.eval(inputs);
      Word wrong = 0;
      for (std::size_t o = 0; o < noisy.num_outputs(); ++o) {
        wrong |= noisy_sim.value(noisy.outputs()[o]) ^
                 golden_sim.value(golden.outputs()[o]);
      }
      failures += static_cast<std::uint64_t>(popcount(wrong));
    }
    const double delta =
        static_cast<double>(failures) /
        static_cast<double>(passes * kWordBits);
    delta_sum += delta;
    if (failures >= worst_failures) {
      worst_failures = failures;
      result.worst_input = current;
    }
  }
  result.worst = wilson_interval(worst_failures, passes * kWordBits);
  result.average_delta = delta_sum / static_cast<double>(options.num_inputs);
  return result;
}

}  // namespace enb::sim
