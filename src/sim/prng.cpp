#include "sim/prng.hpp"

#include <cmath>

namespace enb::sim {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256::next_real() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Rejection sampling on the top of the range to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return draw % bound;
}

bool Xoshiro256::bernoulli(double p) noexcept { return next_real() < p; }

std::uint64_t bernoulli_word(Xoshiro256& rng, double p,
                             int precision_bits) noexcept {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return ~std::uint64_t{0};
  if (precision_bits < 1) precision_bits = 1;
  if (precision_bits > 62) precision_bits = 62;
  // Quantize p to q / 2^precision_bits, rounding to nearest.
  const double scaled = std::ldexp(p, precision_bits);
  auto q = static_cast<std::uint64_t>(std::llround(scaled));
  if (q == 0) q = 1;  // keep p > 0 effective
  const std::uint64_t full = std::uint64_t{1} << precision_bits;
  if (q >= full) q = full - 1;
  // Binary expansion: process bits of q LSB-first. acc starts at "probability
  // 0"; OR-ing with a fresh uniform word where the bit is 1, AND-ing where it
  // is 0, yields P(bit set) == q / 2^precision_bits exactly.
  std::uint64_t acc = 0;
  for (int i = 0; i < precision_bits; ++i) {
    const std::uint64_t r = rng.next();
    acc = ((q >> i) & 1U) != 0 ? (acc | r) : (acc & r);
  }
  return acc;
}

}  // namespace enb::sim
