#include "sim/exhaustive.hpp"

#include <stdexcept>
#include <string>

#include "sim/logic_sim.hpp"
#include "sim/prng.hpp"

namespace enb::sim {

using netlist::Circuit;

Word exhaustive_pattern(int input_index) {
  switch (input_index) {
    case 0:
      return 0xAAAAAAAAAAAAAAAAULL;
    case 1:
      return 0xCCCCCCCCCCCCCCCCULL;
    case 2:
      return 0xF0F0F0F0F0F0F0F0ULL;
    case 3:
      return 0xFF00FF00FF00FF00ULL;
    case 4:
      return 0xFFFF0000FFFF0000ULL;
    case 5:
      return 0xFFFFFFFF00000000ULL;
    default:
      throw std::invalid_argument(
          "exhaustive_pattern: input index " + std::to_string(input_index) +
          " outside the within-word range [0, 6); inputs >= 6 are selected "
          "by block, not by pattern");
  }
}

std::uint64_t exhaustive_block_count(int num_inputs) {
  if (num_inputs < 0 || num_inputs > kMaxExhaustiveInputs) {
    throw std::invalid_argument("exhaustive: " + std::to_string(num_inputs) +
                                " inputs out of supported range [0, " +
                                std::to_string(kMaxExhaustiveInputs) + "]");
  }
  if (num_inputs <= 6) return 1;
  return std::uint64_t{1} << (num_inputs - 6);
}

void fill_exhaustive_block(int num_inputs, std::uint64_t block,
                           std::vector<Word>& words) {
  words.resize(static_cast<std::size_t>(num_inputs));
  for (int i = 0; i < num_inputs && i < 6; ++i) {
    words[static_cast<std::size_t>(i)] = exhaustive_pattern(i);
  }
  for (int i = 6; i < num_inputs; ++i) {
    const bool on = ((block >> (i - 6)) & 1U) != 0;
    words[static_cast<std::size_t>(i)] = on ? kAllOnes : 0;
  }
}

void for_each_exhaustive_block(
    int num_inputs,
    const std::function<void(std::uint64_t, std::span<const Word>, Word)>& fn) {
  const std::uint64_t blocks = exhaustive_block_count(num_inputs);
  const Word valid = exhaustive_valid_mask(num_inputs);
  std::vector<Word> words;
  for (std::uint64_t block = 0; block < blocks; ++block) {
    fill_exhaustive_block(num_inputs, block, words);
    fn(block, words, valid);
  }
}

std::vector<std::vector<Word>> truth_tables(const Circuit& circuit) {
  const int n = static_cast<int>(circuit.num_inputs());
  std::vector<std::vector<Word>> tables(
      circuit.num_outputs(),
      std::vector<Word>(exhaustive_block_count(n), 0));
  LogicSim sim(circuit);
  for_each_exhaustive_block(
      n, [&](std::uint64_t block, std::span<const Word> inputs, Word valid) {
        sim.eval(inputs);
        const auto outs = sim.output_values();
        for (std::size_t o = 0; o < outs.size(); ++o) {
          tables[o][block] = outs[o] & valid;
        }
      });
  return tables;
}

bool exhaustive_equivalent(const Circuit& a, const Circuit& b) {
  if (a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs()) {
    return false;
  }
  return truth_tables(a) == truth_tables(b);
}

bool random_equivalent(const Circuit& a, const Circuit& b,
                       std::uint64_t words, std::uint64_t seed) {
  if (a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs()) {
    return false;
  }
  Xoshiro256 rng(seed);
  LogicSim sim_a(a);
  LogicSim sim_b(b);
  std::vector<Word> inputs(a.num_inputs());
  for (std::uint64_t pass = 0; pass < words; ++pass) {
    for (Word& w : inputs) w = rng.next();
    sim_a.eval(inputs);
    sim_b.eval(inputs);
    for (std::size_t o = 0; o < a.num_outputs(); ++o) {
      if (sim_a.value(a.outputs()[o]) != sim_b.value(b.outputs()[o])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace enb::sim
