// Boolean sensitivity: the `s` parameter of Theorem 2.
//
// The sensitivity of f at assignment x is the number of inputs whose
// individual flip changes the output (for multi-output functions: changes
// any output — equivalently, the sensitivity of the characteristic function,
// which Corollary 1 uses). s(f) = max over x.
//
// Exact computation enumerates all assignments (bit-parallel, n <= 22 by
// default); beyond that, random sampling yields a lower bound — conservative
// in the right direction for a lower-bound theorem. Per-input influences
// P_x[f(x) != f(x ^ e_i)] come out of the same sweep for free.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/circuit.hpp"

namespace enb::sim {

struct SensitivityResult {
  int sensitivity = 0;              // max over evaluated assignments
  bool exact = false;               // true if all 2^n assignments were seen
  std::vector<double> influence;    // per input: P[flip i changes any output]
  double total_influence = 0.0;     // sum of influences (avg sensitivity)
  std::uint64_t assignments = 0;    // number of base assignments evaluated
};

struct SensitivityOptions {
  int max_exact_inputs = 22;        // exhaustive up to this many inputs
  std::uint64_t sample_words = 256; // 64 base assignments per word when sampling
  std::uint64_t seed = 3;
  // Parallel execution. Sampled sweeps shard `sample_words` into groups of
  // `shard_words` with per-shard counter-based streams; exact sweeps shard
  // the truth-table blocks. Influence counts merge by sum and sensitivity by
  // max, so results are thread-count independent (threads: 0 = global pool,
  // 1 = serial, N = dedicated pool).
  std::uint64_t shard_words = 32;
  unsigned threads = 0;
};

[[nodiscard]] SensitivityResult compute_sensitivity(
    const netlist::Circuit& circuit, const SensitivityOptions& options = {});

}  // namespace enb::sim
