// Boolean sensitivity: the `s` parameter of Theorem 2.
//
// The sensitivity of f at assignment x is the number of inputs whose
// individual flip changes the output (for multi-output functions: changes
// any output — equivalently, the sensitivity of the characteristic function,
// which Corollary 1 uses). s(f) = max over x.
//
// Exact computation enumerates all assignments (bit-parallel, n <= 22 by
// default); beyond that, random sampling yields a lower bound — conservative
// in the right direction for a lower-bound theorem. Per-input influences
// P_x[f(x) != f(x ^ e_i)] come out of the same sweep for free.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/stream.hpp"
#include "exec/thread_pool.hpp"
#include "netlist/circuit.hpp"

namespace enb::sim {

struct SensitivityResult {
  int sensitivity = 0;              // max over evaluated assignments
  bool exact = false;               // true if all 2^n assignments were seen
  std::vector<double> influence;    // per input: P[flip i changes any output]
  double total_influence = 0.0;     // sum of influences (avg sensitivity)
  std::uint64_t assignments = 0;    // number of base assignments evaluated
};

struct SensitivityOptions {
  int max_exact_inputs = 22;        // exhaustive up to this many inputs
  std::uint64_t sample_words = 256; // 64 base assignments per word when sampling
  std::uint64_t seed = 3;
  // Parallel execution. Sampled sweeps shard `sample_words` into groups of
  // `shard_words` with per-shard counter-based streams; exact sweeps shard
  // the truth-table blocks. Influence counts merge by sum and sensitivity by
  // max, so results are thread-count independent.
  std::uint64_t shard_words = 32;
  // Deprecated dual knob: only the compute_sensitivity overload without an
  // exec::Parallelism parameter still honours it.
  unsigned threads = 0;
};

[[nodiscard]] SensitivityResult compute_sensitivity(
    const netlist::Circuit& circuit, const SensitivityOptions& options,
    exec::Parallelism how);

// Deprecated-knob form: honours options.threads.
[[nodiscard]] SensitivityResult compute_sensitivity(
    const netlist::Circuit& circuit, const SensitivityOptions& options = {});

// ---- shard-level building blocks -----------------------------------------
//
// compute_sensitivity decomposes into independent shard tasks (exhaustive
// block ranges when exact, sampled word ranges otherwise); the batch engine
// (exec/batch.hpp) schedules the same tasks interleaved with other jobs'
// shards, so a batched sensitivity job is bit-identical to a direct call by
// construction.

// Accumulators of one or more shards; influence and lane totals merge by
// sum, sensitivity by max.
struct SensitivityCounts {
  std::vector<std::uint64_t> influence_counts;  // per input
  int sensitivity = 0;
  std::uint64_t lane_total = 0;
  explicit SensitivityCounts(std::size_t num_inputs)
      : influence_counts(num_inputs, 0) {}
  void merge(const SensitivityCounts& other);
};

// True when `options` selects the exhaustive (exact) sweep for `circuit`.
[[nodiscard]] bool sensitivity_is_exact(const netlist::Circuit& circuit,
                                        const SensitivityOptions& options);

// Throws std::invalid_argument when the sampled sweep is selected with a
// zero sample budget (which would otherwise divide 0/0 into NaN influence).
void validate_sensitivity_inputs(const netlist::Circuit& circuit,
                                 const SensitivityOptions& options);

// The shard decomposition implied by `options`: exhaustive blocks (exact) or
// sample words (sampled), in groups of shard_words. Degenerate circuits
// (no inputs or no outputs) get an empty plan.
[[nodiscard]] exec::ShardPlan sensitivity_shard_plan(
    const netlist::Circuit& circuit, const SensitivityOptions& options);

// Counts contributed by one shard of the plan; deterministic for exact
// sweeps, a pure function of (options.seed, shard.index) for sampled ones.
[[nodiscard]] SensitivityCounts sensitivity_shard_counts(
    const netlist::Circuit& circuit, const SensitivityOptions& options,
    const exec::Shard& shard);

// Turns merged counts into the estimator's result; handles the degenerate
// no-inputs/no-outputs case exactly like compute_sensitivity.
[[nodiscard]] SensitivityResult finalize_sensitivity(
    const netlist::Circuit& circuit, const SensitivityOptions& options,
    const SensitivityCounts& counts);

}  // namespace enb::sim
