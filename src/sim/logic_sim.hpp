// 64-way bit-parallel logic simulator.
//
// One eval() pass computes 64 independent evaluations (one per bit lane) of
// every node in the circuit; node-id order is topological by construction,
// so evaluation is a single linear sweep.
#pragma once

#include <span>
#include <vector>

#include "netlist/circuit.hpp"
#include "sim/bitpack.hpp"

namespace enb::sim {

class LogicSim {
 public:
  explicit LogicSim(const netlist::Circuit& circuit);

  // Evaluates all nodes for the given primary-input words (one word per
  // input, in circuit input order). Throws std::invalid_argument on a size
  // mismatch.
  void eval(std::span<const Word> input_words);

  [[nodiscard]] Word value(netlist::NodeId id) const { return values_.at(id); }
  [[nodiscard]] std::span<const Word> values() const noexcept { return values_; }

  // Values of the primary outputs, in output order.
  [[nodiscard]] std::vector<Word> output_values() const;

  [[nodiscard]] const netlist::Circuit& circuit() const noexcept {
    return *circuit_;
  }

 private:
  const netlist::Circuit* circuit_;
  std::vector<Word> values_;
  std::vector<Word> fanin_buffer_;
};

// Single-vector convenience: evaluates `circuit` on one boolean assignment
// and returns the output bits.
[[nodiscard]] std::vector<bool> eval_single(const netlist::Circuit& circuit,
                                            const std::vector<bool>& inputs);

}  // namespace enb::sim
