#include "sim/sensitivity.hpp"

#include <algorithm>
#include <mutex>

#include "exec/thread_pool.hpp"
#include "sim/bitpack.hpp"
#include "sim/exhaustive.hpp"
#include "sim/logic_sim.hpp"
#include "sim/prng.hpp"

namespace enb::sim {

using netlist::Circuit;

namespace {

// OR over outputs of (f(x) != f(x ^ e_i)), lane-parallel. Flipping input i in
// every lane is simply complementing its input word, regardless of how lanes
// map to assignments.
Word flip_difference(LogicSim& sim, std::vector<Word>& inputs,
                     std::span<const Word> base_outputs, std::size_t i,
                     const Circuit& circuit) {
  inputs[i] = ~inputs[i];
  sim.eval(inputs);
  inputs[i] = ~inputs[i];
  Word diff = 0;
  for (std::size_t o = 0; o < circuit.num_outputs(); ++o) {
    diff |= sim.value(circuit.outputs()[o]) ^ base_outputs[o];
  }
  return diff;
}

bool degenerate(const Circuit& circuit) {
  return circuit.num_inputs() == 0 || circuit.num_outputs() == 0;
}

// Per-shard worker state: its own simulator, buffers and accumulators.
struct ShardState {
  LogicSim sim;
  std::vector<Word> inputs;
  std::vector<Word> base_outputs;
  SensitivityCounts counts;
  LaneCounter counter;

  ShardState(const Circuit& circuit, int n)
      : sim(circuit),
        inputs(static_cast<std::size_t>(n)),
        base_outputs(circuit.num_outputs()),
        counts(static_cast<std::size_t>(n)),
        counter(n) {}
};

void process_block(const Circuit& circuit, ShardState& state, Word valid) {
  state.sim.eval(state.inputs);
  for (std::size_t o = 0; o < circuit.num_outputs(); ++o) {
    state.base_outputs[o] = state.sim.value(circuit.outputs()[o]);
  }
  state.counter.reset();
  for (std::size_t i = 0; i < state.inputs.size(); ++i) {
    const Word diff = flip_difference(state.sim, state.inputs,
                                      state.base_outputs, i, circuit) &
                      valid;
    state.counts.influence_counts[i] +=
        static_cast<std::uint64_t>(popcount(diff));
    state.counter.add(diff);
  }
  state.counts.sensitivity =
      std::max(state.counts.sensitivity, state.counter.max_lane(valid));
  state.counts.lane_total += static_cast<std::uint64_t>(popcount(valid));
}

}  // namespace

void SensitivityCounts::merge(const SensitivityCounts& other) {
  for (std::size_t i = 0; i < influence_counts.size(); ++i) {
    influence_counts[i] += other.influence_counts[i];
  }
  sensitivity = std::max(sensitivity, other.sensitivity);
  lane_total += other.lane_total;
}

bool sensitivity_is_exact(const Circuit& circuit,
                          const SensitivityOptions& options) {
  const int n = static_cast<int>(circuit.num_inputs());
  return degenerate(circuit) ||
         (n <= options.max_exact_inputs && n <= kMaxExhaustiveInputs);
}

void validate_sensitivity_inputs(const Circuit& circuit,
                                 const SensitivityOptions& options) {
  if (!sensitivity_is_exact(circuit, options) && options.sample_words == 0) {
    throw std::invalid_argument(
        "compute_sensitivity: sample_words must be > 0 for the sampled sweep");
  }
}

exec::ShardPlan sensitivity_shard_plan(const Circuit& circuit,
                                       const SensitivityOptions& options) {
  if (degenerate(circuit)) return exec::ShardPlan(0, 1);
  const int n = static_cast<int>(circuit.num_inputs());
  const std::size_t total =
      sensitivity_is_exact(circuit, options)
          ? static_cast<std::size_t>(exhaustive_block_count(n))
          : static_cast<std::size_t>(options.sample_words);
  return exec::ShardPlan(total, static_cast<std::size_t>(options.shard_words));
}

SensitivityCounts sensitivity_shard_counts(const Circuit& circuit,
                                           const SensitivityOptions& options,
                                           const exec::Shard& shard) {
  const int n = static_cast<int>(circuit.num_inputs());
  ShardState state(circuit, n);
  if (sensitivity_is_exact(circuit, options)) {
    // Blocks are pure functions of their index, so the exhaustive sweep
    // shards over block ranges with no randomness involved.
    const Word valid = exhaustive_valid_mask(n);
    for (std::size_t block = shard.begin; block < shard.end; ++block) {
      fill_exhaustive_block(n, static_cast<std::uint64_t>(block),
                            state.inputs);
      process_block(circuit, state, valid);
    }
  } else {
    Xoshiro256 rng(exec::stream_seed(options.seed, shard.index));
    for (std::size_t pass = shard.begin; pass < shard.end; ++pass) {
      for (Word& w : state.inputs) w = rng.next();
      process_block(circuit, state, kAllOnes);
    }
  }
  return std::move(state.counts);
}

SensitivityResult finalize_sensitivity(const Circuit& circuit,
                                       const SensitivityOptions& options,
                                       const SensitivityCounts& counts) {
  const std::size_t n = circuit.num_inputs();
  SensitivityResult result;
  result.influence.assign(n, 0.0);
  if (degenerate(circuit)) {
    result.exact = true;
    result.assignments = 1;
    return result;
  }
  result.exact = sensitivity_is_exact(circuit, options);
  result.sensitivity = counts.sensitivity;
  result.assignments = counts.lane_total;
  for (std::size_t i = 0; i < n; ++i) {
    result.influence[i] = static_cast<double>(counts.influence_counts[i]) /
                          static_cast<double>(counts.lane_total);
    result.total_influence += result.influence[i];
  }
  return result;
}

SensitivityResult compute_sensitivity(const Circuit& circuit,
                                      const SensitivityOptions& options,
                                      exec::Parallelism how) {
  validate_sensitivity_inputs(circuit, options);
  const std::size_t n = circuit.num_inputs();
  SensitivityCounts totals(n);
  if (!degenerate(circuit)) {
    // Shards merge by sum (influence, lane totals) and max (sensitivity), so
    // the sweep is thread-count independent for both the exact enumeration
    // (no randomness at all) and the sampled one (counter-based streams).
    const exec::ShardPlan plan = sensitivity_shard_plan(circuit, options);
    std::mutex merge_mutex;
    exec::for_each_shard(
        plan,
        [&](const exec::Shard& shard) {
          const SensitivityCounts local =
              sensitivity_shard_counts(circuit, options, shard);
          const std::lock_guard<std::mutex> lock(merge_mutex);
          totals.merge(local);
        },
        how);
  }
  return finalize_sensitivity(circuit, options, totals);
}

SensitivityResult compute_sensitivity(const Circuit& circuit,
                                      const SensitivityOptions& options) {
  const exec::Parallelism how{options.threads};
  return compute_sensitivity(circuit, options, how);
}

}  // namespace enb::sim
