#include "sim/sensitivity.hpp"

#include <algorithm>
#include <mutex>

#include "exec/stream.hpp"
#include "exec/thread_pool.hpp"
#include "sim/bitpack.hpp"
#include "sim/exhaustive.hpp"
#include "sim/logic_sim.hpp"
#include "sim/prng.hpp"

namespace enb::sim {

using netlist::Circuit;

namespace {

// OR over outputs of (f(x) != f(x ^ e_i)), lane-parallel. Flipping input i in
// every lane is simply complementing its input word, regardless of how lanes
// map to assignments.
Word flip_difference(LogicSim& sim, std::vector<Word>& inputs,
                     std::span<const Word> base_outputs, std::size_t i,
                     const Circuit& circuit) {
  inputs[i] = ~inputs[i];
  sim.eval(inputs);
  inputs[i] = ~inputs[i];
  Word diff = 0;
  for (std::size_t o = 0; o < circuit.num_outputs(); ++o) {
    diff |= sim.value(circuit.outputs()[o]) ^ base_outputs[o];
  }
  return diff;
}

}  // namespace

SensitivityResult compute_sensitivity(const Circuit& circuit,
                                      const SensitivityOptions& options) {
  const int n = static_cast<int>(circuit.num_inputs());
  SensitivityResult result;
  result.influence.assign(static_cast<std::size_t>(n), 0.0);
  if (n == 0 || circuit.num_outputs() == 0) {
    result.exact = true;
    result.assignments = 1;
    return result;
  }

  const bool exact = n <= options.max_exact_inputs &&
                     n <= kMaxExhaustiveInputs;
  std::vector<std::uint64_t> influence_counts(static_cast<std::size_t>(n), 0);
  std::uint64_t lane_total = 0;
  std::mutex merge_mutex;

  // Per-shard worker state: its own simulator, buffers and accumulators.
  // Shards merge by sum (influence, lane totals) and max (sensitivity), so
  // the sweep is thread-count independent for both the exact enumeration
  // (no randomness at all) and the sampled one (counter-based streams).
  struct ShardState {
    LogicSim sim;
    std::vector<Word> inputs;
    std::vector<Word> base_outputs;
    std::vector<std::uint64_t> influence_counts;
    LaneCounter counter;
    int sensitivity = 0;
    std::uint64_t lane_total = 0;

    ShardState(const Circuit& circuit, int n)
        : sim(circuit),
          inputs(static_cast<std::size_t>(n)),
          base_outputs(circuit.num_outputs()),
          influence_counts(static_cast<std::size_t>(n), 0),
          counter(n) {}
  };

  const auto process_block = [&](ShardState& state, Word valid) {
    state.sim.eval(state.inputs);
    for (std::size_t o = 0; o < circuit.num_outputs(); ++o) {
      state.base_outputs[o] = state.sim.value(circuit.outputs()[o]);
    }
    state.counter.reset();
    for (std::size_t i = 0; i < state.inputs.size(); ++i) {
      const Word diff = flip_difference(state.sim, state.inputs,
                                        state.base_outputs, i, circuit) &
                        valid;
      state.influence_counts[i] += static_cast<std::uint64_t>(popcount(diff));
      state.counter.add(diff);
    }
    state.sensitivity =
        std::max(state.sensitivity, state.counter.max_lane(valid));
    state.lane_total += static_cast<std::uint64_t>(popcount(valid));
  };

  const auto merge_shard = [&](const ShardState& state) {
    const std::lock_guard<std::mutex> lock(merge_mutex);
    for (std::size_t i = 0; i < influence_counts.size(); ++i) {
      influence_counts[i] += state.influence_counts[i];
    }
    result.sensitivity = std::max(result.sensitivity, state.sensitivity);
    lane_total += state.lane_total;
  };

  if (exact) {
    // Blocks are pure functions of their index, so the exhaustive sweep
    // shards over block ranges with no randomness involved.
    const std::uint64_t blocks = exhaustive_block_count(n);
    const exec::ShardPlan plan(static_cast<std::size_t>(blocks),
                               static_cast<std::size_t>(options.shard_words));
    exec::for_each_shard(
        plan,
        [&](const exec::Shard& shard) {
          ShardState state(circuit, n);
          const Word valid = exhaustive_valid_mask(n);
          for (std::size_t block = shard.begin; block < shard.end; ++block) {
            fill_exhaustive_block(n, static_cast<std::uint64_t>(block),
                                  state.inputs);
            process_block(state, valid);
          }
          merge_shard(state);
        },
        exec::ExecPolicy{options.threads});
    result.exact = true;
  } else {
    const exec::ShardPlan plan(
        static_cast<std::size_t>(options.sample_words),
        static_cast<std::size_t>(options.shard_words));
    exec::for_each_shard(
        plan,
        [&](const exec::Shard& shard) {
          ShardState state(circuit, n);
          Xoshiro256 rng(exec::stream_seed(options.seed, shard.index));
          for (std::size_t pass = shard.begin; pass < shard.end; ++pass) {
            for (Word& w : state.inputs) w = rng.next();
            process_block(state, kAllOnes);
          }
          merge_shard(state);
        },
        exec::ExecPolicy{options.threads});
    result.exact = false;
  }

  result.assignments = lane_total;
  for (std::size_t i = 0; i < influence_counts.size(); ++i) {
    result.influence[i] = static_cast<double>(influence_counts[i]) /
                          static_cast<double>(lane_total);
    result.total_influence += result.influence[i];
  }
  return result;
}

}  // namespace enb::sim
