#include "sim/sensitivity.hpp"

#include <algorithm>

#include "sim/bitpack.hpp"
#include "sim/exhaustive.hpp"
#include "sim/logic_sim.hpp"
#include "sim/prng.hpp"

namespace enb::sim {

using netlist::Circuit;

namespace {

// OR over outputs of (f(x) != f(x ^ e_i)), lane-parallel. Flipping input i in
// every lane is simply complementing its input word, regardless of how lanes
// map to assignments.
Word flip_difference(LogicSim& sim, std::vector<Word>& inputs,
                     std::span<const Word> base_outputs, std::size_t i,
                     const Circuit& circuit) {
  inputs[i] = ~inputs[i];
  sim.eval(inputs);
  inputs[i] = ~inputs[i];
  Word diff = 0;
  for (std::size_t o = 0; o < circuit.num_outputs(); ++o) {
    diff |= sim.value(circuit.outputs()[o]) ^ base_outputs[o];
  }
  return diff;
}

}  // namespace

SensitivityResult compute_sensitivity(const Circuit& circuit,
                                      const SensitivityOptions& options) {
  const int n = static_cast<int>(circuit.num_inputs());
  SensitivityResult result;
  result.influence.assign(static_cast<std::size_t>(n), 0.0);
  if (n == 0 || circuit.num_outputs() == 0) {
    result.exact = true;
    result.assignments = 1;
    return result;
  }

  const bool exact = n <= options.max_exact_inputs &&
                     n <= kMaxExhaustiveInputs;
  LogicSim sim(circuit);
  std::vector<Word> inputs(static_cast<std::size_t>(n));
  std::vector<Word> base_outputs(circuit.num_outputs());
  std::vector<std::uint64_t> influence_counts(static_cast<std::size_t>(n), 0);
  LaneCounter counter(n);
  Xoshiro256 rng(options.seed);

  std::uint64_t lane_total = 0;
  const auto process_block = [&](Word valid) {
    sim.eval(inputs);
    for (std::size_t o = 0; o < circuit.num_outputs(); ++o) {
      base_outputs[o] = sim.value(circuit.outputs()[o]);
    }
    counter.reset();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const Word diff =
          flip_difference(sim, inputs, base_outputs, i, circuit) & valid;
      influence_counts[i] += static_cast<std::uint64_t>(popcount(diff));
      counter.add(diff);
    }
    result.sensitivity = std::max(result.sensitivity, counter.max_lane(valid));
    lane_total += static_cast<std::uint64_t>(popcount(valid));
  };

  if (exact) {
    for_each_exhaustive_block(
        n, [&](std::uint64_t, std::span<const Word> block_inputs, Word valid) {
          std::copy(block_inputs.begin(), block_inputs.end(), inputs.begin());
          process_block(valid);
        });
    result.exact = true;
  } else {
    for (std::uint64_t wordpass = 0; wordpass < options.sample_words;
         ++wordpass) {
      for (Word& w : inputs) w = rng.next();
      process_block(kAllOnes);
    }
    result.exact = false;
  }

  result.assignments = lane_total;
  for (std::size_t i = 0; i < influence_counts.size(); ++i) {
    result.influence[i] = static_cast<double>(influence_counts[i]) /
                          static_cast<double>(lane_total);
    result.total_influence += result.influence[i];
  }
  return result;
}

}  // namespace enb::sim
