#include "sim/activity.hpp"

#include <mutex>
#include <stdexcept>

#include "exec/stream.hpp"
#include "exec/thread_pool.hpp"
#include "sim/exhaustive.hpp"
#include "sim/logic_sim.hpp"
#include "sim/prng.hpp"

namespace enb::sim {

using netlist::Circuit;
using netlist::NodeId;

namespace {

void finalize_gate_averages(const Circuit& circuit, ActivityResult& result) {
  double p_sum = 0.0;
  double sw_sum = 0.0;
  std::size_t gates = 0;
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    if (!counts_as_gate(circuit.type(id))) continue;
    p_sum += result.one_probability[id];
    sw_sum += result.toggle_rate[id];
    ++gates;
  }
  result.avg_gate_one_probability = gates == 0 ? 0.0 : p_sum / static_cast<double>(gates);
  result.avg_gate_toggle_rate = gates == 0 ? 0.0 : sw_sum / static_cast<double>(gates);
}

}  // namespace

void ActivityCounts::merge(const ActivityCounts& other) {
  for (std::size_t id = 0; id < ones.size(); ++id) {
    ones[id] += other.ones[id];
    toggles[id] += other.toggles[id];
  }
}

void validate_activity_inputs(const ActivityOptions& options) {
  if (options.sample_pairs == 0) {
    throw std::invalid_argument("estimate_activity: sample_pairs must be > 0");
  }
}

exec::ShardPlan activity_shard_plan(const ActivityOptions& options) {
  return exec::ShardPlan(options.sample_pairs, options.shard_pairs);
}

ActivityCounts activity_shard_counts(const Circuit& circuit,
                                     const ActivityOptions& options,
                                     const exec::Shard& shard) {
  const std::size_t n = circuit.node_count();
  const double p_in = options.input_one_probability;
  Xoshiro256 rng(exec::stream_seed(options.seed, shard.index));
  LogicSim sim_a(circuit);
  LogicSim sim_b(circuit);
  std::vector<Word> in_a(circuit.num_inputs());
  std::vector<Word> in_b(circuit.num_inputs());
  ActivityCounts counts(n);

  for (std::size_t pair = shard.begin; pair < shard.end; ++pair) {
    for (std::size_t i = 0; i < in_a.size(); ++i) {
      if (p_in == 0.5) {
        in_a[i] = rng.next();
        in_b[i] = rng.next();
      } else {
        in_a[i] = bernoulli_word(rng, p_in);
        in_b[i] = bernoulli_word(rng, p_in);
      }
    }
    sim_a.eval(in_a);
    sim_b.eval(in_b);
    for (std::size_t id = 0; id < n; ++id) {
      const Word a = sim_a.values()[id];
      const Word b = sim_b.values()[id];
      counts.ones[id] += static_cast<std::uint64_t>(popcount(a));
      counts.toggles[id] += static_cast<std::uint64_t>(popcount(a ^ b));
    }
  }
  return counts;
}

ActivityResult finalize_activity(const Circuit& circuit,
                                 const ActivityOptions& options,
                                 const ActivityCounts& counts) {
  const std::size_t n = circuit.node_count();
  const double lanes =
      static_cast<double>(options.sample_pairs) * kWordBits;
  ActivityResult result;
  result.sample_pairs = options.sample_pairs;
  result.one_probability.resize(n);
  result.toggle_rate.resize(n);
  for (std::size_t id = 0; id < n; ++id) {
    result.one_probability[id] = static_cast<double>(counts.ones[id]) / lanes;
    result.toggle_rate[id] = static_cast<double>(counts.toggles[id]) / lanes;
  }
  finalize_gate_averages(circuit, result);
  return result;
}

ActivityResult estimate_activity(const Circuit& circuit,
                                 const ActivityOptions& options,
                                 exec::Parallelism how) {
  validate_activity_inputs(options);

  // Each shard owns a counter-based PRNG stream and local accumulators; the
  // merge is an integer sum, so the totals are independent of the order in
  // which shards finish — bit-exact for any thread count.
  const exec::ShardPlan plan = activity_shard_plan(options);
  ActivityCounts totals(circuit.node_count());
  std::mutex merge_mutex;
  exec::for_each_shard(
      plan,
      [&](const exec::Shard& shard) {
        const ActivityCounts local =
            activity_shard_counts(circuit, options, shard);
        const std::lock_guard<std::mutex> lock(merge_mutex);
        totals.merge(local);
      },
      how);

  return finalize_activity(circuit, options, totals);
}

ActivityResult estimate_activity(const Circuit& circuit,
                                 const ActivityOptions& options) {
  const exec::Parallelism how{options.threads};
  return estimate_activity(circuit, options, how);
}

ActivityResult exact_activity(const Circuit& circuit) {
  const int n = static_cast<int>(circuit.num_inputs());
  const std::uint64_t total = std::uint64_t{1} << n;  // guarded below
  if (n > kMaxExhaustiveInputs) {
    throw std::invalid_argument(
        "exact_activity: too many inputs for exhaustive evaluation");
  }
  std::vector<std::uint64_t> ones(circuit.node_count(), 0);
  LogicSim sim(circuit);
  for_each_exhaustive_block(
      n, [&](std::uint64_t, std::span<const Word> inputs, Word valid) {
        sim.eval(inputs);
        for (std::size_t id = 0; id < circuit.node_count(); ++id) {
          ones[id] += static_cast<std::uint64_t>(
              popcount(sim.values()[id] & valid));
        }
      });

  ActivityResult result;
  result.sample_pairs = 0;  // exact, not sampled
  result.one_probability.resize(circuit.node_count());
  result.toggle_rate.resize(circuit.node_count());
  for (std::size_t id = 0; id < circuit.node_count(); ++id) {
    const double p = static_cast<double>(ones[id]) / static_cast<double>(total);
    result.one_probability[id] = p;
    result.toggle_rate[id] = activity_from_probability(p);
  }
  finalize_gate_averages(circuit, result);
  return result;
}

}  // namespace enb::sim
