// Exhaustive (truth-table) evaluation for circuits with few inputs.
//
// Assignments are enumerated in 64-wide blocks using the standard variable
// patterns: input i < 6 toggles within a word (0xAAAA..., 0xCCCC..., ...),
// input i >= 6 is constant per block, selected by bit (i - 6) of the block
// index. Lane L of block B therefore encodes the assignment with integer
// value B * 64 + L, LSB = input 0.
#pragma once

#include <functional>
#include <vector>

#include "netlist/circuit.hpp"
#include "sim/bitpack.hpp"

namespace enb::sim {

// Maximum input count supported by the exhaustive helpers. 2^26 lanes keeps
// memory and time laptop-scale.
inline constexpr int kMaxExhaustiveInputs = 26;

// The within-word pattern for input i. Throws std::invalid_argument outside
// [0, 6): inputs beyond the within-word range are block-selected (see
// fill_exhaustive_block), and silently returning a constant word here would
// hand callers a plausible-looking but wrong truth table.
[[nodiscard]] Word exhaustive_pattern(int input_index);

// Fills `words` (size n) with the input words for `block` of an n-input
// exhaustive enumeration.
void fill_exhaustive_block(int num_inputs, std::uint64_t block,
                           std::vector<Word>& words);

// Number of 64-lane blocks for n inputs (== max(1, 2^(n-6))).
[[nodiscard]] std::uint64_t exhaustive_block_count(int num_inputs);

// Lane-validity mask of every block of an n-input enumeration: all 64 lanes
// except when num_inputs < 6, where only the low 2^n lanes of the single
// block encode assignments.
[[nodiscard]] inline Word exhaustive_valid_mask(int num_inputs) noexcept {
  return num_inputs >= 6 ? kAllOnes : low_mask(1 << num_inputs);
}

// Calls fn(block_index, input_words) for every block. `valid_lanes` lanes are
// always all-64 valid except when num_inputs < 6, in which case only the low
// 2^num_inputs lanes of the single block are meaningful; the helper hands the
// callee the lane-validity mask.
void for_each_exhaustive_block(
    int num_inputs,
    const std::function<void(std::uint64_t block, std::span<const Word> inputs,
                             Word valid_lanes)>& fn);

// Full truth tables of every primary output, packed 64 assignments per word.
// table[o][b] bit L == output o under assignment b*64+L.
[[nodiscard]] std::vector<std::vector<Word>> truth_tables(
    const netlist::Circuit& circuit);

// True when the two circuits have identical input/output counts and identical
// truth tables (inputs matched by position).
[[nodiscard]] bool exhaustive_equivalent(const netlist::Circuit& a,
                                         const netlist::Circuit& b);

// Randomized equivalence check: `words` passes of 64 random vectors each.
// A false return is definitive; true means "no counterexample found".
[[nodiscard]] bool random_equivalent(const netlist::Circuit& a,
                                     const netlist::Circuit& b,
                                     std::uint64_t words = 256,
                                     std::uint64_t seed = 0xE9B);

}  // namespace enb::sim
