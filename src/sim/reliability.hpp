// Monte-Carlo reliability estimation: the empirical counterpart of the
// paper's δ.
//
// A circuit (1-δ)-reliably computes f when, with probability at least 1-δ,
// the entire output vector is correct. The estimator runs the noisy and the
// golden simulation on the same random inputs (64 independent trials per
// word pass) and reports the failure fraction with a Wilson confidence
// interval.
#pragma once

#include <cstdint>

#include "exec/stream.hpp"
#include "exec/thread_pool.hpp"
#include "netlist/circuit.hpp"
#include "sim/bitpack.hpp"

namespace enb::sim {

struct ReliabilityResult {
  double delta_hat = 0.0;  // estimated P(any output wrong)
  double ci_low = 0.0;     // 95% Wilson interval
  double ci_high = 0.0;
  // The word-parallel simulator executes whole 64-trial passes, so `trials`
  // (the denominator of delta_hat) is the requested count rounded up to a
  // multiple of 64. `requested_trials` echoes what the caller asked for, so
  // downstream consumers (CSV, batch manifests) never mis-normalize failure
  // rates against the wrong denominator.
  std::uint64_t trials = 0;            // executed trials (64-rounded)
  std::uint64_t requested_trials = 0;  // options.trials as requested
  std::uint64_t failures = 0;
};

struct ReliabilityOptions {
  std::uint64_t trials = 1 << 16;  // rounded up to a multiple of 64
  std::uint64_t seed = 7;
  double input_one_probability = 0.5;
  // Parallel execution. The word passes (64 trials each) are split into
  // shards of `shard_passes`; shard i derives all randomness (inputs and its
  // private fault-injection stream) from a counter-based stream of (seed, i),
  // so delta_hat is bit-identical for every thread count.
  std::uint64_t shard_passes = 32;
  // Deprecated dual knob: only the estimator overloads without an
  // exec::Parallelism parameter still honour it.
  unsigned threads = 0;
};

// 95% Wilson score interval for `successes` out of `trials`.
[[nodiscard]] ReliabilityResult wilson_interval(std::uint64_t failures,
                                                std::uint64_t trials);

// ---- shard-level building blocks -----------------------------------------
//
// estimate_reliability_vs decomposes into independent shard tasks; the batch
// engine (exec/batch.hpp) schedules the same tasks interleaved with other
// jobs' shards. Because the estimator is *defined* as the sum of these shard
// bodies, a batched job is bit-identical to a direct estimator call by
// construction.

// Throws std::invalid_argument on interface mismatch or a zero trial budget —
// the validation estimate_reliability_vs applies before sharding.
void validate_reliability_inputs(const netlist::Circuit& noisy,
                                 const netlist::Circuit& golden,
                                 const ReliabilityOptions& options);

// The word-pass decomposition implied by `options`: trials rounded up to
// 64-trial passes, split into shards of `shard_passes`.
[[nodiscard]] exec::ShardPlan reliability_shard_plan(
    const ReliabilityOptions& options);

// Failures contributed by one shard of the plan. A pure function of
// (options.seed, shard.index); callers combine shards by integer sum.
// Precondition: inputs validated (see validate_reliability_inputs).
[[nodiscard]] std::uint64_t reliability_shard_failures(
    const netlist::Circuit& noisy, const netlist::Circuit& golden,
    double epsilon, const ReliabilityOptions& options,
    const exec::Shard& shard);

// Estimates δ for `circuit` with every gate failing independently with
// probability `epsilon`, parallelized per `how`.
[[nodiscard]] ReliabilityResult estimate_reliability(
    const netlist::Circuit& circuit, double epsilon,
    const ReliabilityOptions& options, exec::Parallelism how);

// Deprecated-knob form: honours options.threads.
[[nodiscard]] ReliabilityResult estimate_reliability(
    const netlist::Circuit& circuit, double epsilon,
    const ReliabilityOptions& options = {});

// Estimates δ when `noisy` (a redundant implementation) must reproduce
// `golden`'s input/output behaviour; the two circuits must agree on input
// and output counts (inputs matched positionally).
[[nodiscard]] ReliabilityResult estimate_reliability_vs(
    const netlist::Circuit& noisy, const netlist::Circuit& golden,
    double epsilon, const ReliabilityOptions& options, exec::Parallelism how);

// Deprecated-knob form: honours options.threads.
[[nodiscard]] ReliabilityResult estimate_reliability_vs(
    const netlist::Circuit& noisy, const netlist::Circuit& golden,
    double epsilon, const ReliabilityOptions& options = {});

// Worst-case-input reliability. The theorems' δ quantifies over *every*
// input ("with probability 1−δ, the output of the circuit is correct"), so
// the input-averaged estimate above understates the achieved δ whenever some
// inputs are more fragile than others (e.g. long carry chains). This
// estimator fixes a set of sampled input vectors and measures each one's
// failure rate across independent noise draws, reporting the maximum.
struct WorstCaseOptions {
  std::uint64_t num_inputs = 64;        // sampled input vectors
  std::uint64_t trials_per_input = 1 << 12;  // noise draws per vector
  std::uint64_t seed = 0xBAD1;
  // Deprecated dual knob: only the estimator overload without an
  // exec::Parallelism parameter still honours it. Sampled inputs are
  // independent, so each gets its own counter-based stream and they run in
  // parallel; the argmax reduction happens serially in sample order, keeping
  // the result thread-count independent.
  unsigned threads = 0;
};

struct WorstCaseResult {
  ReliabilityResult worst;              // CI for the worst sampled input
  double average_delta = 0.0;           // mean over sampled inputs
  std::vector<bool> worst_input;        // the argmax assignment
};

[[nodiscard]] WorstCaseResult estimate_worst_case_reliability(
    const netlist::Circuit& noisy, const netlist::Circuit& golden,
    double epsilon, const WorstCaseOptions& options, exec::Parallelism how);

// Deprecated-knob form: honours options.threads.
[[nodiscard]] WorstCaseResult estimate_worst_case_reliability(
    const netlist::Circuit& noisy, const netlist::Circuit& golden,
    double epsilon, const WorstCaseOptions& options = {});

// Shard-level building blocks of the worst-case estimator (see the
// reliability block above for the contract). Throws like
// estimate_worst_case_reliability on invalid inputs.
void validate_worst_case_inputs(const netlist::Circuit& noisy,
                                const netlist::Circuit& golden,
                                const WorstCaseOptions& options);

// Failures of sampled input `sample` (an independent experiment with its own
// counter-based stream of (options.seed, sample)) across
// options.trials_per_input noise draws (rounded up to 64-trial passes).
[[nodiscard]] std::uint64_t worst_case_sample_failures(
    const netlist::Circuit& noisy, const netlist::Circuit& golden,
    double epsilon, const WorstCaseOptions& options, std::size_t sample);

// Serial reduction over per-sample failure counts: argmax, average, and the
// argmax assignment re-derived from its stream. sample_failures[i] must be
// worst_case_sample_failures(..., i) for every i in [0, options.num_inputs).
[[nodiscard]] WorstCaseResult finalize_worst_case(
    const netlist::Circuit& noisy, const WorstCaseOptions& options,
    const std::vector<std::uint64_t>& sample_failures);

}  // namespace enb::sim
