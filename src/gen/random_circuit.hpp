// Seeded random DAG generator: structured noise for property tests and for
// widening the benchmark parameter space (size / depth / fanin spreads).
#pragma once

#include <cstdint>

#include "netlist/circuit.hpp"

namespace enb::gen {

struct RandomCircuitOptions {
  int num_inputs = 8;
  int num_gates = 64;
  int num_outputs = 4;
  int max_fanin = 3;
  std::uint64_t seed = 1;
  // Bias toward recent nodes when picking fanins (higher -> deeper circuits).
  double locality = 0.5;
};

[[nodiscard]] netlist::Circuit random_circuit(
    const RandomCircuitOptions& options = {});

}  // namespace enb::gen
