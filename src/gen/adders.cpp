#include "gen/adders.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace enb::gen {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

namespace {

void check_bits(int bits, const char* who) {
  if (bits < 1) {
    throw std::invalid_argument(std::string(who) + ": bits must be >= 1");
  }
}

struct AdderInputs {
  std::vector<NodeId> a;
  std::vector<NodeId> b;
  NodeId cin;
};

AdderInputs declare_inputs(Circuit& c, int bits) {
  AdderInputs in;
  for (int i = 0; i < bits; ++i) in.a.push_back(c.add_input("a" + std::to_string(i)));
  for (int i = 0; i < bits; ++i) in.b.push_back(c.add_input("b" + std::to_string(i)));
  in.cin = c.add_input("cin");
  return in;
}

}  // namespace

FullAdderOut append_full_adder(Circuit& c, NodeId a, NodeId b, NodeId cin) {
  const NodeId axb = c.add_gate(GateType::kXor, a, b);
  const NodeId sum = c.add_gate(GateType::kXor, axb, cin);
  const NodeId ab = c.add_gate(GateType::kAnd, a, b);
  const NodeId ct = c.add_gate(GateType::kAnd, cin, axb);
  const NodeId cout = c.add_gate(GateType::kOr, ab, ct);
  return {sum, cout};
}

FullAdderOut append_half_adder(Circuit& c, NodeId a, NodeId b) {
  return {c.add_gate(GateType::kXor, a, b), c.add_gate(GateType::kAnd, a, b)};
}

Circuit ripple_carry_adder(int bits) {
  check_bits(bits, "ripple_carry_adder");
  Circuit c("rca" + std::to_string(bits));
  const AdderInputs in = declare_inputs(c, bits);
  NodeId carry = in.cin;
  for (int i = 0; i < bits; ++i) {
    const FullAdderOut fa = append_full_adder(c, in.a[i], in.b[i], carry);
    c.add_output(fa.sum, "sum" + std::to_string(i));
    carry = fa.cout;
  }
  c.add_output(carry, "cout");
  return c;
}

Circuit carry_lookahead_adder(int bits) {
  check_bits(bits, "carry_lookahead_adder");
  Circuit c("cla" + std::to_string(bits));
  const AdderInputs in = declare_inputs(c, bits);

  // Bit-level generate/propagate.
  std::vector<NodeId> g(bits), p(bits);
  for (int i = 0; i < bits; ++i) {
    g[i] = c.add_gate(GateType::kAnd, in.a[i], in.b[i]);
    p[i] = c.add_gate(GateType::kXor, in.a[i], in.b[i]);
  }
  // Carries within blocks of 4 via expanded lookahead terms:
  //   c[i+1] = g[i] | p[i]g[i-1] | ... | p[i]..p[j]c_block_in
  std::vector<NodeId> carry(static_cast<std::size_t>(bits) + 1);
  carry[0] = in.cin;
  constexpr int kGroup = 4;
  for (int base = 0; base < bits; base += kGroup) {
    const int end = std::min(bits, base + kGroup);
    for (int i = base; i < end; ++i) {
      // Terms for carry[i+1], fully expanded back to carry[base].
      std::vector<NodeId> terms;
      terms.push_back(g[i]);
      for (int j = i - 1; j >= base - 1; --j) {
        // product p[i] p[i-1] ... p[j+1] * (g[j] or block carry-in)
        std::vector<NodeId> factors;
        for (int t = j + 1; t <= i; ++t) factors.push_back(p[t]);
        factors.push_back(j >= base ? g[j] : carry[base]);
        terms.push_back(factors.size() == 1
                            ? factors[0]
                            : c.add_gate(GateType::kAnd, factors));
      }
      carry[i + 1] = terms.size() == 1 ? terms[0]
                                       : c.add_gate(GateType::kOr, terms);
    }
  }
  for (int i = 0; i < bits; ++i) {
    c.add_output(c.add_gate(GateType::kXor, p[i], carry[i]),
                 "sum" + std::to_string(i));
  }
  c.add_output(carry[bits], "cout");
  return c;
}

Circuit carry_select_adder(int bits, int block) {
  check_bits(bits, "carry_select_adder");
  if (block < 1) {
    throw std::invalid_argument("carry_select_adder: block must be >= 1");
  }
  Circuit c("csel" + std::to_string(bits));
  const AdderInputs in = declare_inputs(c, bits);

  NodeId carry = in.cin;
  const NodeId zero = c.add_const(false);
  const NodeId one = c.add_const(true);
  std::vector<NodeId> sums;
  for (int base = 0; base < bits; base += block) {
    const int end = std::min(bits, base + block);
    // Two speculative ripple blocks.
    std::vector<NodeId> sum0, sum1;
    NodeId c0 = zero;
    NodeId c1 = one;
    for (int i = base; i < end; ++i) {
      const FullAdderOut f0 = append_full_adder(c, in.a[i], in.b[i], c0);
      const FullAdderOut f1 = append_full_adder(c, in.a[i], in.b[i], c1);
      sum0.push_back(f0.sum);
      sum1.push_back(f1.sum);
      c0 = f0.cout;
      c1 = f1.cout;
    }
    // Select with the incoming carry: out = carry ? s1 : s0.
    const NodeId ncarry = c.add_gate(GateType::kNot, carry);
    for (int i = base; i < end; ++i) {
      const NodeId t1 =
          c.add_gate(GateType::kAnd, carry, sum1[static_cast<std::size_t>(i - base)]);
      const NodeId t0 =
          c.add_gate(GateType::kAnd, ncarry, sum0[static_cast<std::size_t>(i - base)]);
      sums.push_back(c.add_gate(GateType::kOr, t1, t0));
    }
    const NodeId tc1 = c.add_gate(GateType::kAnd, carry, c1);
    const NodeId tc0 = c.add_gate(GateType::kAnd, ncarry, c0);
    carry = c.add_gate(GateType::kOr, tc1, tc0);
  }
  for (int i = 0; i < bits; ++i) {
    c.add_output(sums[static_cast<std::size_t>(i)], "sum" + std::to_string(i));
  }
  c.add_output(carry, "cout");
  return c;
}

}  // namespace enb::gen
