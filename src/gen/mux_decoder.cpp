#include "gen/mux_decoder.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace enb::gen {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

NodeId append_mux2(Circuit& c, NodeId sel, NodeId hi, NodeId lo) {
  const NodeId nsel = c.add_gate(GateType::kNot, sel);
  const NodeId t_hi = c.add_gate(GateType::kAnd, sel, hi);
  const NodeId t_lo = c.add_gate(GateType::kAnd, nsel, lo);
  return c.add_gate(GateType::kOr, t_hi, t_lo);
}

Circuit mux_tree(int select_bits) {
  if (select_bits < 1 || select_bits > 10) {
    throw std::invalid_argument("mux_tree: select_bits must be in [1, 10]");
  }
  Circuit c("mux" + std::to_string(1 << select_bits));
  const int n = 1 << select_bits;
  std::vector<NodeId> data;
  for (int i = 0; i < n; ++i) data.push_back(c.add_input("d" + std::to_string(i)));
  std::vector<NodeId> sel;
  for (int i = 0; i < select_bits; ++i) sel.push_back(c.add_input("s" + std::to_string(i)));

  // Collapse level by level, s0 selecting between adjacent pairs.
  std::vector<NodeId> layer = data;
  for (int level = 0; level < select_bits; ++level) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(append_mux2(c, sel[static_cast<std::size_t>(level)],
                                 layer[i + 1], layer[i]));
    }
    layer = std::move(next);
  }
  c.add_output(layer[0], "y");
  return c;
}

Circuit decoder(int address_bits, bool with_enable) {
  if (address_bits < 1 || address_bits > 8) {
    throw std::invalid_argument("decoder: address_bits must be in [1, 8]");
  }
  Circuit c("dec" + std::to_string(address_bits));
  std::vector<NodeId> addr;
  for (int i = 0; i < address_bits; ++i) {
    addr.push_back(c.add_input("a" + std::to_string(i)));
  }
  const NodeId enable = with_enable ? c.add_input("en") : netlist::kInvalidNode;
  std::vector<NodeId> naddr;
  for (NodeId a : addr) naddr.push_back(c.add_gate(GateType::kNot, a));

  const int n = 1 << address_bits;
  for (int line = 0; line < n; ++line) {
    std::vector<NodeId> literals;
    for (int i = 0; i < address_bits; ++i) {
      literals.push_back(((line >> i) & 1) != 0
                             ? addr[static_cast<std::size_t>(i)]
                             : naddr[static_cast<std::size_t>(i)]);
    }
    if (with_enable) literals.push_back(enable);
    const NodeId out = literals.size() == 1
                           ? literals[0]
                           : c.add_gate(GateType::kAnd, literals);
    c.add_output(out, "y" + std::to_string(line));
  }
  return c;
}

Circuit priority_encoder(int requests) {
  if (requests < 2 || requests > 64) {
    throw std::invalid_argument("priority_encoder: requests must be in [2, 64]");
  }
  Circuit c("prienc" + std::to_string(requests));
  std::vector<NodeId> req;
  for (int i = 0; i < requests; ++i) {
    req.push_back(c.add_input("r" + std::to_string(i)));
  }
  // grant[i] = r[i] & !r[0] & ... & !r[i-1]  (lowest index wins).
  std::vector<NodeId> grant(req.size());
  grant[0] = req[0];
  NodeId none_before = c.add_gate(GateType::kNot, req[0]);
  for (std::size_t i = 1; i < req.size(); ++i) {
    grant[i] = c.add_gate(GateType::kAnd, req[i], none_before);
    if (i + 1 < req.size()) {
      const NodeId nri = c.add_gate(GateType::kNot, req[i]);
      none_before = c.add_gate(GateType::kAnd, none_before, nri);
    }
  }
  // Binary index = OR of grants whose index has the bit set.
  int index_bits = 1;
  while ((1 << index_bits) < requests) ++index_bits;
  for (int bit = 0; bit < index_bits; ++bit) {
    std::vector<NodeId> terms;
    for (int i = 0; i < requests; ++i) {
      if (((i >> bit) & 1) != 0) terms.push_back(grant[static_cast<std::size_t>(i)]);
    }
    NodeId out;
    if (terms.empty()) {
      out = c.add_const(false);
    } else if (terms.size() == 1) {
      out = terms[0];
    } else {
      out = c.add_gate(GateType::kOr, terms);
    }
    c.add_output(out, "idx" + std::to_string(bit));
  }
  c.add_output(c.add_gate(GateType::kOr, req), "valid");
  return c;
}

}  // namespace enb::gen
