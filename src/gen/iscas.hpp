// ISCAS'85 material. Only c17 is small enough to reproduce verbatim from
// public knowledge; c432 ships as a documented *functional translation* of
// its published high-level model; the remaining ISCAS circuits are replaced
// in this repo by the generator suite (see DESIGN.md, substitution table).
#pragma once

#include "netlist/circuit.hpp"

namespace enb::gen {

// The ISCAS'85 c17 benchmark: 5 inputs, 2 outputs, 6 NAND2 gates.
[[nodiscard]] netlist::Circuit c17();

// The c17 netlist in .bench format (exactly the published structure).
[[nodiscard]] const char* c17_bench_text();

// The ISCAS'85 c432-class benchmark: the 27-channel interrupt controller of
// the Hansen-Yalcin-Hayes high-level model, translated functionally to
// gates (36 inputs, 7 outputs; bus priority A > B > C, lowest granted
// channel binary-encoded on the address outputs). Canonical primary net
// names (N1..N115 in, N223/N329/N370/N421/N430-N432 out) follow the
// published netlist; the interior structure is this repo's translation of
// the behavioral spec, not the literal gate-level dump — it is pinned
// against a behavioral reference model in tests/test_suite.cpp.
[[nodiscard]] netlist::Circuit c432();

// The c432 translation in .bench format.
[[nodiscard]] const char* c432_bench_text();

}  // namespace enb::gen
