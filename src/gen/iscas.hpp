// ISCAS'85 material. Only c17 is small enough to reproduce verbatim from
// public knowledge; the larger ISCAS circuits are replaced in this repo by
// the generator suite (see DESIGN.md, substitution table).
#pragma once

#include "netlist/circuit.hpp"

namespace enb::gen {

// The ISCAS'85 c17 benchmark: 5 inputs, 2 outputs, 6 NAND2 gates.
[[nodiscard]] netlist::Circuit c17();

// The c17 netlist in .bench format (exactly the published structure).
[[nodiscard]] const char* c17_bench_text();

}  // namespace enb::gen
