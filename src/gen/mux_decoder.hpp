// Selection/steering generators: mux trees, decoders, priority encoders.
#pragma once

#include "netlist/circuit.hpp"

namespace enb::gen {

// 2^select_bits : 1 multiplexer built as a tree of 2:1 muxes.
// Inputs: d0..d(2^s-1) then s0..s(s-1); one output.
[[nodiscard]] netlist::Circuit mux_tree(int select_bits);

// n-to-2^n decoder (AND of literals per output), optional enable input.
[[nodiscard]] netlist::Circuit decoder(int address_bits, bool with_enable = false);

// Priority encoder: inputs r0..r(n-1), outputs the index of the
// highest-priority (lowest-index) asserted request plus a `valid` flag.
[[nodiscard]] netlist::Circuit priority_encoder(int requests);

// Appends a 2:1 mux (sel ? hi : lo) using AND/OR/NOT gates.
[[nodiscard]] netlist::NodeId append_mux2(netlist::Circuit& c,
                                          netlist::NodeId sel,
                                          netlist::NodeId hi,
                                          netlist::NodeId lo);

}  // namespace enb::gen
