// Comparator generators: equality and magnitude comparison — control-style
// benchmarks complementing the arithmetic suite.
#pragma once

#include "netlist/circuit.hpp"

namespace enb::gen {

// eq = AND over XNOR(a_i, b_i). One output.
[[nodiscard]] netlist::Circuit equality_comparator(int bits);

// Ripple magnitude comparator: outputs {lt, eq, gt} for unsigned operands.
[[nodiscard]] netlist::Circuit magnitude_comparator(int bits);

}  // namespace enb::gen
