#include "gen/parity.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace enb::gen {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

Circuit parity_tree(int num_inputs, int fanin) {
  if (num_inputs < 1) {
    throw std::invalid_argument("parity_tree: need at least one input");
  }
  if (fanin < 2) {
    throw std::invalid_argument("parity_tree: fanin must be >= 2");
  }
  Circuit c("parity" + std::to_string(num_inputs) + "_k" +
            std::to_string(fanin));
  std::vector<NodeId> layer;
  layer.reserve(static_cast<std::size_t>(num_inputs));
  for (int i = 0; i < num_inputs; ++i) {
    layer.push_back(c.add_input("x" + std::to_string(i)));
  }
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    std::size_t i = 0;
    while (i < layer.size()) {
      const std::size_t take =
          std::min<std::size_t>(fanin, layer.size() - i);
      if (take == 1) {
        next.push_back(layer[i]);
      } else {
        next.push_back(c.add_gate(
            GateType::kXor,
            std::vector<NodeId>(layer.begin() + i, layer.begin() + i + take)));
      }
      i += take;
    }
    layer = std::move(next);
  }
  c.add_output(layer[0], "parity");
  return c;
}

Circuit parity_shannon(int num_inputs) {
  if (num_inputs < 1) {
    throw std::invalid_argument("parity_shannon: need at least one input");
  }
  Circuit c("parity" + std::to_string(num_inputs) + "_shannon");
  std::vector<NodeId> inputs;
  inputs.reserve(static_cast<std::size_t>(num_inputs));
  for (int i = 0; i < num_inputs; ++i) {
    inputs.push_back(c.add_input("x" + std::to_string(i)));
  }
  // Walk the OBDD levels: carry (parity, !parity) of the prefix; each new
  // variable selects between them — mux(x, !p, p) == p ^ x.
  NodeId p = inputs[0];
  NodeId np = c.add_gate(GateType::kNot, p);
  for (int i = 1; i < num_inputs; ++i) {
    const NodeId x = inputs[static_cast<std::size_t>(i)];
    const NodeId nx = c.add_gate(GateType::kNot, x);
    const NodeId hi = c.add_gate(GateType::kAnd, x, np);   // x & !p
    const NodeId lo = c.add_gate(GateType::kAnd, nx, p);   // !x & p
    const NodeId new_p = c.add_gate(GateType::kOr, hi, lo);
    p = new_p;
    np = c.add_gate(GateType::kNot, p);
  }
  c.add_output(p, "parity");
  return c;
}

}  // namespace enb::gen
