#include "gen/random_circuit.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sim/prng.hpp"

namespace enb::gen {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

Circuit random_circuit(const RandomCircuitOptions& options) {
  if (options.num_inputs < 1 || options.num_gates < 1 ||
      options.num_outputs < 1) {
    throw std::invalid_argument("random_circuit: counts must be >= 1");
  }
  if (options.max_fanin < 2) {
    throw std::invalid_argument("random_circuit: max_fanin must be >= 2");
  }
  if (options.locality < 0.0 || options.locality > 1.0) {
    throw std::invalid_argument("random_circuit: locality must be in [0, 1]");
  }
  sim::Xoshiro256 rng(options.seed);
  Circuit c("rand_i" + std::to_string(options.num_inputs) + "_g" +
            std::to_string(options.num_gates) + "_s" +
            std::to_string(options.seed));
  std::vector<NodeId> pool;
  for (int i = 0; i < options.num_inputs; ++i) {
    pool.push_back(c.add_input("x" + std::to_string(i)));
  }

  constexpr GateType kChoices[] = {GateType::kAnd,  GateType::kNand,
                                   GateType::kOr,   GateType::kNor,
                                   GateType::kXor,  GateType::kXnor,
                                   GateType::kNot,  GateType::kMaj};
  const auto pick_node = [&]() -> NodeId {
    // With probability `locality`, draw from the most recent quarter of the
    // pool; otherwise uniformly. This stretches depth without disconnecting
    // early nodes.
    if (rng.next_real() < options.locality && pool.size() > 4) {
      const std::size_t quarter = std::max<std::size_t>(1, pool.size() / 4);
      const std::size_t begin = pool.size() - quarter;
      return pool[begin + static_cast<std::size_t>(rng.next_below(quarter))];
    }
    return pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
  };

  for (int g = 0; g < options.num_gates; ++g) {
    const GateType type =
        kChoices[rng.next_below(sizeof(kChoices) / sizeof(kChoices[0]))];
    int fanin;
    if (type == GateType::kNot) {
      fanin = 1;
    } else if (type == GateType::kMaj) {
      if (options.max_fanin < 3) {
        --g;  // retry with another type
        continue;
      }
      fanin = 3;
    } else {
      fanin = 2 + static_cast<int>(rng.next_below(
                      static_cast<std::uint64_t>(options.max_fanin - 1)));
    }
    std::vector<NodeId> fanins;
    for (int i = 0; i < fanin; ++i) fanins.push_back(pick_node());
    pool.push_back(c.add_gate(type, std::move(fanins)));
  }

  // Outputs: the last nodes are the most "interesting" (deepest); take the
  // final num_outputs distinct nodes.
  const int available = static_cast<int>(pool.size());
  const int outputs = std::min(options.num_outputs, available);
  for (int i = 0; i < outputs; ++i) {
    c.add_output(pool[static_cast<std::size_t>(available - outputs + i)],
                 "y" + std::to_string(i));
  }
  return c;
}

}  // namespace enb::gen
