#include "gen/iscas.hpp"

#include "netlist/bench_io.hpp"

namespace enb::gen {

const char* c17_bench_text() {
  return R"(# c17 (ISCAS'85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
}

netlist::Circuit c17() {
  return netlist::read_bench_string(c17_bench_text(), "c17");
}

}  // namespace enb::gen
