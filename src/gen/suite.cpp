#include "gen/suite.hpp"

#include <stdexcept>

#include "gen/adders.hpp"
#include "gen/alu.hpp"
#include "gen/comparators.hpp"
#include "gen/iscas.hpp"
#include "gen/multipliers.hpp"
#include "gen/parity.hpp"
#include "netlist/bench_io.hpp"

namespace enb::gen {

namespace {

// The suite contract: the built circuit carries the spec's name.
std::function<netlist::Circuit()> named(std::string name,
                                        std::function<netlist::Circuit()> fn) {
  return [name = std::move(name), fn = std::move(fn)] {
    netlist::Circuit c = fn();
    c.set_name(name);
    return c;
  };
}

}  // namespace

std::vector<BenchmarkSpec> standard_suite() {
  return {
      {"c17", "iscas", [] { return c17(); }},
      {"parity8", "parity", named("parity8", [] { return parity_tree(8, 2); })},
      {"parity16", "parity",
       named("parity16", [] { return parity_tree(16, 2); })},
      {"rca8", "adder", [] { return ripple_carry_adder(8); }},
      {"rca16", "adder", [] { return ripple_carry_adder(16); }},
      {"rca32", "adder", [] { return ripple_carry_adder(32); }},
      {"cla16", "adder", [] { return carry_lookahead_adder(16); }},
      {"csel16", "adder", [] { return carry_select_adder(16); }},
      {"mult4", "multiplier", [] { return array_multiplier(4); }},
      {"mult8", "multiplier", [] { return array_multiplier(8); }},
      {"cmp16", "control", [] { return magnitude_comparator(16); }},
      {"alu8", "control", [] { return alu(8); }},
  };
}

std::vector<BenchmarkSpec> small_suite() {
  return {
      {"c17", "iscas", [] { return c17(); }},
      {"parity8", "parity", named("parity8", [] { return parity_tree(8, 2); })},
      {"rca8", "adder", [] { return ripple_carry_adder(8); }},
      {"mult4", "multiplier", [] { return array_multiplier(4); }},
  };
}

std::vector<BenchmarkSpec> scale_suite() {
  return {
      {"c432", "iscas", [] { return c432(); }},
      {"rca256", "adder", [] { return ripple_carry_adder(256); }},
      {"csel64", "adder", [] { return carry_select_adder(64); }},
      {"mult16", "multiplier", [] { return array_multiplier(16); }},
      {"alu64", "control", [] { return alu(64); }},
  };
}

BenchmarkSpec find_benchmark(const std::string& name) {
  for (BenchmarkSpec& spec : standard_suite()) {
    if (spec.name == name) return std::move(spec);
  }
  for (BenchmarkSpec& spec : scale_suite()) {
    if (spec.name == name) return std::move(spec);
  }
  throw std::invalid_argument("find_benchmark: unknown benchmark '" + name +
                              "'");
}

bool spec_is_path(const std::string& spec) {
  return spec.find('/') != std::string::npos ||
         (spec.size() > 6 &&
          spec.compare(spec.size() - 6, 6, ".bench") == 0);
}

netlist::Circuit build_circuit_spec(const std::string& spec) {
  return spec_is_path(spec) ? netlist::read_bench_file(spec)
                            : find_benchmark(spec).build();
}

}  // namespace enb::gen
