#include "gen/multipliers.hpp"

#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "gen/adders.hpp"

namespace enb::gen {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

namespace {

struct MulInputs {
  std::vector<NodeId> a;
  std::vector<NodeId> b;
};

MulInputs declare_inputs(Circuit& c, int bits) {
  MulInputs in;
  for (int i = 0; i < bits; ++i) in.a.push_back(c.add_input("a" + std::to_string(i)));
  for (int i = 0; i < bits; ++i) in.b.push_back(c.add_input("b" + std::to_string(i)));
  return in;
}

// Partial products pp[i][j] = a[j] & b[i], weight i + j.
std::vector<std::vector<NodeId>> partial_products(Circuit& c,
                                                  const MulInputs& in,
                                                  int bits) {
  std::vector<std::vector<NodeId>> pp(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    for (int j = 0; j < bits; ++j) {
      pp[static_cast<std::size_t>(i)].push_back(
          c.add_gate(GateType::kAnd, in.a[static_cast<std::size_t>(j)],
                     in.b[static_cast<std::size_t>(i)]));
    }
  }
  return pp;
}

}  // namespace

Circuit array_multiplier(int bits) {
  if (bits < 1) {
    throw std::invalid_argument("array_multiplier: bits must be >= 1");
  }
  Circuit c("mult" + std::to_string(bits));
  const MulInputs in = declare_inputs(c, bits);
  const auto pp = partial_products(c, in, bits);

  // Schoolbook accumulation: a 2n-bit accumulator, one ripple row per
  // partial-product row. Before adding row r the top nonzero weight is
  // (r-1)+bits, so the row's carry-out always lands on a constant-zero slot.
  const NodeId zero = c.add_const(false);
  std::vector<NodeId> acc(static_cast<std::size_t>(2 * bits), zero);
  for (int j = 0; j < bits; ++j) acc[static_cast<std::size_t>(j)] = pp[0][static_cast<std::size_t>(j)];

  for (int row = 1; row < bits; ++row) {
    NodeId carry = zero;
    for (int j = 0; j < bits; ++j) {
      const std::size_t w = static_cast<std::size_t>(row + j);
      const FullAdderOut fa = append_full_adder(
          c, acc[w], pp[static_cast<std::size_t>(row)][static_cast<std::size_t>(j)],
          carry);
      acc[w] = fa.sum;
      carry = fa.cout;
    }
    acc[static_cast<std::size_t>(row + bits)] = carry;
  }

  for (std::size_t i = 0; i < acc.size(); ++i) {
    c.add_output(acc[i], "p" + std::to_string(i));
  }
  return c;
}

Circuit wallace_multiplier(int bits) {
  if (bits < 1) {
    throw std::invalid_argument("wallace_multiplier: bits must be >= 1");
  }
  Circuit c("wallace" + std::to_string(bits));
  const MulInputs in = declare_inputs(c, bits);

  // Buckets of bits per weight column.
  std::vector<std::deque<NodeId>> columns(static_cast<std::size_t>(2 * bits));
  for (int i = 0; i < bits; ++i) {
    for (int j = 0; j < bits; ++j) {
      columns[static_cast<std::size_t>(i + j)].push_back(
          c.add_gate(GateType::kAnd, in.a[static_cast<std::size_t>(j)],
                     in.b[static_cast<std::size_t>(i)]));
    }
  }

  // 3:2 / 2:2 compression until every column has at most two bits.
  bool again = true;
  while (again) {
    again = false;
    for (std::size_t w = 0; w < columns.size(); ++w) {
      while (columns[w].size() >= 3) {
        const NodeId x = columns[w][0];
        const NodeId y = columns[w][1];
        const NodeId z = columns[w][2];
        columns[w].erase(columns[w].begin(), columns[w].begin() + 3);
        const FullAdderOut fa = append_full_adder(c, x, y, z);
        columns[w].push_back(fa.sum);
        columns[w + 1].push_back(fa.cout);
        again = true;
      }
    }
  }

  // Final carry-propagate add over the two remaining rows.
  NodeId carry = c.add_const(false);
  for (std::size_t w = 0; w < columns.size(); ++w) {
    const std::size_t have = columns[w].size();
    NodeId s;
    if (have == 0) {
      s = carry;
      carry = c.add_const(false);
    } else if (have == 1) {
      const FullAdderOut ha = append_half_adder(c, columns[w][0], carry);
      s = ha.sum;
      carry = ha.cout;
    } else {
      const FullAdderOut fa =
          append_full_adder(c, columns[w][0], columns[w][1], carry);
      s = fa.sum;
      carry = fa.cout;
    }
    c.add_output(s, "p" + std::to_string(w));
  }
  return c;
}

}  // namespace enb::gen
