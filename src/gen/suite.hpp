// The named benchmark suite used by the Figure 7/8 reproductions — this
// repo's substitute for the paper's "subset of ISCAS'85 benchmarks and some
// computer arithmetic circuits (ripple-carry adders and array multipliers)
// with various bitwidths" (Section 6). See DESIGN.md for the substitution
// rationale.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace enb::gen {

struct BenchmarkSpec {
  std::string name;
  std::string family;  // "iscas", "parity", "adder", "multiplier", "control"
  std::function<netlist::Circuit()> build;
};

// The standard 12-circuit suite: c17, parity{8,16}, rca{8,16,32}, cla16,
// csel16, mult{4,8}, cmp16, alu8.
[[nodiscard]] std::vector<BenchmarkSpec> standard_suite();

// A smaller suite (c17, parity8, rca8, mult4) for fast tests.
[[nodiscard]] std::vector<BenchmarkSpec> small_suite();

// Looks up one spec by name in the standard suite; throws if unknown.
[[nodiscard]] BenchmarkSpec find_benchmark(const std::string& name);

}  // namespace enb::gen
