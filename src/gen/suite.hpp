// The named benchmark suite used by the Figure 7/8 reproductions — this
// repo's substitute for the paper's "subset of ISCAS'85 benchmarks and some
// computer arithmetic circuits (ripple-carry adders and array multipliers)
// with various bitwidths" (Section 6). See DESIGN.md for the substitution
// rationale.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace enb::gen {

struct BenchmarkSpec {
  std::string name;
  std::string family;  // "iscas", "parity", "adder", "multiplier", "control"
  std::function<netlist::Circuit()> build;
};

// The standard 12-circuit suite: c17, parity{8,16}, rca{8,16,32}, cla16,
// csel16, mult{4,8}, cmp16, alu8.
[[nodiscard]] std::vector<BenchmarkSpec> standard_suite();

// A smaller suite (c17, parity8, rca8, mult4) for fast tests.
[[nodiscard]] std::vector<BenchmarkSpec> small_suite();

// Larger instances (c432, rca256, csel64, mult16, alu64) for fault
// campaigns at scale — universes where dropping, wide lanes, and sampling
// earn their keep. c432 rides here (not in standard_suite()) because its
// n-ary OR gates sit outside the standard suite's max-fanin-2 property
// tests. Kept out of standard_suite() so the Figure 7/8 sweeps and scalar
// cross-checks stay fast.
[[nodiscard]] std::vector<BenchmarkSpec> scale_suite();

// Looks up one spec by name in the standard then scale suites; throws if
// unknown.
[[nodiscard]] BenchmarkSpec find_benchmark(const std::string& name);

// ---- circuit spec resolution ---------------------------------------------
//
// The CLI and the analysis server share one spec vocabulary: a spec is a
// .bench file path when it contains '/' or ends in ".bench", otherwise a
// standard-suite name. One implementation keeps offline and served
// resolution from drifting.

// True when `spec` names a file rather than a suite circuit.
[[nodiscard]] bool spec_is_path(const std::string& spec);

// Builds the circuit a spec names (read_bench_file or suite build); throws
// on unknown suite names / unreadable files.
[[nodiscard]] netlist::Circuit build_circuit_spec(const std::string& spec);

}  // namespace enb::gen
