#include "gen/alu.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "gen/adders.hpp"
#include "gen/mux_decoder.hpp"

namespace enb::gen {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

Circuit alu(int bits) {
  if (bits < 1) {
    throw std::invalid_argument("alu: bits must be >= 1");
  }
  Circuit c("alu" + std::to_string(bits));
  std::vector<NodeId> a, b;
  for (int i = 0; i < bits; ++i) a.push_back(c.add_input("a" + std::to_string(i)));
  for (int i = 0; i < bits; ++i) b.push_back(c.add_input("b" + std::to_string(i)));
  std::vector<NodeId> op;
  for (int i = 0; i < 3; ++i) op.push_back(c.add_input("op" + std::to_string(i)));

  // is_sub = op==001; is_logic groups: op2 selects XOR, op1 selects AND/OR.
  const NodeId is_sub = op[0];

  // Adder operand: b ^ is_sub (one's complement under SUB), carry-in is_sub.
  std::vector<NodeId> badd;
  for (int i = 0; i < bits; ++i) {
    badd.push_back(c.add_gate(GateType::kXor, b[static_cast<std::size_t>(i)], is_sub));
  }
  std::vector<NodeId> addsum;
  NodeId carry = is_sub;
  for (int i = 0; i < bits; ++i) {
    const FullAdderOut fa = append_full_adder(
        c, a[static_cast<std::size_t>(i)], badd[static_cast<std::size_t>(i)], carry);
    addsum.push_back(fa.sum);
    carry = fa.cout;
  }

  // Per-bit logic results.
  std::vector<NodeId> outs;
  for (int i = 0; i < bits; ++i) {
    const NodeId ai = a[static_cast<std::size_t>(i)];
    const NodeId bi = b[static_cast<std::size_t>(i)];
    const NodeId land = c.add_gate(GateType::kAnd, ai, bi);
    const NodeId lor = c.add_gate(GateType::kOr, ai, bi);
    const NodeId lxor = c.add_gate(GateType::kXor, ai, bi);
    // logic_and_or = op0 ? OR : AND;  logic = op2 ? XOR : that.
    const NodeId and_or = append_mux2(c, op[0], lor, land);
    const NodeId logic = append_mux2(c, op[2], lxor, and_or);
    // result = op1 ? logic : adder
    outs.push_back(append_mux2(c, op[1], logic, addsum[static_cast<std::size_t>(i)]));
  }

  for (int i = 0; i < bits; ++i) {
    c.add_output(outs[static_cast<std::size_t>(i)], "y" + std::to_string(i));
  }
  c.add_output(carry, "cout");
  c.add_output(c.add_gate(GateType::kNor, outs), "zero");
  return c;
}

}  // namespace enb::gen
