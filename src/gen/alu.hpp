// A small datapath ALU: ADD/SUB/AND/OR/XOR selected by a 3-bit opcode.
// Inputs a[0..n-1], b[0..n-1], op[0..2]; outputs y[0..n-1], cout, zero.
//
// Opcode decode (written op2 op1 op0): x00 ADD, x01 SUB (a + ~b + 1),
// 010 AND, 011 OR, 11x XOR. op1 selects logic vs arithmetic, op0 selects
// SUB / OR, op2 selects XOR within the logic group.
#pragma once

#include "netlist/circuit.hpp"

namespace enb::gen {

[[nodiscard]] netlist::Circuit alu(int bits);

}  // namespace enb::gen
