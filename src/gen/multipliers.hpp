// Multiplier generators: the paper's evaluation uses array multipliers with
// various bitwidths. Inputs a[0..n-1], b[0..n-1] (LSB first); output
// p[0..2n-1].
#pragma once

#include "netlist/circuit.hpp"

namespace enb::gen {

// Classic carry-save array multiplier: n^2 partial-product ANDs plus n-1 rows
// of adders, final ripple row. Depth O(n).
[[nodiscard]] netlist::Circuit array_multiplier(int bits);

// Wallace-style reduction: same partial products, 3:2 compressor tree, final
// ripple-carry adder. Depth O(log n) in the tree plus the final adder.
[[nodiscard]] netlist::Circuit wallace_multiplier(int bits);

}  // namespace enb::gen
