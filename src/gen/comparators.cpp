#include "gen/comparators.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace enb::gen {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

namespace {

struct CmpInputs {
  std::vector<NodeId> a;
  std::vector<NodeId> b;
};

CmpInputs declare_inputs(Circuit& c, int bits) {
  if (bits < 1) {
    throw std::invalid_argument("comparator: bits must be >= 1");
  }
  CmpInputs in;
  for (int i = 0; i < bits; ++i) in.a.push_back(c.add_input("a" + std::to_string(i)));
  for (int i = 0; i < bits; ++i) in.b.push_back(c.add_input("b" + std::to_string(i)));
  return in;
}

}  // namespace

Circuit equality_comparator(int bits) {
  Circuit c("cmpeq" + std::to_string(bits));
  const CmpInputs in = declare_inputs(c, bits);
  std::vector<NodeId> bit_eq;
  for (int i = 0; i < bits; ++i) {
    bit_eq.push_back(c.add_gate(GateType::kXnor, in.a[static_cast<std::size_t>(i)],
                                in.b[static_cast<std::size_t>(i)]));
  }
  const NodeId eq =
      bits == 1 ? bit_eq[0] : c.add_gate(GateType::kAnd, bit_eq);
  c.add_output(eq, "eq");
  return c;
}

Circuit magnitude_comparator(int bits) {
  Circuit c("cmp" + std::to_string(bits));
  const CmpInputs in = declare_inputs(c, bits);
  // Ripple from LSB: at each bit, gt/lt update as
  //   gt' = a&!b | eq_bit & gt;  lt' = !a&b | eq_bit & lt.
  NodeId gt = c.add_const(false);
  NodeId lt = c.add_const(false);
  for (int i = 0; i < bits; ++i) {
    const NodeId a = in.a[static_cast<std::size_t>(i)];
    const NodeId b = in.b[static_cast<std::size_t>(i)];
    const NodeId nb = c.add_gate(GateType::kNot, b);
    const NodeId na = c.add_gate(GateType::kNot, a);
    const NodeId a_gt_b = c.add_gate(GateType::kAnd, a, nb);
    const NodeId a_lt_b = c.add_gate(GateType::kAnd, na, b);
    const NodeId eq_bit = c.add_gate(GateType::kXnor, a, b);
    gt = c.add_gate(GateType::kOr, a_gt_b,
                    c.add_gate(GateType::kAnd, eq_bit, gt));
    lt = c.add_gate(GateType::kOr, a_lt_b,
                    c.add_gate(GateType::kAnd, eq_bit, lt));
  }
  const NodeId eq = c.add_gate(GateType::kNor, gt, lt);
  c.add_output(lt, "lt");
  c.add_output(eq, "eq");
  c.add_output(gt, "gt");
  return c;
}

}  // namespace enb::gen
