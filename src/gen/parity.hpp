// Parity generators. Parity is the paper's canonical extremal function: the
// size and depth lower bounds are tight for "parity functions, implemented
// using decision trees or Shannon-like circuits" (Section 4.2), and Figure 3
// is parameterized on the 10-input parity with S0 = 21 = 2n + 1.
#pragma once

#include "netlist/circuit.hpp"

namespace enb::gen {

// Balanced tree of k-input XOR gates (k >= 2). Gate count ceil((n-1)/(k-1)).
[[nodiscard]] netlist::Circuit parity_tree(int num_inputs, int fanin = 2);

// Shannon/OBDD-style parity: a chain of 2:1 multiplexers realized with
// AND/OR/NOT gates, one mux per variable after the first. This is the
// "Shannon-like organization" the paper's S0 = 2n + 1 node count refers to
// (the OBDD of parity has 2n - 1 internal nodes plus 2 terminals).
[[nodiscard]] netlist::Circuit parity_shannon(int num_inputs);

// The paper's node-count model for the Shannon parity: S0 = 2n + 1.
[[nodiscard]] constexpr int parity_shannon_node_count(int num_inputs) {
  return 2 * num_inputs + 1;
}

}  // namespace enb::gen
