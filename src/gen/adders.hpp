// Adder generators: the computer-arithmetic workloads of the paper's
// evaluation ("ripple-carry adders ... with various bitwidths"), plus
// carry-lookahead and carry-select variants for the fanin/depth ablations.
//
// All adders take inputs a[0..n-1] (LSB first), b[0..n-1] and cin, and
// produce sum[0..n-1] and cout.
#pragma once

#include "netlist/circuit.hpp"

namespace enb::gen {

// Chain of full adders: 5 two-input gates per bit, depth O(n).
[[nodiscard]] netlist::Circuit ripple_carry_adder(int bits);

// Block carry-lookahead (group size 4): generate/propagate terms with wide
// AND/OR gates (the mapper narrows them), depth O(n / 4 + log).
[[nodiscard]] netlist::Circuit carry_lookahead_adder(int bits);

// Carry-select with fixed-size blocks: duplicated ripple blocks with cin=0/1
// and mux selection.
[[nodiscard]] netlist::Circuit carry_select_adder(int bits, int block = 4);

// Helper used by other generators: appends one full adder to `c`, returning
// {sum, cout}.
struct FullAdderOut {
  netlist::NodeId sum;
  netlist::NodeId cout;
};
[[nodiscard]] FullAdderOut append_full_adder(netlist::Circuit& c,
                                             netlist::NodeId a,
                                             netlist::NodeId b,
                                             netlist::NodeId cin);

// Half adder: {sum, carry} from two operands.
[[nodiscard]] FullAdderOut append_half_adder(netlist::Circuit& c,
                                             netlist::NodeId a,
                                             netlist::NodeId b);

}  // namespace enb::gen
