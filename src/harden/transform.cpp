#include "harden/transform.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "fault/fault_model.hpp"
#include "netlist/gate_type.hpp"
#include "netlist/transform.hpp"

namespace enb::harden {
namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

std::string variant_name(const Circuit& base, const TransformOptions& options) {
  std::string name = base.name().empty() ? "circuit" : base.name();
  name += '_';
  name += to_string(options.style);
  name += '_';
  name += to_string(options.granularity);
  if (options.style == Style::kSelective) {
    name += "_k" + std::to_string(options.top_k);
  }
  return name;
}

// Appends a 3-way majority vote and accounts its gates.
NodeId vote(Circuit& c, NodeId a, NodeId b, NodeId d, ft::VoterStyle style,
            std::size_t& voter_gates) {
  const std::size_t before = c.gate_count();
  const NodeId out = ft::append_maj3(c, a, b, d, style);
  voter_gates += c.gate_count() - before;
  return out;
}

// Rebuilds the base input interface in `out` (names preserved) and returns
// the substitution vector append_circuit instantiations wire to.
std::vector<NodeId> input_image(const Circuit& base, Circuit& out) {
  std::vector<NodeId> subs;
  subs.reserve(base.num_inputs());
  for (const NodeId id : base.inputs()) {
    subs.push_back(out.add_input(base.node_name(id)));
  }
  return subs;
}

// Marks every node inside the union of the selected outputs' cones.
std::vector<bool> cone_membership(const Circuit& base,
                                  std::span<const std::size_t> selected) {
  std::vector<bool> in_cone(base.node_count(), false);
  std::vector<NodeId> stack;
  for (const std::size_t pos : selected) {
    const NodeId root = base.outputs()[pos];
    if (!in_cone[root]) {
      in_cone[root] = true;
      stack.push_back(root);
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (const NodeId fanin : base.fanins(id)) {
      if (!in_cone[fanin]) {
        in_cone[fanin] = true;
        stack.push_back(fanin);
      }
    }
  }
  return in_cone;
}

// Per-gate TMR: every gate marked in `replicate` (all gates when null)
// becomes three replicas over the voted fanin values plus a voter, so
// downstream logic always consumes the voted net.
HardenedCircuit tmr_gate_level(const Circuit& base,
                               const TransformOptions& options,
                               const std::vector<bool>* replicate) {
  HardenedCircuit result;
  Circuit out(variant_name(base, options));
  std::vector<NodeId> map(base.node_count(), netlist::kInvalidNode);
  for (NodeId id = 0; id < base.node_count(); ++id) {
    const GateType type = base.type(id);
    if (type == GateType::kInput) {
      map[id] = out.add_input(base.node_name(id));
      continue;
    }
    if (netlist::is_constant(type)) {
      map[id] = out.add_const(type == GateType::kConst1);
      continue;
    }
    std::vector<NodeId> fanins;
    fanins.reserve(base.fanins(id).size());
    for (const NodeId fanin : base.fanins(id)) fanins.push_back(map[fanin]);
    if (replicate != nullptr && !(*replicate)[id]) {
      map[id] = out.add_gate(type, std::move(fanins));
      continue;
    }
    const NodeId a = out.add_gate(type, fanins);
    const NodeId b = out.add_gate(type, fanins);
    const NodeId c = out.add_gate(type, std::move(fanins));
    map[id] = vote(out, a, b, c, options.voter, result.voter_gates);
  }
  for (std::size_t pos = 0; pos < base.num_outputs(); ++pos) {
    out.add_output(map[base.outputs()[pos]], base.output_name(pos));
  }
  result.circuit = std::move(out);
  return result;
}

// Per-cone TMR: each output's cone is instantiated three times
// independently (shared base logic is deliberately not shared between
// replicas or between cones) and voted at the output.
HardenedCircuit tmr_cone_level(const Circuit& base,
                               const TransformOptions& options) {
  HardenedCircuit result;
  Circuit out(variant_name(base, options));
  const std::vector<NodeId> subs = input_image(base, out);
  for (std::size_t pos = 0; pos < base.num_outputs(); ++pos) {
    const std::size_t positions[] = {pos};
    const Circuit cone = netlist::extract_cone(base, positions);
    const NodeId a = netlist::append_circuit(out, cone, subs)[0];
    const NodeId b = netlist::append_circuit(out, cone, subs)[0];
    const NodeId c = netlist::append_circuit(out, cone, subs)[0];
    const NodeId voted = vote(out, a, b, c, options.voter, result.voter_gates);
    out.add_output(voted, base.output_name(pos));
  }
  result.circuit = std::move(out);
  return result;
}

// Whole-circuit TMR: three shared replicas of the complete netlist, one
// voter per primary output.
HardenedCircuit tmr_output_level(const Circuit& base,
                                 const TransformOptions& options) {
  HardenedCircuit result;
  Circuit out(variant_name(base, options));
  const std::vector<NodeId> subs = input_image(base, out);
  const std::vector<NodeId> r1 = netlist::append_circuit(out, base, subs);
  const std::vector<NodeId> r2 = netlist::append_circuit(out, base, subs);
  const std::vector<NodeId> r3 = netlist::append_circuit(out, base, subs);
  for (std::size_t pos = 0; pos < base.num_outputs(); ++pos) {
    const NodeId voted =
        vote(out, r1[pos], r2[pos], r3[pos], options.voter, result.voter_gates);
    out.add_output(voted, base.output_name(pos));
  }
  result.circuit = std::move(out);
  return result;
}

// Per-gate DWC: every gate gets one replica over the copy-A fanins and an
// XOR comparator; the comparators aggregate into a single "dwc_check" PO, so
// any single gate fault that manifests locally raises the flag — including
// at patterns where it also corrupts a primary output.
HardenedCircuit dwc_gate_level(const Circuit& base,
                               const TransformOptions& options) {
  HardenedCircuit result;
  Circuit out = netlist::clone(base);
  out.set_name(variant_name(base, options));
  std::vector<NodeId> comparators;
  for (NodeId id = 0; id < base.node_count(); ++id) {
    const GateType type = base.type(id);
    if (type == GateType::kInput || netlist::is_constant(type)) continue;
    std::vector<NodeId> fanins(base.fanins(id).begin(), base.fanins(id).end());
    const NodeId replica = out.add_gate(type, std::move(fanins));
    comparators.push_back(out.add_gate(GateType::kXor, id, replica));
    result.voter_gates += 1;  // the comparator; the replica is counted below
  }
  if (!comparators.empty()) {
    NodeId check = comparators.front();
    if (comparators.size() > 1) {
      check = out.add_gate(GateType::kOr, std::move(comparators));
      result.voter_gates += 1;
    }
    out.add_output(check, "dwc_check");
    result.check_outputs = 1;
  }
  result.circuit = std::move(out);
  return result;
}

// Per-cone DWC: each output cone duplicated independently; the comparator
// of output `o` is exposed as check PO "<o>_check" after the base outputs.
HardenedCircuit dwc_cone_level(const Circuit& base,
                               const TransformOptions& options) {
  HardenedCircuit result;
  Circuit out = netlist::clone(base);
  out.set_name(variant_name(base, options));
  const std::vector<NodeId> subs(out.inputs().begin(), out.inputs().end());
  for (std::size_t pos = 0; pos < base.num_outputs(); ++pos) {
    const std::size_t positions[] = {pos};
    const Circuit cone = netlist::extract_cone(base, positions);
    const NodeId duplicate = netlist::append_circuit(out, cone, subs)[0];
    const NodeId comparator =
        out.add_gate(GateType::kXor, out.outputs()[pos], duplicate);
    result.voter_gates += 1;
    out.add_output(comparator, base.output_name(pos) + "_check");
    result.check_outputs += 1;
  }
  result.circuit = std::move(out);
  return result;
}

// Whole-circuit DWC: one shared duplicate, one comparator/check PO per
// primary output.
HardenedCircuit dwc_output_level(const Circuit& base,
                                 const TransformOptions& options) {
  HardenedCircuit result;
  Circuit out = netlist::clone(base);
  out.set_name(variant_name(base, options));
  const std::vector<NodeId> subs(out.inputs().begin(), out.inputs().end());
  const std::vector<NodeId> duplicate = netlist::append_circuit(out, base, subs);
  for (std::size_t pos = 0; pos < base.num_outputs(); ++pos) {
    const NodeId comparator =
        out.add_gate(GateType::kXor, out.outputs()[pos], duplicate[pos]);
    result.voter_gates += 1;
    out.add_output(comparator, base.output_name(pos) + "_check");
    result.check_outputs += 1;
  }
  result.circuit = std::move(out);
  return result;
}

// Selective TMR over the top-K cones of `order`. Gate granularity restricts
// per-gate TMR to the selected cones' union; cone/output granularity keeps
// one shared copy of the base and adds two extra cone replicas — per cone
// independently (kCone) or as one shared union-cone block (kOutput) — voted
// at the selected outputs only.
HardenedCircuit selective_level(const Circuit& base,
                                const TransformOptions& options,
                                std::span<const std::size_t> order) {
  std::vector<std::size_t> ranking(order.begin(), order.end());
  if (ranking.empty()) {
    ranking.resize(base.num_outputs());
    std::iota(ranking.begin(), ranking.end(), std::size_t{0});
  }
  if (ranking.size() != base.num_outputs()) {
    throw std::invalid_argument(
        "harden: selective ranking must cover every output position");
  }
  const std::size_t k =
      std::min<std::size_t>(options.top_k, base.num_outputs());
  std::vector<std::size_t> selected(ranking.begin(), ranking.begin() + k);
  std::sort(selected.begin(), selected.end());

  if (options.granularity == Granularity::kGate) {
    const std::vector<bool> in_cone = cone_membership(base, selected);
    HardenedCircuit result = tmr_gate_level(base, options, &in_cone);
    result.protected_outputs = std::move(selected);
    return result;
  }

  HardenedCircuit result;
  Circuit out(variant_name(base, options));
  const std::vector<NodeId> subs = input_image(base, out);
  const std::vector<NodeId> copy_a = netlist::append_circuit(out, base, subs);
  std::vector<NodeId> voted(base.num_outputs(), netlist::kInvalidNode);
  if (!selected.empty()) {
    if (options.granularity == Granularity::kCone) {
      for (const std::size_t pos : selected) {
        const std::size_t positions[] = {pos};
        const Circuit cone = netlist::extract_cone(base, positions);
        const NodeId b = netlist::append_circuit(out, cone, subs)[0];
        const NodeId c = netlist::append_circuit(out, cone, subs)[0];
        voted[pos] =
            vote(out, copy_a[pos], b, c, options.voter, result.voter_gates);
      }
    } else {
      const Circuit cone = netlist::extract_cone(base, selected);
      const std::vector<NodeId> b = netlist::append_circuit(out, cone, subs);
      const std::vector<NodeId> c = netlist::append_circuit(out, cone, subs);
      for (std::size_t j = 0; j < selected.size(); ++j) {
        voted[selected[j]] = vote(out, copy_a[selected[j]], b[j], c[j],
                                  options.voter, result.voter_gates);
      }
    }
  }
  for (std::size_t pos = 0; pos < base.num_outputs(); ++pos) {
    const NodeId driver =
        voted[pos] != netlist::kInvalidNode ? voted[pos] : copy_a[pos];
    out.add_output(driver, base.output_name(pos));
  }
  result.circuit = std::move(out);
  result.protected_outputs = std::move(selected);
  return result;
}

}  // namespace

std::vector<std::size_t> rank_output_cones(
    const netlist::Circuit& base, const fault::FaultCampaignResult& campaign) {
  const std::size_t outputs = base.num_outputs();
  std::vector<std::uint64_t> score(outputs, 0);
  const std::size_t classes =
      std::min(campaign.first_detect_output.size(),
               campaign.detection_counts.size());
  for (std::size_t cls = 0; cls < classes; ++cls) {
    const std::uint32_t output = campaign.first_detect_output[cls];
    if (campaign.detection_counts[cls] == 0 || output >= outputs) continue;
    score[output] += campaign.detection_counts[cls];
  }
  std::vector<std::size_t> order(outputs);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&score](std::size_t a, std::size_t b) {
              if (score[a] != score[b]) return score[a] > score[b];
              return a < b;
            });
  return order;
}

HardenedCircuit harden_transform(const netlist::Circuit& base,
                                 const TransformOptions& options,
                                 std::span<const std::size_t> ranked) {
  if (base.num_outputs() == 0) {
    throw std::invalid_argument("harden: base circuit has no outputs");
  }
  HardenedCircuit result;
  switch (options.style) {
    case Style::kTmr:
      switch (options.granularity) {
        case Granularity::kGate:
          result = tmr_gate_level(base, options, nullptr);
          break;
        case Granularity::kCone:
          result = tmr_cone_level(base, options);
          break;
        case Granularity::kOutput:
          result = tmr_output_level(base, options);
          break;
      }
      break;
    case Style::kDwc:
      switch (options.granularity) {
        case Granularity::kGate:
          result = dwc_gate_level(base, options);
          break;
        case Granularity::kCone:
          result = dwc_cone_level(base, options);
          break;
        case Granularity::kOutput:
          result = dwc_output_level(base, options);
          break;
      }
      break;
    case Style::kSelective:
      result = selective_level(base, options, ranked);
      break;
  }
  result.base_outputs = base.num_outputs();
  if (options.style != Style::kSelective) {
    result.protected_outputs.resize(base.num_outputs());
    std::iota(result.protected_outputs.begin(), result.protected_outputs.end(),
              std::size_t{0});
  }
  const std::size_t overhead = result.circuit.gate_count() -
                               std::min(result.circuit.gate_count(),
                                        base.gate_count() + result.voter_gates);
  result.replica_gates = overhead;
  return result;
}

analysis::CecResult verify_hardened(const netlist::Circuit& base,
                                    const HardenedCircuit& variant,
                                    const analysis::CecOptions& options) {
  if (variant.check_outputs == 0) {
    return analysis::check_equivalence(base, variant.circuit, options);
  }
  std::vector<std::size_t> positions(variant.base_outputs);
  std::iota(positions.begin(), positions.end(), std::size_t{0});
  const netlist::Circuit primary =
      netlist::extract_cone(variant.circuit, positions);
  return analysis::check_equivalence(base, primary, options);
}

analysis::LintReport lint_hardened(const HardenedCircuit& variant) {
  analysis::LintOptions options;
  options.allow_voter_replicas = true;
  return analysis::lint_circuit(variant.circuit, options);
}

}  // namespace enb::harden
