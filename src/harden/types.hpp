// Vocabulary of the hardening subsystem: protection styles, granularities,
// sweep options, and the Pareto-frontier result payload.
//
// This header is deliberately light — analysis/request.hpp includes it to
// ride kind=harden through evaluate/batch/manifest/serve, so it may only
// depend on option/result types that the request vocabulary already pulls
// in (fault campaign options, CEC options, voter styles). The transform and
// optimizer logic live in harden/transform.hpp and harden/pareto.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/static_reason.hpp"
#include "fault/campaign.hpp"
#include "ft/voter.hpp"

namespace enb::harden {

// How redundancy is inserted.
enum class Style : std::uint8_t {
  kTmr,        // triplicate + MAJ vote: single faults masked
  kDwc,        // duplicate + compare: faults flagged on check outputs
  kSelective,  // TMR on only the top-K output cones ranked by the fault
               // engine's first-detect evidence (campaign-driven)
};

// At which structural boundary protection is applied.
enum class Granularity : std::uint8_t {
  kGate,    // every protected gate gets its own replicas + voter/comparator
  kCone,    // each protected output cone is replicated independently
  kOutput,  // one shared replica of the whole protected region, voted or
            // compared at the primary outputs
};

[[nodiscard]] const char* to_string(Style style) noexcept;
[[nodiscard]] const char* to_string(Granularity granularity) noexcept;
[[nodiscard]] std::optional<Style> parse_style(std::string_view name);
[[nodiscard]] std::optional<Granularity> parse_granularity(
    std::string_view name);

// One concrete insertion: the (style, granularity, K, voter) tuple
// harden_transform realizes.
struct TransformOptions {
  Style style = Style::kTmr;
  Granularity granularity = Granularity::kOutput;
  // kSelective only: number of output cones protected (clamped to the
  // output count; 0 protects nothing).
  std::uint32_t top_k = 0;
  ft::VoterStyle voter = ft::VoterStyle::kMajGate;
};

// Campaign defaults for hardening sweeps: untestable classes are pruned so
// statically undetectable faults never skew cone ranking or the protection
// axis (the PR 8 prover guarantees pruning never changes a detectable row).
[[nodiscard]] inline fault::CampaignOptions default_sweep_campaign() {
  fault::CampaignOptions options;
  options.prune_untestable = true;
  return options;
}

// Options of one kind=harden request: which slice of the style x
// granularity x K space to sweep and the evaluation knobs. Everything here
// is value-relevant and appears in the canonical spec.
struct SweepOptions {
  // Restrict the sweep to one style / granularity; nullopt sweeps all.
  std::optional<Style> style;
  std::optional<Granularity> granularity;
  // Selective cone count: 0 sweeps a K ladder (1, 2, 4, ... below the
  // output count), a positive value pins that single K.
  std::uint32_t top_k = 0;
  ft::VoterStyle voter = ft::VoterStyle::kMajGate;
  // Fault campaign shape used both for cone ranking on the base circuit and
  // for grading every candidate.
  fault::CampaignOptions campaign = default_sweep_campaign();
  // Equivalence-oracle knobs for the per-candidate proof.
  analysis::CecOptions cec;
  // Energy-bound operating point.
  double epsilon = 0.01;
  double delta = 0.01;
  double leakage_fraction = 0.5;
};

// One evaluated point of the sweep. `label` is the stable human-readable
// identity ("base", "tmr/gate", "selective/cone/k2") the CLI table, emitted
// .bench filenames, and tests key on.
struct Candidate {
  std::string label;
  bool hardened = false;  // false only for the unprotected baseline
  Style style = Style::kTmr;
  Granularity granularity = Granularity::kOutput;
  std::uint32_t top_k = 0;
  // Equivalence verdict vs the base (the baseline is trivially equivalent);
  // a refuted or inconclusive candidate never reaches the frontier.
  bool equivalent = false;
  bool lint_clean = false;
  // Axes: gate-count area, energy-bound total factor (lower is better), and
  // the protection fraction — classes that never silently corrupt a primary
  // output (masked, or first detected at a DWC check output).
  std::uint64_t gates = 0;
  double energy_factor = 0.0;
  double protection = 0.0;
  // Raw campaign detection coverage (observability — TMR masks detections
  // away, selective keeps them; reported alongside the frontier axes).
  double coverage = 0.0;
  std::uint64_t voter_gates = 0;
  std::uint64_t check_outputs = 0;
  bool on_frontier = false;

  friend bool operator==(const Candidate&, const Candidate&) = default;
};

// The kind=harden result payload: every candidate in deterministic
// enumeration order plus the non-dominated subset over
// (energy_factor down, protection up, gates down).
struct ParetoResult {
  std::vector<Candidate> candidates;
  std::vector<std::uint32_t> frontier;  // candidate indices, ascending
  std::uint64_t refuted = 0;            // candidates with a CEC refutation
  std::uint64_t lint_errors = 0;        // candidates with lint errors

  friend bool operator==(const ParetoResult&, const ParetoResult&) = default;
};

}  // namespace enb::harden
