#include "harden/types.hpp"

namespace enb::harden {

const char* to_string(Style style) noexcept {
  switch (style) {
    case Style::kTmr:
      return "tmr";
    case Style::kDwc:
      return "dwc";
    case Style::kSelective:
      return "selective";
  }
  return "unknown";
}

const char* to_string(Granularity granularity) noexcept {
  switch (granularity) {
    case Granularity::kGate:
      return "gate";
    case Granularity::kCone:
      return "cone";
    case Granularity::kOutput:
      return "output";
  }
  return "unknown";
}

std::optional<Style> parse_style(std::string_view name) {
  if (name == "tmr") return Style::kTmr;
  if (name == "dwc") return Style::kDwc;
  if (name == "selective") return Style::kSelective;
  return std::nullopt;
}

std::optional<Granularity> parse_granularity(std::string_view name) {
  if (name == "gate") return Granularity::kGate;
  if (name == "cone") return Granularity::kCone;
  if (name == "output") return Granularity::kOutput;
  return std::nullopt;
}

}  // namespace enb::harden
