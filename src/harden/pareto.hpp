// The optimization half of src/harden/: sweep the style x granularity x K
// space, prove every variant equivalent to its base, grade each through the
// existing batch engine (energy bound + fault campaign), and emit the
// non-dominated frontier over (energy factor, protection, gate area).
//
// Everything is deterministic: candidate enumeration is a fixed order,
// transforms are pure functions of (base, config, ranking), campaigns and
// energy bounds follow the exec determinism contract, and the frontier
// breaks exact ties toward the earliest candidate — so a sweep's result is
// bit-identical for any thread count and safe to key on its canonical spec
// in the serve result cache.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/compiled_circuit.hpp"
#include "exec/thread_pool.hpp"
#include "harden/transform.hpp"
#include "harden/types.hpp"

namespace enb::harden {

// The transform configs a sweep evaluates, in deterministic order (styles
// tmr, dwc, selective; granularities gate, cone, output; selective expands
// over a K ladder of 1, 2, 4, ... strictly below the output count unless
// options.top_k pins one K). The unprotected baseline is implicit and always
// candidate 0 of the sweep result.
[[nodiscard]] std::vector<TransformOptions> enumerate_candidates(
    std::size_t num_outputs, const SweepOptions& options);

// Runs the full sweep over `base`:
//   1. evaluates the base (energy bound + campaign — also the selective
//      cone-ranking evidence),
//   2. builds every candidate, proves it output-equivalent with the
//      static-reasoning oracle, lints it (--allow-voter-replicas), and
//      grades it through one exec::BatchEvaluator batch,
//   3. computes the non-dominated frontier over (energy_factor down,
//      protection up, gates down) across the equivalent, lint-clean
//      candidates.
// Throws std::invalid_argument / std::runtime_error on unusable inputs or a
// failed candidate evaluation (batch error isolation surfaces it per job).
[[nodiscard]] ParetoResult pareto_sweep(const analysis::CompiledCircuit& base,
                                        const SweepOptions& options,
                                        exec::Parallelism how = {});

// Rebuilds the hardened netlist behind one sweep candidate — transforms are
// deterministic, so the CLI's --emit regenerates winners instead of the
// result payload carrying whole circuits through caches. Selective ranking
// is recomputed from the base campaign. Precondition: candidate.hardened.
[[nodiscard]] HardenedCircuit rebuild_candidate(const netlist::Circuit& base,
                                                const SweepOptions& options,
                                                const Candidate& candidate,
                                                exec::Parallelism how = {});

// The frontier axis derived from a candidate campaign: the fraction of
// graded fault classes that never *silently* corrupt a primary output —
// masked entirely, or first detected at a check output (DWC comparators
// fire at any pattern where a duplicated gate misbehaves, so a flagged
// corruption counts as protected).
[[nodiscard]] double protection_of(const fault::FaultCampaignResult& campaign,
                                   std::size_t primary_outputs);

}  // namespace enb::harden
