// Automatic redundancy insertion: the transformation half of src/harden/.
//
// harden_transform takes any combinational netlist::Circuit and inserts
// protection at a configurable granularity in three styles:
//
//   TMR        — triplicated logic with explicit MAJ voter placement; a
//                single fault inside any replica is masked at the voted
//                boundary.
//   DWC        — duplication with comparison; primary outputs keep the base
//                behaviour (copy A drives them) and every comparator is
//                exposed as a check primary output appended *after* the base
//                outputs, so a variant restricted to its first
//                `base_outputs` ports is output-equivalent to the base.
//   selective  — TMR applied only to the top-K output cones, ranked by the
//                fault engine's per-class first-detect evidence
//                (rank_output_cones); unprotected cones keep base logic.
//
// Every transform is a pure append-only rebuild (ids stay topological) and
// deterministic: the same (base, options, ranking) always produces the same
// circuit, which is what lets the optimizer's results ride the serve result
// cache keyed on canonical specs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "analysis/lint.hpp"
#include "analysis/static_reason.hpp"
#include "harden/types.hpp"
#include "netlist/circuit.hpp"

namespace enb::harden {

// A hardened variant plus the bookkeeping the optimizer and the property
// tests need to address the inserted redundancy.
struct HardenedCircuit {
  netlist::Circuit circuit;
  // The first `base_outputs` output ports carry the base functions in base
  // order; `check_outputs` DWC comparator ports follow.
  std::size_t base_outputs = 0;
  std::size_t check_outputs = 0;
  // Gates added beyond one copy of the base logic, split into redundant
  // copies and voter/comparator logic.
  std::size_t replica_gates = 0;
  std::size_t voter_gates = 0;
  // Base output positions whose cones are under protection (all positions
  // for uniform styles, the selected top-K for selective).
  std::vector<std::size_t> protected_outputs;
};

// Ranks base output positions by campaign evidence: an output's score is the
// total detection count of the fault classes first detected at it, so the
// cones that expose the most fault traffic sort first. Ties break toward the
// lower output position; outputs with no first detections rank last. The
// campaign must come from a run over `base` (vs itself).
[[nodiscard]] std::vector<std::size_t> rank_output_cones(
    const netlist::Circuit& base, const fault::FaultCampaignResult& campaign);

// Inserts protection per `options`. For Style::kSelective, `ranked` gives
// the output-cone priority order (see rank_output_cones); when empty, output
// positions are taken in ascending order. Uniform styles ignore `ranked`.
// Throws std::invalid_argument when the base has no outputs.
[[nodiscard]] HardenedCircuit harden_transform(
    const netlist::Circuit& base, const TransformOptions& options,
    std::span<const std::size_t> ranked = {});

// Proves the variant output-equivalent to its base with the static-reasoning
// oracle. DWC check outputs are excluded by restricting the variant to its
// first `base_outputs` ports (extract_cone keeps the input interface), so
// every style verifies through the same call.
[[nodiscard]] analysis::CecResult verify_hardened(
    const netlist::Circuit& base, const HardenedCircuit& variant,
    const analysis::CecOptions& options = {});

// Lints the variant with voter-replica duplication allowed (TMR replicas
// are structurally identical by construction). Hardened variants must come
// back clean() — zero errors.
[[nodiscard]] analysis::LintReport lint_hardened(
    const HardenedCircuit& variant);

}  // namespace enb::harden
