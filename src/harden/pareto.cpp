#include "harden/pareto.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "exec/batch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace enb::harden {
namespace {

struct HardenMetrics {
  obs::Counter& candidates = obs::Registry::global().counter(
      "harden-candidates-total");
  obs::Histogram& cec_seconds = obs::Registry::global().histogram(
      "harden-cec-seconds");
  obs::Gauge& frontier_size = obs::Registry::global().gauge(
      "harden-frontier-size");
};

HardenMetrics& harden_metrics() {
  static HardenMetrics metrics;
  return metrics;
}

std::string candidate_label(const TransformOptions& config) {
  std::string label = to_string(config.style);
  label += '/';
  label += to_string(config.granularity);
  if (config.style == Style::kSelective) {
    label += "/k" + std::to_string(config.top_k);
  }
  return label;
}

analysis::AnalysisRequest energy_request(const analysis::CompiledCircuit& c,
                                         std::string name,
                                         const SweepOptions& options) {
  analysis::AnalysisRequest request;
  request.name = std::move(name);
  request.circuit = c;
  analysis::EnergyBoundRequest spec;
  spec.epsilon = options.epsilon;
  spec.delta = options.delta;
  spec.energy.leakage_fraction = options.leakage_fraction;
  request.options = spec;
  return request;
}

analysis::AnalysisRequest campaign_request(const analysis::CompiledCircuit& c,
                                           std::string name,
                                           const SweepOptions& options) {
  analysis::AnalysisRequest request;
  request.name = std::move(name);
  request.circuit = c;
  analysis::FaultCampaignRequest spec;
  spec.options = options.campaign;
  request.options = spec;
  return request;
}

// Unwraps one (energy, campaign) result pair; a failed candidate evaluation
// fails the whole sweep with the offending job named (batch error isolation
// then surfaces it as this request's error).
const core::BoundReport& bound_of(const analysis::AnalysisResult& result) {
  if (!result.ok || result.get<core::BoundReport>() == nullptr) {
    throw std::runtime_error("harden: energy evaluation failed for '" +
                             result.name + "': " + result.error);
  }
  return *result.get<core::BoundReport>();
}

const fault::FaultCampaignResult& campaign_of(
    const analysis::AnalysisResult& result) {
  if (!result.ok || result.get<fault::FaultCampaignResult>() == nullptr) {
    throw std::runtime_error("harden: campaign evaluation failed for '" +
                             result.name + "': " + result.error);
  }
  return *result.get<fault::FaultCampaignResult>();
}

// Non-dominated filter over (energy_factor down, protection up, gates down)
// across equivalent, lint-clean candidates. Exact ties break toward the
// earliest candidate in enumeration order, so the frontier is deterministic
// even when two configs land on identical axes.
void compute_frontier(ParetoResult& result) {
  const std::vector<Candidate>& c = result.candidates;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (!c[i].equivalent || !c[i].lint_clean) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < c.size() && !dominated; ++j) {
      if (j == i || !c[j].equivalent || !c[j].lint_clean) continue;
      const bool no_worse = c[j].energy_factor <= c[i].energy_factor &&
                            c[j].protection >= c[i].protection &&
                            c[j].gates <= c[i].gates;
      if (!no_worse) continue;
      const bool strictly_better = c[j].energy_factor < c[i].energy_factor ||
                                   c[j].protection > c[i].protection ||
                                   c[j].gates < c[i].gates;
      dominated = strictly_better || j < i;
    }
    if (!dominated) {
      result.candidates[i].on_frontier = true;
      result.frontier.push_back(static_cast<std::uint32_t>(i));
    }
  }
}

}  // namespace

double protection_of(const fault::FaultCampaignResult& campaign,
                     std::size_t primary_outputs) {
  if (campaign.sampled == 0) return 1.0;
  std::uint64_t silent = 0;
  const std::size_t classes = std::min(campaign.detection_counts.size(),
                                       campaign.first_detect_output.size());
  for (std::size_t cls = 0; cls < classes; ++cls) {
    if (campaign.detection_counts[cls] != 0 &&
        campaign.first_detect_output[cls] < primary_outputs) {
      ++silent;
    }
  }
  return static_cast<double>(campaign.sampled - silent) /
         static_cast<double>(campaign.sampled);
}

std::vector<TransformOptions> enumerate_candidates(std::size_t num_outputs,
                                                   const SweepOptions& options) {
  std::vector<Style> styles;
  if (options.style.has_value()) {
    styles.push_back(*options.style);
  } else {
    styles = {Style::kTmr, Style::kDwc, Style::kSelective};
  }
  std::vector<Granularity> granularities;
  if (options.granularity.has_value()) {
    granularities.push_back(*options.granularity);
  } else {
    granularities = {Granularity::kGate, Granularity::kCone,
                     Granularity::kOutput};
  }
  std::vector<std::uint32_t> ladder;
  if (options.top_k > 0) {
    ladder.push_back(options.top_k);
  } else {
    for (std::uint32_t k = 1; k < num_outputs; k *= 2) ladder.push_back(k);
  }
  std::vector<TransformOptions> configs;
  for (const Style style : styles) {
    for (const Granularity granularity : granularities) {
      TransformOptions config;
      config.style = style;
      config.granularity = granularity;
      config.voter = options.voter;
      if (style != Style::kSelective) {
        configs.push_back(config);
        continue;
      }
      for (const std::uint32_t k : ladder) {
        config.top_k = k;
        configs.push_back(config);
      }
    }
  }
  return configs;
}

ParetoResult pareto_sweep(const analysis::CompiledCircuit& base,
                          const SweepOptions& options, exec::Parallelism how) {
  const netlist::Circuit& circuit = base.circuit();
  if (circuit.num_outputs() == 0) {
    throw std::invalid_argument("harden: base circuit has no outputs");
  }
  const obs::Span span("harden-sweep", {}, base.name());
  HardenMetrics& metrics = harden_metrics();

  // Phase 1: the base point — its campaign doubles as the selective-ranking
  // evidence, and its energy bound shares the handle's cached extraction.
  std::vector<analysis::AnalysisRequest> base_requests;
  base_requests.push_back(energy_request(base, "base:energy", options));
  base_requests.push_back(campaign_request(base, "base:campaign", options));
  const std::vector<analysis::AnalysisResult> base_results =
      exec::evaluate_requests(std::move(base_requests), how);
  const core::BoundReport base_bound = bound_of(base_results[0]);
  const fault::FaultCampaignResult base_campaign = campaign_of(base_results[1]);
  const std::vector<std::size_t> ranking =
      rank_output_cones(circuit, base_campaign);

  ParetoResult result;
  {
    Candidate baseline;
    baseline.label = "base";
    baseline.hardened = false;
    baseline.equivalent = true;
    baseline.lint_clean =
        analysis::lint_circuit(circuit, {.allow_voter_replicas = true}).clean();
    baseline.gates = circuit.gate_count();
    baseline.energy_factor = base_bound.energy.total_factor;
    baseline.protection = protection_of(base_campaign, circuit.num_outputs());
    baseline.coverage = base_campaign.coverage;
    result.candidates.push_back(std::move(baseline));
  }

  // Phase 2: build, prove, lint, and grade every candidate. The proofs run
  // serially (they are already cheap next to the campaigns); the grading
  // requests all land in one batch so their shards interleave.
  const std::vector<TransformOptions> configs =
      enumerate_candidates(circuit.num_outputs(), options);
  metrics.candidates.add(configs.size() + 1);

  std::vector<HardenedCircuit> variants;
  variants.reserve(configs.size());
  std::vector<analysis::CompiledCircuit> handles;
  handles.reserve(configs.size());
  std::vector<analysis::AnalysisRequest> requests;
  requests.reserve(configs.size() * 2);
  for (const TransformOptions& config : configs) {
    const std::string label = candidate_label(config);
    HardenedCircuit variant = harden_transform(circuit, config, ranking);

    Candidate candidate;
    candidate.label = label;
    candidate.hardened = true;
    candidate.style = config.style;
    candidate.granularity = config.granularity;
    candidate.top_k = config.top_k;
    candidate.gates = variant.circuit.gate_count();
    candidate.voter_gates = variant.voter_gates;
    candidate.check_outputs = variant.check_outputs;

    const auto start = std::chrono::steady_clock::now();
    const analysis::CecResult proof =
        verify_hardened(circuit, variant, options.cec);
    metrics.cec_seconds.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
    candidate.equivalent = proof.equivalent;
    if (!proof.equivalent && !proof.inconclusive) result.refuted += 1;

    const analysis::LintReport lint = lint_hardened(variant);
    candidate.lint_clean = lint.clean();
    result.lint_errors += lint.errors();

    analysis::CompiledCircuit handle =
        analysis::compile(std::move(variant.circuit));
    requests.push_back(energy_request(handle, label + ":energy", options));
    requests.push_back(campaign_request(handle, label + ":campaign", options));
    handles.push_back(std::move(handle));
    variant.circuit = netlist::Circuit();
    variants.push_back(std::move(variant));
    result.candidates.push_back(std::move(candidate));
  }

  const std::vector<analysis::AnalysisResult> graded =
      exec::evaluate_requests(std::move(requests), how);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    Candidate& candidate = result.candidates[i + 1];
    candidate.energy_factor = bound_of(graded[2 * i]).energy.total_factor;
    const fault::FaultCampaignResult& campaign = campaign_of(graded[2 * i + 1]);
    candidate.protection =
        protection_of(campaign, variants[i].base_outputs);
    candidate.coverage = campaign.coverage;
  }

  compute_frontier(result);
  metrics.frontier_size.set(static_cast<double>(result.frontier.size()));
  return result;
}

HardenedCircuit rebuild_candidate(const netlist::Circuit& base,
                                  const SweepOptions& options,
                                  const Candidate& candidate,
                                  exec::Parallelism how) {
  if (!candidate.hardened) {
    throw std::invalid_argument(
        "harden: the baseline candidate has no transform to rebuild");
  }
  TransformOptions config;
  config.style = candidate.style;
  config.granularity = candidate.granularity;
  config.top_k = candidate.top_k;
  config.voter = options.voter;
  std::vector<std::size_t> ranking;
  if (config.style == Style::kSelective) {
    const fault::FaultCampaignResult campaign =
        fault::run_campaign(base, nullptr, options.campaign, how);
    ranking = rank_output_cones(base, campaign);
  }
  return harden_transform(base, config, ranking);
}

}  // namespace enb::harden
