// Sequential benchmark generators: LFSR, binary counter, shift register and
// a small Moore-machine sequence detector — the sequential counterparts of
// src/gen for the future-work experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/seq_circuit.hpp"

namespace enb::seq {

// Fibonacci LFSR over `bits` stages; `taps` are stage indices XORed into the
// feedback (must include bits-1 for full period choices). State initialized
// to 0...01 so the register never locks at all-zeros. Outputs: the serial
// output bit (stage 0).
[[nodiscard]] SeqCircuit lfsr(int bits, const std::vector<int>& taps);

// The canonical maximal-period taps for a few widths (4: x^4+x^3+1, ...).
[[nodiscard]] SeqCircuit lfsr_maximal(int bits);

// Synchronous binary up-counter with enable input; outputs all state bits
// plus the carry-out.
[[nodiscard]] SeqCircuit counter(int bits);

// Serial-in shift register; outputs the last stage.
[[nodiscard]] SeqCircuit shift_register(int bits);

// Moore detector asserting its output after seeing the bit pattern
// `pattern` (LSB first) on the serial input.
[[nodiscard]] SeqCircuit sequence_detector(std::uint32_t pattern, int length);

}  // namespace enb::seq
