#include "seq/seq_bench_io.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "netlist/bench_io.hpp"

namespace enb::seq {

namespace {

// Splits the file into DFF definitions and a purely combinational remainder.
// "q = DFF(d)" turns q into an INPUT declaration of the core and records the
// (q, d) pair; everything else passes through to the combinational reader.
struct SplitBench {
  std::string combinational;
  std::vector<std::pair<std::string, std::string>> dffs;  // (q, d)
};

std::string strip(const std::string& text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])) != 0) --e;
  return text.substr(b, e - b);
}

SplitBench split_sequential(std::istream& in) {
  SplitBench split;
  std::ostringstream comb;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = raw;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string stripped = strip(line);
    // Detect "<lhs> = DFF(<rhs>)" case-insensitively.
    const std::size_t eq = stripped.find('=');
    bool is_dff = false;
    if (eq != std::string::npos) {
      std::string rhs = strip(stripped.substr(eq + 1));
      std::string upper;
      for (char ch : rhs) upper += static_cast<char>(std::toupper(
          static_cast<unsigned char>(ch)));
      if (upper.rfind("DFF", 0) == 0) {
        const std::size_t open = rhs.find('(');
        const std::size_t close = rhs.rfind(')');
        if (open == std::string::npos || close == std::string::npos ||
            close <= open) {
          throw netlist::BenchParseError(
              "seq bench parse error at line " + std::to_string(line_no) +
              ": malformed DFF");
        }
        const std::string q = strip(stripped.substr(0, eq));
        const std::string d = strip(rhs.substr(open + 1, close - open - 1));
        if (q.empty() || d.empty()) {
          throw netlist::BenchParseError(
              "seq bench parse error at line " + std::to_string(line_no) +
              ": DFF needs a target and one operand");
        }
        split.dffs.emplace_back(q, d);
        comb << "INPUT(" << q << ")\n";  // present state feeds the core
        is_dff = true;
      }
    }
    if (!is_dff) comb << raw << "\n";
  }
  split.combinational = comb.str();
  return split;
}

}  // namespace

SeqCircuit read_seq_bench(std::istream& in, std::string name) {
  const SplitBench split = split_sequential(in);
  SeqCircuit seq(name);
  // Parse the combinational remainder; DFF data signals must resolve, so
  // reference them via dummy outputs, then map them back to node ids.
  std::string text = split.combinational;
  for (const auto& [q, d] : split.dffs) {
    (void)q;
    text += "OUTPUT(" + d + ")\n";  // force materialization of d
  }
  netlist::Circuit parsed = netlist::read_bench_string(text, name);

  // The forced outputs are the last dffs.size() entries; record their nodes
  // and rebuild the circuit without them.
  const std::size_t real_outputs =
      parsed.num_outputs() - split.dffs.size();
  std::vector<netlist::NodeId> dff_data;
  for (std::size_t i = 0; i < split.dffs.size(); ++i) {
    dff_data.push_back(parsed.outputs()[real_outputs + i]);
  }

  netlist::Circuit& core = seq.core();
  // Clone nodes 1:1 (parsed ids are topological).
  std::vector<netlist::NodeId> map(parsed.node_count());
  for (netlist::NodeId id = 0; id < parsed.node_count(); ++id) {
    const auto& node = parsed.node(id);
    if (node.type == netlist::GateType::kInput) {
      map[id] = core.add_input(parsed.node_name(id));
    } else if (netlist::is_constant(node.type)) {
      map[id] = core.add_const(node.type == netlist::GateType::kConst1);
    } else {
      std::vector<netlist::NodeId> fanins;
      for (netlist::NodeId f : node.fanins) fanins.push_back(map[f]);
      map[id] = core.add_gate(node.type, std::move(fanins));
      core.set_node_name(map[id], parsed.node_name(id));
    }
  }
  for (std::size_t pos = 0; pos < real_outputs; ++pos) {
    core.add_output(map[parsed.outputs()[pos]], parsed.output_name(pos));
  }
  // Register latches: find each q's input node by name.
  for (std::size_t i = 0; i < split.dffs.size(); ++i) {
    const std::string& q = split.dffs[i].first;
    netlist::NodeId q_node = netlist::kInvalidNode;
    for (netlist::NodeId id : core.inputs()) {
      if (core.node_name(id) == q) {
        q_node = id;
        break;
      }
    }
    if (q_node == netlist::kInvalidNode) {
      throw netlist::BenchParseError("seq bench: lost DFF target " + q);
    }
    seq.add_latch(q_node, map[dff_data[i]], false, q);
  }
  return seq;
}

SeqCircuit read_seq_bench_string(const std::string& text, std::string name) {
  std::istringstream in(text);
  return read_seq_bench(in, std::move(name));
}

SeqCircuit read_seq_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw netlist::BenchParseError("cannot open bench file: " + path);
  }
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const std::size_t dot = name.rfind('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return read_seq_bench(in, std::move(name));
}

void write_seq_bench(const SeqCircuit& seq, std::ostream& out) {
  const netlist::Circuit& core = seq.core();
  out << "# " << (seq.name().empty() ? "enbound sequential circuit"
                                     : seq.name())
      << "\n";
  for (netlist::NodeId id : seq.free_inputs()) {
    out << "INPUT(" << core.node_name(id) << ")\n";
  }
  for (netlist::NodeId id : core.outputs()) {
    out << "OUTPUT(" << core.node_name(id) << ")\n";
  }
  for (const Latch& latch : seq.latches()) {
    out << core.node_name(latch.state_output) << " = DFF("
        << core.node_name(latch.next_state) << ")\n";
  }
  for (netlist::NodeId id = 0; id < core.node_count(); ++id) {
    const auto& node = core.node(id);
    if (node.type == netlist::GateType::kInput) continue;
    out << core.node_name(id) << " = " << to_string(node.type) << "(";
    for (std::size_t i = 0; i < node.fanins.size(); ++i) {
      if (i != 0) out << ", ";
      out << core.node_name(node.fanins[i]);
    }
    out << ")\n";
  }
}

std::string write_seq_bench_string(const SeqCircuit& seq) {
  std::ostringstream out;
  write_seq_bench(seq, out);
  return out.str();
}

}  // namespace enb::seq
