#include "seq/seq_gen.hpp"

#include <stdexcept>
#include <string>

#include "gen/adders.hpp"

namespace enb::seq {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

SeqCircuit lfsr(int bits, const std::vector<int>& taps) {
  if (bits < 2) throw std::invalid_argument("lfsr: bits must be >= 2");
  if (taps.empty()) throw std::invalid_argument("lfsr: need at least one tap");
  for (int t : taps) {
    if (t < 0 || t >= bits) {
      throw std::invalid_argument("lfsr: tap " + std::to_string(t) +
                                  " out of range");
    }
  }
  SeqCircuit seq("lfsr" + std::to_string(bits));
  Circuit& c = seq.core();
  std::vector<NodeId> stage;
  for (int i = 0; i < bits; ++i) {
    stage.push_back(c.add_input("q" + std::to_string(i)));
  }
  // Feedback = XOR of tapped stages.
  NodeId feedback = stage[static_cast<std::size_t>(taps[0])];
  for (std::size_t i = 1; i < taps.size(); ++i) {
    feedback = c.add_gate(GateType::kXor, feedback,
                          stage[static_cast<std::size_t>(taps[i])]);
  }
  if (taps.size() == 1) {
    // Degenerate single-tap: insert a buffer so next_state is a gate node.
    feedback = c.add_gate(GateType::kBuf, feedback);
  }
  c.add_output(stage[0], "serial");
  // Shift toward stage 0: q_i <= q_{i+1}; q_{bits-1} <= feedback. Initial
  // state 0...01 avoids the all-zero lock state.
  for (int i = 0; i < bits - 1; ++i) {
    seq.add_latch(stage[static_cast<std::size_t>(i)],
                  stage[static_cast<std::size_t>(i + 1)], i == 0,
                  "q" + std::to_string(i));
  }
  seq.add_latch(stage[static_cast<std::size_t>(bits - 1)], feedback, false,
                "q" + std::to_string(bits - 1));
  return seq;
}

SeqCircuit lfsr_maximal(int bits) {
  // Taps (0-indexed stage numbers feeding the XOR) for maximal periods.
  switch (bits) {
    case 3:
      return lfsr(3, {0, 1});
    case 4:
      return lfsr(4, {0, 1});
    case 5:
      return lfsr(5, {0, 2});
    case 7:
      return lfsr(7, {0, 1});
    case 8:
      return lfsr(8, {0, 2, 3, 4});
    default:
      throw std::invalid_argument(
          "lfsr_maximal: no stored taps for width " + std::to_string(bits));
  }
}

SeqCircuit counter(int bits) {
  if (bits < 1) throw std::invalid_argument("counter: bits must be >= 1");
  SeqCircuit seq("counter" + std::to_string(bits));
  Circuit& c = seq.core();
  std::vector<NodeId> state;
  for (int i = 0; i < bits; ++i) {
    state.push_back(c.add_input("q" + std::to_string(i)));
  }
  const NodeId enable = c.add_input("en");
  // Increment: next_q = q XOR carry, carry' = q AND carry, carry0 = enable.
  NodeId carry = enable;
  std::vector<NodeId> next;
  for (int i = 0; i < bits; ++i) {
    next.push_back(c.add_gate(GateType::kXor, state[static_cast<std::size_t>(i)], carry));
    carry = c.add_gate(GateType::kAnd, state[static_cast<std::size_t>(i)], carry);
  }
  for (int i = 0; i < bits; ++i) {
    c.add_output(state[static_cast<std::size_t>(i)], "count" + std::to_string(i));
  }
  c.add_output(carry, "carry_out");
  for (int i = 0; i < bits; ++i) {
    seq.add_latch(state[static_cast<std::size_t>(i)],
                  next[static_cast<std::size_t>(i)], false,
                  "q" + std::to_string(i));
  }
  return seq;
}

SeqCircuit shift_register(int bits) {
  if (bits < 1) throw std::invalid_argument("shift_register: bits must be >= 1");
  SeqCircuit seq("shiftreg" + std::to_string(bits));
  Circuit& c = seq.core();
  std::vector<NodeId> stage;
  for (int i = 0; i < bits; ++i) {
    stage.push_back(c.add_input("q" + std::to_string(i)));
  }
  const NodeId serial_in = c.add_input("d");
  // Latch inputs must be core nodes; buffer the pass-throughs so the next
  // state is always a gate output (keeps fault injection meaningful: every
  // latch input passes through at least one failure-prone device per cycle).
  std::vector<NodeId> next;
  next.push_back(c.add_gate(GateType::kBuf, serial_in));
  for (int i = 1; i < bits; ++i) {
    next.push_back(c.add_gate(GateType::kBuf, stage[static_cast<std::size_t>(i - 1)]));
  }
  c.add_output(stage[static_cast<std::size_t>(bits - 1)], "out");
  for (int i = 0; i < bits; ++i) {
    seq.add_latch(stage[static_cast<std::size_t>(i)],
                  next[static_cast<std::size_t>(i)], false,
                  "q" + std::to_string(i));
  }
  return seq;
}

SeqCircuit sequence_detector(std::uint32_t pattern, int length) {
  if (length < 1 || length > 16) {
    throw std::invalid_argument("sequence_detector: length must be in [1, 16]");
  }
  SeqCircuit seq("seqdet" + std::to_string(length));
  Circuit& c = seq.core();
  // Shift the last `length` input bits through latches and compare.
  std::vector<NodeId> window;
  for (int i = 0; i < length; ++i) {
    window.push_back(c.add_input("w" + std::to_string(i)));
  }
  const NodeId in = c.add_input("x");
  std::vector<NodeId> next;
  next.push_back(c.add_gate(GateType::kBuf, in));
  for (int i = 1; i < length; ++i) {
    next.push_back(c.add_gate(GateType::kBuf, window[static_cast<std::size_t>(i - 1)]));
  }
  // Match = AND over literal agreement with the pattern bits.
  std::vector<NodeId> literals;
  for (int i = 0; i < length; ++i) {
    const bool want = ((pattern >> i) & 1U) != 0;
    literals.push_back(want
                           ? window[static_cast<std::size_t>(i)]
                           : c.add_gate(GateType::kNot,
                                        window[static_cast<std::size_t>(i)]));
  }
  const NodeId match = literals.size() == 1
                           ? literals[0]
                           : c.add_gate(GateType::kAnd, literals);
  c.add_output(match, "detected");
  for (int i = 0; i < length; ++i) {
    seq.add_latch(window[static_cast<std::size_t>(i)],
                  next[static_cast<std::size_t>(i)], false,
                  "w" + std::to_string(i));
  }
  return seq;
}

}  // namespace enb::seq
