#include "seq/seq_circuit.hpp"

#include <stdexcept>
#include <string>
#include <unordered_set>

namespace enb::seq {

using netlist::NodeId;

void SeqCircuit::add_latch(NodeId state_output, NodeId next_state,
                           bool initial_value, std::string name) {
  if (!core_.is_valid(state_output) || !core_.is_valid(next_state)) {
    throw std::invalid_argument("add_latch: invalid node id");
  }
  if (core_.input_index(state_output) < 0) {
    throw std::invalid_argument(
        "add_latch: state output must be a core primary input");
  }
  for (const Latch& latch : latches_) {
    if (latch.state_output == state_output) {
      throw std::invalid_argument("add_latch: input already latched: " +
                                  core_.node_name(state_output));
    }
  }
  latches_.push_back(
      Latch{state_output, next_state, initial_value, std::move(name)});
}

std::vector<NodeId> SeqCircuit::free_inputs() const {
  std::unordered_set<NodeId> latched;
  for (const Latch& latch : latches_) latched.insert(latch.state_output);
  std::vector<NodeId> free;
  for (NodeId id : core_.inputs()) {
    if (latched.count(id) == 0) free.push_back(id);
  }
  return free;
}

void SeqCircuit::validate() const {
  if (core_.num_outputs() == 0 && latches_.empty()) {
    throw std::runtime_error(
        "SeqCircuit: no outputs and no latches — nothing observable");
  }
}

}  // namespace enb::seq
