#include "seq/unroll.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace enb::seq {

using netlist::Circuit;
using netlist::NodeId;

Circuit unroll(const SeqCircuit& seq, const UnrollOptions& options) {
  if (options.frames < 1) {
    throw std::invalid_argument("unroll: frames must be >= 1");
  }
  seq.validate();
  const Circuit& core = seq.core();
  Circuit out(seq.name() + "_x" + std::to_string(options.frames));

  // Current frame's state values in latch order; frame 0 uses the initial
  // constants, or fresh inputs when analyzing the transition function.
  std::vector<NodeId> state;
  state.reserve(seq.num_latches());
  for (std::size_t l = 0; l < seq.num_latches(); ++l) {
    const Latch& latch = seq.latches()[l];
    if (options.initial_state_as_inputs) {
      const std::string base =
          latch.name.empty() ? "latch" + std::to_string(l) : latch.name;
      state.push_back(out.add_input(base + "@init"));
    } else {
      state.push_back(out.add_const(latch.initial_value));
    }
  }

  const std::vector<NodeId> free_inputs = seq.free_inputs();
  for (int frame = 0; frame < options.frames; ++frame) {
    // Build the substitution vector for the core's primary inputs.
    std::vector<NodeId> substitutes(core.num_inputs(), netlist::kInvalidNode);
    for (std::size_t l = 0; l < seq.num_latches(); ++l) {
      substitutes[static_cast<std::size_t>(
          core.input_index(seq.latches()[l].state_output))] = state[l];
    }
    for (NodeId id : free_inputs) {
      substitutes[static_cast<std::size_t>(core.input_index(id))] =
          out.add_input(core.node_name(id) + "@" + std::to_string(frame));
    }

    // Instantiate the frame. We need both the primary outputs and the
    // next-state nodes, so map the whole core via a temporary output list.
    // append_circuit returns outputs only, so instantiate against a core
    // clone whose outputs are (real outputs ++ next states).
    // Cheaper: rebuild the mapping inline.
    std::vector<NodeId> map(core.node_count(), netlist::kInvalidNode);
    for (std::size_t i = 0; i < core.num_inputs(); ++i) {
      map[core.inputs()[i]] = substitutes[i];
    }
    for (NodeId id = 0; id < core.node_count(); ++id) {
      const auto& node = core.node(id);
      if (node.type == netlist::GateType::kInput) continue;
      if (netlist::is_constant(node.type)) {
        map[id] = out.add_const(node.type == netlist::GateType::kConst1);
        continue;
      }
      std::vector<NodeId> fanins;
      fanins.reserve(node.fanins.size());
      for (NodeId f : node.fanins) fanins.push_back(map[f]);
      map[id] = out.add_gate(node.type, std::move(fanins));
    }

    if (options.outputs_every_frame || frame == options.frames - 1) {
      for (std::size_t pos = 0; pos < core.num_outputs(); ++pos) {
        out.add_output(map[core.outputs()[pos]],
                       core.output_name(pos) + "@" + std::to_string(frame));
      }
    }
    for (std::size_t l = 0; l < seq.num_latches(); ++l) {
      state[l] = map[seq.latches()[l].next_state];
    }
  }

  if (options.expose_final_state) {
    for (std::size_t l = 0; l < seq.num_latches(); ++l) {
      const std::string base = seq.latches()[l].name.empty()
                                   ? "latch" + std::to_string(l)
                                   : seq.latches()[l].name;
      out.add_output(state[l], base + "@final");
    }
  }
  return out;
}

}  // namespace enb::seq
