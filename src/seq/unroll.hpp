// Time-frame unrolling: reduces a sequential circuit to a combinational one
// so the paper's bounds apply per T-cycle computation. Frame 0 sees the
// latch initial values; frame t's latch inputs are frame t−1's next-state
// nodes; free inputs and primary outputs are replicated per frame.
#pragma once

#include "netlist/circuit.hpp"
#include "seq/seq_circuit.hpp"

namespace enb::seq {

struct UnrollOptions {
  int frames = 1;
  // Emit the core's primary outputs for every frame (true) or only for the
  // last frame (false).
  bool outputs_every_frame = true;
  // Additionally emit the final next-state vector as outputs (observing the
  // machine's state after the last cycle).
  bool expose_final_state = false;
  // Frame 0's latch values become fresh primary inputs instead of the
  // latch initial-value constants: the unrolled circuit then computes the
  // T-cycle *transition function* (state × inputs → outputs), which is what
  // the combinational bounds should be applied to — especially for
  // autonomous machines (no free inputs), whose fixed-state unrolling is a
  // constant function with vacuous bounds.
  bool initial_state_as_inputs = false;
};

// The unrolled circuit's inputs are frame-major: frame 0's free inputs, then
// frame 1's, ... Output order follows UnrollOptions.
[[nodiscard]] netlist::Circuit unroll(const SeqCircuit& seq,
                                      const UnrollOptions& options);

}  // namespace enb::seq
