// Cycle-accurate sequential simulation, clean and noisy, 64 independent
// trials per word pass. The noisy variant measures how state errors
// accumulate over cycles — the quantity the paper's combinational theory
// does not cover and its future-work section points at.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/seq_circuit.hpp"
#include "sim/bitpack.hpp"
#include "sim/prng.hpp"
#include "sim/reliability.hpp"

namespace enb::seq {

// Clean cycle simulator. Lane L of every word is an independent machine.
class SeqSim {
 public:
  explicit SeqSim(const SeqCircuit& seq);

  // Resets all lanes to the latch initial values.
  void reset();

  // Applies one clock cycle with the given free-input words (order =
  // SeqCircuit::free_inputs()). Returns the primary-output words.
  std::vector<sim::Word> step(std::span<const sim::Word> free_input_words);

  // Present-state words, in latch order.
  [[nodiscard]] const std::vector<sim::Word>& state() const noexcept {
    return state_;
  }

 private:
  const SeqCircuit* seq_;
  std::vector<sim::Word> state_;
  std::vector<sim::Word> core_inputs_;
  std::vector<sim::Word> values_;
  std::vector<sim::Word> fanin_buffer_;
  bool noisy_ = false;
  double epsilon_ = 0.0;
  std::uint64_t noise_seed_ = 0;

  friend class NoisySeqSim;
  void eval_core(std::span<const sim::Word> free_input_words,
                 sim::Xoshiro256* noise_rng);
};

// Noisy cycle simulator: every core gate output flips with probability ε per
// cycle (latches themselves are assumed reliable; gate errors corrupt the
// values they capture — matching the paper's gate-level error model).
class NoisySeqSim {
 public:
  NoisySeqSim(const SeqCircuit& seq, double epsilon, std::uint64_t seed);

  void reset();
  std::vector<sim::Word> step(std::span<const sim::Word> free_input_words);
  [[nodiscard]] const std::vector<sim::Word>& state() const noexcept {
    return inner_.state_;
  }

 private:
  SeqSim inner_;
  sim::Xoshiro256 rng_;
};

// Multi-cycle reliability: runs golden and noisy machines in lock-step on
// shared random inputs for `cycles` cycles and reports, per cycle, the
// fraction of lanes whose *output* is wrong at that cycle and whose *state*
// diverges. Trials = 64 × `word_passes`.
struct SeqReliabilityPoint {
  int cycle = 0;
  double output_error = 0.0;  // P(any primary output wrong at this cycle)
  double state_error = 0.0;   // P(any latch differs at end of this cycle)
};

struct SeqReliabilityOptions {
  int cycles = 16;
  std::uint64_t word_passes = 64;  // 64 trials each
  std::uint64_t seed = 0xCAFE;
};

[[nodiscard]] std::vector<SeqReliabilityPoint> estimate_seq_reliability(
    const SeqCircuit& seq, double epsilon,
    const SeqReliabilityOptions& options = {});

}  // namespace enb::seq
