// Sequential circuit support — the paper's first "future work" item
// ("Future work includes the treatment of sequential circuits").
//
// A SeqCircuit is a combinational core plus a set of latches (DFFs). Each
// latch's *output* is a designated primary input of the core (the present
// state) and its *input* is a designated node of the core (the next state).
// Analyses reduce to the combinational theory by time-frame unrolling
// (unroll.hpp) or run cycle-accurately (seq_sim.hpp).
#pragma once

#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace enb::seq {

struct Latch {
  netlist::NodeId state_output;  // a primary input of the core (present state)
  netlist::NodeId next_state;    // a node of the core (next state)
  bool initial_value = false;    // reset state
  std::string name;
};

class SeqCircuit {
 public:
  SeqCircuit() = default;
  explicit SeqCircuit(std::string name) : name_(std::move(name)) {}

  // The combinational core is built through this reference using the normal
  // Circuit API. Core primary inputs that are *not* registered as latch
  // outputs are the sequential circuit's free inputs.
  [[nodiscard]] netlist::Circuit& core() noexcept { return core_; }
  [[nodiscard]] const netlist::Circuit& core() const noexcept { return core_; }

  // Declares that core input `state_output` is driven by a latch whose data
  // input is core node `next_state`. Throws if state_output is not a core
  // primary input, is already latched, or next_state is invalid.
  void add_latch(netlist::NodeId state_output, netlist::NodeId next_state,
                 bool initial_value = false, std::string name = "");

  [[nodiscard]] const std::vector<Latch>& latches() const noexcept {
    return latches_;
  }
  [[nodiscard]] std::size_t num_latches() const noexcept {
    return latches_.size();
  }

  // Core primary inputs that are free (not latch outputs), in core order.
  [[nodiscard]] std::vector<netlist::NodeId> free_inputs() const;
  [[nodiscard]] std::size_t num_free_inputs() const {
    return free_inputs().size();
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Structural checks: at least one output or latch, no double-latching.
  void validate() const;

 private:
  std::string name_;
  netlist::Circuit core_;
  std::vector<Latch> latches_;
};

}  // namespace enb::seq
