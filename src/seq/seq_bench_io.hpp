// Sequential .bench I/O: the standard ISCAS'89-style dialect where
//   q = DFF(d)
// declares a flip-flop. The reader builds a SeqCircuit (DFF outputs become
// core primary inputs, DFF data nodes become latch inputs); the writer emits
// the reverse. Initial state defaults to 0, matching common .bench usage.
#pragma once

#include <iosfwd>
#include <string>

#include "seq/seq_circuit.hpp"

namespace enb::seq {

[[nodiscard]] SeqCircuit read_seq_bench(std::istream& in,
                                        std::string name = "");
[[nodiscard]] SeqCircuit read_seq_bench_string(const std::string& text,
                                               std::string name = "");
[[nodiscard]] SeqCircuit read_seq_bench_file(const std::string& path);

void write_seq_bench(const SeqCircuit& seq, std::ostream& out);
[[nodiscard]] std::string write_seq_bench_string(const SeqCircuit& seq);

}  // namespace enb::seq
