#include "seq/seq_sim.hpp"

#include <stdexcept>

#include "sim/prng.hpp"

namespace enb::seq {

using netlist::GateType;
using netlist::NodeId;
using sim::Word;

SeqSim::SeqSim(const SeqCircuit& seq)
    : seq_(&seq),
      state_(seq.num_latches(), 0),
      values_(seq.core().node_count(), 0) {
  seq.validate();
  reset();
}

void SeqSim::reset() {
  for (std::size_t l = 0; l < seq_->num_latches(); ++l) {
    state_[l] = seq_->latches()[l].initial_value ? sim::kAllOnes : 0;
  }
}

void SeqSim::eval_core(std::span<const Word> free_input_words,
                       sim::Xoshiro256* noise_rng) {
  const netlist::Circuit& core = seq_->core();
  const std::vector<NodeId> free = seq_->free_inputs();
  if (free_input_words.size() != free.size()) {
    throw std::invalid_argument("SeqSim::step: free input count mismatch");
  }
  // Scatter input words: latch outputs from state, free inputs from caller.
  core_inputs_.assign(core.num_inputs(), 0);
  for (std::size_t l = 0; l < seq_->num_latches(); ++l) {
    core_inputs_[static_cast<std::size_t>(
        core.input_index(seq_->latches()[l].state_output))] = state_[l];
  }
  for (std::size_t i = 0; i < free.size(); ++i) {
    core_inputs_[static_cast<std::size_t>(core.input_index(free[i]))] =
        free_input_words[i];
  }
  for (NodeId id = 0; id < core.node_count(); ++id) {
    const auto& node = core.node(id);
    if (node.type == GateType::kInput) {
      values_[id] =
          core_inputs_[static_cast<std::size_t>(core.input_index(id))];
      continue;
    }
    fanin_buffer_.clear();
    for (NodeId f : node.fanins) fanin_buffer_.push_back(values_[f]);
    Word v = netlist::eval_word(node.type, fanin_buffer_);
    if (noise_rng != nullptr && counts_as_gate(node.type) && epsilon_ > 0.0) {
      v ^= sim::bernoulli_word(*noise_rng, epsilon_);
    }
    values_[id] = v;
  }
  // Latch the next state.
  for (std::size_t l = 0; l < seq_->num_latches(); ++l) {
    state_[l] = values_[seq_->latches()[l].next_state];
  }
}

std::vector<Word> SeqSim::step(std::span<const Word> free_input_words) {
  eval_core(free_input_words, nullptr);
  std::vector<Word> outs;
  outs.reserve(seq_->core().num_outputs());
  for (NodeId id : seq_->core().outputs()) outs.push_back(values_[id]);
  return outs;
}

NoisySeqSim::NoisySeqSim(const SeqCircuit& seq, double epsilon,
                         std::uint64_t seed)
    : inner_(seq), rng_(seed) {
  if (epsilon < 0.0 || epsilon > 0.5) {
    throw std::invalid_argument("NoisySeqSim: epsilon must be in [0, 0.5]");
  }
  inner_.epsilon_ = epsilon;
}

void NoisySeqSim::reset() { inner_.reset(); }

std::vector<Word> NoisySeqSim::step(std::span<const Word> free_input_words) {
  inner_.eval_core(free_input_words, &rng_);
  std::vector<Word> outs;
  outs.reserve(inner_.seq_->core().num_outputs());
  for (NodeId id : inner_.seq_->core().outputs()) {
    outs.push_back(inner_.values_[id]);
  }
  return outs;
}

std::vector<SeqReliabilityPoint> estimate_seq_reliability(
    const SeqCircuit& seq, double epsilon,
    const SeqReliabilityOptions& options) {
  if (options.cycles < 1 || options.word_passes < 1) {
    throw std::invalid_argument(
        "estimate_seq_reliability: cycles and word_passes must be >= 1");
  }
  const std::size_t free_count = seq.free_inputs().size();
  std::vector<std::uint64_t> output_failures(
      static_cast<std::size_t>(options.cycles), 0);
  std::vector<std::uint64_t> state_failures(
      static_cast<std::size_t>(options.cycles), 0);

  sim::Xoshiro256 rng(options.seed);
  for (std::uint64_t pass = 0; pass < options.word_passes; ++pass) {
    SeqSim golden(seq);
    NoisySeqSim noisy(seq, epsilon, rng.next());
    std::vector<Word> inputs(free_count);
    for (int cycle = 0; cycle < options.cycles; ++cycle) {
      for (Word& w : inputs) w = rng.next();
      const auto out_g = golden.step(inputs);
      const auto out_n = noisy.step(inputs);
      Word out_wrong = 0;
      for (std::size_t o = 0; o < out_g.size(); ++o) {
        out_wrong |= out_g[o] ^ out_n[o];
      }
      Word state_wrong = 0;
      for (std::size_t l = 0; l < seq.num_latches(); ++l) {
        state_wrong |= golden.state()[l] ^ noisy.state()[l];
      }
      output_failures[static_cast<std::size_t>(cycle)] +=
          static_cast<std::uint64_t>(sim::popcount(out_wrong));
      state_failures[static_cast<std::size_t>(cycle)] +=
          static_cast<std::uint64_t>(sim::popcount(state_wrong));
    }
  }

  const double trials =
      static_cast<double>(options.word_passes) * sim::kWordBits;
  std::vector<SeqReliabilityPoint> points;
  points.reserve(static_cast<std::size_t>(options.cycles));
  for (int cycle = 0; cycle < options.cycles; ++cycle) {
    SeqReliabilityPoint p;
    p.cycle = cycle;
    p.output_error =
        static_cast<double>(output_failures[static_cast<std::size_t>(cycle)]) /
        trials;
    p.state_error =
        static_cast<double>(state_failures[static_cast<std::size_t>(cycle)]) /
        trials;
    points.push_back(p);
  }
  return points;
}

}  // namespace enb::seq
