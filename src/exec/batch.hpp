// Batched multi-request evaluation: the server-workload front end of the
// parallel engine, redesigned (PR 3) around the analysis layer.
//
// A BatchEvaluator accepts a queue of typed analysis::AnalysisRequests —
// each a CompiledCircuit handle plus per-kind options — and schedules them
// over the shared ThreadPool with two-level parallelism: the Monte-Carlo
// shards of *every* request are flattened into one task space, so a long
// request's shards interleave with short requests instead of serializing
// behind them. Requests hold shared handles, so a hundred-point sweep over
// one design never clones the netlist, and requests that need the same
// profile (same handle, same profile key) share a single extraction by
// construction — its shards run once and the result lands in the handle's
// cache.
//
// Results can be consumed two ways:
//   run()            — blocking; results indexed by submission order.
//   run(ResultSink)  — streaming; each AnalysisResult is delivered as its
//                      request finishes. Completion order is unspecified,
//                      but every payload is bit-identical to the blocking
//                      form (and to a direct estimator call): which thread
//                      finishes first never reaches the numbers.
//
// Determinism contract: a request's result is a pure function of its own
// spec. Every shard draws its randomness from the counter-based stream of
// (request seed, shard index) — exactly the streams the standalone
// estimators use — and shard accumulators combine through order-insensitive
// reductions (integer sums, max, or slot-per-shard writes). Results are
// therefore bit-identical to a direct estimator call, and independent of the
// thread count, the submission order, and whatever else is co-scheduled.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/compiled_circuit.hpp"
#include "analysis/request.hpp"
#include "core/analyzer.hpp"
#include "core/energy_bound.hpp"
#include "core/profile.hpp"
#include "exec/thread_pool.hpp"
#include "netlist/circuit.hpp"
#include "sim/activity.hpp"
#include "sim/reliability.hpp"
#include "sim/sensitivity.hpp"

namespace enb::exec {

// Compatibility names for the pre-analysis-layer API: the kind enum now
// lives in analysis:: as AnalysisKind (same enumerators).
using JobKind = analysis::AnalysisKind;
using analysis::to_string;

[[nodiscard]] inline std::optional<JobKind> parse_job_kind(
    std::string_view name) {
  return analysis::parse_analysis_kind(name);
}

// Per-request outcome (see analysis/request.hpp). BatchResult is the
// pre-PR-3 name.
using BatchResult = analysis::AnalysisResult;

// The batch's thread knob is the same Parallelism every layer uses.
using BatchOptions = Parallelism;

// Streaming consumer: invoked once per request, serially (an internal lock),
// from an unspecified thread, as each request finishes. result.index is the
// submission index. A throwing sink does not cancel the batch: every request
// is still evaluated and offered to the sink, and the first sink exception
// is rethrown from run() after the queue drains (and clears).
using ResultSink = std::function<void(analysis::AnalysisResult)>;

class BatchEvaluator {
 public:
  explicit BatchEvaluator(Parallelism how = {}) : how_(how) {}

  // Enqueues a request; returns its index (== result.index).
  std::size_t submit(analysis::AnalysisRequest request);

  [[nodiscard]] std::size_t pending() const noexcept {
    return requests_.size();
  }

  // Streaming form: evaluates every submitted request over the flattened
  // shard space and delivers each result through `sink` as its request
  // finishes, then clears the queue. Completion order is unspecified;
  // payloads are deterministic.
  void run(const ResultSink& sink);

  // Blocking form: thin wrapper over the streaming form that collects into
  // submission order.
  [[nodiscard]] std::vector<analysis::AnalysisResult> run();

 private:
  Parallelism how_;
  std::vector<analysis::AnalysisRequest> requests_;
};

// Convenience: submit + run in one call.
[[nodiscard]] std::vector<analysis::AnalysisResult> evaluate_requests(
    std::vector<analysis::AnalysisRequest> requests, Parallelism how = {});

// ---- manifest / output plumbing ------------------------------------------

// Parses a job-manifest stream: one request per non-blank, non-comment line,
//   <name> kind=<kind> circuit=<spec> [golden=<spec>] [eps=E] [delta=D]
//          [budget=N] [seed=S] [leakage=L] [mode=M] [drop=0|1]
//          [lanes=64|128|256|512] [sample=N] [prune=0|1]
//          [style=tmr|dwc|selective] [granularity=gate|cone|output] [top_k=N]
// `resolve` maps a circuit spec (suite name or .bench path) to a compiled
// handle — memoize it to share handles (and profile extractions) across
// jobs naming the same spec. budget= sets the kind's primary Monte-Carlo
// knob (reliability trials, worst-case trials per input, activity pairs,
// sensitivity sample words, profile activity pairs, fault-campaign
// patterns); seed= the kind's master stream seed; leakage= the energy-bound
// leakage share. kind=lint takes no numeric knobs (budget/seed are ignored
// like eps is for activity). The fault-campaign-only keys (rejected for
// other kinds):
// mode= the pattern source (random | exhaustive), drop= fault dropping,
// lanes= the SIMD lane width (execution policy — not part of the request's
// canonical spec), sample= the sampled class count (0 = full universe),
// prune= static untestable-class pruning. kind=cec compares circuit= against
// golden= (required); seed= keys its signature stream and budget= its
// signature word count. kind=harden sweeps redundancy insertion over
// circuit=: eps/delta/leakage tune the energy bound, budget/seed/mode/drop/
// lanes/sample/prune tune the shared grading campaign, and style=,
// granularity=, top_k= pin sweep axes (absent = sweep the full axis).
// Throws std::invalid_argument on malformed lines,
// unknown kinds/keys, or non-numeric values.
[[nodiscard]] std::vector<analysis::AnalysisRequest> parse_manifest_requests(
    std::istream& in,
    const std::function<analysis::CompiledCircuit(const std::string&)>&
        resolve);

// Long-format CSV: header "job,kind,ok,metric,value"; failed jobs emit a
// single row with metric "error" and an empty value (the message itself
// goes to the JSON writer).
void write_batch_csv(std::ostream& out,
                     const std::vector<analysis::AnalysisResult>& results);

// One result as a single-line JSON object {"name", "kind", "ok", "error",
// "metrics": {...}} — exactly the bytes write_batch_json places on the
// result's array line. The server daemon streams these objects per result
// and the client reassembles the array, which is what makes served batch
// output bit-identical to the offline writer by construction. Non-finite
// metric values render as null (not valid JSON literals). Sets the stream's
// precision (17 digits).
void write_result_json(std::ostream& out, const analysis::AnalysisResult& r);

// JSON array of write_result_json objects, in `results` order.
void write_batch_json(std::ostream& out,
                      const std::vector<analysis::AnalysisResult>& results);

}  // namespace enb::exec
