// Batched multi-circuit evaluation: the server-workload front end of the
// parallel engine.
//
// A BatchEvaluator accepts a queue of heterogeneous jobs — each a circuit
// plus an analysis kind (reliability, worst-case, activity, sensitivity,
// energy-bound, profile) and per-job options — and schedules them over the
// shared ThreadPool with two-level parallelism: the Monte-Carlo shards of
// *every* job are flattened into one task space, so a long job's shards
// interleave with short jobs instead of serializing behind them.
//
// Determinism contract: a job's result is a pure function of its own spec.
// Every shard draws its randomness from the counter-based stream of
// (job seed, shard index) — exactly the streams the standalone estimators
// use — and shard accumulators combine through order-insensitive reductions
// (integer sums, max, or slot-per-shard writes). Results are therefore
// bit-identical to a direct estimator call, and independent of the thread
// count, the job submission order, and whatever else is co-scheduled in the
// batch.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/analyzer.hpp"
#include "core/energy_bound.hpp"
#include "core/profile.hpp"
#include "netlist/circuit.hpp"
#include "sim/activity.hpp"
#include "sim/reliability.hpp"
#include "sim/sensitivity.hpp"

namespace enb::exec {

enum class JobKind {
  kReliability,   // Monte-Carlo delta estimate (vs golden when provided)
  kWorstCase,     // worst sampled-input delta (vs golden when provided)
  kActivity,      // Monte-Carlo switching activity
  kSensitivity,   // Boolean sensitivity (exact or sampled)
  kEnergyBound,   // Theorem 1-4 bound report at (eps, delta)
  kProfile,       // (s, S0, sw0, k, d0) profile extraction
};

[[nodiscard]] const char* to_string(JobKind kind) noexcept;
[[nodiscard]] std::optional<JobKind> parse_job_kind(std::string_view name);

// One unit of batch work. The embedded option structs carry the job's seeds
// and budgets; their `threads` members are ignored (the batch owns
// scheduling). Seeds live in the spec — never in the queue position — which
// is what makes results submission-order independent.
struct BatchJob {
  std::string name;
  JobKind kind = JobKind::kReliability;
  netlist::Circuit circuit;
  // Reference implementation for kReliability / kWorstCase; when absent the
  // circuit is compared against its own noise-free evaluation.
  std::optional<netlist::Circuit> golden;
  double epsilon = 0.01;
  double delta = 0.01;  // kEnergyBound only

  sim::ReliabilityOptions reliability;   // kReliability
  sim::WorstCaseOptions worst_case;      // kWorstCase
  sim::ActivityOptions activity;         // kActivity
  sim::SensitivityOptions sensitivity;   // kSensitivity
  core::ProfileOptions profile;          // kProfile, kEnergyBound extraction
  core::EnergyModelOptions energy;       // kEnergyBound
  // kEnergyBound: skip profile extraction and analyze this profile directly
  // (e.g. one extraction shared by a whole epsilon sweep).
  std::optional<core::CircuitProfile> precomputed_profile;
};

// Per-job outcome. Failures are isolated: a job whose options are invalid
// (or whose evaluation throws) reports ok = false with the error text while
// the rest of the batch completes normally.
struct BatchResult {
  std::string name;
  JobKind kind = JobKind::kReliability;
  bool ok = false;
  std::string error;
  // Flat (metric, value) pairs in a fixed per-kind order — the CSV/JSON row.
  std::vector<std::pair<std::string, double>> metrics;
  // Structured payload for kProfile (and kEnergyBound extraction) consumers.
  std::optional<core::CircuitProfile> profile;

  // The value of `metric`, if present.
  [[nodiscard]] std::optional<double> metric(std::string_view name) const;
};

struct BatchOptions {
  // 0 = global pool, 1 = serial, N = dedicated pool of N workers.
  unsigned threads = 0;
};

class BatchEvaluator {
 public:
  explicit BatchEvaluator(BatchOptions options = {}) : options_(options) {}

  // Enqueues a job; returns its index in the result vector.
  std::size_t submit(BatchJob job);

  [[nodiscard]] std::size_t pending() const noexcept { return jobs_.size(); }

  // Evaluates every submitted job and clears the queue. Results are indexed
  // by submission order; each result is bit-identical to running its job
  // alone (any thread count, any co-scheduled jobs).
  [[nodiscard]] std::vector<BatchResult> run();

 private:
  BatchOptions options_;
  std::vector<BatchJob> jobs_;
};

// Convenience: submit + run in one call.
[[nodiscard]] std::vector<BatchResult> evaluate_batch(
    std::vector<BatchJob> jobs, const BatchOptions& options = {});

// ---- manifest / output plumbing ------------------------------------------

// Parses a job-manifest stream: one job per non-blank, non-comment line,
//   <name> kind=<kind> circuit=<spec> [golden=<spec>] [eps=E] [delta=D]
//          [budget=N] [seed=S] [leakage=L]
// `resolve` maps a circuit spec (suite name or .bench path) to a netlist.
// budget= sets the kind's primary Monte-Carlo knob (reliability trials,
// worst-case trials per input, activity pairs, sensitivity sample words,
// profile activity pairs); seed= the kind's master stream seed; leakage= the
// energy-bound leakage share. Throws std::invalid_argument on malformed
// lines, unknown kinds/keys, or non-numeric values.
[[nodiscard]] std::vector<BatchJob> parse_manifest(
    std::istream& in,
    const std::function<netlist::Circuit(const std::string&)>& resolve);

// Long-format CSV: header "job,kind,ok,metric,value"; failed jobs emit a
// single row with metric "error" and an empty value (the message itself
// goes to the JSON writer).
void write_batch_csv(std::ostream& out,
                     const std::vector<BatchResult>& results);

// JSON array of {"name", "kind", "ok", "error", "metrics": {...}}.
void write_batch_json(std::ostream& out,
                      const std::vector<BatchResult>& results);

}  // namespace enb::exec
