#include "exec/stream.hpp"

#include <stdexcept>

namespace enb::exec {

namespace {

constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Weyl-sequence step per stream keeps pre-mix states distinct for a fixed
  // seed; the double mix decorrelates neighbouring indices.
  std::uint64_t z = seed + (stream + 1) * 0x9E3779B97F4A7C15ULL;
  return mix64(mix64(z) ^ 0xD1B54A32D192ED03ULL);
}

ShardPlan::ShardPlan(std::size_t total, std::size_t shard_size)
    : total_(total), shard_size_(shard_size == 0 ? 1 : shard_size) {
  num_shards_ = (total_ + shard_size_ - 1) / shard_size_;
}

Shard ShardPlan::shard(std::size_t index) const noexcept {
  Shard s;
  s.index = index;
  s.begin = index * shard_size_;
  s.end = s.begin + shard_size_;
  if (s.end > total_) s.end = total_;
  if (s.begin > total_) s.begin = total_;
  return s;
}

}  // namespace enb::exec
