// Counter-based PRNG stream derivation and shard planning for parallel
// Monte-Carlo estimation.
//
// The estimators split their trial budget into fixed-size shards; shard i
// draws every random number from a generator seeded with
// stream_seed(master_seed, i). Because the derivation is a pure function of
// (seed, shard index) — never of execution order — results are bit-identical
// whether shards run serially, on 2 threads, or on 64, which is what makes
// the parallel engine safe to drop into reproducible experiments.
#pragma once

#include <cstddef>
#include <cstdint>

namespace enb::exec {

// Derives a decorrelated 64-bit seed for stream `stream` of `seed`. Two
// rounds of the splitmix64 finalizer over the (seed, stream) pair; within a
// fixed master seed, distinct stream indices always yield distinct states
// entering the mix.
[[nodiscard]] std::uint64_t stream_seed(std::uint64_t seed,
                                        std::uint64_t stream) noexcept;

// A contiguous [begin, end) slice of a trial budget.
struct Shard {
  std::size_t index = 0;
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
};

// Fixed-size decomposition of `total` items into shards of `shard_size`
// (last shard may be short). The shard size is part of an estimator's seed
// contract: changing it re-partitions the stream space and therefore changes
// (deterministically) which random numbers each trial sees.
class ShardPlan {
 public:
  ShardPlan(std::size_t total, std::size_t shard_size);

  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t shard_size() const noexcept { return shard_size_; }
  [[nodiscard]] std::size_t num_shards() const noexcept { return num_shards_; }
  [[nodiscard]] Shard shard(std::size_t index) const noexcept;

 private:
  std::size_t total_;
  std::size_t shard_size_;
  std::size_t num_shards_;
};

}  // namespace enb::exec
