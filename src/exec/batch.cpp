#include "exec/batch.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <iomanip>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "bdd/bdd_analysis.hpp"
#include "exec/thread_pool.hpp"
#include "netlist/stats.hpp"
#include "report/csv.hpp"
#include "util/numeric.hpp"

namespace enb::exec {

namespace {

using netlist::Circuit;

// Estimator options derived from a profile job, mirroring
// core::extract_profile so batched profiles are bit-identical to direct
// extraction. Inner estimator calls always run serially (threads = 1): the
// batch owns all parallelism through its flattened shard space.
sim::ActivityOptions profile_activity_options(const core::ProfileOptions& p) {
  sim::ActivityOptions o;
  o.sample_pairs = p.activity_pairs;
  o.seed = p.seed;
  o.threads = 1;
  return o;
}

sim::SensitivityOptions profile_sensitivity_options(
    const core::ProfileOptions& p) {
  sim::SensitivityOptions o;
  o.max_exact_inputs = p.sensitivity_exact_max_inputs;
  o.sample_words = p.sensitivity_sample_words;
  o.seed = p.seed + 1;
  o.threads = 1;
  return o;
}

// All per-job mutable state for one batch run. Accumulators merge
// commutatively (sums, max, slot-per-shard writes), so shard completion
// order never reaches the result.
struct JobState {
  const BatchJob* job = nullptr;
  std::size_t num_shards = 0;
  std::function<void(JobState&, std::size_t)> run_shard;
  std::function<void(JobState&, BatchResult&)> finalize;

  // Error isolation: the first failing shard records the message and the
  // job's remaining shards turn into no-ops; other jobs are unaffected.
  std::atomic<bool> failed{false};
  std::string error;  // guarded by mutex
  std::mutex mutex;   // guards error and non-atomic accumulators

  // kReliability
  std::atomic<std::uint64_t> failures{0};
  // kWorstCase: slot per sample
  std::vector<std::uint64_t> sample_failures;
  // kActivity / profile extraction
  std::unique_ptr<sim::ActivityCounts> activity_counts;
  // kSensitivity / profile extraction
  std::unique_ptr<sim::SensitivityCounts> sensitivity_counts;
  // Profile extraction: the activity number when the exact (BDD) route or
  // its serial fallback produced it directly.
  double exact_activity_sw0 = 0.0;
  bool activity_is_direct = false;  // single writer (its own shard)
  // kEnergyBound with a precomputed profile: single writer (shard 0).
  std::optional<core::BoundReport> report;

  void record_error(const std::string& message) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (!failed.load(std::memory_order_relaxed)) error = message;
    failed.store(true, std::memory_order_relaxed);
  }
};

const Circuit& golden_of(const BatchJob& job) {
  return job.golden.has_value() ? *job.golden : job.circuit;
}

void push_metric(BatchResult& r, const char* name, double value) {
  r.metrics.emplace_back(name, value);
}

// ---- per-kind preparation -------------------------------------------------
//
// Each prepare_* validates the job spec (throwing like the standalone
// estimator would), sizes the shard space, and installs the shard body and
// the serial finalize. Shard bodies only call the estimators' shard-level
// building blocks, which is what makes batched results bit-identical to
// direct calls.

void prepare_reliability(const BatchJob& job, JobState& state) {
  sim::validate_reliability_inputs(job.circuit, golden_of(job),
                                   job.reliability);
  const ShardPlan plan = sim::reliability_shard_plan(job.reliability);
  state.num_shards = plan.num_shards();
  state.run_shard = [plan](JobState& s, std::size_t shard) {
    s.failures.fetch_add(
        sim::reliability_shard_failures(s.job->circuit, golden_of(*s.job),
                                        s.job->epsilon, s.job->reliability,
                                        plan.shard(shard)),
        std::memory_order_relaxed);
  };
  state.finalize = [plan](JobState& s, BatchResult& r) {
    sim::ReliabilityResult rel =
        sim::wilson_interval(s.failures.load(), plan.total() * sim::kWordBits);
    rel.requested_trials = s.job->reliability.trials;
    push_metric(r, "delta_hat", rel.delta_hat);
    push_metric(r, "ci_low", rel.ci_low);
    push_metric(r, "ci_high", rel.ci_high);
    push_metric(r, "failures", static_cast<double>(rel.failures));
    push_metric(r, "trials", static_cast<double>(rel.trials));
    push_metric(r, "requested_trials",
                static_cast<double>(rel.requested_trials));
  };
}

void prepare_worst_case(const BatchJob& job, JobState& state) {
  sim::validate_worst_case_inputs(job.circuit, golden_of(job), job.worst_case);
  state.sample_failures.assign(
      static_cast<std::size_t>(job.worst_case.num_inputs), 0);
  state.num_shards = state.sample_failures.size();
  state.run_shard = [](JobState& s, std::size_t sample) {
    s.sample_failures[sample] = sim::worst_case_sample_failures(
        s.job->circuit, golden_of(*s.job), s.job->epsilon, s.job->worst_case,
        sample);
  };
  state.finalize = [](JobState& s, BatchResult& r) {
    const sim::WorstCaseResult w = sim::finalize_worst_case(
        s.job->circuit, s.job->worst_case, s.sample_failures);
    push_metric(r, "worst_delta_hat", w.worst.delta_hat);
    push_metric(r, "worst_ci_low", w.worst.ci_low);
    push_metric(r, "worst_ci_high", w.worst.ci_high);
    push_metric(r, "worst_failures", static_cast<double>(w.worst.failures));
    push_metric(r, "trials_per_input", static_cast<double>(w.worst.trials));
    push_metric(r, "requested_trials_per_input",
                static_cast<double>(w.worst.requested_trials));
    push_metric(r, "average_delta", w.average_delta);
  };
}

void prepare_activity(const BatchJob& job, JobState& state) {
  sim::validate_activity_inputs(job.activity);
  const ShardPlan plan = sim::activity_shard_plan(job.activity);
  state.activity_counts =
      std::make_unique<sim::ActivityCounts>(job.circuit.node_count());
  state.num_shards = plan.num_shards();
  state.run_shard = [plan](JobState& s, std::size_t shard) {
    const sim::ActivityCounts local = sim::activity_shard_counts(
        s.job->circuit, s.job->activity, plan.shard(shard));
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.activity_counts->merge(local);
  };
  state.finalize = [](JobState& s, BatchResult& r) {
    const sim::ActivityResult a = sim::finalize_activity(
        s.job->circuit, s.job->activity, *s.activity_counts);
    push_metric(r, "avg_gate_toggle_rate", a.avg_gate_toggle_rate);
    push_metric(r, "avg_gate_one_probability", a.avg_gate_one_probability);
    push_metric(r, "sample_pairs", static_cast<double>(a.sample_pairs));
  };
}

void prepare_sensitivity(const BatchJob& job, JobState& state) {
  sim::validate_sensitivity_inputs(job.circuit, job.sensitivity);
  const ShardPlan plan =
      sim::sensitivity_shard_plan(job.circuit, job.sensitivity);
  state.sensitivity_counts =
      std::make_unique<sim::SensitivityCounts>(job.circuit.num_inputs());
  state.num_shards = plan.num_shards();
  state.run_shard = [plan](JobState& s, std::size_t shard) {
    const sim::SensitivityCounts local = sim::sensitivity_shard_counts(
        s.job->circuit, s.job->sensitivity, plan.shard(shard));
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.sensitivity_counts->merge(local);
  };
  state.finalize = [](JobState& s, BatchResult& r) {
    const sim::SensitivityResult sens = sim::finalize_sensitivity(
        s.job->circuit, s.job->sensitivity, *s.sensitivity_counts);
    push_metric(r, "sensitivity", static_cast<double>(sens.sensitivity));
    push_metric(r, "total_influence", sens.total_influence);
    push_metric(r, "assignments", static_cast<double>(sens.assignments));
    push_metric(r, "exact", sens.exact ? 1.0 : 0.0);
  };
}

// Profile extraction mirrors core::extract_profile: exact (BDD) activity
// when small enough — one task, with the silent Monte-Carlo fallback run
// inline — otherwise activity shards; plus sensitivity shards. The final
// CircuitProfile is assembled in finalize.
struct ProfilePlan {
  bool direct_activity = false;  // BDD route (task 0) instead of MC shards
  ShardPlan activity{0, 1};
  ShardPlan sensitivity{0, 1};
  std::size_t num_shards() const {
    return (direct_activity ? 1 : activity.num_shards()) +
           sensitivity.num_shards();
  }
};

void prepare_profile_extraction(const BatchJob& job, JobState& state) {
  if (job.circuit.gate_count() == 0) {
    throw std::invalid_argument(
        "extract_profile: circuit has no gates to profile");
  }
  ProfilePlan plan;
  plan.direct_activity =
      job.profile.prefer_exact_activity &&
      static_cast<int>(job.circuit.num_inputs()) <=
          job.profile.exact_activity_max_inputs;
  if (!plan.direct_activity) {
    sim::ActivityOptions activity = profile_activity_options(job.profile);
    sim::validate_activity_inputs(activity);
    plan.activity = sim::activity_shard_plan(activity);
    state.activity_counts =
        std::make_unique<sim::ActivityCounts>(job.circuit.node_count());
  }
  sim::validate_sensitivity_inputs(job.circuit,
                                   profile_sensitivity_options(job.profile));
  plan.sensitivity = sim::sensitivity_shard_plan(
      job.circuit, profile_sensitivity_options(job.profile));
  state.sensitivity_counts =
      std::make_unique<sim::SensitivityCounts>(job.circuit.num_inputs());

  state.num_shards = plan.num_shards();
  state.run_shard = [plan](JobState& s, std::size_t shard) {
    const std::size_t activity_tasks =
        plan.direct_activity ? 1 : plan.activity.num_shards();
    if (shard < activity_tasks) {
      if (plan.direct_activity) {
        // The BDD route can still blow up on worst-case structures; fall
        // back silently to the serial Monte-Carlo estimate, exactly like
        // core::extract_profile.
        double sw0 = 0.0;
        try {
          sw0 = bdd::exact_activity_bdd(s.job->circuit).avg_gate_toggle_rate;
        } catch (const bdd::BddLimitExceeded&) {
          sw0 = sim::estimate_activity(
                    s.job->circuit, profile_activity_options(s.job->profile))
                    .avg_gate_toggle_rate;
        }
        s.exact_activity_sw0 = sw0;
        s.activity_is_direct = true;
      } else {
        const sim::ActivityCounts local = sim::activity_shard_counts(
            s.job->circuit, profile_activity_options(s.job->profile),
            plan.activity.shard(shard));
        const std::lock_guard<std::mutex> lock(s.mutex);
        s.activity_counts->merge(local);
      }
    } else {
      const sim::SensitivityCounts local = sim::sensitivity_shard_counts(
          s.job->circuit, profile_sensitivity_options(s.job->profile),
          plan.sensitivity.shard(shard - activity_tasks));
      const std::lock_guard<std::mutex> lock(s.mutex);
      s.sensitivity_counts->merge(local);
    }
  };
}

core::CircuitProfile assemble_profile(JobState& s) {
  const BatchJob& job = *s.job;
  const netlist::CircuitStats stats = netlist::compute_stats(job.circuit);
  core::CircuitProfile p;
  p.name = job.circuit.name();
  p.num_inputs = static_cast<int>(stats.num_inputs);
  p.num_outputs = static_cast<int>(stats.num_outputs);
  p.size_s0 = static_cast<double>(stats.num_gates);
  p.depth_d0 = stats.depth;
  p.avg_fanin_k = stats.avg_fanin;
  p.max_fanin = stats.max_fanin;
  p.avg_activity_sw0 =
      s.activity_is_direct
          ? s.exact_activity_sw0
          : sim::finalize_activity(job.circuit,
                                   profile_activity_options(job.profile),
                                   *s.activity_counts)
                .avg_gate_toggle_rate;
  const sim::SensitivityResult sens = sim::finalize_sensitivity(
      job.circuit, profile_sensitivity_options(job.profile),
      *s.sensitivity_counts);
  p.sensitivity_s = std::max(1, sens.sensitivity);
  p.sensitivity_exact = sens.exact;
  return p;
}

void push_bound_metrics(BatchResult& r, const core::BoundReport& b) {
  push_metric(r, "eps", b.epsilon);
  push_metric(r, "delta", b.delta);
  push_metric(r, "sw_noisy", b.sw_noisy);
  push_metric(r, "redundancy_gates", b.redundancy_gates);
  push_metric(r, "size_factor", b.size_factor);
  push_metric(r, "switching_factor", b.energy.switching_factor);
  push_metric(r, "leakage_factor", b.energy.leakage_factor);
  push_metric(r, "total_factor", b.energy.total_factor);
  push_metric(r, "leakage_ratio", b.leakage_ratio);
  push_metric(r, "delay_factor", b.metrics.delay);
  push_metric(r, "edp_factor", b.metrics.edp);
  push_metric(r, "avg_power_factor", b.metrics.avg_power);
  push_metric(r, "depth_feasible", b.depth_feasible ? 1.0 : 0.0);
}

void push_profile_metrics(BatchResult& r, const core::CircuitProfile& p) {
  push_metric(r, "num_inputs", p.num_inputs);
  push_metric(r, "num_outputs", p.num_outputs);
  push_metric(r, "size_s0", p.size_s0);
  push_metric(r, "depth_d0", p.depth_d0);
  push_metric(r, "avg_fanin_k", p.avg_fanin_k);
  push_metric(r, "max_fanin", p.max_fanin);
  push_metric(r, "avg_activity_sw0", p.avg_activity_sw0);
  push_metric(r, "sensitivity_s", p.sensitivity_s);
  push_metric(r, "sensitivity_exact", p.sensitivity_exact ? 1.0 : 0.0);
}

void prepare_profile(const BatchJob& job, JobState& state) {
  prepare_profile_extraction(job, state);
  state.finalize = [](JobState& s, BatchResult& r) {
    const core::CircuitProfile p = assemble_profile(s);
    push_profile_metrics(r, p);
    r.profile = p;
  };
}

void prepare_energy_bound(const BatchJob& job, JobState& state) {
  if (job.precomputed_profile.has_value()) {
    state.num_shards = 1;
    state.run_shard = [](JobState& s, std::size_t) {
      s.report = core::analyze(*s.job->precomputed_profile, s.job->epsilon,
                               s.job->delta, s.job->energy);
    };
    state.finalize = [](JobState& s, BatchResult& r) {
      push_bound_metrics(r, *s.report);
    };
    return;
  }
  prepare_profile_extraction(job, state);
  state.finalize = [](JobState& s, BatchResult& r) {
    const core::CircuitProfile p = assemble_profile(s);
    push_bound_metrics(
        r, core::analyze(p, s.job->epsilon, s.job->delta, s.job->energy));
    r.profile = p;
  };
}

void prepare(const BatchJob& job, JobState& state) {
  switch (job.kind) {
    case JobKind::kReliability:
      return prepare_reliability(job, state);
    case JobKind::kWorstCase:
      return prepare_worst_case(job, state);
    case JobKind::kActivity:
      return prepare_activity(job, state);
    case JobKind::kSensitivity:
      return prepare_sensitivity(job, state);
    case JobKind::kEnergyBound:
      return prepare_energy_bound(job, state);
    case JobKind::kProfile:
      return prepare_profile(job, state);
  }
  throw std::invalid_argument("BatchEvaluator: unknown job kind");
}

}  // namespace

const char* to_string(JobKind kind) noexcept {
  switch (kind) {
    case JobKind::kReliability:
      return "reliability";
    case JobKind::kWorstCase:
      return "worst-case";
    case JobKind::kActivity:
      return "activity";
    case JobKind::kSensitivity:
      return "sensitivity";
    case JobKind::kEnergyBound:
      return "energy-bound";
    case JobKind::kProfile:
      return "profile";
  }
  return "unknown";
}

std::optional<JobKind> parse_job_kind(std::string_view name) {
  std::string canonical(name);
  std::replace(canonical.begin(), canonical.end(), '_', '-');
  if (canonical == "reliability") return JobKind::kReliability;
  if (canonical == "worst-case") return JobKind::kWorstCase;
  if (canonical == "activity") return JobKind::kActivity;
  if (canonical == "sensitivity") return JobKind::kSensitivity;
  if (canonical == "energy-bound") return JobKind::kEnergyBound;
  if (canonical == "profile") return JobKind::kProfile;
  return std::nullopt;
}

std::optional<double> BatchResult::metric(std::string_view name) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) return value;
  }
  return std::nullopt;
}

std::size_t BatchEvaluator::submit(BatchJob job) {
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

std::vector<BatchResult> BatchEvaluator::run() {
  const std::size_t num_jobs = jobs_.size();
  std::vector<JobState> states(num_jobs);
  std::vector<BatchResult> results(num_jobs);

  // Phase 1 (serial, cheap): validate every job and size its shard space.
  // A job that fails validation is isolated into an error result here and
  // contributes no shards.
  for (std::size_t j = 0; j < num_jobs; ++j) {
    states[j].job = &jobs_[j];
    results[j].name = jobs_[j].name;
    results[j].kind = jobs_[j].kind;
    try {
      prepare(jobs_[j], states[j]);
    } catch (const std::exception& e) {
      states[j].record_error(e.what());
      states[j].num_shards = 0;
    }
  }

  // Phase 2 (parallel): every job's shards flattened into one task space
  // over the pool. offsets[j] is job j's first flat index.
  std::vector<std::size_t> offsets(num_jobs + 1, 0);
  for (std::size_t j = 0; j < num_jobs; ++j) {
    offsets[j + 1] = offsets[j] + states[j].num_shards;
  }
  for_each_index(
      offsets[num_jobs],
      [&](std::size_t flat) {
        const std::size_t j = static_cast<std::size_t>(
            std::upper_bound(offsets.begin(), offsets.end(), flat) -
            offsets.begin() - 1);
        JobState& state = states[j];
        if (state.failed.load(std::memory_order_relaxed)) return;
        try {
          state.run_shard(state, flat - offsets[j]);
        } catch (const std::exception& e) {
          state.record_error(e.what());
        } catch (...) {
          state.record_error("unknown error");
        }
      },
      ExecPolicy{options_.threads});

  // Phase 3 (serial, in submission order): reduce accumulators to results.
  for (std::size_t j = 0; j < num_jobs; ++j) {
    if (states[j].failed.load()) {
      results[j].ok = false;
      results[j].error = states[j].error;
      continue;
    }
    try {
      states[j].finalize(states[j], results[j]);
      results[j].ok = true;
    } catch (const std::exception& e) {
      results[j].ok = false;
      results[j].error = e.what();
    }
  }
  jobs_.clear();
  return results;
}

std::vector<BatchResult> evaluate_batch(std::vector<BatchJob> jobs,
                                        const BatchOptions& options) {
  BatchEvaluator evaluator(options);
  for (BatchJob& job : jobs) evaluator.submit(std::move(job));
  return evaluator.run();
}

// ---- manifest / output plumbing ------------------------------------------

namespace {

double parse_manifest_double(const std::string& key, const std::string& value) {
  double parsed = 0.0;
  if (!util::parse_double(value, parsed)) {
    throw std::invalid_argument("manifest: non-numeric value '" + value +
                                "' for key '" + key + "'");
  }
  return parsed;
}

std::uint64_t parse_manifest_count(const std::string& key,
                                   const std::string& value) {
  std::uint64_t parsed = 0;
  if (!util::parse_uint64(value, parsed)) {
    throw std::invalid_argument("manifest: value for key '" + key +
                                "' must be a non-negative integer, got '" +
                                value + "'");
  }
  return parsed;
}

// budget= sets the kind's primary Monte-Carlo knob; seed= its master stream
// seed. Applied after the kind is known, so key order in the line is free.
void apply_budget(BatchJob& job, std::uint64_t budget) {
  switch (job.kind) {
    case JobKind::kReliability:
      job.reliability.trials = budget;
      return;
    case JobKind::kWorstCase:
      job.worst_case.trials_per_input = budget;
      return;
    case JobKind::kActivity:
      job.activity.sample_pairs = static_cast<std::size_t>(budget);
      return;
    case JobKind::kSensitivity:
      job.sensitivity.sample_words = budget;
      return;
    case JobKind::kEnergyBound:
    case JobKind::kProfile:
      job.profile.activity_pairs = static_cast<std::size_t>(budget);
      return;
  }
}

void apply_seed(BatchJob& job, std::uint64_t seed) {
  switch (job.kind) {
    case JobKind::kReliability:
      job.reliability.seed = seed;
      return;
    case JobKind::kWorstCase:
      job.worst_case.seed = seed;
      return;
    case JobKind::kActivity:
      job.activity.seed = seed;
      return;
    case JobKind::kSensitivity:
      job.sensitivity.seed = seed;
      return;
    case JobKind::kEnergyBound:
    case JobKind::kProfile:
      job.profile.seed = seed;
      return;
  }
}

void json_escape(std::ostream& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

std::vector<BatchJob> parse_manifest(
    std::istream& in,
    const std::function<Circuit(const std::string&)>& resolve) {
  std::vector<BatchJob> jobs;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::istringstream tokens(line);
    std::string name;
    if (!(tokens >> name) || name.front() == '#') continue;

    const auto fail = [&](const std::string& message) -> std::invalid_argument {
      return std::invalid_argument("manifest line " +
                                   std::to_string(line_number) + ": " +
                                   message);
    };

    // Collect key=value pairs first; kind-dependent keys (budget, seed)
    // apply once the kind is known.
    std::vector<std::pair<std::string, std::string>> pairs;
    std::string token;
    while (tokens >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
        throw fail("expected key=value, got '" + token + "'");
      }
      pairs.emplace_back(token.substr(0, eq), token.substr(eq + 1));
    }

    BatchJob job;
    job.name = name;
    std::optional<JobKind> kind;
    std::string circuit_spec;
    std::string golden_spec;
    std::optional<std::uint64_t> budget;
    std::optional<std::uint64_t> seed;
    for (const auto& [key, value] : pairs) {
      if (key == "kind") {
        kind = parse_job_kind(value);
        if (!kind.has_value()) throw fail("unknown kind '" + value + "'");
      } else if (key == "circuit") {
        circuit_spec = value;
      } else if (key == "golden") {
        golden_spec = value;
      } else if (key == "eps") {
        job.epsilon = parse_manifest_double(key, value);
      } else if (key == "delta") {
        job.delta = parse_manifest_double(key, value);
      } else if (key == "budget") {
        budget = parse_manifest_count(key, value);
      } else if (key == "seed") {
        seed = parse_manifest_count(key, value);
      } else if (key == "leakage") {
        job.energy.leakage_fraction = parse_manifest_double(key, value);
      } else {
        throw fail("unknown key '" + key + "'");
      }
    }
    if (!kind.has_value()) throw fail("missing kind=");
    if (circuit_spec.empty()) throw fail("missing circuit=");
    job.kind = *kind;
    if (budget.has_value()) apply_budget(job, *budget);
    if (seed.has_value()) apply_seed(job, *seed);
    job.circuit = resolve(circuit_spec);
    if (!golden_spec.empty()) job.golden = resolve(golden_spec);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void write_batch_csv(std::ostream& out,
                     const std::vector<BatchResult>& results) {
  report::write_csv_row(out, {"job", "kind", "ok", "metric", "value"});
  std::ostringstream value;
  value << std::setprecision(17);
  for (const BatchResult& r : results) {
    if (!r.ok) {
      report::write_csv_row(out, {r.name, to_string(r.kind), "0", "error", ""});
      continue;
    }
    for (const auto& [metric, metric_value] : r.metrics) {
      value.str("");
      value << metric_value;
      report::write_csv_row(
          out, {r.name, to_string(r.kind), "1", metric, value.str()});
    }
  }
}

void write_batch_json(std::ostream& out,
                      const std::vector<BatchResult>& results) {
  out << "[\n" << std::setprecision(17);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BatchResult& r = results[i];
    out << "  {\"name\": \"";
    json_escape(out, r.name);
    out << "\", \"kind\": \"" << to_string(r.kind) << "\", \"ok\": "
        << (r.ok ? "true" : "false") << ", \"error\": \"";
    json_escape(out, r.error);
    out << "\", \"metrics\": {";
    for (std::size_t m = 0; m < r.metrics.size(); ++m) {
      out << (m == 0 ? "" : ", ") << "\"" << r.metrics[m].first << "\": ";
      // NaN/inf are not valid JSON literals; emit null rather than a file
      // every parser rejects.
      if (std::isfinite(r.metrics[m].second)) {
        out << r.metrics[m].second;
      } else {
        out << "null";
      }
    }
    out << "}}" << (i + 1 == results.size() ? "" : ",") << "\n";
  }
  out << "]\n";
}

}  // namespace enb::exec
