#include "exec/batch.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <exception>
#include <iomanip>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "analysis/lint.hpp"
#include "bdd/bdd_analysis.hpp"
#include "exec/thread_pool.hpp"
#include "fault/campaign.hpp"
#include "fault/fault_model.hpp"
#include "fault/lanes.hpp"
#include "harden/pareto.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "report/csv.hpp"
#include "util/numeric.hpp"
#include "util/sync.hpp"

namespace enb::exec {

namespace {

using analysis::AnalysisKind;
using analysis::AnalysisRequest;
using analysis::AnalysisResult;
using analysis::CompiledCircuit;
using netlist::Circuit;

// Estimator options derived from profile-extraction knobs, mirroring
// core::extract_profile so batched profiles are bit-identical to direct
// extraction.
sim::ActivityOptions profile_activity_options(const core::ProfileOptions& p) {
  sim::ActivityOptions o;
  o.sample_pairs = p.activity_pairs;
  o.seed = p.seed;
  return o;
}

sim::SensitivityOptions profile_sensitivity_options(
    const core::ProfileOptions& p) {
  sim::SensitivityOptions o;
  o.max_exact_inputs = p.sensitivity_exact_max_inputs;
  o.sample_words = p.sensitivity_sample_words;
  o.seed = p.seed + 1;
  return o;
}

const Circuit& golden_of(const AnalysisRequest& request) {
  return request.golden.has_value() ? request.golden->circuit()
                                    : request.circuit.circuit();
}

// Profile extraction mirrors core::extract_profile: exact (BDD) activity
// when small enough — one task, with the silent Monte-Carlo fallback run
// inline — otherwise activity shards; plus sensitivity shards.
struct ProfilePlan {
  bool direct_activity = false;  // BDD route (task 0) instead of MC shards
  ShardPlan activity{0, 1};
  ShardPlan sensitivity{0, 1};
  std::size_t num_shards() const {
    return (direct_activity ? 1 : activity.num_shards()) +
           sensitivity.num_shards();
  }
};

// One profile extraction shared by every request in the batch that names the
// same (handle, profile key): its shards enter the flat task space exactly
// once and the assembled profile lands in the handle's cache. Accumulators
// merge commutatively, so shard completion order never reaches the profile.
struct ExtractionGroup {
  CompiledCircuit circuit;
  core::ProfileOptions options;  // the key's value-relevant knobs
  ProfilePlan plan;

  util::Mutex mutex;  // guards error, the accumulators, and the profile
  std::unique_ptr<sim::ActivityCounts> activity_counts
      ENB_PT_GUARDED_BY(mutex);
  std::unique_ptr<sim::SensitivityCounts> sensitivity_counts
      ENB_PT_GUARDED_BY(mutex);
  double exact_activity_sw0 ENB_GUARDED_BY(mutex) = 0.0;
  bool activity_is_direct ENB_GUARDED_BY(mutex) = false;

  std::atomic<std::size_t> remaining{0};
  std::atomic<bool> failed{false};
  // Stamped at group creation; assemble() observes the extraction histogram
  // and trace span from it, so the span covers the sharded extraction
  // wall-clock (queueing included) like the serial path's span does.
  std::chrono::steady_clock::time_point started =
      std::chrono::steady_clock::now();
  std::string error ENB_GUARDED_BY(mutex);
  // Set once by assemble(); dependents read it under the lock in finalize.
  std::optional<core::CircuitProfile> profile ENB_GUARDED_BY(mutex);
  std::vector<std::size_t> dependents;  // request indices

  void record_error(const std::string& message) {
    const util::LockGuard lock(mutex);
    if (!failed.load(std::memory_order_relaxed)) error = message;
    failed.store(true, std::memory_order_relaxed);
  }

  std::string error_text() {
    const util::LockGuard lock(mutex);
    return error;
  }

  void run_shard(std::size_t shard) {
    const Circuit& c = circuit.circuit();
    const std::size_t activity_tasks =
        plan.direct_activity ? 1 : plan.activity.num_shards();
    if (shard < activity_tasks) {
      if (plan.direct_activity) {
        // The BDD route can still blow up on worst-case structures; fall
        // back silently to the serial Monte-Carlo estimate, exactly like
        // core::extract_profile.
        double sw0 = 0.0;
        try {
          sw0 = bdd::exact_activity_bdd(c).avg_gate_toggle_rate;
        } catch (const bdd::BddLimitExceeded&) {
          sw0 = sim::estimate_activity(c, profile_activity_options(options),
                                       Parallelism::serial())
                    .avg_gate_toggle_rate;
        }
        const util::LockGuard lock(mutex);
        exact_activity_sw0 = sw0;
        activity_is_direct = true;
      } else {
        const sim::ActivityCounts local = sim::activity_shard_counts(
            c, profile_activity_options(options), plan.activity.shard(shard));
        const util::LockGuard lock(mutex);
        activity_counts->merge(local);
      }
    } else {
      const sim::SensitivityCounts local = sim::sensitivity_shard_counts(
          c, profile_sensitivity_options(options),
          plan.sensitivity.shard(shard - activity_tasks));
      const util::LockGuard lock(mutex);
      sensitivity_counts->merge(local);
    }
  }

  // Serial reduction run by whichever worker finishes the last shard; the
  // result is stored both here (for this batch's dependents) and in the
  // handle's cache (for every later consumer of the handle).
  void assemble() {
    const Circuit& c = circuit.circuit();
    const netlist::CircuitStats& stats = circuit.stats();
    // Uncontended by construction — every shard has completed — but taken
    // anyway so the accumulator reads check out statically.
    const util::LockGuard lock(mutex);
    core::CircuitProfile p;
    p.name = c.name();
    p.num_inputs = static_cast<int>(stats.num_inputs);
    p.num_outputs = static_cast<int>(stats.num_outputs);
    p.size_s0 = static_cast<double>(stats.num_gates);
    p.depth_d0 = stats.depth;
    p.avg_fanin_k = stats.avg_fanin;
    p.max_fanin = stats.max_fanin;
    p.avg_activity_sw0 =
        activity_is_direct
            ? exact_activity_sw0
            : sim::finalize_activity(c, profile_activity_options(options),
                                     *activity_counts)
                  .avg_gate_toggle_rate;
    const sim::SensitivityResult sens = sim::finalize_sensitivity(
        c, profile_sensitivity_options(options), *sensitivity_counts);
    p.sensitivity_s = std::max(1, sens.sensitivity);
    p.sensitivity_exact = sens.exact;
    circuit.store_profile(options, p);
    profile = std::move(p);

    const auto end = std::chrono::steady_clock::now();
    static obs::Histogram& seconds =
        obs::Registry::global().histogram("analysis-extraction-seconds");
    seconds.observe(std::chrono::duration<double>(end - started).count());
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled()) {
      recorder.record("profile-extraction",
                      obs::SpanHandle{recorder.new_id()}, obs::SpanHandle{},
                      started, end, c.name());
    }
  }
};

// All per-request mutable state for one batch run. Accumulators merge
// commutatively (sums, max, slot-per-shard writes), so shard completion
// order never reaches the result.
struct JobState {
  const AnalysisRequest* request = nullptr;
  // Prepare-time stamp; emission computes the job's wall-clock elapsed from
  // it (observability only — never part of the result's serialized bytes).
  std::chrono::steady_clock::time_point start{};
  std::size_t num_tasks = 0;  // own tasks (excludes the extraction group's)
  std::function<void(JobState&, std::size_t)> run_task;
  std::function<void(JobState&, AnalysisResult&)> finalize;
  // Shared extraction this request waits on (one completion unit).
  ExtractionGroup* extraction = nullptr;
  // Completion units left: own tasks + (extraction ? 1 : 0). The thread that
  // takes this to zero finalizes and emits the result.
  std::atomic<std::size_t> pending{0};

  // Error isolation: the first failing task records the message and the
  // request's remaining tasks turn into no-ops; other requests are
  // unaffected.
  std::atomic<bool> failed{false};
  util::Mutex mutex;  // guards error and non-atomic accumulators
  std::string error ENB_GUARDED_BY(mutex);

  // kReliability
  std::atomic<std::uint64_t> failures{0};
  // kWorstCase: slot per sample (disjoint writes; no lock needed)
  std::vector<std::uint64_t> sample_failures;
  // kActivity
  std::unique_ptr<sim::ActivityCounts> activity_counts
      ENB_PT_GUARDED_BY(mutex);
  // kSensitivity
  std::unique_ptr<sim::SensitivityCounts> sensitivity_counts
      ENB_PT_GUARDED_BY(mutex);
  // kEnergyBound via override or cached profile: single writer (task 0).
  std::optional<core::BoundReport> report;
  // Profile found in the handle's cache at prepare time.
  std::optional<core::CircuitProfile> cached_profile;
  // kFaultCampaign: the universe is built once at prepare time and shared
  // (read-only) by every pattern shard; counts merge commutatively.
  std::shared_ptr<const fault::FaultUniverse> fault_universe;
  std::unique_ptr<fault::CampaignCounts> campaign_counts
      ENB_PT_GUARDED_BY(mutex);
  // kLint: single task, single writer.
  std::optional<analysis::LintReport> lint ENB_GUARDED_BY(mutex);
  // kCec: single task, single writer.
  std::optional<analysis::CecResult> cec ENB_GUARDED_BY(mutex);
  // kHarden: single task, single writer — the sweep drives its own nested
  // batch, which runs inline on this worker (pool reentrancy contract).
  std::optional<harden::ParetoResult> harden ENB_GUARDED_BY(mutex);

  void record_error(const std::string& message) {
    const util::LockGuard lock(mutex);
    if (!failed.load(std::memory_order_relaxed)) error = message;
    failed.store(true, std::memory_order_relaxed);
  }

  std::string error_text() {
    const util::LockGuard lock(mutex);
    return error;
  }
};

void finish_with_payload(AnalysisResult& result,
                         analysis::ResultPayload payload) {
  analysis::set_payload(result, std::move(payload));
}

// ---- per-kind preparation -------------------------------------------------
//
// Each prepare_* validates the request spec (throwing like the standalone
// estimator would), sizes the task space, and installs the task body and
// the finalize reduction. Task bodies only call the estimators' shard-level
// building blocks, which is what makes batched results bit-identical to
// direct calls.

void prepare_reliability(const AnalysisRequest& request,
                         const analysis::ReliabilityRequest& spec,
                         JobState& state) {
  sim::validate_reliability_inputs(request.circuit.circuit(),
                                   golden_of(request), spec.options);
  const ShardPlan plan = sim::reliability_shard_plan(spec.options);
  state.num_tasks = plan.num_shards();
  state.run_task = [plan, &spec](JobState& s, std::size_t shard) {
    s.failures.fetch_add(
        sim::reliability_shard_failures(
            s.request->circuit.circuit(), golden_of(*s.request), spec.epsilon,
            spec.options, plan.shard(shard)),
        std::memory_order_relaxed);
  };
  state.finalize = [plan, &spec](JobState& s, AnalysisResult& r) {
    sim::ReliabilityResult rel =
        sim::wilson_interval(s.failures.load(), plan.total() * sim::kWordBits);
    rel.requested_trials = spec.options.trials;
    finish_with_payload(r, std::move(rel));
  };
}

void prepare_worst_case(const AnalysisRequest& request,
                        const analysis::WorstCaseRequest& spec,
                        JobState& state) {
  sim::validate_worst_case_inputs(request.circuit.circuit(),
                                  golden_of(request), spec.options);
  state.sample_failures.assign(
      static_cast<std::size_t>(spec.options.num_inputs), 0);
  state.num_tasks = state.sample_failures.size();
  state.run_task = [&spec](JobState& s, std::size_t sample) {
    s.sample_failures[sample] = sim::worst_case_sample_failures(
        s.request->circuit.circuit(), golden_of(*s.request), spec.epsilon,
        spec.options, sample);
  };
  state.finalize = [&spec](JobState& s, AnalysisResult& r) {
    finish_with_payload(
        r, sim::finalize_worst_case(s.request->circuit.circuit(), spec.options,
                                    s.sample_failures));
  };
}

void prepare_activity(const AnalysisRequest& request,
                      const analysis::ActivityRequest& spec, JobState& state) {
  sim::validate_activity_inputs(spec.options);
  const ShardPlan plan = sim::activity_shard_plan(spec.options);
  state.activity_counts = std::make_unique<sim::ActivityCounts>(
      request.circuit.circuit().node_count());
  state.num_tasks = plan.num_shards();
  state.run_task = [plan, &spec](JobState& s, std::size_t shard) {
    const sim::ActivityCounts local = sim::activity_shard_counts(
        s.request->circuit.circuit(), spec.options, plan.shard(shard));
    const util::LockGuard lock(s.mutex);
    s.activity_counts->merge(local);
  };
  state.finalize = [&spec](JobState& s, AnalysisResult& r) {
    const util::LockGuard lock(s.mutex);
    finish_with_payload(
        r, sim::finalize_activity(s.request->circuit.circuit(), spec.options,
                                  *s.activity_counts));
  };
}

void prepare_sensitivity(const AnalysisRequest& request,
                         const analysis::SensitivityRequest& spec,
                         JobState& state) {
  sim::validate_sensitivity_inputs(request.circuit.circuit(), spec.options);
  const ShardPlan plan =
      sim::sensitivity_shard_plan(request.circuit.circuit(), spec.options);
  state.sensitivity_counts = std::make_unique<sim::SensitivityCounts>(
      request.circuit.circuit().num_inputs());
  state.num_tasks = plan.num_shards();
  state.run_task = [plan, &spec](JobState& s, std::size_t shard) {
    const sim::SensitivityCounts local = sim::sensitivity_shard_counts(
        s.request->circuit.circuit(), spec.options, plan.shard(shard));
    const util::LockGuard lock(s.mutex);
    s.sensitivity_counts->merge(local);
  };
  state.finalize = [&spec](JobState& s, AnalysisResult& r) {
    const util::LockGuard lock(s.mutex);
    finish_with_payload(
        r, sim::finalize_sensitivity(s.request->circuit.circuit(), spec.options,
                                     *s.sensitivity_counts));
  };
}

void prepare_fault_campaign(const AnalysisRequest& request,
                            const analysis::FaultCampaignRequest& spec,
                            JobState& state) {
  const Circuit& circuit = request.circuit.circuit();
  const Circuit& golden = golden_of(request);
  fault::validate_campaign_inputs(circuit, golden, spec.options);
  state.fault_universe = std::make_shared<const fault::FaultUniverse>(
      fault::FaultUniverse::build(circuit, spec.options.collapse,
                                  spec.options.prune_untestable));
  state.campaign_counts = std::make_unique<fault::CampaignCounts>(
      state.fault_universe->num_classes());
  const ShardPlan plan = fault::campaign_shard_plan(golden, spec.options);
  state.num_tasks = plan.num_shards();
  state.run_task = [plan, &spec](JobState& s, std::size_t shard) {
    const fault::CampaignCounts local = fault::campaign_shard_counts(
        s.request->circuit.circuit(), golden_of(*s.request),
        *s.fault_universe, spec.options, plan.shard(shard));
    const util::LockGuard lock(s.mutex);
    s.campaign_counts->merge(local);
  };
  state.finalize = [&spec](JobState& s, AnalysisResult& r) {
    const util::LockGuard lock(s.mutex);
    finish_with_payload(
        r, fault::finalize_campaign(s.request->circuit.circuit(),
                                    golden_of(*s.request), *s.fault_universe,
                                    spec.options, *s.campaign_counts));
  };
}

void prepare_lint(const AnalysisRequest& request,
                  const analysis::LintRequest& spec, JobState& state) {
  (void)request.circuit.circuit();  // throws on an empty handle, like the rest
  state.num_tasks = 1;
  state.run_task = [&spec](JobState& s, std::size_t) {
    analysis::LintReport report =
        analysis::lint_circuit(s.request->circuit.circuit(), spec.options);
    const util::LockGuard lock(s.mutex);
    s.lint = std::move(report);
  };
  state.finalize = [](JobState& s, AnalysisResult& r) {
    const util::LockGuard lock(s.mutex);
    finish_with_payload(r, std::move(*s.lint));
  };
}

void prepare_cec(const AnalysisRequest& request,
                 const analysis::CecRequest& spec, JobState& state) {
  (void)request.circuit.circuit();  // throws on an empty handle
  if (!request.golden.has_value()) {
    throw std::invalid_argument(
        "cec requires a golden circuit to compare against");
  }
  state.num_tasks = 1;
  state.run_task = [&spec](JobState& s, std::size_t) {
    analysis::CecResult result = analysis::check_equivalence(
        s.request->circuit.circuit(), s.request->golden->circuit(),
        spec.options);
    const util::LockGuard lock(s.mutex);
    s.cec = std::move(result);
  };
  state.finalize = [](JobState& s, AnalysisResult& r) {
    const util::LockGuard lock(s.mutex);
    finish_with_payload(r, std::move(*s.cec));
  };
}

void prepare_harden(const AnalysisRequest& request,
                    const analysis::HardenRequest& spec, JobState& state) {
  (void)request.circuit.circuit();  // throws on an empty handle
  state.num_tasks = 1;
  state.run_task = [&spec](JobState& s, std::size_t) {
    harden::ParetoResult result =
        harden::pareto_sweep(s.request->circuit, spec.options, Parallelism{});
    const util::LockGuard lock(s.mutex);
    s.harden = std::move(result);
  };
  state.finalize = [](JobState& s, AnalysisResult& r) {
    const util::LockGuard lock(s.mutex);
    finish_with_payload(r, std::move(*s.harden));
  };
}

// Finds or creates the extraction group for (request.circuit, options);
// validates on creation exactly like core::extract_profile.
ExtractionGroup& join_extraction_group(
    std::size_t job_index, const AnalysisRequest& request,
    const core::ProfileOptions& options, std::deque<ExtractionGroup>& groups) {
  const analysis::ProfileKey key = analysis::profile_key(options);
  for (ExtractionGroup& group : groups) {
    if (group.circuit.same_handle(request.circuit) &&
        analysis::profile_key(group.options) == key) {
      group.dependents.push_back(job_index);
      return group;
    }
  }

  const Circuit& circuit = request.circuit.circuit();
  if (circuit.gate_count() == 0) {
    throw std::invalid_argument(
        "extract_profile: circuit has no gates to profile");
  }
  ProfilePlan plan;
  plan.direct_activity =
      options.prefer_exact_activity &&
      static_cast<int>(circuit.num_inputs()) <=
          options.exact_activity_max_inputs;
  std::unique_ptr<sim::ActivityCounts> activity_counts;
  if (!plan.direct_activity) {
    const sim::ActivityOptions activity = profile_activity_options(options);
    sim::validate_activity_inputs(activity);
    plan.activity = sim::activity_shard_plan(activity);
    activity_counts =
        std::make_unique<sim::ActivityCounts>(circuit.node_count());
  }
  sim::validate_sensitivity_inputs(circuit,
                                   profile_sensitivity_options(options));
  plan.sensitivity = sim::sensitivity_shard_plan(
      circuit, profile_sensitivity_options(options));

  ExtractionGroup& group = groups.emplace_back();
  group.circuit = request.circuit;
  group.options = options;
  group.plan = plan;
  group.activity_counts = std::move(activity_counts);
  group.sensitivity_counts =
      std::make_unique<sim::SensitivityCounts>(circuit.num_inputs());
  group.remaining.store(plan.num_shards(), std::memory_order_relaxed);
  group.dependents.push_back(job_index);
  return group;
}

void prepare_energy_bound(std::size_t job_index, const AnalysisRequest& request,
                          const analysis::EnergyBoundRequest& spec,
                          JobState& state,
                          std::deque<ExtractionGroup>& groups) {
  const auto analyze_metrics = [](JobState& s, AnalysisResult& r) {
    finish_with_payload(r, *s.report);
    if (s.cached_profile.has_value()) r.profile = std::move(s.cached_profile);
  };

  if (spec.profile_override.has_value()) {
    state.num_tasks = 1;
    state.run_task = [&spec](JobState& s, std::size_t) {
      s.report = core::analyze(*spec.profile_override, spec.epsilon, spec.delta,
                               spec.energy);
    };
    state.finalize = analyze_metrics;
    return;
  }
  if (auto cached = request.circuit.cached_profile(spec.profile);
      cached.has_value()) {
    state.cached_profile = std::move(cached);
    state.num_tasks = 1;
    state.run_task = [&spec](JobState& s, std::size_t) {
      s.report = core::analyze(*s.cached_profile, spec.epsilon, spec.delta,
                               spec.energy);
    };
    state.finalize = analyze_metrics;
    return;
  }
  state.extraction = &join_extraction_group(job_index, request, spec.profile,
                                            groups);
  state.finalize = [&spec](JobState& s, AnalysisResult& r) {
    const util::LockGuard lock(s.extraction->mutex);
    const core::CircuitProfile& profile = *s.extraction->profile;
    finish_with_payload(
        r, core::analyze(profile, spec.epsilon, spec.delta, spec.energy));
    r.profile = profile;
  };
}

void prepare_profile(std::size_t job_index, const AnalysisRequest& request,
                     const analysis::ProfileRequest& spec, JobState& state,
                     std::deque<ExtractionGroup>& groups) {
  if (auto cached = request.circuit.cached_profile(spec.options);
      cached.has_value()) {
    state.cached_profile = std::move(cached);
    state.finalize = [](JobState& s, AnalysisResult& r) {
      finish_with_payload(r, std::move(*s.cached_profile));
    };
    return;
  }
  state.extraction =
      &join_extraction_group(job_index, request, spec.options, groups);
  state.finalize = [](JobState& s, AnalysisResult& r) {
    const util::LockGuard lock(s.extraction->mutex);
    finish_with_payload(r, *s.extraction->profile);
  };
}

void prepare(std::size_t job_index, const AnalysisRequest& request,
             JobState& state, std::deque<ExtractionGroup>& groups) {
  std::visit(
      [&](const auto& spec) {
        using Spec = std::decay_t<decltype(spec)>;
        if constexpr (std::is_same_v<Spec, analysis::ReliabilityRequest>) {
          prepare_reliability(request, spec, state);
        } else if constexpr (std::is_same_v<Spec, analysis::WorstCaseRequest>) {
          prepare_worst_case(request, spec, state);
        } else if constexpr (std::is_same_v<Spec, analysis::ActivityRequest>) {
          prepare_activity(request, spec, state);
        } else if constexpr (std::is_same_v<Spec,
                                            analysis::SensitivityRequest>) {
          prepare_sensitivity(request, spec, state);
        } else if constexpr (std::is_same_v<Spec,
                                            analysis::EnergyBoundRequest>) {
          prepare_energy_bound(job_index, request, spec, state, groups);
        } else if constexpr (std::is_same_v<Spec, analysis::ProfileRequest>) {
          prepare_profile(job_index, request, spec, state, groups);
        } else if constexpr (std::is_same_v<Spec,
                                            analysis::FaultCampaignRequest>) {
          prepare_fault_campaign(request, spec, state);
        } else if constexpr (std::is_same_v<Spec, analysis::LintRequest>) {
          prepare_lint(request, spec, state);
        } else if constexpr (std::is_same_v<Spec, analysis::CecRequest>) {
          prepare_cec(request, spec, state);
        } else {
          static_assert(std::is_same_v<Spec, analysis::HardenRequest>);
          prepare_harden(request, spec, state);
        }
      },
      request.options);
}

}  // namespace

std::size_t BatchEvaluator::submit(analysis::AnalysisRequest request) {
  requests_.push_back(std::move(request));
  return requests_.size() - 1;
}

void BatchEvaluator::run(const ResultSink& sink) {
  const std::size_t num_jobs = requests_.size();
  std::vector<JobState> states(num_jobs);
  std::deque<ExtractionGroup> groups;  // stable addresses
  const obs::Span batch_span("batch-run", {},
                             "jobs=" + std::to_string(num_jobs));
  static obs::Counter& jobs_total =
      obs::Registry::global().counter("batch-jobs-total");
  static obs::Counter& jobs_failed =
      obs::Registry::global().counter("batch-job-failures-total");

  // Phase 1 (serial, cheap): validate every request, size its task space,
  // and group shared profile extractions. A request that fails validation is
  // isolated into an error result and contributes no tasks.
  for (std::size_t j = 0; j < num_jobs; ++j) {
    states[j].request = &requests_[j];
    states[j].start = std::chrono::steady_clock::now();
    try {
      prepare(j, requests_[j], states[j], groups);
    } catch (const std::exception& e) {
      states[j].record_error(e.what());
      states[j].num_tasks = 0;
      states[j].extraction = nullptr;
    }
  }
  for (std::size_t j = 0; j < num_jobs; ++j) {
    states[j].pending.store(
        states[j].num_tasks + (states[j].extraction != nullptr ? 1 : 0),
        std::memory_order_relaxed);
  }

  // Emission: build the result (finalize or error), then hand it to the
  // sink under one lock — the sink sees results serially, in completion
  // order, from unspecified threads. A throwing sink must not cancel the
  // rest of the batch (per-request isolation extends to delivery): the
  // first sink exception is captured here and rethrown after every request
  // has been evaluated and offered to the sink.
  struct Delivery {
    util::Mutex mutex;
    std::exception_ptr error ENB_GUARDED_BY(mutex);
  } delivery;
  const auto emit = [&](std::size_t j) {
    JobState& state = states[j];
    AnalysisResult result;
    result.index = j;
    result.name = requests_[j].name;
    result.kind = requests_[j].kind();
    const bool group_failed =
        state.extraction != nullptr && state.extraction->failed.load();
    if (state.failed.load() || group_failed) {
      result.ok = false;
      result.error = state.failed.load() ? state.error_text()
                                         : state.extraction->error_text();
    } else {
      try {
        state.finalize(state, result);
        result.ok = true;
      } catch (const std::exception& e) {
        result.ok = false;
        result.error = e.what();
        result.metrics.clear();
        result.profile.reset();
        result.payload = std::monostate{};
      }
    }
    // Per-job wall-clock and trace event. Observational only: elapsed rides
    // a field the JSON/CSV writers never serialize, and the trace event is
    // recorded outside the result entirely.
    const auto end = std::chrono::steady_clock::now();
    result.elapsed_seconds =
        std::chrono::duration<double>(end - state.start).count();
    jobs_total.add(1);
    if (!result.ok) jobs_failed.add(1);
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled()) {
      recorder.record("batch-job", obs::SpanHandle{recorder.new_id()},
                      batch_span.handle(), state.start, end, result.name);
    }
    const util::LockGuard lock(delivery.mutex);
    try {
      sink(std::move(result));
    } catch (...) {
      if (delivery.error == nullptr) delivery.error = std::current_exception();
    }
  };
  const auto complete_unit = [&](std::size_t j) {
    if (states[j].pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      emit(j);
    }
  };

  // Requests with no pending work (validation failures, cache-hit profiles)
  // emit before the parallel phase.
  for (std::size_t j = 0; j < num_jobs; ++j) {
    if (states[j].pending.load(std::memory_order_relaxed) == 0) emit(j);
  }

  // Phase 2 (parallel): every request's own tasks plus every extraction
  // group's shards flattened into one task space over the pool. A worker
  // that completes a request's (or group's) last unit finalizes and emits
  // right there — that is what makes the sink stream.
  std::vector<std::size_t> job_offsets(num_jobs + 1, 0);
  for (std::size_t j = 0; j < num_jobs; ++j) {
    job_offsets[j + 1] = job_offsets[j] + states[j].num_tasks;
  }
  const std::size_t job_total = job_offsets[num_jobs];
  std::vector<std::size_t> group_offsets(groups.size() + 1, 0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    group_offsets[g + 1] = group_offsets[g] + groups[g].plan.num_shards();
  }
  const std::size_t total = job_total + group_offsets[groups.size()];

  for_each_index(
      total,
      [&](std::size_t flat) {
        if (flat < job_total) {
          const std::size_t j = static_cast<std::size_t>(
              std::upper_bound(job_offsets.begin(), job_offsets.end(), flat) -
              job_offsets.begin() - 1);
          JobState& state = states[j];
          if (!state.failed.load(std::memory_order_relaxed)) {
            try {
              state.run_task(state, flat - job_offsets[j]);
            } catch (const std::exception& e) {
              state.record_error(e.what());
            } catch (...) {
              state.record_error("unknown error");
            }
          }
          complete_unit(j);
          return;
        }
        const std::size_t offset = flat - job_total;
        const std::size_t g = static_cast<std::size_t>(
            std::upper_bound(group_offsets.begin(), group_offsets.end(),
                             offset) -
            group_offsets.begin() - 1);
        ExtractionGroup& group = groups[g];
        if (!group.failed.load(std::memory_order_relaxed)) {
          try {
            group.run_shard(offset - group_offsets[g]);
          } catch (const std::exception& e) {
            group.record_error(e.what());
          } catch (...) {
            group.record_error("unknown error");
          }
        }
        if (group.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          if (!group.failed.load()) {
            try {
              group.assemble();
            } catch (const std::exception& e) {
              group.record_error(e.what());
            }
          }
          for (const std::size_t dependent : group.dependents) {
            complete_unit(dependent);
          }
        }
      },
      how_);

  requests_.clear();
  std::exception_ptr sink_error;
  {
    const util::LockGuard lock(delivery.mutex);
    sink_error = delivery.error;
  }
  if (sink_error != nullptr) std::rethrow_exception(sink_error);
}

std::vector<analysis::AnalysisResult> BatchEvaluator::run() {
  std::vector<analysis::AnalysisResult> results(requests_.size());
  run([&results](analysis::AnalysisResult result) {
    results[result.index] = std::move(result);
  });
  return results;
}

std::vector<analysis::AnalysisResult> evaluate_requests(
    std::vector<analysis::AnalysisRequest> requests, Parallelism how) {
  BatchEvaluator evaluator(how);
  for (analysis::AnalysisRequest& request : requests) {
    evaluator.submit(std::move(request));
  }
  return evaluator.run();
}

// ---- manifest / output plumbing ------------------------------------------

namespace {

double parse_manifest_double(const std::string& key, const std::string& value) {
  double parsed = 0.0;
  if (!util::parse_double(value, parsed)) {
    throw std::invalid_argument("manifest: non-numeric value '" + value +
                                "' for key '" + key + "'");
  }
  return parsed;
}

std::uint64_t parse_manifest_count(const std::string& key,
                                   const std::string& value) {
  std::uint64_t parsed = 0;
  if (!util::parse_uint64(value, parsed)) {
    throw std::invalid_argument("manifest: value for key '" + key +
                                "' must be a non-negative integer, got '" +
                                value + "'");
  }
  return parsed;
}

// Everything a manifest line can say, before the kind-specific request spec
// is materialized (budget/seed apply once the kind is known, so key order in
// the line is free).
struct ManifestLine {
  std::string name;
  JobKind kind = JobKind::kReliability;
  std::string circuit_spec;
  std::string golden_spec;
  double epsilon = 0.01;
  double delta = 0.01;
  double leakage = 0.5;
  bool has_leakage = false;
  std::optional<std::uint64_t> budget;
  std::optional<std::uint64_t> seed;
  std::string mode;  // fault-campaign pattern source: "random" | "exhaustive"
  // Fault-campaign scale knobs (campaign.hpp): drop=0|1, lanes=64|128|256|512,
  // sample=N classes (0 = full universe), prune=0|1 untestable pruning.
  std::optional<std::uint64_t> drop;
  std::optional<std::uint64_t> lanes;
  std::optional<std::uint64_t> sample;
  std::optional<std::uint64_t> prune;
  // Harden-only keys (types.hpp): style=tmr|dwc|selective,
  // granularity=gate|cone|output, top_k=N (all optional — absent means
  // sweep the full axis).
  std::optional<harden::Style> style;
  std::optional<harden::Granularity> granularity;
  std::optional<std::uint64_t> top_k;
};

std::vector<ManifestLine> parse_manifest_lines(std::istream& in) {
  std::vector<ManifestLine> lines;
  std::string text;
  std::size_t line_number = 0;
  while (std::getline(in, text)) {
    ++line_number;
    std::istringstream tokens(text);
    std::string name;
    if (!(tokens >> name) || name.front() == '#') continue;

    const auto fail = [&](const std::string& message) -> std::invalid_argument {
      return std::invalid_argument("manifest line " +
                                   std::to_string(line_number) + ": " +
                                   message);
    };

    ManifestLine line;
    line.name = name;
    std::optional<JobKind> kind;
    std::string token;
    while (tokens >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
        throw fail("expected key=value, got '" + token + "'");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "kind") {
        kind = parse_job_kind(value);
        if (!kind.has_value()) throw fail("unknown kind '" + value + "'");
      } else if (key == "circuit") {
        line.circuit_spec = value;
      } else if (key == "golden") {
        line.golden_spec = value;
      } else if (key == "eps") {
        line.epsilon = parse_manifest_double(key, value);
      } else if (key == "delta") {
        line.delta = parse_manifest_double(key, value);
      } else if (key == "budget") {
        line.budget = parse_manifest_count(key, value);
      } else if (key == "seed") {
        line.seed = parse_manifest_count(key, value);
      } else if (key == "leakage") {
        line.leakage = parse_manifest_double(key, value);
        line.has_leakage = true;
      } else if (key == "mode") {
        line.mode = value;
      } else if (key == "drop") {
        line.drop = parse_manifest_count(key, value);
        if (*line.drop > 1) throw fail("drop must be 0 or 1");
      } else if (key == "lanes") {
        line.lanes = parse_manifest_count(key, value);
        if (!fault::parse_lane_width(*line.lanes).has_value()) {
          throw fail("lanes must be 64, 128, 256, or 512");
        }
      } else if (key == "sample") {
        line.sample = parse_manifest_count(key, value);
      } else if (key == "prune") {
        line.prune = parse_manifest_count(key, value);
        if (*line.prune > 1) throw fail("prune must be 0 or 1");
      } else if (key == "style") {
        line.style = harden::parse_style(value);
        if (!line.style.has_value()) {
          throw fail("style must be tmr, dwc, or selective");
        }
      } else if (key == "granularity") {
        line.granularity = harden::parse_granularity(value);
        if (!line.granularity.has_value()) {
          throw fail("granularity must be gate, cone, or output");
        }
      } else if (key == "top_k") {
        line.top_k = parse_manifest_count(key, value);
      } else {
        throw fail("unknown key '" + key + "'");
      }
    }
    if (!kind.has_value()) throw fail("missing kind=");
    if (line.circuit_spec.empty()) throw fail("missing circuit=");
    line.kind = *kind;
    lines.push_back(std::move(line));
  }
  return lines;
}

analysis::RequestOptions manifest_options(const ManifestLine& line) {
  if ((!line.mode.empty() || line.drop.has_value() || line.lanes.has_value() ||
       line.sample.has_value() || line.prune.has_value()) &&
      line.kind != JobKind::kFaultCampaign && line.kind != JobKind::kHarden) {
    throw std::invalid_argument(
        "manifest: keys 'mode', 'drop', 'lanes', 'sample', and 'prune' only "
        "apply to kind=fault-campaign and kind=harden");
  }
  if ((line.style.has_value() || line.granularity.has_value() ||
       line.top_k.has_value()) &&
      line.kind != JobKind::kHarden) {
    throw std::invalid_argument(
        "manifest: keys 'style', 'granularity', and 'top_k' only apply to "
        "kind=harden");
  }
  switch (line.kind) {
    case JobKind::kReliability: {
      analysis::ReliabilityRequest spec;
      spec.epsilon = line.epsilon;
      if (line.budget.has_value()) spec.options.trials = *line.budget;
      if (line.seed.has_value()) spec.options.seed = *line.seed;
      return spec;
    }
    case JobKind::kWorstCase: {
      analysis::WorstCaseRequest spec;
      spec.epsilon = line.epsilon;
      if (line.budget.has_value()) spec.options.trials_per_input = *line.budget;
      if (line.seed.has_value()) spec.options.seed = *line.seed;
      return spec;
    }
    case JobKind::kActivity: {
      analysis::ActivityRequest spec;
      if (line.budget.has_value()) {
        spec.options.sample_pairs = static_cast<std::size_t>(*line.budget);
      }
      if (line.seed.has_value()) spec.options.seed = *line.seed;
      return spec;
    }
    case JobKind::kSensitivity: {
      analysis::SensitivityRequest spec;
      if (line.budget.has_value()) spec.options.sample_words = *line.budget;
      if (line.seed.has_value()) spec.options.seed = *line.seed;
      return spec;
    }
    case JobKind::kEnergyBound: {
      analysis::EnergyBoundRequest spec;
      spec.epsilon = line.epsilon;
      spec.delta = line.delta;
      if (line.has_leakage) spec.energy.leakage_fraction = line.leakage;
      if (line.budget.has_value()) {
        spec.profile.activity_pairs = static_cast<std::size_t>(*line.budget);
      }
      if (line.seed.has_value()) spec.profile.seed = *line.seed;
      return spec;
    }
    case JobKind::kProfile: {
      analysis::ProfileRequest spec;
      if (line.budget.has_value()) {
        spec.options.activity_pairs = static_cast<std::size_t>(*line.budget);
      }
      if (line.seed.has_value()) spec.options.seed = *line.seed;
      return spec;
    }
    case JobKind::kFaultCampaign: {
      analysis::FaultCampaignRequest spec;
      if (line.budget.has_value()) spec.options.patterns = *line.budget;
      if (line.seed.has_value()) spec.options.seed = *line.seed;
      if (!line.mode.empty()) {
        if (line.mode == "exhaustive") {
          spec.options.exhaustive = true;
        } else if (line.mode != "random") {
          throw std::invalid_argument(
              "manifest: mode must be 'random' or 'exhaustive', got '" +
              line.mode + "'");
        }
      }
      if (line.drop.has_value()) spec.options.drop = (*line.drop != 0);
      if (line.lanes.has_value()) {
        spec.options.lanes = *fault::parse_lane_width(*line.lanes);
      }
      if (line.sample.has_value()) spec.options.sample = *line.sample;
      if (line.prune.has_value()) {
        spec.options.prune_untestable = (*line.prune != 0);
      }
      return spec;
    }
    case JobKind::kLint:
      // Structural linting takes no tuning keys; eps/budget/seed are ignored
      // the same way eps is for activity or sensitivity.
      return analysis::LintRequest{};
    case JobKind::kCec: {
      // The comparison reference rides golden=, like every vs-reference kind.
      analysis::CecRequest spec;
      if (line.seed.has_value()) spec.options.seed = *line.seed;
      if (line.budget.has_value()) {
        spec.options.signature_words = static_cast<int>(*line.budget);
      }
      return spec;
    }
    case JobKind::kHarden: {
      // The campaign keys tune the grading campaign every candidate shares;
      // style/granularity/top_k pin sweep axes (absent = full axis).
      analysis::HardenRequest spec;
      spec.options.epsilon = line.epsilon;
      spec.options.delta = line.delta;
      if (line.has_leakage) spec.options.leakage_fraction = line.leakage;
      if (line.budget.has_value()) spec.options.campaign.patterns = *line.budget;
      if (line.seed.has_value()) spec.options.campaign.seed = *line.seed;
      if (!line.mode.empty()) {
        if (line.mode == "exhaustive") {
          spec.options.campaign.exhaustive = true;
        } else if (line.mode != "random") {
          throw std::invalid_argument(
              "manifest: mode must be 'random' or 'exhaustive', got '" +
              line.mode + "'");
        }
      }
      if (line.drop.has_value()) spec.options.campaign.drop = (*line.drop != 0);
      if (line.lanes.has_value()) {
        spec.options.campaign.lanes = *fault::parse_lane_width(*line.lanes);
      }
      if (line.sample.has_value()) spec.options.campaign.sample = *line.sample;
      if (line.prune.has_value()) {
        spec.options.campaign.prune_untestable = (*line.prune != 0);
      }
      if (line.style.has_value()) spec.options.style = *line.style;
      if (line.granularity.has_value()) {
        spec.options.granularity = *line.granularity;
      }
      if (line.top_k.has_value()) {
        spec.options.top_k = static_cast<std::uint32_t>(*line.top_k);
      }
      return spec;
    }
  }
  throw std::invalid_argument("manifest: unknown job kind");
}

void json_escape(std::ostream& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

std::vector<analysis::AnalysisRequest> parse_manifest_requests(
    std::istream& in,
    const std::function<CompiledCircuit(const std::string&)>& resolve) {
  std::vector<analysis::AnalysisRequest> requests;
  for (const ManifestLine& line : parse_manifest_lines(in)) {
    analysis::AnalysisRequest request;
    request.name = line.name;
    request.options = manifest_options(line);
    request.circuit = resolve(line.circuit_spec);
    if (!line.golden_spec.empty()) request.golden = resolve(line.golden_spec);
    requests.push_back(std::move(request));
  }
  return requests;
}

void write_batch_csv(std::ostream& out,
                     const std::vector<analysis::AnalysisResult>& results) {
  report::write_csv_row(out, {"job", "kind", "ok", "metric", "value"});
  std::ostringstream value;
  value << std::setprecision(17);
  for (const analysis::AnalysisResult& r : results) {
    if (!r.ok) {
      report::write_csv_row(out, {r.name, to_string(r.kind), "0", "error", ""});
      continue;
    }
    for (const auto& [metric, metric_value] : r.metrics) {
      value.str("");
      value << metric_value;
      report::write_csv_row(
          out, {r.name, to_string(r.kind), "1", metric, value.str()});
    }
  }
}

void write_result_json(std::ostream& out, const analysis::AnalysisResult& r) {
  out << std::setprecision(17) << "{\"name\": \"";
  json_escape(out, r.name);
  out << "\", \"kind\": \"" << to_string(r.kind) << "\", \"ok\": "
      << (r.ok ? "true" : "false") << ", \"error\": \"";
  json_escape(out, r.error);
  out << "\", \"metrics\": {";
  for (std::size_t m = 0; m < r.metrics.size(); ++m) {
    out << (m == 0 ? "" : ", ") << "\"" << r.metrics[m].first << "\": ";
    // NaN/inf are not valid JSON literals; emit null rather than a file
    // every parser rejects.
    if (std::isfinite(r.metrics[m].second)) {
      out << r.metrics[m].second;
    } else {
      out << "null";
    }
  }
  out << "}}";
}

void write_batch_json(std::ostream& out,
                      const std::vector<analysis::AnalysisResult>& results) {
  out << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    out << "  ";
    write_result_json(out, results[i]);
    out << (i + 1 == results.size() ? "" : ",") << "\n";
  }
  out << "]\n";
}

}  // namespace enb::exec
