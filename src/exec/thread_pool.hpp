// Chunked thread pool with a blocking parallel_for.
//
// The pool hands loop indices to workers through a shared atomic cursor, so
// a worker that finishes its chunk immediately steals the next unclaimed one
// — load balance without per-index task objects. Combined with the
// counter-based PRNG streams in exec/stream.hpp this gives the Monte-Carlo
// estimators a parallel engine whose results do not depend on the thread
// count: each shard's randomness is a pure function of (seed, shard index),
// and shard accumulators combine through order-insensitive integer sums.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "exec/stream.hpp"
#include "util/sync.hpp"

namespace enb::exec {

// Worker count for the global pool: the ENB_THREADS environment variable
// when set to a positive integer, otherwise std::thread::hardware_concurrency
// (minimum 1).
[[nodiscard]] unsigned default_thread_count();

class ThreadPool {
 public:
  // Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  // Runs fn(i) for every i in [0, count), distributing indices across the
  // workers plus the calling thread, and blocks until all are done. The
  // first exception thrown by any fn is rethrown in the caller. Reentrant
  // calls from inside a worker run the loop inline (no deadlock).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  // Process-wide shared pool, created on first use with
  // default_thread_count() workers.
  static ThreadPool& global();

 private:
  struct Job;

  void worker_loop();

  std::vector<std::thread> workers_;
  util::Mutex mutex_;
  util::CondVar work_cv_;  // workers wait here for a job
  util::CondVar done_cv_;  // parallel_for waits here for drain
  util::Mutex submit_mutex_;  // serializes concurrent parallel_fors
  Job* job_ ENB_GUARDED_BY(mutex_) = nullptr;
  bool stop_ ENB_GUARDED_BY(mutex_) = false;
};

// How a parallel loop maps onto threads — the single knob every layer routes
// through (the estimator overloads, the batch evaluator, the analysis front
// door). Per-estimator `Options::threads` members are deprecated in favour of
// passing one of these explicitly.
//   threads == 0: use the global pool (default);
//   threads == 1: run serially on the calling thread;
//   threads >= 2: run on a dedicated transient pool of that many workers
//                 (mainly for thread-count-independence tests).
// Results never depend on the choice: the Monte-Carlo substrates are
// bit-identical for any thread count.
struct Parallelism {
  unsigned threads = 0;

  [[nodiscard]] static constexpr Parallelism serial() noexcept { return {1}; }
  [[nodiscard]] static constexpr Parallelism global_pool() noexcept {
    return {0};
  }
  [[nodiscard]] static constexpr Parallelism dedicated(unsigned n) noexcept {
    return {n};
  }
};

// Pre-PR-3 name for Parallelism; prefer the new one in fresh code.
using ExecPolicy = Parallelism;

// parallel_for under a policy. Serial execution visits indices in order;
// parallel execution visits them in an arbitrary order, so the body must
// only combine into shared state commutatively (or slot results by index).
void for_each_index(std::size_t count,
                    const std::function<void(std::size_t)>& fn,
                    const Parallelism& policy = {});

// The estimators' common idiom: run body(shard) for every shard of `plan`.
// The body owns its shard-local state (simulators, accumulators, a PRNG
// seeded from stream_seed(seed, shard.index)) and must merge into shared
// totals commutatively.
inline void for_each_shard(const ShardPlan& plan,
                           const std::function<void(const Shard&)>& body,
                           const Parallelism& policy = {}) {
  for_each_index(
      plan.num_shards(), [&](std::size_t i) { body(plan.shard(i)); }, policy);
}

}  // namespace enb::exec
