#include "exec/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

#include "obs/metrics.hpp"

namespace enb::exec {

namespace {

// The pool whose job the current thread is executing, if any. A reentrant
// parallel_for on the *same* pool runs inline instead of re-entering
// submit_mutex_ (self-deadlock); a nested call on a *different* pool (e.g. a
// dedicated ExecPolicy{N} pool created inside a global-pool job) still runs
// parallel — the two pools have disjoint workers, so progress is guaranteed.
thread_local const ThreadPool* t_current_pool = nullptr;

// Execution metrics, shared by every pool in the process. "Steals" are
// indices drained by pool workers — work the submitting thread posted and
// did not run inline itself. Queue depth counts submitted-but-undrained
// indices across in-flight jobs (balanced exactly even on error paths,
// because it moves per job, not per task).
struct PoolMetrics {
  obs::Counter& tasks = obs::Registry::global().counter("exec-tasks-total");
  obs::Counter& steals =
      obs::Registry::global().counter("exec-steal-tasks-total");
  obs::Counter& jobs =
      obs::Registry::global().counter("exec-parallel-jobs-total");
  obs::Gauge& queue_depth = obs::Registry::global().gauge("exec-queue-depth");
  obs::Histogram& task_seconds =
      obs::Registry::global().histogram("exec-task-seconds");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics metrics;
  return metrics;
}

// Runs one task index under the duration histogram. A throwing task is not
// observed — its caller's catch handles accounting for the job.
void timed_task(const std::function<void(std::size_t)>& fn, std::size_t i,
                bool stolen) {
  PoolMetrics& metrics = pool_metrics();
  const auto start = std::chrono::steady_clock::now();
  fn(i);
  const auto end = std::chrono::steady_clock::now();
  metrics.tasks.add(1);
  if (stolen) metrics.steals.add(1);
  metrics.task_seconds.observe(
      std::chrono::duration<double>(end - start).count());
}

void run_serial(std::size_t count, const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) timed_task(fn, i, /*stolen=*/false);
}

}  // namespace

unsigned default_thread_count() {
  if (const char* env = std::getenv("ENB_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<unsigned>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

struct ThreadPool::Job {
  std::atomic<std::size_t> next{0};
  std::size_t count = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<unsigned> running{0};  // workers currently inside the drain loop
  // First failure. Guarded by the pool's mutex_ — a relationship the
  // thread-safety analysis cannot express for a struct that outlives no
  // particular lock scope, so it is documented rather than annotated (the
  // TSan lane checks it dynamically).
  std::exception_ptr error;
};

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const util::LockGuard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      util::UniqueLock lock(mutex_);
      // Only wake for a job that still has unclaimed indices: once the range
      // is exhausted the predicate goes false again, so workers that finish
      // early block here instead of busy-spinning through the drain loop
      // while the submitter runs its last chunk.
      work_cv_.wait(lock, [&] {
        mutex_.assert_held();
        return stop_ ||
               (job_ != nullptr &&
                job_->next.load(std::memory_order_relaxed) < job_->count);
      });
      if (stop_) return;
      job = job_;
      job->running.fetch_add(1, std::memory_order_relaxed);
    }
    t_current_pool = this;
    for (;;) {
      const std::size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job->count) break;
      try {
        timed_task(*job->fn, i, /*stolen=*/true);
      } catch (...) {
        const util::LockGuard lock(mutex_);
        if (!job->error) job->error = std::current_exception();
        job->next.store(job->count, std::memory_order_relaxed);
      }
    }
    t_current_pool = nullptr;
    {
      // Decrement under the mutex so the submitter's running == 0 check
      // cannot miss the wakeup.
      const util::LockGuard lock(mutex_);
      job->running.fetch_sub(1, std::memory_order_acq_rel);
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || size() == 0 || t_current_pool == this) {
    run_serial(count, fn);
    return;
  }

  const util::LockGuard submit_lock(submit_mutex_);
  pool_metrics().jobs.add(1);
  pool_metrics().queue_depth.add(static_cast<double>(count));
  Job job;
  job.count = count;
  job.fn = &fn;
  {
    const util::LockGuard lock(mutex_);
    job_ = &job;
  }
  work_cv_.notify_all();

  // The submitting thread drains indices too, so progress never depends on
  // workers being scheduled promptly. While draining it counts as being in
  // this pool's job: a nested parallel_for on the same pool from the body
  // must run inline rather than re-enter submit_mutex_ (self-deadlock).
  const ThreadPool* previous_pool = t_current_pool;
  t_current_pool = this;
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) break;
    try {
      timed_task(fn, i, /*stolen=*/false);
    } catch (...) {
      const util::LockGuard lock(mutex_);
      if (!job.error) job.error = std::current_exception();
      job.next.store(job.count, std::memory_order_relaxed);
    }
  }
  t_current_pool = previous_pool;

  std::exception_ptr error;
  {
    util::UniqueLock lock(mutex_);
    job_ = nullptr;  // stop new workers from picking the job up
    done_cv_.wait(lock, [&] {
      return job.running.load(std::memory_order_acquire) == 0;
    });
    error = job.error;
  }
  pool_metrics().queue_depth.add(-static_cast<double>(count));
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

void for_each_index(std::size_t count,
                    const std::function<void(std::size_t)>& fn,
                    const Parallelism& policy) {
  if (policy.threads == 1) {
    run_serial(count, fn);
  } else if (policy.threads == 0) {
    ThreadPool::global().parallel_for(count, fn);
  } else {
    ThreadPool dedicated(policy.threads);
    dedicated.parallel_for(count, fn);
  }
}

}  // namespace enb::exec
