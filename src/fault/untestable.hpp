// Static untestability proofs for single stuck-at faults.
//
// A fault is *untestable* when no input pattern can both excite it and
// propagate its effect to a primary output — its faulty circuit computes
// exactly the fault-free function, so simulating it is pure waste and
// counting it in a coverage denominator punishes the design for faults that
// cannot matter. This prover identifies such faults without simulating a
// single pattern, from three sound arguments:
//
//   1. Stuck-at-v on a net proved constant at v: the faulty function is
//      the fault-free function by definition.
//   2. A net with no structural path to any primary output: neither
//      polarity can be observed, ever.
//   3. A non-constant net whose every path to the outputs is blocked by a
//      side input proved constant at its gate's controlling value (AND/NAND
//      side at 0, OR/NOR side at 1, MAJ with the two side fanins constant
//      and equal): the difference cannot cross the blocked gate.
//
// Soundness hinges on *which* constants may block. Only tier-one constants
// (forward propagation from constant gates — analysis::ConstantFacts::
// forward) are used: their derivations are supported entirely by other
// proved-constant nets, so they keep their values in any faulty circuit
// whose fault site is outside the proved-constant set (induction over
// topological order). Probe-learned constants do not have this property —
// a learned constant may silently depend on the very net being faulted —
// so they are deliberately not consulted here. For the opposite polarity
// of a constant net (rule 1 covers only stuck-at-its-value), nothing but
// purely structural deadness (rule 2) is claimed, because downstream
// constant proofs may depend on that net's constancy.
//
// Classes inherit untestability from any member site: the collapsing rules
// in fault_model.hpp certify *exact* faulty-function equivalence, so one
// untestable member makes the whole class untestable.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_model.hpp"
#include "netlist/circuit.hpp"

namespace enb::fault {

struct UntestableReport {
  std::vector<bool> site_untestable;   // indexed by site (2 per net)
  std::vector<bool> class_untestable;  // indexed by class
  std::uint64_t untestable_sites = 0;
  std::uint64_t untestable_classes = 0;
  std::uint64_t constant_nets = 0;  // nets proved constant (tier one)
  std::uint64_t dead_nets = 0;      // nets with no structural path out
  std::uint64_t blocked_nets = 0;   // live non-constant nets, all paths blocked
};

[[nodiscard]] UntestableReport find_untestable(const netlist::Circuit& circuit,
                                               const FaultUniverse& universe);

}  // namespace enb::fault
