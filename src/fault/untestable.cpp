#include "fault/untestable.hpp"

#include <cstddef>

#include "analysis/static_reason.hpp"
#include "netlist/topo.hpp"

namespace enb::fault {

using analysis::LogicValue;
using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

namespace {

// True when a difference on fanin net `through` cannot pass gate `id`
// because another fanin (a different *net* — all fanout branches of the
// faulted net carry the fault together) is proved constant at the gate's
// controlling value.
bool blocks(const Circuit& circuit, NodeId id, NodeId through,
            const std::vector<LogicValue>& constant) {
  const GateType type = circuit.type(id);
  const auto fanins = circuit.fanins(id);
  switch (type) {
    case GateType::kAnd:
    case GateType::kNand:
      for (const NodeId f : fanins) {
        if (f != through && constant[f] == LogicValue::kZero) return true;
      }
      return false;
    case GateType::kOr:
    case GateType::kNor:
      for (const NodeId f : fanins) {
        if (f != through && constant[f] == LogicValue::kOne) return true;
      }
      return false;
    case GateType::kMaj: {
      // Two side fanins constant and equal decide the vote regardless of
      // the third.
      LogicValue seen = LogicValue::kUnknown;
      for (const NodeId f : fanins) {
        if (f == through || constant[f] == LogicValue::kUnknown) continue;
        if (seen != LogicValue::kUnknown && constant[f] == seen) return true;
        seen = constant[f];
      }
      return false;
    }
    default:
      // XOR/XNOR/NOT/BUF always pass a difference through.
      return false;
  }
}

constexpr std::size_t site_of(NodeId node, StuckAt value) noexcept {
  return 2 * static_cast<std::size_t>(node) +
         (value == StuckAt::kOne ? 1 : 0);
}

}  // namespace

UntestableReport find_untestable(const Circuit& circuit,
                                 const FaultUniverse& universe) {
  UntestableReport report;
  const std::size_t n = circuit.node_count();

  // Tier-one constants only — see the header's soundness argument. Probe
  // rounds are disabled: their facts would be unsound here and their cost
  // is the dominant term.
  analysis::StaticReasonOptions options;
  options.max_probe_rounds = 0;
  const std::vector<LogicValue> constant =
      analysis::analyze_constants(circuit, options).forward;

  const std::vector<bool> live = netlist::reachable_from_outputs(circuit);

  std::vector<bool> is_output(n, false);
  for (const NodeId out : circuit.outputs()) is_output[out] = true;
  std::vector<std::vector<NodeId>> fanouts(n);
  for (NodeId id = 0; id < n; ++id) {
    for (const NodeId f : circuit.fanins(id)) fanouts[f].push_back(id);
  }

  // Observability: can a difference on this net reach some output through
  // at least one chain of unblocked gates? Node ids are topological, so one
  // reverse scan is the fixpoint (a net's fanouts all have higher ids).
  std::vector<bool> observable(n, false);
  for (NodeId id = static_cast<NodeId>(n); id-- > 0;) {
    if (is_output[id]) {
      observable[id] = true;
      continue;
    }
    for (const NodeId g : fanouts[id]) {
      if (observable[g] && !blocks(circuit, g, id, constant)) {
        observable[id] = true;
        break;
      }
    }
  }

  report.site_untestable.assign(universe.num_sites(), false);
  for (NodeId id = 0; id < n; ++id) {
    const LogicValue value = constant[id];
    if (value != LogicValue::kUnknown) ++report.constant_nets;
    if (!live[id]) {
      // No structural path to any output: nothing about this net is ever
      // observed. This is the only argument safe for *both* polarities of
      // a constant net (downstream constant proofs may depend on it).
      ++report.dead_nets;
      report.site_untestable[site_of(id, StuckAt::kZero)] = true;
      report.site_untestable[site_of(id, StuckAt::kOne)] = true;
    } else if (value == LogicValue::kZero) {
      report.site_untestable[site_of(id, StuckAt::kZero)] = true;
    } else if (value == LogicValue::kOne) {
      report.site_untestable[site_of(id, StuckAt::kOne)] = true;
    } else if (!observable[id]) {
      // Live, non-constant, but every path out crosses a gate whose side
      // input holds the controlling value in the faulty circuit too.
      ++report.blocked_nets;
      report.site_untestable[site_of(id, StuckAt::kZero)] = true;
      report.site_untestable[site_of(id, StuckAt::kOne)] = true;
    }
  }

  report.class_untestable.assign(universe.num_classes(), false);
  for (std::size_t s = 0; s < universe.num_sites(); ++s) {
    if (report.site_untestable[s]) {
      ++report.untestable_sites;
      report.class_untestable[universe.class_of(s)] = true;
    }
  }
  for (const bool u : report.class_untestable) {
    report.untestable_classes += u ? 1 : 0;
  }
  return report;
}

}  // namespace enb::fault
