// Deterministic sharded stuck-at fault campaigns.
//
// A campaign asks, for every equivalence class of the circuit's fault
// universe, "does any pattern in the budget detect this fault?" — where
// detection means a majority-decoded output differs from the golden
// circuit's fault-free response. With golden == the circuit itself this is
// classic fault-coverage grading; with golden == the unprotected base
// design and the circuit an ft/ redundancy variant (NMR, von Neumann
// multiplexing with bundle_width > 1) the *undetected* fraction is the
// masking the redundancy buys, and the result pairs it with the gate
// overhead paid — the energy-vs-coverage trade the paper's bounds price.
//
// Determinism contract (same as every estimator in the repo): patterns are
// split into fixed-size shards; shard i derives its random patterns from
// the counter-based stream of (seed, i) and contributes per-class detection
// counts that merge by integer sum. Results are therefore bit-identical for
// any thread count, submission order, or co-scheduled work, which is what
// lets FaultCampaignRequest ride the batch evaluator and the serve daemon's
// result cache unchanged.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "exec/stream.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault_model.hpp"
#include "netlist/circuit.hpp"
#include "sim/bitpack.hpp"

namespace enb::fault {

struct CampaignOptions {
  // Random-pattern budget (logical input assignments); ignored when
  // exhaustive is set.
  std::uint64_t patterns = 256;
  // Enumerate all 2^n logical assignments instead (n <= kMaxExhaustiveCampaignInputs).
  bool exhaustive = false;
  std::uint64_t seed = 0xFA17;
  // Patterns per shard. Part of the seed contract: changing it re-partitions
  // the stream space and (deterministically) changes which random patterns
  // are drawn.
  std::uint64_t shard_patterns = 64;
  // ft/ bundle convention: inputs/outputs are consecutive bundles of this
  // many wires per logical signal, majority-decoded before comparison
  // (1 = plain circuit).
  int bundle_width = 1;
  // Structural equivalence collapsing (fault_model.hpp). Off simulates every
  // site as its own class — slower, same coverage, used for cross-checks.
  bool collapse = true;
};

// Exhaustive campaigns are capped well below sim::kMaxExhaustiveInputs:
// every pattern costs ceil(classes/64) + 1 sweeps, not one lane.
inline constexpr int kMaxExhaustiveCampaignInputs = 20;

struct FaultCampaignResult {
  std::uint64_t nets = 0;        // fault sites / 2
  std::uint64_t sites = 0;       // 2 per net, before collapsing
  std::uint64_t classes = 0;     // equivalence classes simulated
  std::uint64_t detected = 0;    // classes detected by >= 1 pattern
  std::uint64_t patterns = 0;    // logical patterns simulated
  std::uint64_t sim_passes = 0;  // full-circuit sweeps (golden + faulty)
  double coverage = 0.0;         // detected / classes
  double masked_fraction = 0.0;  // 1 - coverage
  // Energy-vs-coverage ingredients: the redundancy variant's gate count
  // against the golden reference it protects.
  std::uint64_t gates = 0;
  std::uint64_t golden_gates = 0;
  double gate_overhead = 1.0;        // gates / golden_gates
  double overhead_per_masked = 0.0;  // gate_overhead / masked_fraction
  // Per-class detecting-pattern counts, in class order (sums over shards).
  std::vector<std::uint64_t> detection_counts;

  friend bool operator==(const FaultCampaignResult&,
                         const FaultCampaignResult&) = default;
};

// ---- shard-level building blocks -----------------------------------------
//
// run_campaign is *defined* as the merge of these shard bodies, and the
// batch engine schedules exactly the same bodies, so batched campaigns are
// bit-identical to direct calls by construction.

// Validation run_campaign applies before sharding: bundle-divisible
// interfaces, golden/circuit agreement on the logical interface, positive
// budgets, and the exhaustive input cap.
void validate_campaign_inputs(const netlist::Circuit& circuit,
                              const netlist::Circuit& golden,
                              const CampaignOptions& options);

// The pattern decomposition implied by `options`: 2^n logical assignments
// when exhaustive, else options.patterns, in shards of shard_patterns.
// `golden` supplies the logical input count.
[[nodiscard]] exec::ShardPlan campaign_shard_plan(
    const netlist::Circuit& golden, const CampaignOptions& options);

// The logical input patterns of one shard — a pure function of
// (options, shard): assignment bits of the pattern index when exhaustive,
// else draws from the counter-based stream of (seed, shard.index). Shared
// by the campaign shards and the per-pattern detection table so `.ans` rows
// and aggregate coverage always describe the same patterns.
[[nodiscard]] std::vector<std::vector<bool>> shard_pattern_bits(
    std::size_t num_logical_inputs, const CampaignOptions& options,
    const exec::Shard& shard);

// Per-class detection counts plus the sweeps spent collecting them; merges
// commutatively (element-wise and scalar sums).
struct CampaignCounts {
  CampaignCounts() = default;
  explicit CampaignCounts(std::size_t num_classes)
      : class_detections(num_classes, 0) {}

  std::vector<std::uint64_t> class_detections;
  std::uint64_t passes = 0;

  void merge(const CampaignCounts& other);
};

// Counts contributed by one shard of the plan. Precondition: inputs
// validated and `universe` built for `circuit` with options.collapse.
[[nodiscard]] CampaignCounts campaign_shard_counts(
    const netlist::Circuit& circuit, const netlist::Circuit& golden,
    const FaultUniverse& universe, const CampaignOptions& options,
    const exec::Shard& shard);

// Serial reduction of the merged counts into the result record.
[[nodiscard]] FaultCampaignResult finalize_campaign(
    const netlist::Circuit& circuit, const netlist::Circuit& golden,
    const FaultUniverse& universe, const CampaignOptions& options,
    const CampaignCounts& counts);

// Runs a whole campaign, parallelized per `how`. golden == nullptr grades
// the circuit against its own fault-free behaviour.
[[nodiscard]] FaultCampaignResult run_campaign(
    const netlist::Circuit& circuit, const netlist::Circuit* golden,
    const CampaignOptions& options = {}, exec::Parallelism how = {});

// ---- per-pattern detection records (the `.ans` view) ----------------------

// Everything the row-level output needs: the patterns actually simulated
// (global pattern-index order) and, per pattern, one detection word per
// 64-class block. Built with slot-per-pattern writes, so the table is
// bit-identical for any thread count.
struct DetectionTable {
  std::vector<std::vector<bool>> patterns;        // [pattern][logical input]
  std::vector<std::vector<sim::Word>> detected;   // [pattern][class block]
  std::uint64_t passes = 0;
};

[[nodiscard]] DetectionTable build_detection_table(
    const netlist::Circuit& circuit, const netlist::Circuit& golden,
    const FaultUniverse& universe, const CampaignOptions& options,
    exec::Parallelism how = {});

// Folds a table into the aggregate counts (how the CLI derives the summary
// it shares with manifest campaigns).
[[nodiscard]] CampaignCounts counts_from_table(const FaultUniverse& universe,
                                               const DetectionTable& table);

// `.ans`-style rows (as6325400/Fault_Simulation): header
//   # pattern net sa0_eq sa1_eq
// then one row per (pattern, net) in pattern-major, canonical-net-order:
//   <pattern index> <net name> <sa0_eq> <sa1_eq>
// where eq is 1 when the faulty outputs still decode equal to golden
// (fault masked on that pattern) and 0 when the difference is observable.
// Class results are expanded to every member site — exact by equivalence.
void write_ans(std::ostream& out, const netlist::Circuit& circuit,
               const FaultUniverse& universe, const DetectionTable& table);

}  // namespace enb::fault
