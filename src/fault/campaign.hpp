// Deterministic sharded stuck-at fault campaigns.
//
// A campaign asks, for every equivalence class of the circuit's fault
// universe, "does any pattern in the budget detect this fault — and which
// pattern and output see it first?" — where detection means a
// majority-decoded output differs from the golden circuit's fault-free
// response. With golden == the circuit itself this is classic
// fault-coverage grading; with golden == the unprotected base design and
// the circuit an ft/ redundancy variant (NMR, von Neumann multiplexing
// with bundle_width > 1) the *undetected* fraction is the masking the
// redundancy buys, and the result pairs it with the gate overhead paid —
// the energy-vs-coverage trade the paper's bounds price.
//
// Determinism contract (same as every estimator in the repo): patterns are
// split into fixed-size shards; shard i derives its random patterns from
// the counter-based stream of (seed, i) and contributes per-class
// first-detection records that merge by per-class minimum on the global
// pattern index (tie-free: shards own disjoint pattern ranges). Results
// are therefore bit-identical for any thread count, submission order, or
// co-scheduled work, which is what lets FaultCampaignRequest ride the
// batch evaluator and the serve daemon's result cache unchanged.
//
// Scale knobs (all preserve that contract exactly):
//   drop    retire detected classes between patterns *within a shard* and
//           repack survivors into dense lanes. First detections are
//           recorded before retirement and shard-local pattern order is
//           sequential, so every output field is bit-identical to the
//           no-drop path — only sim_passes shrinks.
//   lanes   physical fault lanes per sweep (64/128/256/512, lanes.hpp).
//           Pure execution policy: pass accounting is normalized to
//           64-lane units, so results are identical for every width and
//           `lanes` stays OUT of canonical analysis specs.
//   sample  simulate only a deterministic sample of the classes (counter
//           stream keyed by seed) and report coverage of the sample with a
//           Wilson confidence interval. Changes what is simulated, so it
//           IS part of the canonical spec, as is drop (it changes
//           sim_passes).
//   prune   skip classes the static prover (fault/untestable.hpp) proved
//           untestable and report coverage over the testable universe.
//           Per-class records keep universe indexing and stay bit-identical
//           to the unpruned run on every testable class. Spec-relevant.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <vector>

#include "exec/stream.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault_model.hpp"
#include "fault/lanes.hpp"
#include "netlist/circuit.hpp"
#include "sim/bitpack.hpp"

namespace enb::fault {

struct CampaignOptions {
  // Random-pattern budget (logical input assignments); ignored when
  // exhaustive is set.
  std::uint64_t patterns = 256;
  // Enumerate all 2^n logical assignments instead (n <= kMaxExhaustiveCampaignInputs).
  bool exhaustive = false;
  std::uint64_t seed = 0xFA17;
  // Patterns per shard. Part of the seed contract: changing it re-partitions
  // the stream space and (deterministically) changes which random patterns
  // are drawn.
  std::uint64_t shard_patterns = 64;
  // ft/ bundle convention: inputs/outputs are consecutive bundles of this
  // many wires per logical signal, majority-decoded before comparison
  // (1 = plain circuit).
  int bundle_width = 1;
  // Structural equivalence collapsing (fault_model.hpp). Off simulates every
  // site as its own class — slower, same coverage, used for cross-checks.
  bool collapse = true;
  // Fault dropping: stop simulating a class once detected (see file
  // comment). Identical results, fewer sim_passes.
  bool drop = false;
  // Simulate only this many classes, chosen by a deterministic counter
  // stream of the seed (0 = the whole universe). Spec-relevant.
  std::uint64_t sample = 0;
  // Drop statically-untestable classes (fault/untestable.hpp) from the
  // active set and the coverage denominator. Class numbering and every
  // per-class record are unchanged — an untestable class simply reports
  // "never detected", which is what simulating it would have reported —
  // so pruned results are bit-identical to unpruned ones restricted to
  // the testable classes. Changes what is simulated: spec-relevant.
  bool prune_untestable = false;
  // Physical lanes per sweep. Execution policy, not spec.
  LaneWidth lanes = LaneWidth::k64;
};

// Exhaustive campaigns are capped well below sim::kMaxExhaustiveInputs:
// every pattern costs ceil(classes/64) + 1 sweeps, not one lane.
inline constexpr int kMaxExhaustiveCampaignInputs = 20;

// Typed error for budgets over the exhaustive cap, so batch error isolation
// and the CLI's exit-2 path can surface it distinctly from generic
// validation failures.
class ExhaustiveCapError : public std::invalid_argument {
 public:
  explicit ExhaustiveCapError(std::size_t logical_inputs);
  [[nodiscard]] std::size_t logical_inputs() const noexcept {
    return logical_inputs_;
  }

 private:
  std::size_t logical_inputs_;
};

struct FaultCampaignResult {
  std::uint64_t nets = 0;        // fault sites / 2
  std::uint64_t sites = 0;       // 2 per net, before collapsing
  std::uint64_t classes = 0;     // equivalence classes in the universe
  std::uint64_t sampled = 0;     // classes actually simulated (== classes
                                 // unless options.sample or
                                 // options.prune_untestable shrink the set)
  std::uint64_t untestable = 0;  // classes proved untestable (0 unpruned)
  std::uint64_t detected = 0;    // sampled classes detected by >= 1 pattern
  std::uint64_t patterns = 0;    // logical patterns simulated
  std::uint64_t sim_passes = 0;  // normalized 64-lane sweeps (golden + faulty)
  double coverage = 0.0;         // detected / sampled
  // Wilson interval for the universe coverage implied by the sample; both
  // ends equal coverage when the whole universe was simulated.
  double coverage_ci_low = 0.0;
  double coverage_ci_high = 0.0;
  double masked_fraction = 0.0;  // 1 - coverage
  // Energy-vs-coverage ingredients: the redundancy variant's gate count
  // against the golden reference it protects.
  std::uint64_t gates = 0;
  std::uint64_t golden_gates = 0;
  double gate_overhead = 1.0;        // gates / golden_gates
  double overhead_per_masked = 0.0;  // gate_overhead / masked_fraction
  // Distinct logical outputs that are the first detector of some class —
  // the scalar summary of the detectability map below.
  std::uint64_t detect_outputs = 0;
  // Per-class detection indicator (0/1), in class order. Unsampled classes
  // are 0.
  std::vector<std::uint64_t> detection_counts;
  // Detectability map, in class order: the global index of the earliest
  // detecting pattern (kNotDetected when undetected or unsampled) and the
  // lowest logical output index that detects at that pattern (kNoOutput).
  std::vector<std::uint64_t> first_detect_pattern;
  std::vector<std::uint32_t> first_detect_output;

  friend bool operator==(const FaultCampaignResult&,
                         const FaultCampaignResult&) = default;
};

// ---- shard-level building blocks -----------------------------------------
//
// run_campaign is *defined* as the merge of these shard bodies, and the
// batch engine schedules exactly the same bodies, so batched campaigns are
// bit-identical to direct calls by construction.

// Validation run_campaign applies before sharding: bundle-divisible
// interfaces, golden/circuit agreement on the logical interface, positive
// budgets, and the exhaustive input cap (ExhaustiveCapError).
void validate_campaign_inputs(const netlist::Circuit& circuit,
                              const netlist::Circuit& golden,
                              const CampaignOptions& options);

// The pattern decomposition implied by `options`: 2^n logical assignments
// when exhaustive, else options.patterns, in shards of shard_patterns.
// `golden` supplies the logical input count.
[[nodiscard]] exec::ShardPlan campaign_shard_plan(
    const netlist::Circuit& golden, const CampaignOptions& options);

// The logical input patterns of one shard — a pure function of
// (options, shard): assignment bits of the pattern index when exhaustive,
// else draws from the counter-based stream of (seed, shard.index). Shared
// by the campaign shards and the per-pattern detection table so `.ans` rows
// and aggregate coverage always describe the same patterns.
[[nodiscard]] std::vector<std::vector<bool>> shard_pattern_bits(
    std::size_t num_logical_inputs, const CampaignOptions& options,
    const exec::Shard& shard);

// The classes a campaign with `options` simulates, ascending: all of them,
// or a `sample`-sized subset keyed by the counter stream of the seed — a
// pure function of (universe size, seed, sample), independent of sharding.
[[nodiscard]] std::vector<std::uint32_t> sampled_classes(
    const FaultUniverse& universe, const CampaignOptions& options);

// Per-class first-detection records plus the sweeps spent collecting them;
// merges commutatively (per-class min on the pattern index — tie-free
// across shards — and scalar pass sums).
struct CampaignCounts {
  CampaignCounts() = default;
  explicit CampaignCounts(std::size_t num_classes)
      : first_pattern(num_classes, kNotDetected),
        first_output(num_classes, kNoOutput) {}

  std::vector<std::uint64_t> first_pattern;
  std::vector<std::uint32_t> first_output;
  std::uint64_t passes = 0;

  void merge(const CampaignCounts& other);
};

// Counts contributed by one shard of the plan. Precondition: inputs
// validated and `universe` built for `circuit` with options.collapse.
[[nodiscard]] CampaignCounts campaign_shard_counts(
    const netlist::Circuit& circuit, const netlist::Circuit& golden,
    const FaultUniverse& universe, const CampaignOptions& options,
    const exec::Shard& shard);

// Serial reduction of the merged counts into the result record.
[[nodiscard]] FaultCampaignResult finalize_campaign(
    const netlist::Circuit& circuit, const netlist::Circuit& golden,
    const FaultUniverse& universe, const CampaignOptions& options,
    const CampaignCounts& counts);

// Runs a whole campaign, parallelized per `how`. golden == nullptr grades
// the circuit against its own fault-free behaviour.
[[nodiscard]] FaultCampaignResult run_campaign(
    const netlist::Circuit& circuit, const netlist::Circuit* golden,
    const CampaignOptions& options = {}, exec::Parallelism how = {});

// ---- per-pattern detection records (the `.ans` view) ----------------------

// Everything the row-level output needs: the patterns actually simulated
// (global pattern-index order), per pattern one detection word per 64-class
// block (bit c = class c detected — universe class indexing regardless of
// lane width), and the merged first-detection counts. Built with
// slot-per-pattern writes, so the table is bit-identical for any thread
// count and lane width. The table path never drops (rows must be complete),
// so its passes match the no-drop campaign.
struct DetectionTable {
  std::vector<std::vector<bool>> patterns;        // [pattern][logical input]
  std::vector<std::vector<sim::Word>> detected;   // [pattern][class / 64]
  CampaignCounts counts;
  std::uint64_t passes = 0;
};

[[nodiscard]] DetectionTable build_detection_table(
    const netlist::Circuit& circuit, const netlist::Circuit& golden,
    const FaultUniverse& universe, const CampaignOptions& options,
    exec::Parallelism how = {});

// The aggregate counts of a table (how the CLI derives the summary it
// shares with manifest campaigns).
[[nodiscard]] CampaignCounts counts_from_table(const FaultUniverse& universe,
                                               const DetectionTable& table);

// `.ans`-style rows (as6325400/Fault_Simulation): header
//   # pattern net sa0_eq sa1_eq
// then one row per (pattern, net) in pattern-major, canonical-net-order:
//   <pattern index> <net name> <sa0_eq> <sa1_eq>
// where eq is 1 when the faulty outputs still decode equal to golden
// (fault masked on that pattern) and 0 when the difference is observable.
// Class results are expanded to every member site — exact by equivalence.
// A detectability-map section follows, header
//   # detect net sa0_pattern sa0_output sa1_pattern sa1_output
// then one row per net with the first detecting (pattern, logical output)
// of each polarity, `-` for undetected. Requires a full-universe table.
void write_ans(std::ostream& out, const netlist::Circuit& circuit,
               const FaultUniverse& universe, const DetectionTable& table);

}  // namespace enb::fault
