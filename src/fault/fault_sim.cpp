#include "fault/fault_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "netlist/gate_type.hpp"

namespace enb::fault {

namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;
using sim::Word;

constexpr Word broadcast(bool bit) noexcept { return bit ? sim::kAllOnes : 0; }

}  // namespace

void validate_bundle_interface(const Circuit& circuit, int bundle_width) {
  if (bundle_width != 1 && (bundle_width < 3 || bundle_width % 2 == 0)) {
    throw std::invalid_argument(
        "fault: bundle_width must be 1 or odd and >= 3, got " +
        std::to_string(bundle_width));
  }
  const auto width = static_cast<std::size_t>(bundle_width);
  if (circuit.num_inputs() == 0 || circuit.num_inputs() % width != 0) {
    throw std::invalid_argument(
        "fault: circuit input count " + std::to_string(circuit.num_inputs()) +
        " is not a positive multiple of bundle_width " +
        std::to_string(bundle_width));
  }
  if (circuit.num_outputs() == 0 || circuit.num_outputs() % width != 0) {
    throw std::invalid_argument(
        "fault: circuit output count " + std::to_string(circuit.num_outputs()) +
        " is not a positive multiple of bundle_width " +
        std::to_string(bundle_width));
  }
}

// ---- FaultParallelSim ------------------------------------------------------

FaultParallelSim::FaultParallelSim(const Circuit& circuit,
                                   const FaultUniverse& universe,
                                   int bundle_width)
    : circuit_(&circuit),
      universe_(&universe),
      bundle_width_(bundle_width),
      values_(circuit.node_count(), 0),
      force0_(circuit.node_count(), 0),
      force1_(circuit.node_count(), 0),
      bundle_counter_(bundle_width > 0 ? bundle_width : 1) {
  validate_bundle_interface(circuit, bundle_width);
}

Word FaultParallelSim::block_mask(std::size_t block) const {
  const std::size_t begin = block * sim::kWordBits;
  const std::size_t lanes =
      std::min<std::size_t>(sim::kWordBits, universe_->num_classes() - begin);
  return sim::low_mask(static_cast<int>(lanes));
}

Word FaultParallelSim::detect_block(std::size_t block,
                                    const std::vector<bool>& pattern,
                                    const std::vector<bool>& expected) {
  const Circuit& circuit = *circuit_;
  const auto width = static_cast<std::size_t>(bundle_width_);
  if (pattern.size() * width != circuit.num_inputs()) {
    throw std::invalid_argument("fault: pattern size mismatch");
  }
  if (expected.size() * width != circuit.num_outputs()) {
    throw std::invalid_argument("fault: expected-output size mismatch");
  }
  const std::size_t first_class = block * sim::kWordBits;
  const std::size_t lanes =
      std::min<std::size_t>(sim::kWordBits, universe_->num_classes() - first_class);

  // Lane L of this sweep is the circuit under the representative fault of
  // class first_class + L: record the per-node force masks (cleared again
  // below — only up to 64 nodes are touched per block).
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const FaultSite& site = universe_->representative(first_class + lane);
    const Word bit = Word{1} << lane;
    (site.value == StuckAt::kZero ? force0_ : force1_)[site.node] |= bit;
  }

  // One linear sweep (ids are topological by construction), forcing applied
  // at every node so faults on inputs and constants inject exactly like
  // gate-output faults.
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    const auto& node = circuit.node(id);
    Word value = 0;
    switch (node.type) {
      case GateType::kInput:
        value = broadcast(
            pattern[static_cast<std::size_t>(circuit.input_index(id)) / width]);
        break;
      case GateType::kConst0:
        value = 0;
        break;
      case GateType::kConst1:
        value = sim::kAllOnes;
        break;
      default: {
        fanin_buffer_.clear();
        for (const NodeId fanin : node.fanins) {
          fanin_buffer_.push_back(values_[fanin]);
        }
        value = netlist::eval_word(node.type, fanin_buffer_);
        break;
      }
    }
    values_[id] = (value & ~force0_[id]) | force1_[id];
  }
  ++passes_;

  // Decode each logical output's bundle per lane and compare against the
  // expected fault-free bit; any difference marks the lane detected.
  Word detected = 0;
  const std::span<const NodeId> outputs = circuit.outputs();
  const std::size_t logical_outputs = outputs.size() / width;
  if (width == 1) {
    for (std::size_t o = 0; o < logical_outputs; ++o) {
      detected |= values_[outputs[o]] ^ broadcast(expected[o]);
    }
  } else {
    for (std::size_t o = 0; o < logical_outputs; ++o) {
      bundle_counter_.reset();
      for (std::size_t w = 0; w < width; ++w) {
        bundle_counter_.add(values_[outputs[o * width + w]]);
      }
      detected |= bundle_counter_.greater_than(bundle_width_ / 2) ^
                  broadcast(expected[o]);
    }
  }

  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const FaultSite& site = universe_->representative(first_class + lane);
    force0_[site.node] = 0;
    force1_[site.node] = 0;
  }
  return detected & block_mask(block);
}

// ---- ScalarFaultSim --------------------------------------------------------

ScalarFaultSim::ScalarFaultSim(const Circuit& circuit,
                               const FaultUniverse& universe, int bundle_width)
    : circuit_(&circuit),
      universe_(&universe),
      bundle_width_(bundle_width),
      values_(circuit.node_count(), 0) {
  validate_bundle_interface(circuit, bundle_width);
}

bool ScalarFaultSim::detect(std::size_t class_index,
                            const std::vector<bool>& pattern,
                            const std::vector<bool>& expected) {
  const Circuit& circuit = *circuit_;
  const auto width = static_cast<std::size_t>(bundle_width_);
  if (pattern.size() * width != circuit.num_inputs()) {
    throw std::invalid_argument("fault: pattern size mismatch");
  }
  if (expected.size() * width != circuit.num_outputs()) {
    throw std::invalid_argument("fault: expected-output size mismatch");
  }
  const FaultSite& site = universe_->representative(class_index);

  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    const auto& node = circuit.node(id);
    bool value = false;
    switch (node.type) {
      case GateType::kInput:
        value =
            pattern[static_cast<std::size_t>(circuit.input_index(id)) / width];
        break;
      case GateType::kConst0:
        value = false;
        break;
      case GateType::kConst1:
        value = true;
        break;
      default: {
        fanin_buffer_.assign(node.fanins.size(), false);
        for (std::size_t f = 0; f < node.fanins.size(); ++f) {
          fanin_buffer_[f] = values_[node.fanins[f]] != 0;
        }
        value = netlist::eval_bit(node.type, fanin_buffer_);
        break;
      }
    }
    if (id == site.node) value = (site.value == StuckAt::kOne);
    values_[id] = value ? 1 : 0;
  }
  ++passes_;

  const std::span<const NodeId> outputs = circuit.outputs();
  const std::size_t logical_outputs = outputs.size() / width;
  for (std::size_t o = 0; o < logical_outputs; ++o) {
    bool decoded = false;
    if (width == 1) {
      decoded = values_[outputs[o]] != 0;
    } else {
      int ones = 0;
      for (std::size_t w = 0; w < width; ++w) {
        ones += values_[outputs[o * width + w]];
      }
      decoded = ones > bundle_width_ / 2;
    }
    if (decoded != static_cast<bool>(expected[o])) return true;
  }
  return false;
}

}  // namespace enb::fault
