#include "fault/fault_sim.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>
#include <string>

#include "netlist/gate_type.hpp"

namespace enb::fault {

namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;
using sim::Word;

// Lane-generic gate evaluation mirroring netlist::eval_word bit for bit in
// every lane (same folds, same arity rules). Kept local: the lane container
// is an implementation detail of this engine.
template <typename V>
V eval_lanes(GateType type, std::span<const V> inputs) {
  const auto [min_arity, max_arity] = netlist::arity_range(type);
  const int n = static_cast<int>(inputs.size());
  if (n < min_arity || n > max_arity) {
    throw std::invalid_argument("eval_lanes: bad arity " + std::to_string(n) +
                                " for gate " +
                                std::string(netlist::to_string(type)));
  }
  switch (type) {
    case GateType::kInput:
      throw std::invalid_argument("eval_lanes: kInput has no evaluation rule");
    case GateType::kConst0:
      return V{};
    case GateType::kConst1:
      return ~V{};
    case GateType::kBuf:
      return inputs[0];
    case GateType::kNot:
      return ~inputs[0];
    case GateType::kAnd:
    case GateType::kNand: {
      V acc = ~V{};
      for (const V& w : inputs) acc &= w;
      return type == GateType::kAnd ? acc : ~acc;
    }
    case GateType::kOr:
    case GateType::kNor: {
      V acc = V{};
      for (const V& w : inputs) acc |= w;
      return type == GateType::kOr ? acc : ~acc;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      V acc = V{};
      for (const V& w : inputs) acc ^= w;
      return type == GateType::kXor ? acc : ~acc;
    }
    case GateType::kMaj:
      return (inputs[0] & inputs[1]) | (inputs[0] & inputs[2]) |
             (inputs[1] & inputs[2]);
  }
  throw std::invalid_argument("eval_lanes: unknown gate type");
}

}  // namespace

void validate_bundle_interface(const Circuit& circuit, int bundle_width) {
  if (bundle_width != 1 && (bundle_width < 3 || bundle_width % 2 == 0)) {
    throw std::invalid_argument(
        "fault: bundle_width must be 1 or odd and >= 3, got " +
        std::to_string(bundle_width));
  }
  const auto width = static_cast<std::size_t>(bundle_width);
  if (circuit.num_inputs() == 0 || circuit.num_inputs() % width != 0) {
    throw std::invalid_argument(
        "fault: circuit input count " + std::to_string(circuit.num_inputs()) +
        " is not a positive multiple of bundle_width " +
        std::to_string(bundle_width));
  }
  if (circuit.num_outputs() == 0 || circuit.num_outputs() % width != 0) {
    throw std::invalid_argument(
        "fault: circuit output count " + std::to_string(circuit.num_outputs()) +
        " is not a positive multiple of bundle_width " +
        std::to_string(bundle_width));
  }
}

// ---- LaneFaultSim ----------------------------------------------------------

template <typename V>
LaneFaultSim<V>::LaneFaultSim(const Circuit& circuit,
                              const FaultUniverse& universe, int bundle_width)
    : circuit_(&circuit),
      universe_(&universe),
      bundle_width_(bundle_width),
      values_(circuit.node_count(), V{}),
      force0_(circuit.node_count(), V{}),
      force1_(circuit.node_count(), V{}),
      bundle_counter_(bundle_width > 0 ? bundle_width : 1) {
  validate_bundle_interface(circuit, bundle_width);
  active_.resize(universe.num_classes());
  std::iota(active_.begin(), active_.end(), 0u);
}

template <typename V>
void LaneFaultSim<V>::set_active(std::vector<std::uint32_t> classes) {
  for (const std::uint32_t cls : classes) {
    if (cls >= universe_->num_classes()) {
      throw std::invalid_argument("fault: active class " + std::to_string(cls) +
                                  " outside universe of " +
                                  std::to_string(universe_->num_classes()));
    }
  }
  active_ = std::move(classes);
}

template <typename V>
V LaneFaultSim<V>::block_mask(std::size_t block) const {
  const std::size_t begin = block * static_cast<std::size_t>(kLanesPerBlock);
  if (begin >= active_.size()) return V{};
  const std::size_t lanes = std::min<std::size_t>(
      static_cast<std::size_t>(kLanesPerBlock), active_.size() - begin);
  return lane_low_mask<V>(static_cast<int>(lanes));
}

template <typename V>
V LaneFaultSim<V>::decode_output(std::size_t o) {
  const std::span<const NodeId> outputs = circuit_->outputs();
  const auto width = static_cast<std::size_t>(bundle_width_);
  if (width == 1) return values_[outputs[o]];
  bundle_counter_.reset();
  for (std::size_t w = 0; w < width; ++w) {
    bundle_counter_.add(values_[outputs[o * width + w]]);
  }
  return bundle_counter_.greater_than(bundle_width_ / 2);
}

template <typename V>
V LaneFaultSim<V>::detect_block(std::size_t block,
                                const std::vector<bool>& pattern,
                                const std::vector<bool>& expected) {
  const Circuit& circuit = *circuit_;
  const auto width = static_cast<std::size_t>(bundle_width_);
  if (pattern.size() * width != circuit.num_inputs()) {
    throw std::invalid_argument("fault: pattern size mismatch");
  }
  if (expected.size() * width != circuit.num_outputs()) {
    throw std::invalid_argument("fault: expected-output size mismatch");
  }
  if (block >= num_blocks()) {
    throw std::invalid_argument("fault: block index out of range");
  }
  const std::size_t first = block * static_cast<std::size_t>(kLanesPerBlock);
  const std::size_t lanes = std::min<std::size_t>(
      static_cast<std::size_t>(kLanesPerBlock), active_.size() - first);

  // Lane L of this sweep is the circuit under the representative fault of
  // active class first + L: record the per-node force masks (cleared again
  // below — only up to kLanesPerBlock nodes are touched per block).
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const FaultSite& site = universe_->representative(active_[first + lane]);
    lane_set_bit(site.value == StuckAt::kZero ? force0_[site.node]
                                              : force1_[site.node],
                 static_cast<int>(lane));
  }

  // One linear sweep (ids are topological by construction), forcing applied
  // at every node so faults on inputs and constants inject exactly like
  // gate-output faults.
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    const auto& node = circuit.node(id);
    V value = V{};
    switch (node.type) {
      case GateType::kInput:
        value = lane_broadcast<V>(
            pattern[static_cast<std::size_t>(circuit.input_index(id)) / width]);
        break;
      case GateType::kConst0:
        value = V{};
        break;
      case GateType::kConst1:
        value = ~V{};
        break;
      default: {
        fanin_buffer_.clear();
        for (const NodeId fanin : node.fanins) {
          fanin_buffer_.push_back(values_[fanin]);
        }
        value = eval_lanes<V>(node.type, fanin_buffer_);
        break;
      }
    }
    values_[id] = (value & ~force0_[id]) | force1_[id];
  }
  // Normalized pass accounting: a sweep over `lanes` active lanes costs the
  // same as the 64-lane engine would pay for them, so totals are identical
  // for every vector width.
  passes_ += (static_cast<std::uint64_t>(lanes) + sim::kWordBits - 1) /
             sim::kWordBits;

  // Decode each logical output's bundle per lane and compare against the
  // expected fault-free bit; any difference marks the lane detected.
  V detected = V{};
  const std::size_t logical_outputs = circuit.outputs().size() / width;
  for (std::size_t o = 0; o < logical_outputs; ++o) {
    detected |= decode_output(o) ^ lane_broadcast<V>(expected[o]);
  }

  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const FaultSite& site = universe_->representative(active_[first + lane]);
    force0_[site.node] = V{};
    force1_[site.node] = V{};
  }
  return detected & block_mask(block);
}

template <typename V>
void LaneFaultSim<V>::first_outputs(std::size_t block, V lanes,
                                    const std::vector<bool>& expected,
                                    std::vector<std::uint32_t>& out) {
  const auto width = static_cast<std::size_t>(bundle_width_);
  const std::size_t logical_outputs = circuit_->outputs().size() / width;
  out.assign(static_cast<std::size_t>(kLanesPerBlock), kNoOutput);
  lanes &= block_mask(block);
  V remaining = lanes;
  for (std::size_t o = 0; o < logical_outputs && lane_any(remaining); ++o) {
    const V hit =
        (decode_output(o) ^ lane_broadcast<V>(expected[o])) & remaining;
    for (int w = 0; w < kLaneWords<V>; ++w) {
      Word bits = lane_word(hit, w);
      while (bits != 0) {
        const int lane = std::countr_zero(bits);
        out[static_cast<std::size_t>(w) * sim::kWordBits +
            static_cast<std::size_t>(lane)] = static_cast<std::uint32_t>(o);
        bits &= bits - 1;
      }
    }
    remaining &= ~hit;
  }
}

template class LaneFaultSim<sim::Word>;
template class LaneFaultSim<LaneVec128>;
template class LaneFaultSim<LaneVec256>;
template class LaneFaultSim<LaneVec512>;

// ---- ScalarFaultSim --------------------------------------------------------

ScalarFaultSim::ScalarFaultSim(const Circuit& circuit,
                               const FaultUniverse& universe, int bundle_width)
    : circuit_(&circuit),
      universe_(&universe),
      bundle_width_(bundle_width),
      values_(circuit.node_count(), 0) {
  validate_bundle_interface(circuit, bundle_width);
}

bool ScalarFaultSim::detect(std::size_t class_index,
                            const std::vector<bool>& pattern,
                            const std::vector<bool>& expected) {
  const Circuit& circuit = *circuit_;
  const auto width = static_cast<std::size_t>(bundle_width_);
  if (pattern.size() * width != circuit.num_inputs()) {
    throw std::invalid_argument("fault: pattern size mismatch");
  }
  if (expected.size() * width != circuit.num_outputs()) {
    throw std::invalid_argument("fault: expected-output size mismatch");
  }
  const FaultSite& site = universe_->representative(class_index);

  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    const auto& node = circuit.node(id);
    bool value = false;
    switch (node.type) {
      case GateType::kInput:
        value =
            pattern[static_cast<std::size_t>(circuit.input_index(id)) / width];
        break;
      case GateType::kConst0:
        value = false;
        break;
      case GateType::kConst1:
        value = true;
        break;
      default: {
        fanin_buffer_.assign(node.fanins.size(), false);
        for (std::size_t f = 0; f < node.fanins.size(); ++f) {
          fanin_buffer_[f] = values_[node.fanins[f]] != 0;
        }
        value = netlist::eval_bit(node.type, fanin_buffer_);
        break;
      }
    }
    if (id == site.node) value = (site.value == StuckAt::kOne);
    values_[id] = value ? 1 : 0;
  }
  ++passes_;

  const std::span<const NodeId> outputs = circuit.outputs();
  const std::size_t logical_outputs = outputs.size() / width;
  for (std::size_t o = 0; o < logical_outputs; ++o) {
    bool decoded = false;
    if (width == 1) {
      decoded = values_[outputs[o]] != 0;
    } else {
      int ones = 0;
      for (std::size_t w = 0; w < width; ++w) {
        ones += values_[outputs[o * width + w]];
      }
      decoded = ones > bundle_width_ / 2;
    }
    if (decoded != static_cast<bool>(expected[o])) return true;
  }
  return false;
}

}  // namespace enb::fault
