// Stuck-at fault simulation substrates.
//
// Two implementations of the same question — "which faults does this input
// pattern detect?" — with opposite packings:
//
//   LaneFaultSim<V>   packs one *fault* per lane of the lane container V
//                     (sim::Word = 64 lanes, LaneVec128/256/512 = wider, see
//                     lanes.hpp): one linear sweep of the circuit evaluates
//                     one pattern under every fault of the block
//                     simultaneously. The simulated set is an explicit
//                     *active list* of class indices (default: the whole
//                     universe), which is what fault dropping and sampled
//                     campaigns repack between patterns — retiring detected
//                     classes keeps the surviving lanes dense, so late
//                     patterns sweep only undetected faults.
//
//   ScalarFaultSim    injects one fault at a time and evaluates the pattern
//                     gate by gate on plain bools. Deliberately shares no
//                     evaluation machinery with the lane-parallel path; it
//                     exists only to cross-check it (tests and the CLI's
//                     --check-scalar diff the two bit for bit, for every
//                     lane width).
//
// FaultParallelSim is the 64-lane instantiation — the historical name and
// the cross-check baseline.
//
// Both simulate the *collapsed* universe (one representative per
// equivalence class — exact for every member, see fault_model.hpp) and
// support the ft/ bundle convention: with bundle_width b > 1 the circuit's
// inputs/outputs are consecutive b-wire bundles per logical signal (the
// ft/multiplex layout); inputs are broadcast per bundle and outputs are
// majority-decoded before comparison, so a fault is "detected" only when it
// survives redundancy decoding.
//
// A fault is detected on a pattern when any decoded output differs from
// `expected` — the golden circuit's fault-free outputs for that pattern
// (the campaign layer supplies them; golden defaults to the circuit
// itself). passes() is the currency of the pass-reduction contract and is
// *normalized to 64-lane sweeps*: a block with A active lanes costs
// ceil(A/64) regardless of the physical vector width, so pass counts — and
// therefore whole campaign results — are lane-width independent.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault_model.hpp"
#include "fault/lanes.hpp"
#include "netlist/circuit.hpp"
#include "sim/bitpack.hpp"

namespace enb::fault {

template <typename V>
class LaneFaultSim {
 public:
  static constexpr int kLanesPerBlock = kLaneBits<V>;

  // Throws std::invalid_argument when the interface is not bundle-divisible
  // or bundle_width is not 1 or odd >= 3. Starts with every class active.
  LaneFaultSim(const netlist::Circuit& circuit, const FaultUniverse& universe,
               int bundle_width = 1);

  // Replaces the active list: `classes` are universe class indices, packed
  // into lanes in the given order (lane L of block b is classes[b * W + L]).
  // Throws std::invalid_argument on an out-of-range index.
  void set_active(std::vector<std::uint32_t> classes);
  [[nodiscard]] std::span<const std::uint32_t> active() const noexcept {
    return active_;
  }

  // Active classes are processed in blocks of kLanesPerBlock lanes.
  [[nodiscard]] std::size_t num_blocks() const noexcept {
    return (active_.size() + static_cast<std::size_t>(kLanesPerBlock) - 1) /
           static_cast<std::size_t>(kLanesPerBlock);
  }
  // Valid-lane mask of `block` (all lanes except a short final block).
  [[nodiscard]] V block_mask(std::size_t block) const;

  // Detection lanes for `block` on one pattern: lane L is set iff the
  // class in that lane is detected, i.e. some majority-decoded output under
  // that fault differs from expected. `pattern` holds one bool per
  // *logical* input, `expected` one bool per *logical* output.
  [[nodiscard]] V detect_block(std::size_t block,
                               const std::vector<bool>& pattern,
                               const std::vector<bool>& expected);

  // For each lane set in `lanes`, the lowest logical output index whose
  // decoded value differs from expected (kNoOutput for unset lanes) — the
  // detectability map's "which output first sees this fault". Must be
  // called directly after detect_block(block, ...) on the same pattern: it
  // re-decodes the node values of that sweep.
  void first_outputs(std::size_t block, V lanes,
                     const std::vector<bool>& expected,
                     std::vector<std::uint32_t>& out);

  // Normalized 64-lane-equivalent sweeps performed so far.
  [[nodiscard]] std::uint64_t passes() const noexcept { return passes_; }

 private:
  // Decoded value of logical output `o` for every lane of the last sweep.
  [[nodiscard]] V decode_output(std::size_t o);

  const netlist::Circuit* circuit_;
  const FaultUniverse* universe_;
  int bundle_width_;
  std::vector<std::uint32_t> active_;  // lane order: class of block*W + L
  std::vector<V> values_;
  std::vector<V> force0_;  // per node: lanes forced to 0 this block
  std::vector<V> force1_;  // per node: lanes forced to 1 this block
  std::vector<V> fanin_buffer_;
  VecLaneCounter<V> bundle_counter_;  // reused across detect_block calls
  std::uint64_t passes_ = 0;
};

// The 64-fault-per-word instantiation: the historical engine name, and the
// width every other LaneWidth is required to be bit-identical to.
using FaultParallelSim = LaneFaultSim<sim::Word>;

extern template class LaneFaultSim<sim::Word>;
extern template class LaneFaultSim<LaneVec128>;
extern template class LaneFaultSim<LaneVec256>;
extern template class LaneFaultSim<LaneVec512>;

class ScalarFaultSim {
 public:
  ScalarFaultSim(const netlist::Circuit& circuit,
                 const FaultUniverse& universe, int bundle_width = 1);

  // True iff class `class_index`'s representative fault is detected on
  // `pattern` (same logical-interface conventions as LaneFaultSim).
  // One simulation pass.
  [[nodiscard]] bool detect(std::size_t class_index,
                            const std::vector<bool>& pattern,
                            const std::vector<bool>& expected);

  [[nodiscard]] std::uint64_t passes() const noexcept { return passes_; }

 private:
  const netlist::Circuit* circuit_;
  const FaultUniverse* universe_;
  int bundle_width_;
  std::vector<char> values_;
  std::vector<bool> fanin_buffer_;
  std::uint64_t passes_ = 0;
};

// Shared interface validation: bundle_width is 1 or odd >= 3, the circuit's
// input/output counts are multiples of it, and there is at least one output.
void validate_bundle_interface(const netlist::Circuit& circuit,
                               int bundle_width);

}  // namespace enb::fault
