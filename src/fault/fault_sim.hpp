// Stuck-at fault simulation substrates.
//
// Two implementations of the same question — "which faults does this input
// pattern detect?" — with opposite packings:
//
//   FaultParallelSim  packs 64 *faults* per machine word: one linear sweep
//                     of the circuit evaluates one pattern under 64
//                     different injected faults simultaneously (lane L of
//                     every node word is the circuit under fault L of the
//                     block). A campaign therefore performs
//                     ceil(classes/64) faulty sweeps per pattern instead of
//                     `classes` — the >= 32x pass reduction the fault
//                     engine is built around.
//
//   ScalarFaultSim    injects one fault at a time and evaluates the pattern
//                     gate by gate on plain bools. Deliberately shares no
//                     evaluation machinery with the word-parallel path; it
//                     exists only to cross-check it (tests and the CLI's
//                     --check-scalar diff the two bit for bit).
//
// Both simulate the *collapsed* universe (one representative per
// equivalence class — exact for every member, see fault_model.hpp) and
// support the ft/ bundle convention: with bundle_width b > 1 the circuit's
// inputs/outputs are consecutive b-wire bundles per logical signal (the
// ft/multiplex layout); inputs are broadcast per bundle and outputs are
// majority-decoded before comparison, so a fault is "detected" only when it
// survives redundancy decoding.
//
// A fault is detected on a pattern when any decoded output differs from
// `expected` — the golden circuit's fault-free outputs for that pattern
// (the campaign layer supplies them; golden defaults to the circuit
// itself). Both classes count their full-circuit sweeps in passes(), the
// currency of the pass-reduction contract.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_model.hpp"
#include "netlist/circuit.hpp"
#include "sim/bitpack.hpp"

namespace enb::fault {

class FaultParallelSim {
 public:
  // Throws std::invalid_argument when the interface is not bundle-divisible
  // or bundle_width is not 1 or odd >= 3.
  FaultParallelSim(const netlist::Circuit& circuit,
                   const FaultUniverse& universe, int bundle_width = 1);

  // Representative faults are processed in blocks of 64 classes:
  // block b covers classes [64 b, min(64 b + 64, num_classes)).
  [[nodiscard]] std::size_t num_blocks() const noexcept {
    return (universe_->num_classes() + sim::kWordBits - 1) / sim::kWordBits;
  }
  // Valid-lane mask of `block` (all 64 except a short final block).
  [[nodiscard]] sim::Word block_mask(std::size_t block) const;

  // Detection word for `block` on one pattern: bit L is set iff class
  // 64*block + L is detected, i.e. some majority-decoded output under that
  // fault differs from expected. `pattern` holds one bool per *logical*
  // input, `expected` one bool per *logical* output. One simulation pass.
  [[nodiscard]] sim::Word detect_block(std::size_t block,
                                       const std::vector<bool>& pattern,
                                       const std::vector<bool>& expected);

  // Full-circuit sweeps performed so far.
  [[nodiscard]] std::uint64_t passes() const noexcept { return passes_; }

 private:
  const netlist::Circuit* circuit_;
  const FaultUniverse* universe_;
  int bundle_width_;
  std::vector<sim::Word> values_;
  std::vector<sim::Word> force0_;  // per node: lanes forced to 0 this block
  std::vector<sim::Word> force1_;  // per node: lanes forced to 1 this block
  std::vector<sim::Word> fanin_buffer_;
  sim::LaneCounter bundle_counter_;  // reused across detect_block calls
  std::uint64_t passes_ = 0;
};

class ScalarFaultSim {
 public:
  ScalarFaultSim(const netlist::Circuit& circuit,
                 const FaultUniverse& universe, int bundle_width = 1);

  // True iff class `class_index`'s representative fault is detected on
  // `pattern` (same logical-interface conventions as FaultParallelSim).
  // One simulation pass.
  [[nodiscard]] bool detect(std::size_t class_index,
                            const std::vector<bool>& pattern,
                            const std::vector<bool>& expected);

  [[nodiscard]] std::uint64_t passes() const noexcept { return passes_; }

 private:
  const netlist::Circuit* circuit_;
  const FaultUniverse* universe_;
  int bundle_width_;
  std::vector<char> values_;
  std::vector<bool> fanin_buffer_;
  std::uint64_t passes_ = 0;
};

// Shared interface validation: bundle_width is 1 or odd >= 3, the circuit's
// input/output counts are multiples of it, and there is at least one output.
void validate_bundle_interface(const netlist::Circuit& circuit,
                               int bundle_width);

}  // namespace enb::fault
