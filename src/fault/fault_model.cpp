#include "fault/fault_model.hpp"

#include <algorithm>
#include <numeric>

#include "fault/untestable.hpp"
#include "netlist/nets.hpp"
#include "netlist/topo.hpp"

namespace enb::fault {

namespace {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

// Union-find over site indices with path halving; roots are always the
// smallest member, which makes representatives canonical without a second
// normalization pass.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void merge(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (b < a) std::swap(a, b);
    parent_[b] = a;  // smaller index wins the root
  }

 private:
  std::vector<std::size_t> parent_;
};

// The local equivalence rule for a gate: an input stuck at `input_stuck` is
// equivalent to the output stuck at `output_stuck`. kNone when the gate type
// offers no input/output equivalence (XOR-like and MAJ gates).
struct GateRule {
  bool has_rule = false;
  StuckAt input_stuck = StuckAt::kZero;
  StuckAt output_stuck = StuckAt::kZero;
  bool identity = false;  // BUF/NOT-like: both polarities map through
  bool invert = false;    // with identity: polarity flips through the gate
};

GateRule rule_for(GateType type, std::size_t fanin_count) {
  GateRule rule;
  // Single-fanin gates degenerate to a buffer or an inverter regardless of
  // their nominal type: the value (or its complement) passes straight
  // through, so both stuck polarities collapse across the gate.
  if (fanin_count == 1) {
    switch (type) {
      case GateType::kBuf:
      case GateType::kAnd:
      case GateType::kOr:
      case GateType::kXor:
        rule.has_rule = true;
        rule.identity = true;
        rule.invert = false;
        return rule;
      case GateType::kNot:
      case GateType::kNand:
      case GateType::kNor:
      case GateType::kXnor:
        rule.has_rule = true;
        rule.identity = true;
        rule.invert = true;
        return rule;
      default:
        return rule;
    }
  }
  // Multi-input gates with a controlling value c and output inversion i:
  // any input stuck at c forces the output to its controlled value, which
  // is exactly the output stuck at c XOR i.
  switch (type) {
    case GateType::kAnd:
      rule = {true, StuckAt::kZero, StuckAt::kZero, false, false};
      break;
    case GateType::kNand:
      rule = {true, StuckAt::kZero, StuckAt::kOne, false, false};
      break;
    case GateType::kOr:
      rule = {true, StuckAt::kOne, StuckAt::kOne, false, false};
      break;
    case GateType::kNor:
      rule = {true, StuckAt::kOne, StuckAt::kZero, false, false};
      break;
    default:
      break;  // XOR/XNOR/MAJ: no controlling value, no equivalence
  }
  return rule;
}

constexpr std::size_t site_index(NodeId node, StuckAt value) noexcept {
  return 2 * static_cast<std::size_t>(node) +
         (value == StuckAt::kOne ? 1 : 0);
}

}  // namespace

FaultUniverse FaultUniverse::build(const Circuit& circuit, bool collapse,
                                   bool prune_untestable) {
  FaultUniverse universe;
  const std::vector<netlist::NetInfo> nets = netlist::enumerate_nets(circuit);
  universe.sites_.reserve(nets.size() * 2);
  for (const netlist::NetInfo& net : nets) {
    universe.sites_.push_back({net.node, StuckAt::kZero});
    universe.sites_.push_back({net.node, StuckAt::kOne});
  }

  UnionFind classes(universe.sites_.size());
  if (collapse) {
    // A fanin fault may only collapse into its gate when the fanin net is
    // observed *nowhere else*: exactly one fanout edge and no primary-output
    // listing (an output port observes the net directly, so forcing it is
    // distinguishable from forcing the gate's output).
    const std::vector<int> fanouts = netlist::fanout_counts(circuit);
    std::vector<bool> is_output(circuit.node_count(), false);
    for (const NodeId out : circuit.outputs()) is_output[out] = true;

    for (NodeId id = 0; id < circuit.node_count(); ++id) {
      const auto& node = circuit.node(id);
      if (!netlist::counts_as_gate(node.type)) continue;
      const GateRule rule = rule_for(node.type, node.fanins.size());
      if (!rule.has_rule) continue;
      for (const NodeId fanin : node.fanins) {
        if (fanouts[fanin] != 1 || is_output[fanin]) continue;
        if (rule.identity) {
          const StuckAt out0 = rule.invert ? StuckAt::kOne : StuckAt::kZero;
          const StuckAt out1 = rule.invert ? StuckAt::kZero : StuckAt::kOne;
          classes.merge(site_index(fanin, StuckAt::kZero),
                        site_index(id, out0));
          classes.merge(site_index(fanin, StuckAt::kOne),
                        site_index(id, out1));
        } else {
          classes.merge(site_index(fanin, rule.input_stuck),
                        site_index(id, rule.output_stuck));
        }
      }
    }
  }

  // Number the classes in order of their lowest site index (== their root,
  // by the union-find's smaller-index-wins policy).
  universe.class_of_.assign(universe.sites_.size(), 0);
  std::vector<std::size_t> class_of_root(universe.sites_.size(),
                                         static_cast<std::size_t>(-1));
  for (std::size_t s = 0; s < universe.sites_.size(); ++s) {
    const std::size_t root = classes.find(s);
    if (class_of_root[root] == static_cast<std::size_t>(-1)) {
      class_of_root[root] = universe.rep_site_.size();
      universe.rep_site_.push_back(root);
    }
    universe.class_of_[s] = class_of_root[root];
  }

  if (prune_untestable) {
    const UntestableReport report = find_untestable(circuit, universe);
    universe.untestable_ = report.class_untestable;
    universe.num_untestable_ = report.untestable_classes;
    universe.pruned_ = true;
  }
  return universe;
}

}  // namespace enb::fault
