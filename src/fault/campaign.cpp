#include "fault/campaign.hpp"

#include <bit>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <string>

#include "fault/fault_sim.hpp"
#include "sim/logic_sim.hpp"
#include "sim/prng.hpp"

namespace enb::fault {

namespace {

using netlist::Circuit;
using sim::Word;

std::uint64_t pattern_total(const Circuit& golden,
                            const CampaignOptions& options) {
  if (options.exhaustive) {
    return std::uint64_t{1} << golden.num_inputs();
  }
  return options.patterns;
}

// The per-pattern body shared by the aggregate counts and the detection
// table: one golden broadcast pass for the expected logical outputs, then
// one faulty sweep per 64-class block into `row`. Keeping this in one place
// is what makes the two views bit-identical by construction rather than by
// parallel maintenance. The golden pass is counted by the caller (one per
// pattern); the faulty sweeps accumulate in sim.passes().
void detect_pattern(FaultParallelSim& sim, sim::LogicSim& golden_sim,
                    const std::vector<bool>& pattern,
                    std::vector<Word>& golden_inputs,
                    std::vector<bool>& expected, std::vector<Word>& row) {
  const Circuit& golden = golden_sim.circuit();
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    golden_inputs[i] = pattern[i] ? sim::kAllOnes : 0;
  }
  golden_sim.eval(golden_inputs);
  expected.resize(golden.num_outputs());
  for (std::size_t o = 0; o < golden.num_outputs(); ++o) {
    expected[o] = (golden_sim.value(golden.outputs()[o]) & 1) != 0;
  }
  row.assign(sim.num_blocks(), 0);
  for (std::size_t block = 0; block < sim.num_blocks(); ++block) {
    row[block] = sim.detect_block(block, pattern, expected);
  }
}

}  // namespace

void validate_campaign_inputs(const Circuit& circuit, const Circuit& golden,
                              const CampaignOptions& options) {
  validate_bundle_interface(circuit, options.bundle_width);
  const auto width = static_cast<std::size_t>(options.bundle_width);
  if (golden.num_inputs() * width != circuit.num_inputs() ||
      golden.num_outputs() * width != circuit.num_outputs()) {
    throw std::invalid_argument(
        "fault campaign: golden interface mismatch (circuit " +
        std::to_string(circuit.num_inputs()) + "->" +
        std::to_string(circuit.num_outputs()) + ", golden " +
        std::to_string(golden.num_inputs()) + "->" +
        std::to_string(golden.num_outputs()) + ", bundle_width " +
        std::to_string(options.bundle_width) + ")");
  }
  if (options.exhaustive) {
    if (golden.num_inputs() >
        static_cast<std::size_t>(kMaxExhaustiveCampaignInputs)) {
      throw std::invalid_argument(
          "fault campaign: exhaustive mode supports at most " +
          std::to_string(kMaxExhaustiveCampaignInputs) +
          " logical inputs, got " + std::to_string(golden.num_inputs()));
    }
  } else if (options.patterns == 0) {
    throw std::invalid_argument("fault campaign: patterns must be > 0");
  }
  if (options.shard_patterns == 0) {
    throw std::invalid_argument("fault campaign: shard_patterns must be > 0");
  }
}

exec::ShardPlan campaign_shard_plan(const Circuit& golden,
                                    const CampaignOptions& options) {
  return exec::ShardPlan(
      static_cast<std::size_t>(pattern_total(golden, options)),
      static_cast<std::size_t>(options.shard_patterns));
}

std::vector<std::vector<bool>> shard_pattern_bits(
    std::size_t num_logical_inputs, const CampaignOptions& options,
    const exec::Shard& shard) {
  std::vector<std::vector<bool>> rows(shard.size());
  if (options.exhaustive) {
    for (std::size_t i = 0; i < shard.size(); ++i) {
      const std::uint64_t assignment = shard.begin + i;
      std::vector<bool>& row = rows[i];
      row.resize(num_logical_inputs);
      for (std::size_t bit = 0; bit < num_logical_inputs; ++bit) {
        row[bit] = ((assignment >> bit) & 1) != 0;
      }
    }
    return rows;
  }
  sim::Xoshiro256 rng(exec::stream_seed(options.seed, shard.index));
  for (std::size_t i = 0; i < shard.size(); ++i) {
    std::vector<bool>& row = rows[i];
    row.resize(num_logical_inputs);
    for (std::size_t bit = 0; bit < num_logical_inputs; ++bit) {
      row[bit] = (rng.next() >> 63) != 0;
    }
  }
  return rows;
}

void CampaignCounts::merge(const CampaignCounts& other) {
  if (class_detections.size() != other.class_detections.size()) {
    throw std::invalid_argument("CampaignCounts::merge: size mismatch");
  }
  for (std::size_t c = 0; c < class_detections.size(); ++c) {
    class_detections[c] += other.class_detections[c];
  }
  passes += other.passes;
}

CampaignCounts campaign_shard_counts(const Circuit& circuit,
                                     const Circuit& golden,
                                     const FaultUniverse& universe,
                                     const CampaignOptions& options,
                                     const exec::Shard& shard) {
  CampaignCounts counts(universe.num_classes());
  const std::vector<std::vector<bool>> patterns =
      shard_pattern_bits(golden.num_inputs(), options, shard);
  FaultParallelSim sim(circuit, universe, options.bundle_width);
  sim::LogicSim golden_sim(golden);
  std::vector<Word> golden_inputs(golden.num_inputs());
  std::vector<bool> expected;
  std::vector<Word> row;

  for (const std::vector<bool>& pattern : patterns) {
    detect_pattern(sim, golden_sim, pattern, golden_inputs, expected, row);
    ++counts.passes;  // the golden pass (work the scalar flow pays too)
    for (std::size_t block = 0; block < row.size(); ++block) {
      Word detected = row[block];
      while (detected != 0) {
        const int lane = std::countr_zero(detected);
        ++counts.class_detections[block * sim::kWordBits +
                                  static_cast<std::size_t>(lane)];
        detected &= detected - 1;
      }
    }
  }
  counts.passes += sim.passes();
  return counts;
}

FaultCampaignResult finalize_campaign(const Circuit& circuit,
                                      const Circuit& golden,
                                      const FaultUniverse& universe,
                                      const CampaignOptions& options,
                                      const CampaignCounts& counts) {
  FaultCampaignResult result;
  result.nets = universe.num_nets();
  result.sites = universe.num_sites();
  result.classes = universe.num_classes();
  result.patterns = pattern_total(golden, options);
  result.sim_passes = counts.passes;
  result.detection_counts = counts.class_detections;
  for (const std::uint64_t count : counts.class_detections) {
    if (count != 0) ++result.detected;
  }
  result.coverage = result.classes == 0
                        ? 0.0
                        : static_cast<double>(result.detected) /
                              static_cast<double>(result.classes);
  result.masked_fraction = 1.0 - result.coverage;
  result.gates = circuit.gate_count();
  result.golden_gates = golden.gate_count();
  result.gate_overhead = result.golden_gates == 0
                             ? 1.0
                             : static_cast<double>(result.gates) /
                                   static_cast<double>(result.golden_gates);
  // Cost of masking: infinite when nothing is masked (renders as JSON null).
  result.overhead_per_masked = result.gate_overhead / result.masked_fraction;
  return result;
}

FaultCampaignResult run_campaign(const Circuit& circuit, const Circuit* golden,
                                 const CampaignOptions& options,
                                 exec::Parallelism how) {
  const Circuit& reference = golden != nullptr ? *golden : circuit;
  validate_campaign_inputs(circuit, reference, options);
  const FaultUniverse universe =
      FaultUniverse::build(circuit, options.collapse);
  const exec::ShardPlan plan = campaign_shard_plan(reference, options);

  CampaignCounts total(universe.num_classes());
  std::mutex mutex;
  exec::for_each_shard(
      plan,
      [&](const exec::Shard& shard) {
        const CampaignCounts local =
            campaign_shard_counts(circuit, reference, universe, options, shard);
        const std::lock_guard<std::mutex> lock(mutex);
        total.merge(local);
      },
      how);
  return finalize_campaign(circuit, reference, universe, options, total);
}

// ---- detection table / .ans ------------------------------------------------

DetectionTable build_detection_table(const Circuit& circuit,
                                     const Circuit& golden,
                                     const FaultUniverse& universe,
                                     const CampaignOptions& options,
                                     exec::Parallelism how) {
  validate_campaign_inputs(circuit, golden, options);
  const exec::ShardPlan plan = campaign_shard_plan(golden, options);

  DetectionTable table;
  table.patterns.resize(plan.total());
  table.detected.resize(plan.total());
  std::mutex mutex;
  exec::for_each_shard(
      plan,
      [&](const exec::Shard& shard) {
        std::vector<std::vector<bool>> patterns =
            shard_pattern_bits(golden.num_inputs(), options, shard);
        FaultParallelSim sim(circuit, universe, options.bundle_width);
        sim::LogicSim golden_sim(golden);
        std::vector<Word> golden_inputs(golden.num_inputs());
        std::vector<bool> expected;
        std::vector<Word> row;
        std::uint64_t golden_passes = 0;
        for (std::size_t i = 0; i < patterns.size(); ++i) {
          detect_pattern(sim, golden_sim, patterns[i], golden_inputs,
                         expected, row);
          ++golden_passes;
          // Slot-per-pattern writes keep the table thread-count independent.
          table.detected[shard.begin + i] = row;
          table.patterns[shard.begin + i] = std::move(patterns[i]);
        }
        const std::uint64_t shard_passes = golden_passes + sim.passes();
        const std::lock_guard<std::mutex> lock(mutex);
        table.passes += shard_passes;
      },
      how);
  return table;
}

CampaignCounts counts_from_table(const FaultUniverse& universe,
                                 const DetectionTable& table) {
  CampaignCounts counts(universe.num_classes());
  counts.passes = table.passes;
  for (const std::vector<Word>& row : table.detected) {
    for (std::size_t block = 0; block < row.size(); ++block) {
      Word detected = row[block];
      while (detected != 0) {
        const int lane = std::countr_zero(detected);
        ++counts.class_detections[block * sim::kWordBits +
                                  static_cast<std::size_t>(lane)];
        detected &= detected - 1;
      }
    }
  }
  return counts;
}

void write_ans(std::ostream& out, const Circuit& circuit,
               const FaultUniverse& universe, const DetectionTable& table) {
  out << "# pattern net sa0_eq sa1_eq\n";
  const auto detected_bit = [&](const std::vector<Word>& row,
                                std::size_t site) {
    const std::size_t cls = universe.class_of(site);
    return (row[cls / sim::kWordBits] >> (cls % sim::kWordBits)) & 1;
  };
  for (std::size_t p = 0; p < table.detected.size(); ++p) {
    const std::vector<Word>& row = table.detected[p];
    for (std::size_t net = 0; net < universe.num_nets(); ++net) {
      out << p << ' ' << circuit.node_name(universe.site(2 * net).node) << ' '
          << (1 - detected_bit(row, 2 * net)) << ' '
          << (1 - detected_bit(row, 2 * net + 1)) << '\n';
    }
  }
}

}  // namespace enb::fault
