#include "fault/campaign.hpp"

#include <algorithm>
#include <bit>
#include <mutex>
#include <numeric>
#include <ostream>
#include <set>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

#include "fault/fault_sim.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/logic_sim.hpp"
#include "sim/prng.hpp"
#include "sim/reliability.hpp"

namespace enb::fault {

namespace {

using netlist::Circuit;
using sim::Word;

// Campaign observability: simulation passes (the work metric every scale
// feature — dropping, wide lanes, sampling — exists to shrink), classes
// retired by fault dropping, and lane occupancy (active fault slots vs
// provisioned lanes; dense until dropping thins the survivors). Counters
// only — CampaignCounts and the result path are untouched.
struct FaultMetrics {
  obs::Counter& passes =
      obs::Registry::global().counter("fault-sweep-passes-total");
  obs::Counter& shards =
      obs::Registry::global().counter("fault-sweep-shards-total");
  obs::Counter& dropped =
      obs::Registry::global().counter("fault-dropped-classes-total");
  obs::Counter& lane_slots =
      obs::Registry::global().counter("fault-lane-slots-total");
  obs::Counter& lane_slots_active =
      obs::Registry::global().counter("fault-lane-slots-active-total");
};

FaultMetrics& fault_metrics() {
  static FaultMetrics metrics;
  return metrics;
}

// Domain separator for the sampling stream, so sampled class choices never
// correlate with the pattern streams drawn from the same seed.
constexpr std::uint64_t kSampleSalt = 0x5A3D1EB70C4FA551ull;

std::uint64_t pattern_total(const Circuit& golden,
                            const CampaignOptions& options) {
  if (options.exhaustive) {
    return std::uint64_t{1} << golden.num_inputs();
  }
  return options.patterns;
}

// Calls f with a std::type_identity tag for the lane container `lanes`
// selects — the single point where the runtime LaneWidth policy meets the
// compile-time lane types.
template <typename F>
auto with_lane_width(LaneWidth lanes, F&& f) {
  switch (lanes) {
    case LaneWidth::k64:
      return f(std::type_identity<sim::Word>{});
    case LaneWidth::k128:
      return f(std::type_identity<LaneVec128>{});
    case LaneWidth::k256:
      return f(std::type_identity<LaneVec256>{});
    case LaneWidth::k512:
      return f(std::type_identity<LaneVec512>{});
  }
  throw std::invalid_argument("fault campaign: unknown lane width");
}

// The per-shard body shared by the aggregate counts and the detection
// table: one golden broadcast pass per pattern for the expected logical
// outputs, then one faulty sweep per block of active classes. Keeping this
// in one place is what makes the two views — and every lane width — bit-
// identical by construction rather than by parallel maintenance.
//
// First detections are recorded per class the moment they happen (shard
// patterns are sequential, so the first hit within the shard is the shard's
// minimum; cross-shard minima are taken by CampaignCounts::merge). Fault
// dropping — aggregate path only, the table needs complete rows — then
// retires detected classes and repacks the survivors into dense lanes, so
// every recorded field is identical with dropping on or off; only the
// sweep count shrinks.
template <typename V>
CampaignCounts sweep_shard(const Circuit& circuit, const Circuit& golden,
                           const FaultUniverse& universe,
                           const CampaignOptions& options,
                           const exec::Shard& shard, DetectionTable* table) {
  CampaignCounts counts(universe.num_classes());
  std::vector<std::vector<bool>> patterns =
      shard_pattern_bits(golden.num_inputs(), options, shard);
  LaneFaultSim<V> sim(circuit, universe, options.bundle_width);
  std::vector<std::uint32_t> active = sampled_classes(universe, options);
  sim.set_active(std::move(active));
  const bool drop = options.drop && table == nullptr;
  sim::LogicSim golden_sim(golden);
  std::vector<Word> golden_inputs(golden.num_inputs());
  std::vector<bool> expected;
  std::vector<std::uint32_t> lane_outputs;
  const std::size_t row_words =
      (universe.num_classes() + sim::kWordBits - 1) / sim::kWordBits;
  // Local observability accumulators, published once per shard so the
  // pattern loop pays no atomics.
  std::uint64_t obs_slots = 0;
  std::uint64_t obs_slots_active = 0;
  std::uint64_t obs_dropped = 0;

  for (std::size_t i = 0; i < patterns.size(); ++i) {
    const std::vector<bool>& pattern = patterns[i];
    const std::uint64_t pattern_index = shard.begin + i;
    for (std::size_t b = 0; b < pattern.size(); ++b) {
      golden_inputs[b] = pattern[b] ? sim::kAllOnes : 0;
    }
    golden_sim.eval(golden_inputs);
    expected.resize(golden.num_outputs());
    for (std::size_t o = 0; o < golden.num_outputs(); ++o) {
      expected[o] = (golden_sim.value(golden.outputs()[o]) & 1) != 0;
    }
    ++counts.passes;  // the golden pass (work the scalar flow pays too)
    obs_slots += static_cast<std::uint64_t>(sim.num_blocks()) *
                 static_cast<std::uint64_t>(sim.kLanesPerBlock);
    obs_slots_active += sim.active().size();

    std::vector<Word>* row = nullptr;
    if (table != nullptr) {
      table->detected[pattern_index].assign(row_words, 0);
      row = &table->detected[pattern_index];
    }
    bool any_detected = false;
    for (std::size_t block = 0; block < sim.num_blocks(); ++block) {
      const V det = sim.detect_block(block, pattern, expected);
      if (!lane_any(det)) continue;
      // Lanes whose class has no recorded detection yet: those are the
      // first detections of this shard (patterns ascend within it).
      V newly = V{};
      const std::span<const std::uint32_t> lanes_of = sim.active();
      const std::size_t first =
          block * static_cast<std::size_t>(sim.kLanesPerBlock);
      for (int w = 0; w < kLaneWords<V>; ++w) {
        Word bits = lane_word(det, w);
        while (bits != 0) {
          const int lane = std::countr_zero(bits);
          const std::size_t slot = static_cast<std::size_t>(w) *
                                       static_cast<std::size_t>(sim::kWordBits) +
                                   static_cast<std::size_t>(lane);
          const std::uint32_t cls = lanes_of[first + slot];
          if (row != nullptr) {
            (*row)[cls / sim::kWordBits] |= Word{1} << (cls % sim::kWordBits);
          }
          if (counts.first_pattern[cls] == kNotDetected) {
            lane_set_bit(newly, static_cast<int>(slot));
          }
          bits &= bits - 1;
        }
      }
      any_detected = true;
      if (!lane_any(newly)) continue;
      sim.first_outputs(block, newly, expected, lane_outputs);
      for (int w = 0; w < kLaneWords<V>; ++w) {
        Word bits = lane_word(newly, w);
        while (bits != 0) {
          const int lane = std::countr_zero(bits);
          const std::size_t slot = static_cast<std::size_t>(w) *
                                       static_cast<std::size_t>(sim::kWordBits) +
                                   static_cast<std::size_t>(lane);
          const std::uint32_t cls = lanes_of[first + slot];
          counts.first_pattern[cls] = pattern_index;
          counts.first_output[cls] = lane_outputs[slot];
          bits &= bits - 1;
        }
      }
    }
    if (table != nullptr) {
      table->patterns[pattern_index] = std::move(patterns[i]);
    }
    if (drop && any_detected) {
      std::vector<std::uint32_t> survivors;
      survivors.reserve(sim.active().size());
      for (const std::uint32_t cls : sim.active()) {
        if (counts.first_pattern[cls] == kNotDetected) {
          survivors.push_back(cls);
        }
      }
      obs_dropped += sim.active().size() - survivors.size();
      sim.set_active(std::move(survivors));
    }
  }
  counts.passes += sim.passes();
  FaultMetrics& metrics = fault_metrics();
  metrics.shards.add(1);
  metrics.passes.add(counts.passes);
  metrics.lane_slots.add(obs_slots);
  metrics.lane_slots_active.add(obs_slots_active);
  if (obs_dropped > 0) metrics.dropped.add(obs_dropped);
  return counts;
}

}  // namespace

ExhaustiveCapError::ExhaustiveCapError(std::size_t logical_inputs)
    : std::invalid_argument(
          "fault campaign: exhaustive mode supports at most " +
          std::to_string(kMaxExhaustiveCampaignInputs) +
          " logical inputs, got " + std::to_string(logical_inputs)),
      logical_inputs_(logical_inputs) {}

void validate_campaign_inputs(const Circuit& circuit, const Circuit& golden,
                              const CampaignOptions& options) {
  validate_bundle_interface(circuit, options.bundle_width);
  const auto width = static_cast<std::size_t>(options.bundle_width);
  if (golden.num_inputs() * width != circuit.num_inputs() ||
      golden.num_outputs() * width != circuit.num_outputs()) {
    throw std::invalid_argument(
        "fault campaign: golden interface mismatch (circuit " +
        std::to_string(circuit.num_inputs()) + "->" +
        std::to_string(circuit.num_outputs()) + ", golden " +
        std::to_string(golden.num_inputs()) + "->" +
        std::to_string(golden.num_outputs()) + ", bundle_width " +
        std::to_string(options.bundle_width) + ")");
  }
  if (options.exhaustive) {
    if (golden.num_inputs() >
        static_cast<std::size_t>(kMaxExhaustiveCampaignInputs)) {
      throw ExhaustiveCapError(golden.num_inputs());
    }
  } else if (options.patterns == 0) {
    throw std::invalid_argument("fault campaign: patterns must be > 0");
  }
  if (options.shard_patterns == 0) {
    throw std::invalid_argument("fault campaign: shard_patterns must be > 0");
  }
}

exec::ShardPlan campaign_shard_plan(const Circuit& golden,
                                    const CampaignOptions& options) {
  return exec::ShardPlan(
      static_cast<std::size_t>(pattern_total(golden, options)),
      static_cast<std::size_t>(options.shard_patterns));
}

std::vector<std::vector<bool>> shard_pattern_bits(
    std::size_t num_logical_inputs, const CampaignOptions& options,
    const exec::Shard& shard) {
  std::vector<std::vector<bool>> rows(shard.size());
  if (options.exhaustive) {
    for (std::size_t i = 0; i < shard.size(); ++i) {
      const std::uint64_t assignment = shard.begin + i;
      std::vector<bool>& row = rows[i];
      row.resize(num_logical_inputs);
      for (std::size_t bit = 0; bit < num_logical_inputs; ++bit) {
        row[bit] = ((assignment >> bit) & 1) != 0;
      }
    }
    return rows;
  }
  sim::Xoshiro256 rng(exec::stream_seed(options.seed, shard.index));
  for (std::size_t i = 0; i < shard.size(); ++i) {
    std::vector<bool>& row = rows[i];
    row.resize(num_logical_inputs);
    for (std::size_t bit = 0; bit < num_logical_inputs; ++bit) {
      row[bit] = (rng.next() >> 63) != 0;
    }
  }
  return rows;
}

std::vector<std::uint32_t> sampled_classes(const FaultUniverse& universe,
                                           const CampaignOptions& options) {
  const std::size_t n = universe.num_classes();
  std::vector<std::uint32_t> classes;
  classes.reserve(n);
  // Untestable classes leave the active set before sampling: a sample drawn
  // under pruning grades testable faults only.
  for (std::size_t c = 0; c < n; ++c) {
    if (options.prune_untestable && universe.class_untestable(c)) continue;
    classes.push_back(static_cast<std::uint32_t>(c));
  }
  if (options.sample == 0 || options.sample >= classes.size()) return classes;
  // Rank every candidate class by a counter-stream key of the (salted) seed
  // and keep the `sample` smallest — order-free, shard-independent, and a
  // pure function of (candidates, seed, sample). Keys are per class index,
  // so a class's key never depends on pruning. Ties break toward the lower
  // class index via the pair ordering.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> keyed(classes.size());
  for (std::size_t i = 0; i < classes.size(); ++i) {
    keyed[i] = {exec::stream_seed(options.seed ^ kSampleSalt, classes[i]),
                classes[i]};
  }
  const auto cut =
      keyed.begin() + static_cast<std::ptrdiff_t>(options.sample);
  std::nth_element(keyed.begin(), cut - 1, keyed.end());
  classes.clear();
  classes.reserve(static_cast<std::size_t>(options.sample));
  for (auto it = keyed.begin(); it != cut; ++it) classes.push_back(it->second);
  std::sort(classes.begin(), classes.end());
  return classes;
}

void CampaignCounts::merge(const CampaignCounts& other) {
  if (first_pattern.size() != other.first_pattern.size()) {
    throw std::invalid_argument("CampaignCounts::merge: size mismatch");
  }
  // Per-class minimum on the global pattern index; the first output rides
  // along. Shards own disjoint pattern ranges, so ties are impossible and
  // the merge is order-independent.
  for (std::size_t c = 0; c < first_pattern.size(); ++c) {
    if (other.first_pattern[c] < first_pattern[c]) {
      first_pattern[c] = other.first_pattern[c];
      first_output[c] = other.first_output[c];
    }
  }
  passes += other.passes;
}

CampaignCounts campaign_shard_counts(const Circuit& circuit,
                                     const Circuit& golden,
                                     const FaultUniverse& universe,
                                     const CampaignOptions& options,
                                     const exec::Shard& shard) {
  const obs::Span span("fault-sweep-shard", {},
                       "shard=" + std::to_string(shard.index));
  return with_lane_width(options.lanes, [&](auto tag) {
    using V = typename decltype(tag)::type;
    return sweep_shard<V>(circuit, golden, universe, options, shard, nullptr);
  });
}

FaultCampaignResult finalize_campaign(const Circuit& circuit,
                                      const Circuit& golden,
                                      const FaultUniverse& universe,
                                      const CampaignOptions& options,
                                      const CampaignCounts& counts) {
  FaultCampaignResult result;
  result.nets = universe.num_nets();
  result.sites = universe.num_sites();
  result.classes = universe.num_classes();
  result.untestable = universe.num_untestable();
  result.sampled = sampled_classes(universe, options).size();
  result.patterns = pattern_total(golden, options);
  result.sim_passes = counts.passes;
  result.first_detect_pattern = counts.first_pattern;
  result.first_detect_output = counts.first_output;
  result.detection_counts.assign(result.classes, 0);
  std::set<std::uint32_t> first_detectors;
  for (std::size_t c = 0; c < counts.first_pattern.size(); ++c) {
    if (counts.first_pattern[c] != kNotDetected) {
      result.detection_counts[c] = 1;
      ++result.detected;
      first_detectors.insert(counts.first_output[c]);
    }
  }
  result.detect_outputs = first_detectors.size();
  result.coverage = result.sampled == 0
                        ? 0.0
                        : static_cast<double>(result.detected) /
                              static_cast<double>(result.sampled);
  // A pruned full run still grades every *testable* class exactly; only a
  // genuine sample (fewer than the testable universe) earns an interval.
  if (result.sampled < result.classes - result.untestable) {
    // The sample is a deterministic subset, graded exactly; the Wilson
    // interval prices what it says about the rest of the universe.
    const sim::ReliabilityResult wilson =
        sim::wilson_interval(result.detected, result.sampled);
    result.coverage_ci_low = wilson.ci_low;
    result.coverage_ci_high = wilson.ci_high;
  } else {
    result.coverage_ci_low = result.coverage;
    result.coverage_ci_high = result.coverage;
  }
  result.masked_fraction = 1.0 - result.coverage;
  result.gates = circuit.gate_count();
  result.golden_gates = golden.gate_count();
  result.gate_overhead = result.golden_gates == 0
                             ? 1.0
                             : static_cast<double>(result.gates) /
                                   static_cast<double>(result.golden_gates);
  // Cost of masking: infinite when nothing is masked (renders as JSON null).
  result.overhead_per_masked = result.gate_overhead / result.masked_fraction;
  return result;
}

FaultCampaignResult run_campaign(const Circuit& circuit, const Circuit* golden,
                                 const CampaignOptions& options,
                                 exec::Parallelism how) {
  const Circuit& reference = golden != nullptr ? *golden : circuit;
  const obs::Span span("fault-campaign", {}, circuit.name());
  validate_campaign_inputs(circuit, reference, options);
  const FaultUniverse universe =
      FaultUniverse::build(circuit, options.collapse, options.prune_untestable);
  const exec::ShardPlan plan = campaign_shard_plan(reference, options);

  CampaignCounts total(universe.num_classes());
  std::mutex mutex;
  exec::for_each_shard(
      plan,
      [&](const exec::Shard& shard) {
        const CampaignCounts local =
            campaign_shard_counts(circuit, reference, universe, options, shard);
        const std::lock_guard<std::mutex> lock(mutex);
        total.merge(local);
      },
      how);
  return finalize_campaign(circuit, reference, universe, options, total);
}

// ---- detection table / .ans ------------------------------------------------

DetectionTable build_detection_table(const Circuit& circuit,
                                     const Circuit& golden,
                                     const FaultUniverse& universe,
                                     const CampaignOptions& options,
                                     exec::Parallelism how) {
  validate_campaign_inputs(circuit, golden, options);
  const exec::ShardPlan plan = campaign_shard_plan(golden, options);

  DetectionTable table;
  table.patterns.resize(plan.total());
  table.detected.resize(plan.total());
  table.counts = CampaignCounts(universe.num_classes());
  std::mutex mutex;
  exec::for_each_shard(
      plan,
      [&](const exec::Shard& shard) {
        // Slot-per-pattern row writes are race-free (disjoint slots); only
        // the counts merge needs the lock.
        const CampaignCounts local =
            with_lane_width(options.lanes, [&](auto tag) {
              using V = typename decltype(tag)::type;
              return sweep_shard<V>(circuit, golden, universe, options, shard,
                                    &table);
            });
        const std::lock_guard<std::mutex> lock(mutex);
        table.counts.merge(local);
      },
      how);
  table.passes = table.counts.passes;
  return table;
}

CampaignCounts counts_from_table(const FaultUniverse& /*universe*/,
                                 const DetectionTable& table) {
  return table.counts;
}

void write_ans(std::ostream& out, const Circuit& circuit,
               const FaultUniverse& universe, const DetectionTable& table) {
  out << "# pattern net sa0_eq sa1_eq\n";
  const auto detected_bit = [&](const std::vector<Word>& row,
                                std::size_t site) {
    const std::size_t cls = universe.class_of(site);
    return (row[cls / sim::kWordBits] >> (cls % sim::kWordBits)) & 1;
  };
  for (std::size_t p = 0; p < table.detected.size(); ++p) {
    const std::vector<Word>& row = table.detected[p];
    for (std::size_t net = 0; net < universe.num_nets(); ++net) {
      out << p << ' ' << circuit.node_name(universe.site(2 * net).node) << ' '
          << (1 - detected_bit(row, 2 * net)) << ' '
          << (1 - detected_bit(row, 2 * net + 1)) << '\n';
    }
  }
  // Detectability map: first detecting (pattern, logical output) per site,
  // expanded from classes exactly like the rows above.
  out << "# detect net sa0_pattern sa0_output sa1_pattern sa1_output\n";
  const auto put_first = [&](std::size_t site) {
    const std::size_t cls = universe.class_of(site);
    if (table.counts.first_pattern[cls] == kNotDetected) {
      out << " - -";
    } else {
      out << ' ' << table.counts.first_pattern[cls] << ' '
          << table.counts.first_output[cls];
    }
  };
  for (std::size_t net = 0; net < universe.num_nets(); ++net) {
    out << "detect " << circuit.node_name(universe.site(2 * net).node);
    put_first(2 * net);
    put_first(2 * net + 1);
    out << '\n';
  }
}

}  // namespace enb::fault
