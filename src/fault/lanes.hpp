// Lane-width policy for the fault-parallel simulator.
//
// The bit-parallel engine packs one injected fault per lane. The lane
// container is either a plain 64-bit sim::Word or a GCC vector-extension
// type of 2/4/8 words (`__attribute__((vector_size)))`), giving 128/256/512
// faults per sweep on machines whose SIMD units can carry them. All four
// widths run the same templated sweep (fault_sim.hpp), so the choice is a
// pure execution policy: campaign *results* are identical for every width
// (pass accounting is normalized to 64-lane units), which is why `lanes`
// stays out of canonical analysis specs and the serve result cache.
//
// The helpers here are the small vocabulary the templated code needs to be
// generic over "Word or vector of Words": per-word access, broadcast, bit
// tests, low-lane masks, and a bit-sliced saturating counter for bundle
// majority decoding (the vector analogue of sim::LaneCounter).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "sim/bitpack.hpp"

namespace enb::fault {

// Runtime-selectable fault lanes per sweep. Values are the lane counts.
enum class LaneWidth : int { k64 = 64, k128 = 128, k256 = 256, k512 = 512 };

[[nodiscard]] constexpr const char* to_string(LaneWidth width) noexcept {
  switch (width) {
    case LaneWidth::k64:
      return "64";
    case LaneWidth::k128:
      return "128";
    case LaneWidth::k256:
      return "256";
    case LaneWidth::k512:
      return "512";
  }
  return "?";
}

[[nodiscard]] constexpr std::optional<LaneWidth> parse_lane_width(
    std::uint64_t lanes) noexcept {
  switch (lanes) {
    case 64:
      return LaneWidth::k64;
    case 128:
      return LaneWidth::k128;
    case 256:
      return LaneWidth::k256;
    case 512:
      return LaneWidth::k512;
    default:
      return std::nullopt;
  }
}

[[nodiscard]] constexpr std::array<LaneWidth, 4> all_lane_widths() noexcept {
  return {LaneWidth::k64, LaneWidth::k128, LaneWidth::k256, LaneWidth::k512};
}

// Vector-of-words lane containers. Explicit typedefs (not a width-dependent
// template) because GCC requires vector_size on a concrete type.
typedef sim::Word LaneVec128 __attribute__((vector_size(16)));
typedef sim::Word LaneVec256 __attribute__((vector_size(32)));
typedef sim::Word LaneVec512 __attribute__((vector_size(64)));

template <typename V>
inline constexpr int kLaneWords = static_cast<int>(sizeof(V) / sizeof(sim::Word));
template <typename V>
inline constexpr int kLaneBits = kLaneWords<V> * sim::kWordBits;

// Per-word accessors. Builtin vector types live in no namespace, so these
// are plain overloads declared before any template that uses them.
[[nodiscard]] inline sim::Word lane_word(const sim::Word& v, int) noexcept {
  return v;
}
[[nodiscard]] inline sim::Word lane_word(const LaneVec128& v, int i) noexcept {
  return v[i];
}
[[nodiscard]] inline sim::Word lane_word(const LaneVec256& v, int i) noexcept {
  return v[i];
}
[[nodiscard]] inline sim::Word lane_word(const LaneVec512& v, int i) noexcept {
  return v[i];
}
inline void set_lane_word(sim::Word& v, int, sim::Word w) noexcept { v = w; }
inline void set_lane_word(LaneVec128& v, int i, sim::Word w) noexcept {
  v[i] = w;
}
inline void set_lane_word(LaneVec256& v, int i, sim::Word w) noexcept {
  v[i] = w;
}
inline void set_lane_word(LaneVec512& v, int i, sim::Word w) noexcept {
  v[i] = w;
}

// All lanes equal to `bit`. V{} zero-initializes both Word and vectors.
template <typename V>
[[nodiscard]] V lane_broadcast(bool bit) noexcept {
  return bit ? ~V{} : V{};
}

template <typename V>
[[nodiscard]] bool lane_any(const V& v) noexcept {
  for (int w = 0; w < kLaneWords<V>; ++w) {
    if (lane_word(v, w) != 0) return true;
  }
  return false;
}

template <typename V>
[[nodiscard]] bool lane_bit(const V& v, int lane) noexcept {
  return ((lane_word(v, lane / sim::kWordBits) >>
           (lane % sim::kWordBits)) & 1) != 0;
}

template <typename V>
inline void lane_set_bit(V& v, int lane) noexcept {
  const int w = lane / sim::kWordBits;
  set_lane_word(v, w,
                lane_word(v, w) | (sim::Word{1} << (lane % sim::kWordBits)));
}

// Mask with the low `n` lanes set (n in [0, kLaneBits<V>]).
template <typename V>
[[nodiscard]] V lane_low_mask(int n) noexcept {
  V v = V{};
  for (int w = 0; w < kLaneWords<V>; ++w) {
    const int bits =
        std::min(sim::kWordBits, std::max(0, n - w * sim::kWordBits));
    set_lane_word(v, w, sim::low_mask(bits));
  }
  return v;
}

// Bit-sliced saturating lane counter over any lane container — the vector
// generalization of sim::LaneCounter, used for per-lane bundle-majority
// decoding. Pure bitwise ops, so one definition covers Word and every
// vector width with identical per-lane arithmetic.
template <typename V>
class VecLaneCounter {
 public:
  explicit VecLaneCounter(int max_count) {
    if (max_count < 1) {
      throw std::invalid_argument("VecLaneCounter: max_count must be >= 1");
    }
    int bits = 1;
    while (((1 << bits) - 1) < max_count) ++bits;
    slices_.assign(static_cast<std::size_t>(bits), V{});
  }

  void reset() noexcept {
    for (V& slice : slices_) slice = V{};
  }

  // Adds 1 to every lane whose bit is set in `indicator` (ripple carry).
  void add(const V& indicator) noexcept {
    V carry = indicator;
    for (V& slice : slices_) {
      const V sum = slice ^ carry;
      carry = slice & carry;
      slice = sum;
      if (!lane_any(carry)) break;
    }
  }

  // Per-lane (count > threshold), MSB-first bit-sliced compare.
  [[nodiscard]] V greater_than(int threshold) const noexcept {
    V gt = V{};
    V eq = ~V{};
    for (std::size_t i = slices_.size(); i-- > 0;) {
      const V t = lane_broadcast<V>(((threshold >> i) & 1) != 0);
      gt |= eq & slices_[i] & ~t;
      eq &= ~(slices_[i] ^ t);
    }
    return gt;
  }

 private:
  std::vector<V> slices_;
};

}  // namespace enb::fault
