// Structural stuck-at fault model: the fault universe of a circuit.
//
// The universe is the classic single-stuck-at set — every net (node output)
// stuck at 0 and stuck at 1, in the canonical net order of
// netlist::enumerate_nets — collapsed by *structural equivalence*: two
// faults are equivalent when they produce identical faulty functions at
// every primary output, which the textbook gate rules certify locally
// (e.g. any input of an AND stuck at 0 is equivalent to its output stuck
// at 0, provided the input net feeds nothing else). Simulating one
// representative per class is therefore exact for every member, which is
// what lets the campaign engine expand class results back to per-net
// `.ans` rows without approximation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "netlist/circuit.hpp"

namespace enb::fault {

enum class StuckAt : std::uint8_t { kZero = 0, kOne = 1 };

// Detectability-map sentinels: a class no pattern detected has first
// pattern kNotDetected and first output kNoOutput.
inline constexpr std::uint64_t kNotDetected = ~std::uint64_t{0};
inline constexpr std::uint32_t kNoOutput = ~std::uint32_t{0};

[[nodiscard]] constexpr const char* to_string(StuckAt value) noexcept {
  return value == StuckAt::kZero ? "sa0" : "sa1";
}

struct FaultSite {
  netlist::NodeId node = netlist::kInvalidNode;  // the faulted net's driver
  StuckAt value = StuckAt::kZero;

  friend bool operator==(const FaultSite&, const FaultSite&) = default;
};

// Site index convention: net i (enumerate_nets order == node-id order)
// contributes sites 2i (stuck-at-0) and 2i+1 (stuck-at-1). The convention is
// part of the reproducibility contract — campaign outputs are keyed by it.
class FaultUniverse {
 public:
  // Builds the universe for `circuit`. With `collapse` the structural
  // equivalence rules merge sites into classes; without it every site is its
  // own class (useful for cross-checking the collapser itself). With
  // `prune_untestable` the static prover (fault/untestable.hpp) marks the
  // classes whose faults provably cannot be detected; class numbering is
  // unchanged — pruning is a per-class annotation the campaign layer uses
  // to shrink its active set, never a renumbering.
  [[nodiscard]] static FaultUniverse build(const netlist::Circuit& circuit,
                                           bool collapse = true,
                                           bool prune_untestable = false);

  [[nodiscard]] std::size_t num_nets() const noexcept {
    return sites_.size() / 2;
  }
  [[nodiscard]] std::size_t num_sites() const noexcept {
    return sites_.size();
  }
  [[nodiscard]] const FaultSite& site(std::size_t site_index) const {
    return sites_.at(site_index);
  }
  [[nodiscard]] std::span<const FaultSite> sites() const noexcept {
    return sites_;
  }

  // Equivalence classes, ordered by their lowest member site index. The
  // representative of a class is that lowest member.
  [[nodiscard]] std::size_t num_classes() const noexcept {
    return rep_site_.size();
  }
  [[nodiscard]] std::size_t class_of(std::size_t site_index) const {
    return class_of_.at(site_index);
  }
  [[nodiscard]] std::size_t representative_site(std::size_t class_index) const {
    return rep_site_.at(class_index);
  }
  [[nodiscard]] const FaultSite& representative(std::size_t class_index) const {
    return sites_[rep_site_.at(class_index)];
  }

  // Untestability annotations; all-false (and num_untestable() == 0) when
  // the universe was built without prune_untestable.
  [[nodiscard]] bool pruned() const noexcept { return pruned_; }
  [[nodiscard]] bool class_untestable(std::size_t class_index) const {
    return pruned_ && untestable_.at(class_index);
  }
  [[nodiscard]] std::uint64_t num_untestable() const noexcept {
    return num_untestable_;
  }

 private:
  std::vector<FaultSite> sites_;       // 2 per net, canonical order
  std::vector<std::size_t> class_of_;  // site index -> class index
  std::vector<std::size_t> rep_site_;  // class index -> lowest site index
  std::vector<bool> untestable_;       // class index -> proved untestable
  std::uint64_t num_untestable_ = 0;
  bool pruned_ = false;
};

}  // namespace enb::fault
