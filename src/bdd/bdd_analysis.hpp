// Exact circuit analyses built on the BDD package: signal probabilities,
// switching activity (temporal-independence model), input influences, and
// formal equivalence — the exact cross-checks for the Monte-Carlo estimators
// in src/sim.
#pragma once

#include <vector>

#include "bdd/bdd.hpp"  // node budgets; BddLimitExceeded is the error contract
#include "netlist/circuit.hpp"
#include "sim/activity.hpp"

namespace enb::bdd {

struct BddAnalysisOptions {
  std::size_t node_limit = std::size_t{1} << 22;
  double input_one_probability = 0.5;
};

// Exact one-probability of every node.
[[nodiscard]] std::vector<double> exact_signal_probabilities(
    const netlist::Circuit& circuit, const BddAnalysisOptions& options = {});

// Exact activity profile (sw = 2p(1-p) per node, averaged over gates).
[[nodiscard]] sim::ActivityResult exact_activity_bdd(
    const netlist::Circuit& circuit, const BddAnalysisOptions& options = {});

// Exact per-input influence P[f(x) != f(x ^ e_i)] (any output differs) under
// uniform inputs.
[[nodiscard]] std::vector<double> exact_influences(
    const netlist::Circuit& circuit, const BddAnalysisOptions& options = {});

// Formal equivalence of two circuits with positionally-matched interfaces.
[[nodiscard]] bool bdd_equivalent(const netlist::Circuit& a,
                                  const netlist::Circuit& b,
                                  const BddAnalysisOptions& options = {});

}  // namespace enb::bdd
