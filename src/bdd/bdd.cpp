#include "bdd/bdd.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>

namespace enb::bdd {
namespace {

std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t h = a * 0x9E3779B97F4A7C15ULL;
  h ^= b + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= c + 0x94D049BB133111EBULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

Bdd::Bdd(unsigned num_vars, std::size_t node_limit)
    : num_vars_(num_vars), node_limit_(std::max<std::size_t>(node_limit, 2)) {
  // Terminals live at level num_vars_ (below every variable).
  nodes_.push_back(Node{num_vars_, kFalse, kFalse});  // ref 0 == false
  nodes_.push_back(Node{num_vars_, kTrue, kTrue});    // ref 1 == true
}

void Bdd::check_var(unsigned var, const char* context) const {
  if (var >= num_vars_) {
    throw std::invalid_argument(std::string(context) + ": variable " +
                                std::to_string(var) + " out of range (" +
                                std::to_string(num_vars_) + " vars)");
  }
}

Ref Bdd::make_node(unsigned var, Ref lo, Ref hi) {
  if (lo == hi) return lo;
  const std::uint64_t key = mix(var, lo, hi);
  auto& bucket = unique_[key];
  for (Ref ref : bucket) {
    const Node& node = nodes_[ref];
    if (node.var == var && node.lo == lo && node.hi == hi) return ref;
  }
  if (nodes_.size() >= node_limit_) {
    throw BddLimitExceeded("BDD node limit of " +
                           std::to_string(node_limit_) + " exceeded");
  }
  const Ref ref = static_cast<Ref>(nodes_.size());
  nodes_.push_back(Node{var, lo, hi});
  bucket.push_back(ref);
  return ref;
}

Ref Bdd::var_ref(unsigned var) {
  check_var(var, "var_ref");
  return make_node(var, kFalse, kTrue);
}

Ref Bdd::nvar_ref(unsigned var) {
  check_var(var, "nvar_ref");
  return make_node(var, kTrue, kFalse);
}

Ref Bdd::cofactor_at(Ref f, std::uint32_t level, bool value) const {
  const Node& node = nodes_[f];
  if (node.var != level) return f;  // f does not test this level at its top
  return value ? node.hi : node.lo;
}

Ref Bdd::ite(Ref f, Ref g, Ref h) {
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const std::uint64_t key = mix(f, g, h);
  auto& bucket = ite_cache_[key];
  // The cache reuses Node as a plain (f, g, h) triple.
  for (const auto& [triple, result] : bucket) {
    if (triple.var == f && triple.lo == g && triple.hi == h) return result;
  }

  const std::uint32_t level =
      std::min({level_of(f), level_of(g), level_of(h)});
  const Ref lo = ite(cofactor_at(f, level, false),
                     cofactor_at(g, level, false),
                     cofactor_at(h, level, false));
  const Ref hi = ite(cofactor_at(f, level, true), cofactor_at(g, level, true),
                     cofactor_at(h, level, true));
  const Ref result = make_node(level, lo, hi);
  ite_cache_[key].push_back({Node{f, g, h}, result});
  return result;
}

Ref Bdd::cofactor(Ref f, unsigned var, bool value) {
  check_var(var, "cofactor");
  std::unordered_map<Ref, Ref> memo;
  const std::function<Ref(Ref)> walk = [&](Ref node) -> Ref {
    if (level_of(node) > var) return node;  // var cannot appear below
    if (level_of(node) == var) return value ? hi(node) : lo(node);
    const auto it = memo.find(node);
    if (it != memo.end()) return it->second;
    const Ref result =
        make_node(level_of(node), walk(lo(node)), walk(hi(node)));
    memo.emplace(node, result);
    return result;
  };
  return walk(f);
}

Ref Bdd::flip_var(Ref f, unsigned var) {
  check_var(var, "flip_var");
  std::unordered_map<Ref, Ref> memo;
  const std::function<Ref(Ref)> walk = [&](Ref node) -> Ref {
    if (level_of(node) > var) return node;
    if (level_of(node) == var) {
      return make_node(var, hi(node), lo(node));  // swapped children
    }
    const auto it = memo.find(node);
    if (it != memo.end()) return it->second;
    const Ref result =
        make_node(level_of(node), walk(lo(node)), walk(hi(node)));
    memo.emplace(node, result);
    return result;
  };
  return walk(f);
}

Ref Bdd::exists(Ref f, unsigned var) {
  return apply_or(cofactor(f, var, false), cofactor(f, var, true));
}

Ref Bdd::forall(Ref f, unsigned var) {
  return apply_and(cofactor(f, var, false), cofactor(f, var, true));
}

double Bdd::probability(Ref f, std::span<const double> p) {
  if (p.size() != num_vars_) {
    throw std::invalid_argument("probability: need one probability per var");
  }
  std::unordered_map<Ref, double> memo;
  const std::function<double(Ref)> walk = [&](Ref node) -> double {
    if (node == kFalse) return 0.0;
    if (node == kTrue) return 1.0;
    const auto it = memo.find(node);
    if (it != memo.end()) return it->second;
    const double pv = p[level_of(node)];
    const double value = (1.0 - pv) * walk(lo(node)) + pv * walk(hi(node));
    memo.emplace(node, value);
    return value;
  };
  return walk(f);
}

double Bdd::sat_fraction(Ref f) {
  const std::vector<double> half(num_vars_, 0.5);
  return probability(f, half);
}

double Bdd::sat_count(Ref f) {
  return sat_fraction(f) * std::pow(2.0, static_cast<double>(num_vars_));
}

std::size_t Bdd::node_count(Ref f) const {
  std::vector<Ref> stack{f};
  std::unordered_map<Ref, bool> seen;
  std::size_t count = 0;
  while (!stack.empty()) {
    const Ref node = stack.back();
    stack.pop_back();
    if (seen[node]) continue;
    seen[node] = true;
    ++count;
    if (!is_terminal(node)) {
      stack.push_back(lo(node));
      stack.push_back(hi(node));
    }
  }
  return count;
}

unsigned Bdd::var_of(Ref f) const {
  if (is_terminal(f)) throw std::invalid_argument("var_of: terminal ref");
  return nodes_[f].var;
}

Ref Bdd::lo(Ref f) const {
  if (is_terminal(f)) throw std::invalid_argument("lo: terminal ref");
  return nodes_[f].lo;
}

Ref Bdd::hi(Ref f) const {
  if (is_terminal(f)) throw std::invalid_argument("hi: terminal ref");
  return nodes_[f].hi;
}

}  // namespace enb::bdd
