// Builds BDDs for every net of a circuit (inputs become BDD variables in
// circuit input order).
#pragma once

#include <vector>

#include "bdd/bdd.hpp"
#include "netlist/circuit.hpp"

namespace enb::bdd {

// Returns one Ref per circuit node, in node-id order. Throws
// BddLimitExceeded if the manager's node budget is exhausted.
[[nodiscard]] std::vector<Ref> build_node_bdds(Bdd& manager,
                                               const netlist::Circuit& circuit);

// Convenience: BDDs of the primary outputs only.
[[nodiscard]] std::vector<Ref> build_output_bdds(
    Bdd& manager, const netlist::Circuit& circuit);

}  // namespace enb::bdd
