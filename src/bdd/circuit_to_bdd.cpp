#include "bdd/circuit_to_bdd.hpp"

#include <stdexcept>

namespace enb::bdd {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

std::vector<Ref> build_node_bdds(Bdd& manager, const Circuit& circuit) {
  if (manager.num_vars() < circuit.num_inputs()) {
    throw std::invalid_argument(
        "build_node_bdds: manager has fewer variables than circuit inputs");
  }
  std::vector<Ref> refs(circuit.node_count(), Bdd::kFalse);
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    const auto& node = circuit.node(id);
    const auto fanin = [&](std::size_t i) { return refs[node.fanins[i]]; };
    switch (node.type) {
      case GateType::kInput:
        refs[id] = manager.var_ref(
            static_cast<unsigned>(circuit.input_index(id)));
        break;
      case GateType::kConst0:
        refs[id] = Bdd::kFalse;
        break;
      case GateType::kConst1:
        refs[id] = Bdd::kTrue;
        break;
      case GateType::kBuf:
        refs[id] = fanin(0);
        break;
      case GateType::kNot:
        refs[id] = manager.apply_not(fanin(0));
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        Ref acc = Bdd::kTrue;
        for (std::size_t i = 0; i < node.fanins.size(); ++i) {
          acc = manager.apply_and(acc, fanin(i));
        }
        refs[id] = node.type == GateType::kAnd ? acc : manager.apply_not(acc);
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        Ref acc = Bdd::kFalse;
        for (std::size_t i = 0; i < node.fanins.size(); ++i) {
          acc = manager.apply_or(acc, fanin(i));
        }
        refs[id] = node.type == GateType::kOr ? acc : manager.apply_not(acc);
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        Ref acc = Bdd::kFalse;
        for (std::size_t i = 0; i < node.fanins.size(); ++i) {
          acc = manager.apply_xor(acc, fanin(i));
        }
        refs[id] = node.type == GateType::kXor ? acc : manager.apply_not(acc);
        break;
      }
      case GateType::kMaj:
        refs[id] = manager.apply_maj(fanin(0), fanin(1), fanin(2));
        break;
    }
  }
  return refs;
}

std::vector<Ref> build_output_bdds(Bdd& manager, const Circuit& circuit) {
  const std::vector<Ref> refs = build_node_bdds(manager, circuit);
  std::vector<Ref> outputs;
  outputs.reserve(circuit.num_outputs());
  for (NodeId id : circuit.outputs()) outputs.push_back(refs[id]);
  return outputs;
}

}  // namespace enb::bdd
