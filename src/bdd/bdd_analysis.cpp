#include "bdd/bdd_analysis.hpp"

#include "bdd/circuit_to_bdd.hpp"

namespace enb::bdd {

using netlist::Circuit;
using netlist::NodeId;

std::vector<double> exact_signal_probabilities(
    const Circuit& circuit, const BddAnalysisOptions& options) {
  Bdd manager(static_cast<unsigned>(circuit.num_inputs()), options.node_limit);
  const std::vector<Ref> refs = build_node_bdds(manager, circuit);
  const std::vector<double> p(circuit.num_inputs(),
                              options.input_one_probability);
  std::vector<double> probabilities(circuit.node_count(), 0.0);
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    probabilities[id] = manager.probability(refs[id], p);
  }
  return probabilities;
}

sim::ActivityResult exact_activity_bdd(const Circuit& circuit,
                                       const BddAnalysisOptions& options) {
  sim::ActivityResult result;
  result.one_probability = exact_signal_probabilities(circuit, options);
  result.toggle_rate.resize(result.one_probability.size());
  double p_sum = 0.0;
  double sw_sum = 0.0;
  std::size_t gates = 0;
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    result.toggle_rate[id] =
        sim::activity_from_probability(result.one_probability[id]);
    if (!counts_as_gate(circuit.type(id))) continue;
    p_sum += result.one_probability[id];
    sw_sum += result.toggle_rate[id];
    ++gates;
  }
  result.avg_gate_one_probability =
      gates == 0 ? 0.0 : p_sum / static_cast<double>(gates);
  result.avg_gate_toggle_rate =
      gates == 0 ? 0.0 : sw_sum / static_cast<double>(gates);
  result.sample_pairs = 0;  // exact
  return result;
}

std::vector<double> exact_influences(const Circuit& circuit,
                                     const BddAnalysisOptions& options) {
  Bdd manager(static_cast<unsigned>(circuit.num_inputs()), options.node_limit);
  const std::vector<Ref> outputs = build_output_bdds(manager, circuit);
  std::vector<double> influence(circuit.num_inputs(), 0.0);
  for (unsigned var = 0; var < circuit.num_inputs(); ++var) {
    // "Any output differs" is the OR over outputs of f XOR f|flip(var).
    Ref any_diff = Bdd::kFalse;
    for (Ref f : outputs) {
      const Ref flipped = manager.flip_var(f, var);
      any_diff = manager.apply_or(any_diff, manager.apply_xor(f, flipped));
    }
    influence[var] = manager.sat_fraction(any_diff);
  }
  return influence;
}

bool bdd_equivalent(const Circuit& a, const Circuit& b,
                    const BddAnalysisOptions& options) {
  if (a.num_inputs() != b.num_inputs() ||
      a.num_outputs() != b.num_outputs()) {
    return false;
  }
  Bdd manager(static_cast<unsigned>(a.num_inputs()), options.node_limit);
  const std::vector<Ref> fa = build_output_bdds(manager, a);
  const std::vector<Ref> fb = build_output_bdds(manager, b);
  return fa == fb;  // canonical representation: pointer equality
}

}  // namespace enb::bdd
