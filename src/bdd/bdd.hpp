// A compact reduced-ordered BDD package.
//
// Canonicity gives O(1) equivalence checks, and the probability recursion
// gives exact signal probabilities — the exact counterpart of the Monte-Carlo
// activity estimator used for the paper's sw0 parameter.
//
// Design notes:
//  * refs are indices into an arena; 0/1 are the terminals. No complement
//    edges (simplicity over peak capacity; our circuits are small).
//  * all binary operators route through ITE with a shared memo cache.
//  * a hard node budget turns combinational blow-up into a typed exception
//    (BddLimitExceeded) instead of an OOM.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace enb::bdd {

class BddLimitExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

using Ref = std::uint32_t;

class Bdd {
 public:
  static constexpr Ref kFalse = 0;
  static constexpr Ref kTrue = 1;

  explicit Bdd(unsigned num_vars, std::size_t node_limit = std::size_t{1} << 22);

  [[nodiscard]] unsigned num_vars() const noexcept { return num_vars_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }

  // Literal builders.
  [[nodiscard]] Ref var_ref(unsigned var);
  [[nodiscard]] Ref nvar_ref(unsigned var);

  // Core operator: if-then-else(f, g, h) == f&g | ~f&h.
  [[nodiscard]] Ref ite(Ref f, Ref g, Ref h);

  [[nodiscard]] Ref apply_not(Ref f) { return ite(f, kFalse, kTrue); }
  [[nodiscard]] Ref apply_and(Ref f, Ref g) { return ite(f, g, kFalse); }
  [[nodiscard]] Ref apply_or(Ref f, Ref g) { return ite(f, kTrue, g); }
  [[nodiscard]] Ref apply_xor(Ref f, Ref g) { return ite(f, apply_not(g), g); }
  [[nodiscard]] Ref apply_nand(Ref f, Ref g) { return apply_not(apply_and(f, g)); }
  [[nodiscard]] Ref apply_nor(Ref f, Ref g) { return apply_not(apply_or(f, g)); }
  [[nodiscard]] Ref apply_xnor(Ref f, Ref g) { return apply_not(apply_xor(f, g)); }
  [[nodiscard]] Ref apply_maj(Ref a, Ref b, Ref c) {
    return ite(a, apply_or(b, c), apply_and(b, c));
  }

  // Restriction f|var=value.
  [[nodiscard]] Ref cofactor(Ref f, unsigned var, bool value);

  // Substitution x_var <- !x_var (used for influence computation).
  [[nodiscard]] Ref flip_var(Ref f, unsigned var);

  [[nodiscard]] Ref exists(Ref f, unsigned var);
  [[nodiscard]] Ref forall(Ref f, unsigned var);

  // P[f = 1] when input i is 1 with probability p[i] (independent inputs).
  [[nodiscard]] double probability(Ref f, std::span<const double> p);

  // P[f = 1] under the uniform distribution.
  [[nodiscard]] double sat_fraction(Ref f);

  // Number of satisfying assignments over all num_vars() inputs. Exact while
  // the count fits a double's 53-bit mantissa (always true for n <= 53).
  [[nodiscard]] double sat_count(Ref f);

  // Number of distinct nodes (terminals included) reachable from f.
  [[nodiscard]] std::size_t node_count(Ref f) const;

  // Structure access (f must not be a terminal for var_of/lo/hi).
  [[nodiscard]] bool is_terminal(Ref f) const noexcept { return f <= kTrue; }
  [[nodiscard]] unsigned var_of(Ref f) const;
  [[nodiscard]] Ref lo(Ref f) const;
  [[nodiscard]] Ref hi(Ref f) const;

 private:
  struct Node {
    std::uint32_t var;
    Ref lo;
    Ref hi;
  };

  [[nodiscard]] Ref make_node(unsigned var, Ref lo, Ref hi);
  [[nodiscard]] std::uint32_t level_of(Ref f) const {
    return nodes_[f].var;  // terminals carry var == num_vars_
  }
  [[nodiscard]] Ref cofactor_at(Ref f, std::uint32_t level, bool value) const;
  void check_var(unsigned var, const char* context) const;

  unsigned num_vars_;
  std::size_t node_limit_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, std::vector<Ref>> unique_;
  std::unordered_map<std::uint64_t, std::vector<std::pair<Node, Ref>>> ite_cache_;
};

}  // namespace enb::bdd
