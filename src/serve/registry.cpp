#include "serve/registry.hpp"

#include <iomanip>
#include <sstream>

namespace enb::serve {

// ---- handle registry -----------------------------------------------------

HandleRegistry::HandleRegistry(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void HandleRegistry::insert_locked(const std::string& name,
                                   analysis::CompiledCircuit circuit) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    lru_.erase(it->second);
    by_name_.erase(it);
    ++evictions_;
  }
  Entry entry;
  entry.info.name = name;
  entry.info.fingerprint = circuit.content_fingerprint();
  entry.info.circuit = std::move(circuit);
  lru_.push_front(std::move(entry));
  by_name_[name] = lru_.begin();
  while (by_name_.size() > capacity_) {
    by_name_.erase(lru_.back().info.name);
    lru_.pop_back();
    ++evictions_;
  }
}

HandleInfo HandleRegistry::get_or_load(
    const std::string& name,
    const std::function<analysis::CompiledCircuit()>& loader) {
  util::UniqueLock lock(mutex_);
  for (;;) {
    const auto it = by_name_.find(name);
    if (it != by_name_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->info;
    }
    if (loading_.insert(name).second) break;  // we own this load
    // Another session is loading this name: two sessions racing on a cold
    // spec must produce one handle (one artifact cache, one profile
    // extraction). Wait for its result; if its loader throws, retry as the
    // new owner.
    loading_cv_.wait(lock);
  }

  // Load outside the lock: a slow compile/map of one circuit must not
  // stall sessions touching unrelated names.
  lock.unlock();
  analysis::CompiledCircuit circuit;
  try {
    circuit = loader();
  } catch (...) {
    lock.lock();
    loading_.erase(name);
    loading_cv_.notify_all();
    throw;
  }
  lock.lock();
  loading_.erase(name);
  ++loads_;
  insert_locked(name, std::move(circuit));
  loading_cv_.notify_all();
  return lru_.front().info;
}

std::optional<HandleInfo> HandleRegistry::find(const std::string& name) {
  const util::LockGuard lock(mutex_);
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->info;
}

void HandleRegistry::put(const std::string& name,
                         analysis::CompiledCircuit circuit) {
  const util::LockGuard lock(mutex_);
  ++loads_;
  insert_locked(name, std::move(circuit));
}

bool HandleRegistry::evict(const std::string& name) {
  const util::LockGuard lock(mutex_);
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return false;
  lru_.erase(it->second);
  by_name_.erase(it);
  ++evictions_;
  return true;
}

std::size_t HandleRegistry::clear() {
  const util::LockGuard lock(mutex_);
  const std::size_t dropped = by_name_.size();
  evictions_ += dropped;
  by_name_.clear();
  lru_.clear();
  return dropped;
}

RegistryStats HandleRegistry::stats() const {
  const util::LockGuard lock(mutex_);
  RegistryStats s;
  s.handles = by_name_.size();
  s.loads = loads_;
  s.hits = hits_;
  s.evictions = evictions_;
  for (const Entry& entry : lru_) {
    s.profile_extractions += entry.info.circuit.profile_extractions();
  }
  return s;
}

std::vector<HandleInfo> HandleRegistry::snapshot() const {
  const util::LockGuard lock(mutex_);
  std::vector<HandleInfo> handles;
  handles.reserve(lru_.size());
  for (const Entry& entry : lru_) handles.push_back(entry.info);
  return handles;
}

// ---- result cache --------------------------------------------------------

std::string result_cache_key(const analysis::AnalysisRequest& request) {
  std::ostringstream key;
  key << std::hex << std::setfill('0');
  // An empty circuit handle (profile-override energy bound) hashes as 0;
  // the canonical spec then carries the full override contents, keeping the
  // key value-complete.
  key << std::setw(16)
      << (request.circuit.valid() ? request.circuit.content_fingerprint() : 0);
  key << '|' << std::setw(16)
      << (request.golden.has_value() ? request.golden->content_fingerprint()
                                     : 0);
  key << (request.golden.has_value() ? "g" : "-");
  key << '|' << analysis::canonical_spec(request.options);
  return key.str();
}

ResultCache::ResultCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::optional<analysis::AnalysisResult> ResultCache::find(
    const std::string& key, const std::string& name, std::size_t index) {
  const util::LockGuard lock(mutex_);
  const auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  analysis::AnalysisResult result = it->second->result;
  // Identity fields belong to the consumer, not the cache entry.
  result.name = name;
  result.index = index;
  return result;
}

void ResultCache::store(const std::string& key,
                        analysis::AnalysisResult result) {
  const util::LockGuard lock(mutex_);
  ++stores_;
  const auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    // Equal by the determinism contract; keep the existing entry warm.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(result)});
  by_key_[key] = lru_.begin();
  while (by_key_.size() > capacity_) {
    by_key_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::size_t ResultCache::clear() {
  const util::LockGuard lock(mutex_);
  const std::size_t dropped = by_key_.size();
  evictions_ += dropped;
  by_key_.clear();
  lru_.clear();
  return dropped;
}

ResultCacheStats ResultCache::stats() const {
  const util::LockGuard lock(mutex_);
  ResultCacheStats s;
  s.entries = by_key_.size();
  s.hits = hits_;
  s.misses = misses_;
  s.stores = stores_;
  s.evictions = evictions_;
  return s;
}

}  // namespace enb::serve
