#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "exec/batch.hpp"
#include "gen/suite.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "report/table.hpp"

namespace enb::serve {

namespace {

// Known verbs get their own metric label; everything else aggregates under
// "other" so a hostile client cannot grow the label space unboundedly.
const char* metric_verb(const std::string& verb) {
  static const char* const known[] = {"ping",  "load",    "analyze",
                                      "batch", "stats",   "metrics",
                                      "evict", "shutdown"};
  for (const char* v : known) {
    if (verb == v) return v;
  }
  return "other";
}

// Per-request observability: a span under the session span, an admission
// counter, and the per-verb latency histogram observed on every exit path
// (ok, error reply, disconnect).
class RequestObservation {
 public:
  RequestObservation(const std::string& verb, obs::SpanHandle session)
      : span_("serve-request", session, verb),
        histogram_(obs::Registry::global().histogram("serve-request-seconds",
                                                     "verb",
                                                     metric_verb(verb))),
        start_(std::chrono::steady_clock::now()) {
    obs::Registry::global()
        .counter("serve-requests-total", "verb", metric_verb(verb))
        .add(1);
  }

  ~RequestObservation() {
    histogram_.observe(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count());
  }

  RequestObservation(const RequestObservation&) = delete;
  RequestObservation& operator=(const RequestObservation&) = delete;

 private:
  obs::Span span_;
  obs::Histogram& histogram_;
  std::chrono::steady_clock::time_point start_;
};

std::string hex16(std::uint64_t value) {
  std::ostringstream out;
  out << std::hex << std::setfill('0') << std::setw(16) << value;
  return out.str();
}

void send_frame(ByteStream& stream, const Frame& frame) {
  write_frame(stream, frame);
}

void send_ok(ByteStream& stream) { send_frame(stream, Frame{"ok", {}, {}}); }

void send_error(ByteStream& stream, const std::string& message) {
  Frame frame;
  frame.verb = "error";
  frame.payload = message;
  send_frame(stream, frame);
}

// The headline metric mirrored into result-frame arguments so a client can
// print a summary table without parsing JSON (same metric the offline batch
// table leads with).
const char* headline_metric(analysis::AnalysisKind kind) {
  switch (kind) {
    case analysis::AnalysisKind::kReliability:
      return "delta_hat";
    case analysis::AnalysisKind::kWorstCase:
      return "worst_delta_hat";
    case analysis::AnalysisKind::kActivity:
      return "avg_gate_toggle_rate";
    case analysis::AnalysisKind::kSensitivity:
      return "sensitivity";
    case analysis::AnalysisKind::kEnergyBound:
      return "total_factor";
    case analysis::AnalysisKind::kProfile:
      return "size_s0";
    case analysis::AnalysisKind::kFaultCampaign:
      return "coverage";
    case analysis::AnalysisKind::kLint:
      return "errors";
    case analysis::AnalysisKind::kHarden:
      return "frontier_size";
    case analysis::AnalysisKind::kCec:
      break;  // cec results have no headline row (equivalence is the story)
  }
  return "";
}

// Header values must be printable ASCII without spaces; job names come from
// user manifests and may not be (UTF-8 bytes survive the offline path).
// The header copy is display-only — the result's exact name rides in the
// JSON payload — so degrade unrepresentable bytes instead of failing the
// frame write mid-stream.
std::string header_token(const std::string& text) {
  std::string token = text;
  for (char& c : token) {
    if (c <= ' ' || c > '~') c = '?';
  }
  if (token.empty()) token = "-";
  return token;
}

Frame result_frame(const analysis::AnalysisResult& result, bool cached) {
  Frame frame;
  frame.verb = "result";
  frame.add("index", std::to_string(result.index));
  frame.add("name", header_token(result.name));
  frame.add("kind", analysis::to_string(result.kind));
  frame.add("ok", result.ok ? "1" : "0");
  frame.add("cached", cached ? "1" : "0");
  if (result.ok) {
    const char* metric = headline_metric(result.kind);
    if (const auto value = result.metric(metric); value.has_value()) {
      frame.add("hmetric", metric);
      frame.add("hvalue", report::format_double(*value, 6));
    }
  }
  std::ostringstream payload;
  exec::write_result_json(payload, result);
  frame.payload = payload.str();
  return frame;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      registry_(options_.max_handles),
      cache_(options_.max_results) {}

Server::~Server() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
  }
}

bool Server::stopping() const {
  return stop_.load(std::memory_order_relaxed) ||
         (options_.external_stop != nullptr &&
          options_.external_stop->load(std::memory_order_relaxed));
}

void Server::request_stop() { stop_.store(true, std::memory_order_relaxed); }

void Server::bind() {
  if (options_.socket_path.empty()) {
    throw std::runtime_error("serve: socket path must not be empty");
  }
  sockaddr_un addr{};
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: socket path too long (limit " +
                             std::to_string(sizeof(addr.sun_path) - 1) +
                             " bytes): " + options_.socket_path);
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("serve: socket() failed: ") +
                             std::strerror(errno));
  }
  // A previous daemon that exited uncleanly leaves its socket file behind;
  // rebinding the path is this tool's "restart" story.
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string message = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot bind " + options_.socket_path +
                             ": " + message);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string message = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: listen() failed: " + message);
  }
}

void Server::run() {
  if (listen_fd_ < 0) {
    throw std::logic_error("serve: run() before bind()");
  }
  while (!stopping()) {
    pollfd poll_fd{};
    poll_fd.fd = listen_fd_;
    poll_fd.events = POLLIN;
    // Short poll timeout: the loop re-checks the stop flags (the shutdown
    // verb or the CLI's signal handler) between accepts.
    const int ready = ::poll(&poll_fd, 1, 50);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    if (stopping()) {
      // Raced with a stop request: the connection is turned away unserved.
      static obs::Counter& rejected =
          obs::Registry::global().counter("serve-admission-rejected-total");
      rejected.add(1);
      ::close(fd);
      break;
    }
    {
      // Spawn while holding the lock: the session's own end-of-life erase
      // needs this same lock, so its thread handle is registered in
      // sessions_ before the session can possibly retire.
      const util::LockGuard lock(mutex_);
      sessions_.emplace(fd, std::thread(&Server::session, this, fd));
      ++sessions_total_;
    }
    // Join sessions that ended since the last accept, so idle churn does
    // not accumulate finished thread handles.
    reap_retired();
  }

  // Stop accepted: force open sessions off their sockets (in-flight
  // evaluations finish; subsequent reads see EOF), wait for the session
  // table to drain, then join every session thread.
  {
    const util::LockGuard lock(mutex_);
    for (const auto& [fd, thread] : sessions_) ::shutdown(fd, SHUT_RDWR);
  }
  {
    util::UniqueLock lock(mutex_);
    idle_cv_.wait(lock, [this] {
      mutex_.assert_held();
      return sessions_.empty();
    });
  }
  reap_retired();

  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
}

void Server::session(int fd) {
  static obs::Counter& sessions_counter =
      obs::Registry::global().counter("serve-sessions-total");
  static obs::Counter& bytes_in =
      obs::Registry::global().counter("serve-bytes-in-total");
  static obs::Counter& bytes_out =
      obs::Registry::global().counter("serve-bytes-out-total");
  static obs::Gauge& sessions_gauge =
      obs::Registry::global().gauge("serve-sessions-active");
  sessions_counter.add(1);
  sessions_gauge.add(1.0);
  const obs::Span session_span("serve-session", {},
                               "fd=" + std::to_string(fd));
  FdStream socket(fd);
  CountingStream stream(
      socket, [](std::size_t n) { bytes_in.add(n); },
      [](std::size_t n) { bytes_out.add(n); });
  FrameReader reader(stream);
  bool ending = false;
  while (!ending) {
    std::optional<Frame> frame;
    try {
      frame = reader.read_frame();
    } catch (const ProtocolError& e) {
      // The stream cannot be resynchronized after a framing violation:
      // report once (best effort) and hang up.
      try {
        send_error(stream, std::string("protocol error: ") + e.what());
      } catch (const ConnectionClosed&) {
      }
      break;
    } catch (const ConnectionClosed&) {
      break;
    }
    if (!frame.has_value()) break;  // clean EOF
    const RequestObservation observe(frame->verb, session_span.handle());
    try {
      ending = dispatch(*frame, stream);
    } catch (const ConnectionClosed&) {
      break;  // peer vanished mid-reply; session is over
    } catch (const std::exception& e) {
      // Application-level failure (bad arguments, unknown verb, unreadable
      // circuit): the framing is intact, so report and keep the session.
      try {
        send_error(stream, e.what());
      } catch (const ConnectionClosed&) {
        break;
      }
    }
  }
  {
    // Unregister *before* closing: once fd is closed the kernel may hand
    // the same number to a newly accepted connection, and erasing later
    // would drop that live session from the table (letting run() return —
    // and the server be destroyed — under it). A session thread cannot
    // join itself, so it parks its own handle in retired_ for run() to
    // reap. Move, erase and notify under one lock, and touch no Server
    // state after it releases.
    const util::LockGuard lock(mutex_);
    const auto it = sessions_.find(fd);
    if (it != sessions_.end()) {
      retired_.push_back(std::move(it->second));
      sessions_.erase(it);
    }
    idle_cv_.notify_all();
  }
  ::close(fd);
  sessions_gauge.add(-1.0);
}

void Server::reap_retired() {
  std::vector<std::thread> retired;
  {
    const util::LockGuard lock(mutex_);
    retired.swap(retired_);
  }
  // Join outside the lock: a retiring session is past its last Server
  // access, but may still be inside ::close().
  for (std::thread& thread : retired) thread.join();
}

bool Server::dispatch(const Frame& frame, ByteStream& stream) {
  {
    const util::LockGuard lock(mutex_);
    ++frames_;
    ++verb_counts_[metric_verb(frame.verb)];
  }
  if (frame.verb == "ping") {
    send_ok(stream);
    return false;
  }
  if (frame.verb == "load") {
    cmd_load(frame, stream);
    return false;
  }
  if (frame.verb == "analyze") {
    cmd_analyze(frame, stream);
    return false;
  }
  if (frame.verb == "batch") {
    cmd_batch(frame, stream);
    return false;
  }
  if (frame.verb == "stats") {
    cmd_stats(stream);
    return false;
  }
  if (frame.verb == "metrics") {
    cmd_metrics(stream);
    return false;
  }
  if (frame.verb == "evict") {
    cmd_evict(frame, stream);
    return false;
  }
  if (frame.verb == "shutdown") {
    send_ok(stream);
    request_stop();
    return true;
  }
  throw std::invalid_argument("unknown verb '" + frame.verb + "'");
}

analysis::CompiledCircuit Server::resolve_spec(const std::string& spec) {
  return registry_
      .get_or_load(spec,
                   [&] {
                     analysis::CompiledCircuit handle =
                         analysis::compile(gen::build_circuit_spec(spec));
                     if (options_.default_map_fanin > 0) {
                       handle = handle.mapped(options_.default_map_fanin);
                     }
                     return handle;
                   })
      .circuit;
}

void Server::cmd_load(const Frame& frame, ByteStream& stream) {
  const std::string spec = frame.required_arg("circuit");
  const std::string name = frame.arg("name").value_or(spec);
  int map_fanin = options_.default_map_fanin;
  if (const auto map = frame.uint_arg("map"); map.has_value()) {
    map_fanin = static_cast<int>(*map);
  }
  analysis::CompiledCircuit handle =
      analysis::compile(gen::build_circuit_spec(spec));
  if (map_fanin > 0) handle = handle.mapped(map_fanin);
  // Copy, don't reference: once the handle moves into the registry another
  // session's evict can drop the last owner while this reply is built.
  const netlist::CircuitStats stats = handle.stats();
  const std::uint64_t fingerprint = handle.content_fingerprint();
  registry_.put(name, std::move(handle));

  Frame reply;
  reply.verb = "ok";
  reply.add("handle", name);
  reply.add("fingerprint", hex16(fingerprint));
  reply.add("gates", std::to_string(stats.num_gates));
  reply.add("inputs", std::to_string(stats.num_inputs));
  reply.add("outputs", std::to_string(stats.num_outputs));
  reply.add("depth", std::to_string(stats.depth));
  send_frame(stream, reply);
}

void Server::cmd_analyze(const Frame& frame, ByteStream& stream) {
  {
    const util::LockGuard lock(mutex_);
    ++queries_;
  }
  const std::string handle = frame.required_arg("handle");
  const std::string kind = frame.required_arg("kind");
  // Reassemble a one-line manifest so analyze and batch share one option
  // grammar (and one parser) by construction.
  std::string line = frame.arg("name").value_or(handle);
  line += " kind=" + kind + " circuit=" + handle;
  for (const auto& [key, value] : frame.args) {
    if (key == "handle" || key == "kind" || key == "name") continue;
    if (key == "eps" || key == "delta" || key == "budget" || key == "seed" ||
        key == "leakage" || key == "golden" || key == "mode" ||
        key == "drop" || key == "lanes" || key == "sample" ||
        key == "prune" || key == "style" || key == "granularity" ||
        key == "top_k") {
      line += " " + key + "=" + value;
      continue;
    }
    throw std::invalid_argument("analyze: unknown argument '" + key + "='");
  }
  std::istringstream in(line);
  std::vector<analysis::AnalysisRequest> requests =
      exec::parse_manifest_requests(in, [this](const std::string& spec) {
        return resolve_spec(spec);
      });
  if (requests.empty()) {
    // A name starting with '#' turns the reassembled line into a manifest
    // comment: reject rather than reply "done total=0" for a real request.
    throw std::invalid_argument(
        "analyze: request parsed to nothing (names must not start with '#')");
  }
  run_requests(std::move(requests), stream);
}

void Server::cmd_batch(const Frame& frame, ByteStream& stream) {
  {
    const util::LockGuard lock(mutex_);
    ++queries_;
  }
  if (frame.payload.empty()) {
    throw std::invalid_argument("batch: manifest payload is empty");
  }
  std::istringstream in(frame.payload);
  std::vector<analysis::AnalysisRequest> requests =
      exec::parse_manifest_requests(in, [this](const std::string& spec) {
        return resolve_spec(spec);
      });
  if (requests.empty()) {
    throw std::invalid_argument("batch: manifest holds no jobs");
  }
  run_requests(std::move(requests), stream);
}

// Pre-fills the handle's profile cache for a request that would otherwise
// extract inside its batch. The batch engine's extraction groups share an
// extraction within one batch, but two *concurrent* batches would each run
// their own; CompiledCircuit::profile() computes under the handle's lock —
// concurrent sessions block on the first extraction and reuse it — which
// is what makes "one extraction per (handle, key), server-wide" hold by
// construction. Extraction failures are swallowed here: the evaluator
// re-raises them as per-request error results, preserving isolation.
namespace {
void prefill_profile(const analysis::AnalysisRequest& request,
                     exec::Parallelism how) {
  const core::ProfileOptions* options = nullptr;
  if (const auto* bound =
          std::get_if<analysis::EnergyBoundRequest>(&request.options)) {
    if (bound->profile_override.has_value()) return;
    options = &bound->profile;
  } else if (const auto* profile =
                 std::get_if<analysis::ProfileRequest>(&request.options)) {
    options = &profile->options;
  }
  if (options == nullptr || !request.circuit.valid()) return;
  try {
    (void)request.circuit.profile(*options, how);
  } catch (const std::exception&) {
  }
}
}  // namespace

void Server::run_requests(std::vector<analysis::AnalysisRequest> requests,
                          ByteStream& stream) {
  const std::size_t total = requests.size();
  std::vector<std::string> keys(total);
  std::size_t cached_count = 0;
  std::size_t failed = 0;

  // Cache probe: every hit streams before any evaluation work starts — a
  // mostly-warm batch delivers its hits instantly instead of waiting
  // behind a cold request's extraction.
  exec::BatchEvaluator evaluator(options_.how);
  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < total; ++i) {
    keys[i] = result_cache_key(requests[i]);
    if (auto hit = cache_.find(keys[i], requests[i].name, i)) {
      ++cached_count;
      {
        const util::LockGuard lock(mutex_);
        ++results_;
      }
      send_frame(stream, result_frame(*hit, /*cached=*/true));
      continue;
    }
    misses.push_back(i);
  }

  // Misses enter the evaluator's flattened shard space, profiles
  // pre-filled for cross-session sharing (distinct handles extract in
  // sequence here — the price of server-wide exactly-once; each extraction
  // is itself parallelized over the pool).
  std::vector<std::size_t> original_index;  // by evaluator submission index
  for (const std::size_t i : misses) {
    prefill_profile(requests[i], options_.how);
    original_index.push_back(i);
    evaluator.submit(std::move(requests[i]));
  }

  // The socket-backed sink: results stream per-request in completion order.
  // The cache fill happens before the write, so a client that disconnects
  // mid-stream still warms the cache for the next one (its evaluation
  // finishes either way — the evaluator drains before rethrowing sink
  // errors).
  evaluator.run([&](analysis::AnalysisResult result) {
    result.index = original_index[result.index];
    if (result.ok) {
      cache_.store(keys[result.index], result);
    } else {
      ++failed;
    }
    {
      const util::LockGuard lock(mutex_);
      ++results_;
    }
    send_frame(stream, result_frame(result, /*cached=*/false));
  });

  Frame done;
  done.verb = "done";
  done.add("total", std::to_string(total));
  done.add("failed", std::to_string(failed));
  done.add("cached", std::to_string(cached_count));
  send_frame(stream, done);
}

void Server::cmd_stats(ByteStream& stream) {
  const RegistryStats registry = registry_.stats();
  const ResultCacheStats cache = cache_.stats();
  const ServerStats server = stats();

  Frame reply;
  reply.verb = "ok";
  reply.add("handles", std::to_string(registry.handles));
  reply.add("handle_loads", std::to_string(registry.loads));
  reply.add("handle_hits", std::to_string(registry.hits));
  reply.add("handle_evictions", std::to_string(registry.evictions));
  reply.add("profile_extractions",
            std::to_string(registry.profile_extractions));
  reply.add("result_entries", std::to_string(cache.entries));
  reply.add("result_hits", std::to_string(cache.hits));
  reply.add("result_misses", std::to_string(cache.misses));
  reply.add("result_stores", std::to_string(cache.stores));
  reply.add("result_evictions", std::to_string(cache.evictions));
  reply.add("sessions_total", std::to_string(server.sessions_total));
  reply.add("sessions_active", std::to_string(server.sessions_active));
  reply.add("frames", std::to_string(server.frames));
  reply.add("queries", std::to_string(server.queries));
  reply.add("results", std::to_string(server.results));
  reply.add("uptime_seconds", report::format_double(server.uptime_seconds, 3));
  for (const auto& [verb, count] : server.verbs) {
    reply.add("requests_" + verb, std::to_string(count));
  }
  send_frame(stream, reply);
}

void Server::cmd_metrics(ByteStream& stream) {
  // Mirror the shared-store and session counters into the registry as
  // gauges at scrape time, so one exposition covers the process-wide obs
  // instruments (serve verbs, exec shards, fault sweeps, analysis caches)
  // and the server's own stores. Gauges, not counters: these are samples of
  // state owned elsewhere.
  obs::Registry& reg = obs::Registry::global();
  const RegistryStats registry = registry_.stats();
  const ResultCacheStats cache = cache_.stats();
  const ServerStats server = stats();
  reg.gauge("serve-uptime-seconds").set(server.uptime_seconds);
  reg.gauge("serve-handle-registry-handles")
      .set(static_cast<double>(registry.handles));
  reg.gauge("serve-handle-registry-loads")
      .set(static_cast<double>(registry.loads));
  reg.gauge("serve-handle-registry-hits")
      .set(static_cast<double>(registry.hits));
  reg.gauge("serve-handle-registry-evictions")
      .set(static_cast<double>(registry.evictions));
  reg.gauge("serve-result-cache-entries")
      .set(static_cast<double>(cache.entries));
  reg.gauge("serve-result-cache-hits").set(static_cast<double>(cache.hits));
  reg.gauge("serve-result-cache-misses")
      .set(static_cast<double>(cache.misses));
  reg.gauge("serve-result-cache-stores")
      .set(static_cast<double>(cache.stores));
  reg.gauge("serve-result-frames").set(static_cast<double>(server.results));
  // serve-sessions-active is NOT mirrored here: session() up/down-tracks
  // that gauge live, and a scrape-time set() would stomp the tracking.

  Frame reply;
  reply.verb = "ok";
  reply.payload = reg.render_prometheus();
  send_frame(stream, reply);
}

void Server::cmd_evict(const Frame& frame, ByteStream& stream) {
  std::size_t evicted = 0;
  if (const auto handle = frame.arg("handle"); handle.has_value()) {
    evicted = registry_.evict(*handle) ? 1 : 0;
  } else {
    evicted = registry_.clear();
  }
  Frame reply;
  reply.verb = "ok";
  reply.add("evicted", std::to_string(evicted));
  send_frame(stream, reply);
}

ServerStats Server::stats() const {
  const util::LockGuard lock(mutex_);
  ServerStats s;
  s.sessions_total = sessions_total_;
  s.sessions_active = sessions_.size();
  s.frames = frames_;
  s.queries = queries_;
  s.results = results_;
  s.uptime_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - started_)
                         .count();
  s.verbs.assign(verb_counts_.begin(), verb_counts_.end());
  return s;
}

}  // namespace enb::serve
