// Client side of the enbound analysis server: a thin connection wrapper
// that speaks the framed protocol and hands results back as typed records.
//
// The batch/analyze calls stream: `on_result` fires per result frame as it
// arrives (completion order), and the collected records come back sorted by
// submission index, each carrying the server's exact JSON object bytes —
// so assemble_json() reproduces the offline `enbound_cli batch --json`
// array byte for byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace enb::serve {

// The server answered with an `error` frame.
class ServerError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// One `result` frame, decoded.
struct ResultRecord {
  std::size_t index = 0;
  std::string name;
  std::string kind;
  bool ok = false;
  bool cached = false;
  std::string headline;  // "metric = value" when the server sent one
  std::string json;      // the exact write_result_json object bytes
};

// Outcome of a batch/analyze stream.
struct QueryOutcome {
  std::vector<ResultRecord> results;  // sorted by submission index
  std::size_t total = 0;
  std::size_t failed = 0;
  std::size_t cached = 0;

  // The offline write_batch_json array for these results, byte-identical to
  // `enbound_cli batch --json` over the same manifest.
  void assemble_json(std::ostream& out) const;
};

class Client {
 public:
  // Connects to the daemon's Unix domain socket; throws std::runtime_error
  // when nothing is listening.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Simple verbs: send one frame, expect one `ok` reply (returned so
  // callers can read its arguments). Throws ServerError on an `error`
  // reply and ProtocolError/ConnectionClosed on transport trouble.
  Frame call(const Frame& request);

  // `load circuit=<spec> [name=<id>] [map=K]`.
  Frame load(const std::string& spec, const std::string& name = "",
             std::optional<int> map_fanin = std::nullopt);

  // Submits manifest text as a `batch` and consumes the result stream.
  QueryOutcome batch(const std::string& manifest_text,
                     const std::function<void(const ResultRecord&)>&
                         on_result = nullptr);

  // Submits one `analyze` against a held handle. `tokens` are forwarded
  // manifest-style key=value arguments (eps=, budget=, golden=, ...).
  QueryOutcome analyze(const std::string& handle, const std::string& kind,
                       const std::vector<std::string>& tokens = {},
                       const std::function<void(const ResultRecord&)>&
                           on_result = nullptr);

  Frame stats();
  // `metrics`: the ok reply's payload is the server's Prometheus-style
  // text exposition.
  Frame metrics();
  Frame evict(const std::string& handle = "");  // empty = evict everything
  Frame ping();
  Frame shutdown_server();

 private:
  // Reads frames until `done`, decoding `result` frames along the way.
  QueryOutcome consume_stream(
      const std::function<void(const ResultRecord&)>& on_result);
  Frame read_reply();

  int fd_ = -1;
  FdStream stream_;
  FrameReader reader_;
};

}  // namespace enb::serve
