// Wire protocol of the enbound analysis server: length-framed messages over
// a byte stream (a Unix domain socket in production, an in-memory buffer in
// tests).
//
// Frame grammar (ASCII header, raw payload):
//
//   frame   := header '\n' payload?
//   header  := verb (' ' key '=' value)*
//   verb    := 1+ printable non-space characters
//   key     := 1+ printable characters, no space, no '='
//   value   := 1+ printable non-space characters ('=' allowed)
//   payload := exactly N raw bytes, N = integer value of the "payload" key
//
// Values never contain whitespace; anything free-form (error messages,
// manifest text, JSON objects) travels in the payload. The payload length
// is declared up front, so a reader always knows whether the stream is
// intact: a malformed header or a stream that ends inside a declared
// payload is a framing error (ProtocolError) and the connection is beyond
// recovery; an intact frame with an unknown verb is an application-level
// error and the session continues.
//
// Client -> server verbs: load, analyze, batch, stats, metrics, evict,
// ping, shutdown. Server -> client verbs: ok, result, done, error. See
// serve/server.hpp for their argument vocabularies.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace enb::serve {

// Framing violation: malformed header, oversized declaration, or a stream
// truncated mid-frame. The connection cannot be resynchronized afterwards.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// The peer closed (or broke) the connection during a write.
class ConnectionClosed : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Hard limits enforced by the reader: a header line and a declared payload
// larger than these are rejected before any allocation, so a hostile or
// corrupt peer cannot make the server balloon.
inline constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
inline constexpr std::size_t kMaxPayloadBytes = 16 * 1024 * 1024;

// Transport abstraction the framing layer reads and writes through.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  // Reads up to `max` bytes into `out`; returns the count read, 0 on EOF.
  virtual std::size_t read_some(char* out, std::size_t max) = 0;

  // Writes all `size` bytes. Throws ConnectionClosed when the peer is gone.
  virtual void write_all(const char* data, std::size_t size) = 0;
};

// In-memory stream for tests: reads from `input`, appends writes to
// `output`.
class MemoryStream : public ByteStream {
 public:
  explicit MemoryStream(std::string input) : input_(std::move(input)) {}

  std::size_t read_some(char* out, std::size_t max) override;
  void write_all(const char* data, std::size_t size) override;

  [[nodiscard]] const std::string& output() const noexcept { return output_; }

 private:
  std::string input_;
  std::size_t cursor_ = 0;
  std::string output_;
};

// POSIX socket stream. Does not own the descriptor.
class FdStream : public ByteStream {
 public:
  explicit FdStream(int fd) : fd_(fd) {}

  std::size_t read_some(char* out, std::size_t max) override;
  void write_all(const char* data, std::size_t size) override;

 private:
  int fd_;
};

// Decorator that reports bytes moved through another stream to caller-
// provided sinks — how the server meters per-direction socket traffic
// (obs counters) without the transport knowing about metrics. Null sinks
// are skipped; counting happens after the inner call succeeds, so a write
// that throws ConnectionClosed is not counted as delivered.
class CountingStream : public ByteStream {
 public:
  using Sink = std::function<void(std::size_t)>;

  CountingStream(ByteStream& inner, Sink on_read, Sink on_write)
      : inner_(inner), on_read_(std::move(on_read)),
        on_write_(std::move(on_write)) {}

  std::size_t read_some(char* out, std::size_t max) override;
  void write_all(const char* data, std::size_t size) override;

 private:
  ByteStream& inner_;
  Sink on_read_;
  Sink on_write_;
};

// One protocol message.
struct Frame {
  std::string verb;
  // Header key=value pairs, in wire order ("payload" excluded — it is
  // derived from payload.size() on write and consumed on read).
  std::vector<std::pair<std::string, std::string>> args;
  std::string payload;

  // The first value for `key`, if present.
  [[nodiscard]] std::optional<std::string> arg(const std::string& key) const;
  // arg() that must exist; throws std::invalid_argument naming the key.
  [[nodiscard]] std::string required_arg(const std::string& key) const;
  // arg() parsed as an unsigned integer; throws std::invalid_argument on a
  // malformed value.
  [[nodiscard]] std::optional<std::uint64_t> uint_arg(
      const std::string& key) const;

  Frame& add(std::string key, std::string value) {
    args.emplace_back(std::move(key), std::move(value));
    return *this;
  }
};

// Serializes `frame` onto `out`. Validates tokens: the verb, keys and
// values must be non-empty printable ASCII without whitespace (keys also
// without '='), and "payload" is reserved; violations throw
// std::invalid_argument before anything is written.
void write_frame(ByteStream& out, const Frame& frame);

// Buffered frame reader over a ByteStream.
class FrameReader {
 public:
  explicit FrameReader(ByteStream& in) : in_(in) {}

  // Next frame, or nullopt on a clean EOF at a frame boundary. Throws
  // ProtocolError on a malformed header, an oversized header/payload
  // declaration, or EOF inside a frame.
  [[nodiscard]] std::optional<Frame> read_frame();

 private:
  // Fills `out` with exactly `size` bytes; false on EOF before the first
  // byte, throws ProtocolError on EOF mid-way.
  bool read_exact(std::string& out, std::size_t size);

  ByteStream& in_;
  std::string buffer_;
  std::size_t cursor_ = 0;  // consumed prefix of buffer_
};

// Parses one header line (no trailing newline) into a Frame with empty
// payload; returns the declared payload size (0 when absent). Throws
// ProtocolError on malformed input. Exposed for tests.
[[nodiscard]] std::size_t parse_header(const std::string& line, Frame& frame);

}  // namespace enb::serve
