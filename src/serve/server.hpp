// enbound_served: the long-lived analysis daemon.
//
// The paper's workflow is "one design, many bound queries": sweeps over
// (eps, delta) and redundancy points repeatedly analyze the same compiled
// circuit. The offline CLI pays compile + profile extraction on every
// invocation; the server keeps both alive across requests — compiled
// handles in a named LRU registry, finished results in a cross-request
// cache — so a repeated sweep point costs one cache lookup and concurrent
// clients share one extraction by construction.
//
// One server owns one Unix domain socket. Each accepted connection becomes
// a session thread speaking the framed protocol (serve/protocol.hpp);
// sessions share the registry, the result cache, and the process-wide
// thread pool, and are otherwise isolated — a protocol violation or
// disconnect on one connection never disturbs another.
//
// Session verbs (client -> server):
//   load    circuit=<spec> [name=<id>] [map=K]
//           Compile (and map; K=0 -> as-is, default the server's fanin) a
//           suite circuit or .bench path and register it under `name`
//           (default: the spec). Reply:
//           ok handle=<id> fingerprint=<hex> gates=N inputs=N outputs=N
//              depth=N
//   analyze handle=<id> kind=<kind> [name=<id>] [eps=E] [delta=D]
//           [budget=N] [seed=S] [leakage=L] [golden=<spec>]
//           One request against a held handle — the manifest-line
//           vocabulary with circuit= replaced by handle=. Streams one
//           `result` frame, then `done`.
//   batch   payload=<manifest bytes>
//           A full job manifest. circuit=/golden= specs resolve against the
//           registry first and auto-load (with the server's default
//           mapping) on a miss. Streams a `result` frame per job as it
//           finishes — cache hits first — then `done`.
//   stats   Reply: ok with the registry / result-cache / session counters,
//           uptime_seconds, and per-verb request counters.
//   metrics Reply: ok whose payload is the Prometheus-style text exposition
//           of the process metrics registry (serve verbs, exec shards,
//           fault sweeps, analysis caches), with the registry/result-cache/
//           session counters mirrored in as gauges at scrape time.
//   evict   [handle=<id>]   Drop one named handle (reply ok evicted=0|1) or,
//           with no argument, every handle (reply ok evicted=<count>).
//   ping    Reply: ok.
//   shutdown
//           Reply ok, then stop the server: the accept loop exits, open
//           sessions are closed, run() returns.
//
// Server -> client frames:
//   result index=<i> name=<n> kind=<k> ok=0|1 cached=0|1
//          payload=<JSON object>
//          The payload is exactly exec::write_result_json's bytes — the
//          line the offline batch writer would emit — so a client
//          reassembling frames in index order reproduces `enbound_cli
//          batch --json` byte for byte.
//   done   total=<n> failed=<n> cached=<n>
//   ok     [key=value...]
//   error  payload=<message>
//
// Results stream in completion order (cached results immediately); payloads
// are bit-identical to the offline evaluator's by the determinism contract.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "util/sync.hpp"

namespace enb::serve {

struct ServerOptions {
  std::string socket_path;
  std::size_t max_handles = 64;
  std::size_t max_results = 4096;
  // Mapping applied when a circuit spec auto-loads (0 = analyze as-is);
  // matches the offline CLI's --map default so served batches reproduce
  // offline output byte for byte.
  int default_map_fanin = 3;
  exec::Parallelism how{};
  // Optional external stop request (the CLI's signal flag); polled by the
  // accept loop.
  const std::atomic<bool>* external_stop = nullptr;
};

struct ServerStats {
  std::uint64_t sessions_total = 0;
  std::uint64_t sessions_active = 0;
  std::uint64_t frames = 0;    // dispatched request frames
  std::uint64_t queries = 0;   // analyze + batch verbs
  std::uint64_t results = 0;   // result frames streamed
  double uptime_seconds = 0.0;  // since construction
  // Dispatched request frames by verb, sorted by verb name (unknown verbs
  // aggregate under "other").
  std::vector<std::pair<std::string, std::uint64_t>> verbs;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Creates, binds and listens on the Unix domain socket (replacing a stale
  // socket file at that path). Throws std::runtime_error on failure.
  // Separate from run() so callers can report readiness before blocking.
  void bind();

  // Accept loop: serves sessions until a `shutdown` verb, request_stop(),
  // or the external stop flag. Joins every session before returning and
  // removes the socket file. Call bind() first.
  void run();

  // Asks run() to return: stops accepting and closes open sessions (their
  // in-flight evaluations finish first). Callable from any thread.
  void request_stop();

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }

  // Shared-store and session counters (the `stats` verb's numbers).
  [[nodiscard]] RegistryStats registry_stats() const {
    return registry_.stats();
  }
  [[nodiscard]] ResultCacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] ServerStats stats() const;

 private:
  void session(int fd);
  // Dispatches one frame; returns true when the session must end
  // (shutdown). Throws ConnectionClosed if the peer vanishes mid-reply and
  // std::exception for application errors (sent back as `error` frames by
  // the caller).
  bool dispatch(const Frame& frame, ByteStream& stream);

  void cmd_load(const Frame& frame, ByteStream& stream);
  void cmd_analyze(const Frame& frame, ByteStream& stream);
  void cmd_batch(const Frame& frame, ByteStream& stream);
  void cmd_stats(ByteStream& stream);
  // Prometheus-style text exposition of the process metrics registry, with
  // the registry/result-cache/session counters mirrored in as gauges at
  // scrape time. Reply: ok frame whose payload is the exposition text.
  void cmd_metrics(ByteStream& stream);
  void cmd_evict(const Frame& frame, ByteStream& stream);

  // Shared by analyze/batch: probe the cache, evaluate the misses, stream
  // `result` frames (cached first) and the closing `done` frame.
  void run_requests(std::vector<analysis::AnalysisRequest> requests,
                    ByteStream& stream);

  // Registry-first circuit spec resolution with auto-load.
  [[nodiscard]] analysis::CompiledCircuit resolve_spec(const std::string& spec);

  [[nodiscard]] bool stopping() const;

  // Joins every thread a finished session has parked in retired_. Runs in
  // the accept loop (so handles do not pile up) and once after the session
  // table drains.
  void reap_retired();

  ServerOptions options_;
  HandleRegistry registry_;
  ResultCache cache_;

  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};

  mutable util::Mutex mutex_;
  util::CondVar idle_cv_;
  // Live sessions by fd, each owning its thread. A session thread cannot
  // join itself, so at end-of-life it moves its own handle to retired_ for
  // the accept loop to reap; run() returns only after sessions_ drains and
  // retired_ is joined — no thread ever outlives the server.
  std::unordered_map<int, std::thread> sessions_ ENB_GUARDED_BY(mutex_);
  std::vector<std::thread> retired_ ENB_GUARDED_BY(mutex_);
  std::uint64_t sessions_total_ ENB_GUARDED_BY(mutex_) = 0;
  std::uint64_t frames_ ENB_GUARDED_BY(mutex_) = 0;
  std::uint64_t queries_ ENB_GUARDED_BY(mutex_) = 0;
  std::uint64_t results_ ENB_GUARDED_BY(mutex_) = 0;
  std::map<std::string, std::uint64_t> verb_counts_ ENB_GUARDED_BY(mutex_);
  const std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
};

}  // namespace enb::serve
