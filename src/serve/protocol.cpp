#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>

#include "util/numeric.hpp"

namespace enb::serve {

namespace {

bool printable_token(const std::string& text, bool allow_equals) {
  if (text.empty()) return false;
  for (const char c : text) {
    if (c <= ' ' || c > '~') return false;  // control, space, or non-ASCII
    if (!allow_equals && c == '=') return false;
  }
  return true;
}

}  // namespace

// ---- streams -------------------------------------------------------------

std::size_t MemoryStream::read_some(char* out, std::size_t max) {
  const std::size_t available = input_.size() - cursor_;
  const std::size_t count = available < max ? available : max;
  std::memcpy(out, input_.data() + cursor_, count);
  cursor_ += count;
  return count;
}

void MemoryStream::write_all(const char* data, std::size_t size) {
  output_.append(data, size);
}

std::size_t FdStream::read_some(char* out, std::size_t max) {
  for (;;) {
    const ssize_t count = ::recv(fd_, out, max, 0);
    if (count >= 0) return static_cast<std::size_t>(count);
    if (errno == EINTR) continue;
    // A peer that vanished (reset) reads as EOF: the session ends the same
    // way a clean close does, it just skips the goodbye.
    if (errno == ECONNRESET) return 0;
    throw ConnectionClosed(std::string("recv failed: ") + std::strerror(errno));
  }
}

void FdStream::write_all(const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    // MSG_NOSIGNAL: a disconnected client must surface as an error code,
    // not a process-killing SIGPIPE.
    const ssize_t count =
        ::send(fd_, data + written, size - written, MSG_NOSIGNAL);
    if (count >= 0) {
      written += static_cast<std::size_t>(count);
      continue;
    }
    if (errno == EINTR) continue;
    throw ConnectionClosed(std::string("send failed: ") + std::strerror(errno));
  }
}

std::size_t CountingStream::read_some(char* out, std::size_t max) {
  const std::size_t count = inner_.read_some(out, max);
  if (on_read_ && count > 0) on_read_(count);
  return count;
}

void CountingStream::write_all(const char* data, std::size_t size) {
  inner_.write_all(data, size);
  if (on_write_ && size > 0) on_write_(size);
}

// ---- frames --------------------------------------------------------------

std::optional<std::string> Frame::arg(const std::string& key) const {
  for (const auto& [k, v] : args) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::string Frame::required_arg(const std::string& key) const {
  auto value = arg(key);
  if (!value.has_value()) {
    throw std::invalid_argument(verb + ": missing required argument '" + key +
                                "='");
  }
  return *std::move(value);
}

std::optional<std::uint64_t> Frame::uint_arg(const std::string& key) const {
  const auto value = arg(key);
  if (!value.has_value()) return std::nullopt;
  std::uint64_t parsed = 0;
  if (!util::parse_uint64(*value, parsed)) {
    throw std::invalid_argument(verb + ": argument '" + key +
                                "=' must be a non-negative integer, got '" +
                                *value + "'");
  }
  return parsed;
}

void write_frame(ByteStream& out, const Frame& frame) {
  if (!printable_token(frame.verb, /*allow_equals=*/false)) {
    throw std::invalid_argument("write_frame: invalid verb");
  }
  std::string header = frame.verb;
  for (const auto& [key, value] : frame.args) {
    if (!printable_token(key, /*allow_equals=*/false) || key == "payload") {
      throw std::invalid_argument("write_frame: invalid key '" + key + "'");
    }
    if (!printable_token(value, /*allow_equals=*/true)) {
      throw std::invalid_argument("write_frame: invalid value for key '" +
                                  key + "'");
    }
    header += ' ';
    header += key;
    header += '=';
    header += value;
  }
  if (!frame.payload.empty()) {
    header += " payload=" + std::to_string(frame.payload.size());
  }
  header += '\n';
  // One write per frame: interleaving sessions on the server each hold the
  // socket exclusively, so this is about syscall count, not atomicity.
  header += frame.payload;
  out.write_all(header.data(), header.size());
}

std::size_t parse_header(const std::string& line, Frame& frame) {
  frame = Frame{};
  std::size_t payload_size = 0;
  std::size_t pos = 0;
  const auto next_token = [&]() -> std::optional<std::string> {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) return std::nullopt;
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    return line.substr(start, pos - start);
  };

  const auto verb = next_token();
  if (!verb.has_value()) throw ProtocolError("empty frame header");
  if (!printable_token(*verb, /*allow_equals=*/false)) {
    throw ProtocolError("malformed verb '" + *verb + "'");
  }
  frame.verb = *verb;

  while (const auto token = next_token()) {
    const std::size_t eq = token->find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token->size()) {
      throw ProtocolError("expected key=value, got '" + *token + "'");
    }
    std::string key = token->substr(0, eq);
    std::string value = token->substr(eq + 1);
    if (key == "payload") {
      std::uint64_t declared = 0;
      if (!util::parse_uint64(value, declared)) {
        throw ProtocolError("malformed payload length '" + value + "'");
      }
      if (declared > kMaxPayloadBytes) {
        throw ProtocolError("payload length " + value + " exceeds limit of " +
                            std::to_string(kMaxPayloadBytes) + " bytes");
      }
      payload_size = static_cast<std::size_t>(declared);
      continue;
    }
    frame.args.emplace_back(std::move(key), std::move(value));
  }
  return payload_size;
}

bool FrameReader::read_exact(std::string& out, std::size_t size) {
  out.clear();
  while (out.size() < size) {
    const std::size_t available = buffer_.size() - cursor_;
    if (available > 0) {
      const std::size_t take = size - out.size() < available
                                   ? size - out.size()
                                   : available;
      out.append(buffer_, cursor_, take);
      cursor_ += take;
      continue;
    }
    char chunk[4096];
    const std::size_t count = in_.read_some(chunk, sizeof(chunk));
    if (count == 0) {
      if (out.empty()) return false;
      throw ProtocolError("stream truncated inside a payload (" +
                          std::to_string(out.size()) + " of " +
                          std::to_string(size) + " bytes)");
    }
    buffer_.assign(chunk, count);
    cursor_ = 0;
  }
  return true;
}

std::optional<Frame> FrameReader::read_frame() {
  // Pull bytes until the buffered tail holds a full header line.
  std::string line;
  for (;;) {
    const std::size_t newline = buffer_.find('\n', cursor_);
    if (newline != std::string::npos) {
      line.assign(buffer_, cursor_, newline - cursor_);
      cursor_ = newline + 1;
      break;
    }
    if (buffer_.size() - cursor_ > kMaxHeaderBytes) {
      throw ProtocolError("frame header exceeds " +
                          std::to_string(kMaxHeaderBytes) + " bytes");
    }
    // Compact the consumed prefix before growing.
    buffer_.erase(0, cursor_);
    cursor_ = 0;
    char chunk[4096];
    const std::size_t count = in_.read_some(chunk, sizeof(chunk));
    if (count == 0) {
      if (buffer_.empty()) return std::nullopt;  // clean EOF between frames
      throw ProtocolError("stream truncated inside a frame header");
    }
    buffer_.append(chunk, count);
  }

  Frame frame;
  const std::size_t payload_size = parse_header(line, frame);
  if (payload_size > 0 && !read_exact(frame.payload, payload_size)) {
    throw ProtocolError("stream truncated before a declared payload");
  }
  return frame;
}

}  // namespace enb::serve
