#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace enb::serve {

namespace {

int connect_fd(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("client: invalid socket path: " + socket_path);
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("client: socket() failed: ") +
                             std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string message = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("client: cannot connect to " + socket_path +
                             ": " + message);
  }
  return fd;
}

ResultRecord decode_result(const Frame& frame) {
  ResultRecord record;
  const auto index = frame.uint_arg("index");
  if (!index.has_value()) {
    throw ProtocolError("result frame without index=");
  }
  record.index = static_cast<std::size_t>(*index);
  record.name = frame.arg("name").value_or("");
  record.kind = frame.arg("kind").value_or("");
  record.ok = frame.arg("ok").value_or("0") == "1";
  record.cached = frame.arg("cached").value_or("0") == "1";
  if (const auto metric = frame.arg("hmetric"); metric.has_value()) {
    record.headline = *metric + " = " + frame.arg("hvalue").value_or("");
  }
  record.json = frame.payload;
  return record;
}

}  // namespace

void QueryOutcome::assemble_json(std::ostream& out) const {
  // Mirrors exec::write_batch_json's array framing around the server's
  // verbatim object bytes.
  out << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    out << "  " << results[i].json
        << (i + 1 == results.size() ? "" : ",") << "\n";
  }
  out << "]\n";
}

Client::Client(const std::string& socket_path)
    : fd_(connect_fd(socket_path)), stream_(fd_), reader_(stream_) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Frame Client::read_reply() {
  std::optional<Frame> frame = reader_.read_frame();
  if (!frame.has_value()) {
    throw ConnectionClosed("client: server closed the connection");
  }
  if (frame->verb == "error") {
    throw ServerError(frame->payload.empty() ? "server error" :
                                               frame->payload);
  }
  return *std::move(frame);
}

Frame Client::call(const Frame& request) {
  write_frame(stream_, request);
  Frame reply = read_reply();
  if (reply.verb != "ok") {
    throw ProtocolError("client: expected ok frame, got '" + reply.verb +
                        "'");
  }
  return reply;
}

Frame Client::load(const std::string& spec, const std::string& name,
                   std::optional<int> map_fanin) {
  Frame frame;
  frame.verb = "load";
  frame.add("circuit", spec);
  if (!name.empty()) frame.add("name", name);
  if (map_fanin.has_value()) frame.add("map", std::to_string(*map_fanin));
  return call(frame);
}

QueryOutcome Client::consume_stream(
    const std::function<void(const ResultRecord&)>& on_result) {
  QueryOutcome outcome;
  for (;;) {
    Frame frame = read_reply();
    if (frame.verb == "result") {
      ResultRecord record = decode_result(frame);
      if (on_result) on_result(record);
      outcome.results.push_back(std::move(record));
      continue;
    }
    if (frame.verb == "done") {
      outcome.total = static_cast<std::size_t>(
          frame.uint_arg("total").value_or(outcome.results.size()));
      outcome.failed =
          static_cast<std::size_t>(frame.uint_arg("failed").value_or(0));
      outcome.cached =
          static_cast<std::size_t>(frame.uint_arg("cached").value_or(0));
      break;
    }
    throw ProtocolError("client: unexpected frame '" + frame.verb +
                        "' in a result stream");
  }
  std::sort(outcome.results.begin(), outcome.results.end(),
            [](const ResultRecord& a, const ResultRecord& b) {
              return a.index < b.index;
            });
  if (outcome.results.size() != outcome.total) {
    throw ProtocolError("client: result stream delivered " +
                        std::to_string(outcome.results.size()) + " of " +
                        std::to_string(outcome.total) + " results");
  }
  return outcome;
}

QueryOutcome Client::batch(
    const std::string& manifest_text,
    const std::function<void(const ResultRecord&)>& on_result) {
  Frame frame;
  frame.verb = "batch";
  frame.payload = manifest_text;
  write_frame(stream_, frame);
  return consume_stream(on_result);
}

QueryOutcome Client::analyze(
    const std::string& handle, const std::string& kind,
    const std::vector<std::string>& tokens,
    const std::function<void(const ResultRecord&)>& on_result) {
  Frame frame;
  frame.verb = "analyze";
  frame.add("handle", handle);
  frame.add("kind", kind);
  for (const std::string& token : tokens) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
      throw std::invalid_argument("analyze: expected key=value, got '" +
                                  token + "'");
    }
    frame.add(token.substr(0, eq), token.substr(eq + 1));
  }
  write_frame(stream_, frame);
  return consume_stream(on_result);
}

Frame Client::stats() { return call(Frame{"stats", {}, {}}); }

Frame Client::metrics() { return call(Frame{"metrics", {}, {}}); }

Frame Client::evict(const std::string& handle) {
  Frame frame;
  frame.verb = "evict";
  if (!handle.empty()) frame.add("handle", handle);
  return call(frame);
}

Frame Client::ping() { return call(Frame{"ping", {}, {}}); }

Frame Client::shutdown_server() { return call(Frame{"shutdown", {}, {}}); }

}  // namespace enb::serve
