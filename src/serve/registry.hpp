// The server's two shared stores: named CompiledCircuit handles and the
// cross-request result cache.
//
// Both are LRU-bounded and thread-safe (sessions run on their own threads).
// The registry keeps compiled handles alive across requests, so repeated
// sweeps over one design pay compilation and profile extraction once; the
// result cache memoizes whole AnalysisResults keyed on
// (circuit fingerprint, golden fingerprint, canonical request spec), so a
// repeated identical request is served without evaluating anything at all.
// Keys are *content* fingerprints, not handle identities: evicting and
// reloading a circuit does not cool the result cache.
//
// Memoizing results is sound because of the determinism contract: a
// request's result is a pure function of (circuit, golden, canonical spec)
// — never of thread count, submission order, or co-scheduled work — so the
// cached value is bit-identical to a recomputation.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/compiled_circuit.hpp"
#include "analysis/request.hpp"
#include "util/sync.hpp"

namespace enb::serve {

// ---- handle registry -----------------------------------------------------

struct HandleInfo {
  std::string name;
  analysis::CompiledCircuit circuit;
  std::uint64_t fingerprint = 0;
};

struct RegistryStats {
  std::size_t handles = 0;
  std::uint64_t loads = 0;      // loader invocations (misses that loaded)
  std::uint64_t hits = 0;       // lookups served from the registry
  std::uint64_t evictions = 0;  // LRU + explicit evictions
  // Profile extractions performed by the *live* handles (evicted handles
  // take their counters with them).
  std::uint64_t profile_extractions = 0;
};

class HandleRegistry {
 public:
  explicit HandleRegistry(std::size_t capacity = 64);

  // The handle registered under `name`, loading it on a miss. Loads are
  // deduplicated *per name*: concurrent sessions asking for the same cold
  // name get one loader invocation (the others block until it lands, then
  // read the entry), while loads and lookups of unrelated names proceed —
  // the loader runs outside the registry lock. A loader that throws
  // releases the name so a waiter can retry the load. Lookups and loads
  // both mark the entry most-recently used; loads evict LRU entries above
  // capacity.
  [[nodiscard]] HandleInfo get_or_load(
      const std::string& name,
      const std::function<analysis::CompiledCircuit()>& loader);

  // The handle registered under `name`, if any (marks it used).
  [[nodiscard]] std::optional<HandleInfo> find(const std::string& name);

  // Registers (or replaces) `name` explicitly, evicting above capacity.
  void put(const std::string& name, analysis::CompiledCircuit circuit);

  // True when `name` was registered (and is now evicted).
  bool evict(const std::string& name);

  // Evicts everything; returns how many entries were dropped.
  std::size_t clear();

  [[nodiscard]] RegistryStats stats() const;

  // Registered names, most recently used first (the `stats` verb's listing).
  [[nodiscard]] std::vector<HandleInfo> snapshot() const;

 private:
  struct Entry {
    HandleInfo info;
  };
  using LruList = std::list<Entry>;

  // Inserts at the front (MRU) and trims to capacity.
  void insert_locked(const std::string& name, analysis::CompiledCircuit c)
      ENB_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  std::size_t capacity_;
  LruList lru_ ENB_GUARDED_BY(mutex_);  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> by_name_
      ENB_GUARDED_BY(mutex_);
  // Names with a loader in flight; waiters sleep on loading_cv_.
  std::unordered_set<std::string> loading_ ENB_GUARDED_BY(mutex_);
  util::CondVar loading_cv_;
  std::uint64_t loads_ ENB_GUARDED_BY(mutex_) = 0;
  std::uint64_t hits_ ENB_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ ENB_GUARDED_BY(mutex_) = 0;
};

// ---- result cache --------------------------------------------------------

// Cache key for `request`: circuit and golden content fingerprints plus the
// canonical option spec. The request's display name is deliberately not
// part of the key — a cached result is re-labelled for each consumer.
[[nodiscard]] std::string result_cache_key(
    const analysis::AnalysisRequest& request);

struct ResultCacheStats {
  std::size_t entries = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;
};

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity = 4096);

  // The cached result for `key`, re-labelled with `name` and `index`.
  // Counts a hit or a miss and marks the entry most-recently used.
  [[nodiscard]] std::optional<analysis::AnalysisResult> find(
      const std::string& key, const std::string& name, std::size_t index);

  // Stores `result` (ok results only make sense here; the server never
  // caches failures), evicting least-recently-used entries above capacity.
  void store(const std::string& key, analysis::AnalysisResult result);

  std::size_t clear();

  [[nodiscard]] ResultCacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    analysis::AnalysisResult result;
  };
  using LruList = std::list<Entry>;

  mutable util::Mutex mutex_;
  std::size_t capacity_;
  LruList lru_ ENB_GUARDED_BY(mutex_);  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> by_key_
      ENB_GUARDED_BY(mutex_);
  std::uint64_t hits_ ENB_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ ENB_GUARDED_BY(mutex_) = 0;
  std::uint64_t stores_ ENB_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ ENB_GUARDED_BY(mutex_) = 0;
};

}  // namespace enb::serve
