#include "analysis/static_reason.hpp"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <stdexcept>
#include <utility>

#include "bdd/bdd.hpp"
#include "exec/stream.hpp"
#include "netlist/topo.hpp"
#include "sim/logic_sim.hpp"

namespace enb::analysis {

using netlist::Circuit;
using netlist::GateType;
using netlist::kInvalidNode;
using netlist::NodeId;

namespace {

// ---------------------------------------------------------------------------
// Partial evaluation: the value of a gate when only some fanins are known.
// ---------------------------------------------------------------------------

LogicValue partial_eval(GateType type, const Circuit& circuit, NodeId id,
                        const std::vector<LogicValue>& val) {
  const auto fanins = circuit.fanins(id);
  switch (type) {
    case GateType::kInput:
      return val[id];
    case GateType::kConst0:
      return LogicValue::kZero;
    case GateType::kConst1:
      return LogicValue::kOne;
    case GateType::kBuf:
      return val[fanins[0]];
    case GateType::kNot:
      return negate(val[fanins[0]]);
    case GateType::kAnd:
    case GateType::kNand: {
      bool all_one = true;
      for (const NodeId f : fanins) {
        if (val[f] == LogicValue::kZero) {
          return type == GateType::kAnd ? LogicValue::kZero : LogicValue::kOne;
        }
        if (val[f] != LogicValue::kOne) all_one = false;
      }
      if (!all_one) return LogicValue::kUnknown;
      return type == GateType::kAnd ? LogicValue::kOne : LogicValue::kZero;
    }
    case GateType::kOr:
    case GateType::kNor: {
      bool all_zero = true;
      for (const NodeId f : fanins) {
        if (val[f] == LogicValue::kOne) {
          return type == GateType::kOr ? LogicValue::kOne : LogicValue::kZero;
        }
        if (val[f] != LogicValue::kZero) all_zero = false;
      }
      if (!all_zero) return LogicValue::kUnknown;
      return type == GateType::kOr ? LogicValue::kZero : LogicValue::kOne;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      bool parity = type == GateType::kXnor;
      for (const NodeId f : fanins) {
        if (val[f] == LogicValue::kUnknown) return LogicValue::kUnknown;
        parity ^= val[f] == LogicValue::kOne;
      }
      return to_logic(parity);
    }
    case GateType::kMaj: {
      int ones = 0;
      int zeros = 0;
      for (const NodeId f : fanins) {
        ones += val[f] == LogicValue::kOne;
        zeros += val[f] == LogicValue::kZero;
      }
      if (ones >= 2) return LogicValue::kOne;
      if (zeros >= 2) return LogicValue::kZero;
      return LogicValue::kUnknown;
    }
  }
  return LogicValue::kUnknown;
}

std::vector<std::vector<NodeId>> fanout_lists(const Circuit& circuit) {
  std::vector<std::vector<NodeId>> fanouts(circuit.node_count());
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    for (const NodeId f : circuit.fanins(id)) fanouts[f].push_back(id);
  }
  return fanouts;
}

// One implication environment: a partial assignment plus a propagation
// queue. Facts flow forward (gate evaluation with partial fanins) and
// backward (controlling-value rules); a net assigned both values is a
// contradiction, which is exactly what probe learning looks for.
class ImplicationEnv {
 public:
  ImplicationEnv(const Circuit& circuit,
                 const std::vector<std::vector<NodeId>>& fanouts,
                 std::vector<LogicValue> seed)
      : circuit_(&circuit), fanouts_(&fanouts), val_(std::move(seed)) {}

  [[nodiscard]] bool consistent() const noexcept { return consistent_; }
  [[nodiscard]] const std::vector<LogicValue>& values() const noexcept {
    return val_;
  }

  // Asserts `id = value` and pushes implications to a fixpoint. Returns
  // false (and latches inconsistency) on contradiction.
  bool assume(NodeId id, LogicValue value) {
    assign(id, value);
    propagate();
    return consistent_;
  }

 private:
  void assign(NodeId id, LogicValue value) {
    if (value == LogicValue::kUnknown || !consistent_) return;
    if (val_[id] != LogicValue::kUnknown) {
      if (val_[id] != value) consistent_ = false;
      return;
    }
    val_[id] = value;
    queue_.push_back(id);
  }

  void propagate() {
    while (consistent_ && !queue_.empty()) {
      const NodeId id = queue_.front();
      queue_.pop_front();
      // Backward from the newly known net into its own fanins.
      backward(id);
      // Forward through every fanout: the new fact may force the fanout's
      // output, or — when the fanout output is already known — newly
      // enable one of its backward rules.
      for (const NodeId g : (*fanouts_)[id]) {
        const LogicValue forced =
            partial_eval(circuit_->type(g), *circuit_, g, val_);
        if (forced != LogicValue::kUnknown) assign(g, forced);
        if (val_[g] != LogicValue::kUnknown) backward(g);
        if (!consistent_) return;
      }
    }
  }

  // Controlling-value implications from a known gate output into its
  // fanins.
  void backward(NodeId id) {
    const LogicValue out = val_[id];
    if (out == LogicValue::kUnknown) return;
    const GateType type = circuit_->type(id);
    const auto fanins = circuit_->fanins(id);
    switch (type) {
      case GateType::kBuf:
        assign(fanins[0], out);
        break;
      case GateType::kNot:
        assign(fanins[0], negate(out));
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        // The output seen through an AND lens.
        const LogicValue and_out = type == GateType::kAnd ? out : negate(out);
        if (and_out == LogicValue::kOne) {
          for (const NodeId f : fanins) assign(f, LogicValue::kOne);
        } else {
          last_free_gets(fanins, LogicValue::kZero, LogicValue::kZero);
        }
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        const LogicValue or_out = type == GateType::kOr ? out : negate(out);
        if (or_out == LogicValue::kZero) {
          for (const NodeId f : fanins) assign(f, LogicValue::kZero);
        } else {
          last_free_gets(fanins, LogicValue::kOne, LogicValue::kOne);
        }
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        NodeId free = kInvalidNode;
        bool parity = out == LogicValue::kOne;
        if (type == GateType::kXnor) parity = !parity;
        for (const NodeId f : fanins) {
          if (val_[f] == LogicValue::kUnknown) {
            if (free != kInvalidNode) return;  // two unknowns: no implication
            free = f;
          } else {
            parity ^= val_[f] == LogicValue::kOne;
          }
        }
        if (free != kInvalidNode) assign(free, to_logic(parity));
        break;
      }
      case GateType::kMaj: {
        // MAJ(a,b,c) = v with one fanin at !v forces the other two to v.
        for (std::size_t i = 0; i < fanins.size(); ++i) {
          if (val_[fanins[i]] == negate(out)) {
            for (std::size_t j = 0; j < fanins.size(); ++j) {
              if (j != i) assign(fanins[j], out);
            }
            return;
          }
        }
        break;
      }
      default:
        break;
    }
  }

  // AND=0 / OR=1 style rule: when the satisfying value is nowhere among the
  // known fanins and exactly one fanin is free, that fanin must supply it.
  void last_free_gets(std::span<const NodeId> fanins, LogicValue satisfier,
                      LogicValue forced) {
    NodeId free = kInvalidNode;
    for (const NodeId f : fanins) {
      if (val_[f] == satisfier) return;  // already satisfied
      if (val_[f] == LogicValue::kUnknown) {
        if (free != kInvalidNode) return;  // more than one candidate
        free = f;
      }
    }
    if (free != kInvalidNode) assign(free, forced);
  }

  const Circuit* circuit_;
  const std::vector<std::vector<NodeId>>* fanouts_;
  std::vector<LogicValue> val_;
  std::deque<NodeId> queue_;
  bool consistent_ = true;
};

}  // namespace

ConstantFacts analyze_constants(const Circuit& circuit,
                                const StaticReasonOptions& options) {
  ConstantFacts facts;
  const std::size_t n = circuit.node_count();
  facts.forward.assign(n, LogicValue::kUnknown);

  // Tier one: forward propagation from constant gates. One topological scan
  // reaches the fixpoint because fanins always have lower ids.
  for (NodeId id = 0; id < n; ++id) {
    if (circuit.type(id) == GateType::kInput) continue;
    facts.forward[id] =
        partial_eval(circuit.type(id), circuit, id, facts.forward);
  }

  // Tier two: probe every still-unknown net at both values and learn from
  // contradictions and branch agreement, iterating until nothing new.
  facts.proved = facts.forward;
  const std::vector<std::vector<NodeId>> fanouts = fanout_lists(circuit);
  const auto learn = [&](NodeId id, LogicValue value) {
    ImplicationEnv env(circuit, fanouts, std::move(facts.proved));
    env.assume(id, value);
    // The circuit itself is consistent, so folding a proved fact back in
    // can never contradict; keep whatever the fixpoint derived with it.
    facts.proved = env.values();
    ++facts.learned;
  };
  for (int round = 0; round < options.max_probe_rounds; ++round) {
    bool changed = false;
    ++facts.probe_rounds;
    for (NodeId id = 0; id < n; ++id) {
      if (facts.proved[id] != LogicValue::kUnknown) continue;
      ImplicationEnv zero(circuit, fanouts, facts.proved);
      ImplicationEnv one(circuit, fanouts, facts.proved);
      const bool zero_ok = zero.assume(id, LogicValue::kZero);
      const bool one_ok = one.assume(id, LogicValue::kOne);
      facts.probes += 2;
      if (!zero_ok && !one_ok) continue;  // unreachable for a real circuit
      if (!zero_ok) {
        learn(id, LogicValue::kOne);
        changed = true;
        continue;
      }
      if (!one_ok) {
        learn(id, LogicValue::kZero);
        changed = true;
        continue;
      }
      // Values forced under both branches hold unconditionally.
      for (NodeId m = 0; m < n; ++m) {
        const LogicValue v = zero.values()[m];
        if (v != LogicValue::kUnknown && v == one.values()[m] &&
            facts.proved[m] == LogicValue::kUnknown) {
          learn(m, v);
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return facts;
}

// ---------------------------------------------------------------------------
// Structural hashing.
// ---------------------------------------------------------------------------

namespace {
constexpr std::uint32_t kNoNot = ~std::uint32_t{0};
}  // namespace

std::size_t StructuralHasher::KeyHash::operator()(
    const Key& key) const noexcept {
  std::uint64_t h = 0x9E3779B97F4A7C15ull ^ key.op;
  for (const std::uint32_t a : key.args) {
    h ^= a + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  }
  return static_cast<std::size_t>(h);
}

StructuralHasher::StructuralHasher(std::size_t num_inputs)
    : num_inputs_(num_inputs),
      next_id_(static_cast<std::uint32_t>(2 + num_inputs)) {
  not_arg_.assign(next_id_, kNoNot);
}

std::uint32_t StructuralHasher::input_id(std::size_t position) const {
  if (position >= num_inputs_) {
    throw std::invalid_argument("StructuralHasher: input position " +
                                std::to_string(position) + " out of range");
  }
  return static_cast<std::uint32_t>(2 + position);
}

std::uint32_t StructuralHasher::intern(GateType op,
                                       std::vector<std::uint32_t> args) {
  Key key{static_cast<std::uint8_t>(op), std::move(args)};
  const auto it = classes_.find(key);
  if (it != classes_.end()) return it->second;
  const std::uint32_t id = next_id_++;
  classes_.emplace(std::move(key), id);
  not_arg_.push_back(kNoNot);
  return id;
}

bool StructuralHasher::complements(std::uint32_t a, std::uint32_t b) const {
  return (a < not_arg_.size() && not_arg_[a] == b) ||
         (b < not_arg_.size() && not_arg_[b] == a);
}

std::uint32_t StructuralHasher::make_not(std::uint32_t arg) {
  if (arg == const_id(false)) return const_id(true);
  if (arg == const_id(true)) return const_id(false);
  if (not_arg_[arg] != kNoNot) return not_arg_[arg];  // NOT(NOT(x)) = x
  const auto it = not_cache_.find(arg);
  if (it != not_cache_.end()) return it->second;
  const std::uint32_t id = intern(GateType::kNot, {arg});
  not_arg_[id] = arg;
  not_cache_.emplace(arg, id);
  return id;
}

std::uint32_t StructuralHasher::make_and_or(GateType op,
                                            std::vector<std::uint32_t> args) {
  const std::uint32_t identity = const_id(op == GateType::kAnd);
  const std::uint32_t dominator = const_id(op != GateType::kAnd);
  std::vector<std::uint32_t> kept;
  kept.reserve(args.size());
  for (const std::uint32_t a : args) {
    if (a == dominator) return dominator;
    if (a != identity) kept.push_back(a);
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  for (std::size_t i = 0; i + 1 < kept.size(); ++i) {
    for (std::size_t j = i + 1; j < kept.size(); ++j) {
      if (complements(kept[i], kept[j])) return dominator;  // x op !x
    }
  }
  if (kept.empty()) return identity;
  if (kept.size() == 1) return kept[0];
  return intern(op, std::move(kept));
}

std::uint32_t StructuralHasher::make_xor(std::vector<std::uint32_t> args) {
  bool parity = false;
  std::vector<std::uint32_t> kept;
  kept.reserve(args.size());
  for (const std::uint32_t a : args) {
    if (a == const_id(true)) {
      parity = !parity;
    } else if (a == const_id(false)) {
      // identity
    } else if (not_arg_[a] != kNoNot) {
      // XOR(x, NOT(y)) = NOT(XOR(x, y)): hoist the negation into the parity
      // bit so complementary operands cancel like equal ones do.
      parity = !parity;
      kept.push_back(not_arg_[a]);
    } else {
      kept.push_back(a);
    }
  }
  std::sort(kept.begin(), kept.end());
  // XOR(x, x) cancels; after sorting, equal operands are adjacent.
  std::vector<std::uint32_t> reduced;
  for (std::size_t i = 0; i < kept.size();) {
    if (i + 1 < kept.size() && kept[i] == kept[i + 1]) {
      i += 2;
    } else {
      reduced.push_back(kept[i]);
      ++i;
    }
  }
  std::uint32_t id;
  if (reduced.empty()) {
    id = const_id(false);
  } else if (reduced.size() == 1) {
    id = reduced[0];
  } else {
    id = intern(GateType::kXor, std::move(reduced));
  }
  return parity ? make_not(id) : id;
}

std::uint32_t StructuralHasher::make_maj(std::uint32_t a, std::uint32_t b,
                                         std::uint32_t c) {
  // Fold constants into the 2-input reduction MAJ(1,b,c)=b|c, MAJ(0,b,c)=b&c.
  const auto fold = [&](std::uint32_t k, std::uint32_t x,
                        std::uint32_t y) -> std::uint32_t {
    return make_and_or(k == const_id(true) ? GateType::kOr : GateType::kAnd,
                       {x, y});
  };
  if (a <= const_id(true)) return fold(a, b, c);
  if (b <= const_id(true)) return fold(b, a, c);
  if (c <= const_id(true)) return fold(c, a, b);
  // A duplicated operand wins the vote; a complementary pair cancels.
  if (a == b || a == c) return a;
  if (b == c) return b;
  if (complements(a, b)) return c;
  if (complements(a, c)) return b;
  if (complements(b, c)) return a;
  std::vector<std::uint32_t> args{a, b, c};
  std::sort(args.begin(), args.end());
  return intern(GateType::kMaj, std::move(args));
}

std::vector<std::uint32_t> StructuralHasher::hash_circuit(
    const Circuit& circuit, const std::vector<LogicValue>* constants) {
  if (circuit.num_inputs() > num_inputs_) {
    throw std::invalid_argument(
        "StructuralHasher: circuit has " +
        std::to_string(circuit.num_inputs()) + " inputs, hasher sized for " +
        std::to_string(num_inputs_));
  }
  std::vector<std::uint32_t> ids(circuit.node_count());
  std::vector<std::uint32_t> args;
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    if (constants != nullptr && (*constants)[id] != LogicValue::kUnknown) {
      ids[id] = const_id((*constants)[id] == LogicValue::kOne);
      continue;
    }
    const GateType type = circuit.type(id);
    args.clear();
    for (const NodeId f : circuit.fanins(id)) args.push_back(ids[f]);
    switch (type) {
      case GateType::kInput:
        ids[id] = input_id(static_cast<std::size_t>(circuit.input_index(id)));
        break;
      case GateType::kConst0:
        ids[id] = const_id(false);
        break;
      case GateType::kConst1:
        ids[id] = const_id(true);
        break;
      case GateType::kBuf:
        ids[id] = args[0];
        break;
      case GateType::kNot:
        ids[id] = make_not(args[0]);
        break;
      case GateType::kAnd:
        ids[id] = make_and_or(GateType::kAnd, {args.begin(), args.end()});
        break;
      case GateType::kNand:
        ids[id] =
            make_not(make_and_or(GateType::kAnd, {args.begin(), args.end()}));
        break;
      case GateType::kOr:
        ids[id] = make_and_or(GateType::kOr, {args.begin(), args.end()});
        break;
      case GateType::kNor:
        ids[id] =
            make_not(make_and_or(GateType::kOr, {args.begin(), args.end()}));
        break;
      case GateType::kXor:
        ids[id] = make_xor({args.begin(), args.end()});
        break;
      case GateType::kXnor:
        ids[id] = make_not(make_xor({args.begin(), args.end()}));
        break;
      case GateType::kMaj:
        ids[id] = make_maj(args[0], args[1], args[2]);
        break;
    }
  }
  return ids;
}

// ---------------------------------------------------------------------------
// Combinational equivalence checking.
// ---------------------------------------------------------------------------

namespace {

// Builds BDDs only for the cones of the listed output positions — the BDD
// stage usually runs on a handful of leftover pairs, and restricting to
// their fanin keeps the node budget for the cones that matter.
std::vector<bdd::Ref> cone_output_bdds(bdd::Bdd& manager,
                                       const Circuit& circuit,
                                       const std::vector<std::size_t>& pairs) {
  std::vector<NodeId> roots;
  roots.reserve(pairs.size());
  for (const std::size_t o : pairs) roots.push_back(circuit.outputs()[o]);
  const std::vector<bool> needed = netlist::transitive_fanin(circuit, roots);
  std::vector<bdd::Ref> refs(circuit.node_count(), bdd::Bdd::kFalse);
  std::vector<bdd::Ref> fanin_refs;
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    if (!needed[id]) continue;
    const GateType type = circuit.type(id);
    fanin_refs.clear();
    for (const NodeId f : circuit.fanins(id)) fanin_refs.push_back(refs[f]);
    switch (type) {
      case GateType::kInput:
        refs[id] = manager.var_ref(
            static_cast<unsigned>(circuit.input_index(id)));
        break;
      case GateType::kConst0:
        refs[id] = bdd::Bdd::kFalse;
        break;
      case GateType::kConst1:
        refs[id] = bdd::Bdd::kTrue;
        break;
      case GateType::kBuf:
        refs[id] = fanin_refs[0];
        break;
      case GateType::kNot:
        refs[id] = manager.apply_not(fanin_refs[0]);
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        bdd::Ref acc = bdd::Bdd::kTrue;
        for (const bdd::Ref f : fanin_refs) acc = manager.apply_and(acc, f);
        refs[id] = type == GateType::kAnd ? acc : manager.apply_not(acc);
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        bdd::Ref acc = bdd::Bdd::kFalse;
        for (const bdd::Ref f : fanin_refs) acc = manager.apply_or(acc, f);
        refs[id] = type == GateType::kOr ? acc : manager.apply_not(acc);
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        bdd::Ref acc = bdd::Bdd::kFalse;
        for (const bdd::Ref f : fanin_refs) acc = manager.apply_xor(acc, f);
        refs[id] = type == GateType::kXor ? acc : manager.apply_not(acc);
        break;
      }
      case GateType::kMaj:
        refs[id] =
            manager.apply_maj(fanin_refs[0], fanin_refs[1], fanin_refs[2]);
        break;
    }
  }
  std::vector<bdd::Ref> out;
  out.reserve(pairs.size());
  for (const std::size_t o : pairs) out.push_back(refs[circuit.outputs()[o]]);
  return out;
}

std::string output_label(const Circuit& circuit, std::size_t position) {
  const std::string name = circuit.output_name(position);
  return name.empty() ? "#" + std::to_string(position) : name;
}

}  // namespace

CecResult check_equivalence(const Circuit& a, const Circuit& b,
                            const CecOptions& options) {
  if (a.num_inputs() != b.num_inputs() ||
      a.num_outputs() != b.num_outputs()) {
    throw std::invalid_argument(
        "cec: interface mismatch: " + std::to_string(a.num_inputs()) + "i/" +
        std::to_string(a.num_outputs()) + "o vs " +
        std::to_string(b.num_inputs()) + "i/" +
        std::to_string(b.num_outputs()) + "o");
  }
  if (options.signature_words < 1) {
    throw std::invalid_argument("cec: signature_words must be >= 1");
  }
  CecResult result;
  result.outputs = a.num_outputs();
  result.signature_words = static_cast<std::uint64_t>(options.signature_words);
  if (a.num_outputs() == 0) {
    result.equivalent = true;
    return result;
  }

  // Stage 1: random-simulation signatures. 64 patterns per word, drawn from
  // counter-based streams so the refutation (and the named first mismatch)
  // is a pure function of the seed.
  std::vector<bool> refuted(a.num_outputs(), false);
  {
    sim::LogicSim sim_a(a);
    sim::LogicSim sim_b(b);
    std::vector<sim::Word> inputs(a.num_inputs());
    for (int w = 0; w < options.signature_words; ++w) {
      const std::uint64_t word_seed =
          exec::stream_seed(options.seed, static_cast<std::uint64_t>(w));
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        inputs[i] = exec::stream_seed(word_seed, i);
      }
      sim_a.eval(inputs);
      sim_b.eval(inputs);
      const std::vector<sim::Word> out_a = sim_a.output_values();
      const std::vector<sim::Word> out_b = sim_b.output_values();
      for (std::size_t o = 0; o < out_a.size(); ++o) {
        if (!refuted[o] && out_a[o] != out_b[o]) {
          refuted[o] = true;
          ++result.refuted;
          if (result.first_mismatch_output.empty()) {
            result.first_mismatch_output = output_label(a, o);
          }
        }
      }
    }
  }

  std::vector<std::size_t> open;
  for (std::size_t o = 0; o < a.num_outputs(); ++o) {
    if (!refuted[o]) open.push_back(o);
  }

  // Stage 2: structural discharge. Both circuits hash into one shared
  // hasher (with their own proved constants folded), so equal canonical ids
  // across circuits prove equal functions.
  if (!open.empty()) {
    const ConstantFacts facts_a = analyze_constants(a);
    const ConstantFacts facts_b = analyze_constants(b);
    StructuralHasher hasher(a.num_inputs());
    const std::vector<std::uint32_t> ids_a =
        hasher.hash_circuit(a, &facts_a.proved);
    const std::vector<std::uint32_t> ids_b =
        hasher.hash_circuit(b, &facts_b.proved);
    std::vector<std::size_t> still_open;
    for (const std::size_t o : open) {
      if (ids_a[a.outputs()[o]] == ids_b[b.outputs()[o]]) {
        ++result.proved_structural;
      } else {
        still_open.push_back(o);
      }
    }
    open = std::move(still_open);
  }

  // Stage 3: the BDD engine. One shared manager maps input position i of
  // both circuits to variable i; canonicity makes Ref equality the exact
  // verdict. A node-budget blowout means "no verdict", never "different".
  if (!open.empty()) {
    try {
      bdd::Bdd manager(static_cast<unsigned>(a.num_inputs()),
                       options.bdd_node_limit);
      const std::vector<bdd::Ref> refs_a = cone_output_bdds(manager, a, open);
      const std::vector<bdd::Ref> refs_b = cone_output_bdds(manager, b, open);
      for (std::size_t i = 0; i < open.size(); ++i) {
        if (refs_a[i] == refs_b[i]) {
          ++result.proved_bdd;
        } else {
          ++result.refuted;
          if (result.first_mismatch_output.empty()) {
            result.first_mismatch_output = output_label(a, open[i]);
          }
        }
      }
    } catch (const bdd::BddLimitExceeded&) {
      result.inconclusive = true;
    }
  }

  result.equivalent = result.refuted == 0 && !result.inconclusive;
  return result;
}

}  // namespace enb::analysis
