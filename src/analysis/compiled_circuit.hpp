// CompiledCircuit: the shared, immutable circuit handle of the analysis
// layer.
//
// The paper's workflow is "one circuit, many analyses": a design's profile
// (s, S0, sw0, k, d0) feeds the Theorem 1-4 bounds at many (eps, delta)
// points, its stats feed reports, and the mapped variant feeds the Section 6
// benchmark flow. CompiledCircuit amortizes the design-derived artifacts
// once: it wraps a netlist::Circuit (taken by move — compiling never copies)
// behind a shared_ptr and computes stats, levels, fanout counts, extracted
// profiles and mapped variants lazily, caching each on first use.
//
// Contract:
//   - Handles are cheap value types (one shared_ptr); copying a handle never
//     copies the netlist, and every copy observes the same caches.
//   - The wrapped circuit is immutable for the life of the handle; cached
//     artifacts are therefore valid forever.
//   - All accessors are thread-safe; concurrent first calls compute an
//     artifact exactly once.
//   - Profiles are cached per ProfileKey (the value-relevant fields of
//     core::ProfileOptions — the deprecated threads knob never changes the
//     result, so it is not part of the key).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/profile.hpp"
#include "exec/thread_pool.hpp"
#include "netlist/circuit.hpp"
#include "netlist/stats.hpp"

namespace enb::analysis {

// The fields of core::ProfileOptions that determine the extracted profile's
// value. Two option sets with equal keys share one cached extraction per
// CompiledCircuit.
struct ProfileKey {
  std::size_t activity_pairs = 0;
  bool prefer_exact_activity = false;
  int exact_activity_max_inputs = 0;
  int sensitivity_exact_max_inputs = 0;
  std::uint64_t sensitivity_sample_words = 0;
  std::uint64_t seed = 0;

  friend bool operator==(const ProfileKey&, const ProfileKey&) = default;
};

[[nodiscard]] ProfileKey profile_key(
    const core::ProfileOptions& options) noexcept;

class CompiledCircuit {
 public:
  // Empty handle; valid() is false and every accessor throws
  // std::logic_error. Assign a compile() result to use it.
  CompiledCircuit() = default;

  [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }
  explicit operator bool() const noexcept { return valid(); }

  [[nodiscard]] const netlist::Circuit& circuit() const;
  [[nodiscard]] const std::string& name() const;

  // ---- cached derived artifacts ----

  [[nodiscard]] const netlist::CircuitStats& stats() const;
  // Per-node logic level (netlist::levels).
  [[nodiscard]] const std::vector<int>& levels() const;
  // Per-node fanout edge count (netlist::fanout_counts).
  [[nodiscard]] const std::vector<int>& fanout_counts() const;

  // The (s, S0, sw0, k, d0) profile, extracted on first use and cached per
  // ProfileKey. `how` only controls the parallelism of a cache miss; the
  // cached value is bit-identical for any choice. The reference stays valid
  // for the life of the handle.
  [[nodiscard]] const core::CircuitProfile& profile(
      const core::ProfileOptions& options = {},
      exec::Parallelism how = {}) const;

  // Peek at the cache without computing.
  [[nodiscard]] std::optional<core::CircuitProfile> cached_profile(
      const core::ProfileOptions& options) const;

  // Cache-fill path for engines that extract profiles through their own
  // (sharded) schedule — exec::BatchEvaluator's extraction groups. `profile`
  // must be the bit-identical value core::extract_profile would produce for
  // `options`; ordinary callers should use profile() instead. Counts as one
  // extraction. A pre-existing entry for the key wins (the values are equal
  // by contract).
  void store_profile(const core::ProfileOptions& options,
                     core::CircuitProfile profile) const;

  // Number of profile extractions this handle has performed (lazy computes
  // plus store_profile fills). The cache-sharing tests pin this to 1 for a
  // whole sweep.
  [[nodiscard]] std::uint64_t profile_extractions() const;

  // The circuit mapped to the generic max-fanin-K library, compiled and
  // cached per K. Mapping verifies equivalence (map_to_library) on the first
  // call only.
  [[nodiscard]] CompiledCircuit mapped(int max_fanin = 3) const;

  // ---- identity ----

  // 64-bit FNV-1a over the circuit's canonical .bench serialization: a
  // *content* identity, unlike key(), so it survives dropping and
  // recompiling the handle (the server's result cache stays warm across
  // registry evictions). Computed on first use and cached.
  [[nodiscard]] std::uint64_t content_fingerprint() const;

  // True when both handles share one compiled circuit (and therefore one
  // artifact cache).
  [[nodiscard]] bool same_handle(const CompiledCircuit& other) const noexcept {
    return impl_ == other.impl_;
  }
  // Stable identity token (the engines' grouping key); null for an empty
  // handle.
  [[nodiscard]] const void* key() const noexcept { return impl_.get(); }

 private:
  struct Impl;
  explicit CompiledCircuit(std::shared_ptr<Impl> impl)
      : impl_(std::move(impl)) {}

  [[nodiscard]] Impl& checked() const;

  std::shared_ptr<Impl> impl_;

  friend CompiledCircuit compile(netlist::Circuit circuit);
};

// The only way to make a handle: takes ownership of `circuit` (move it in —
// compiling itself never copies a netlist).
[[nodiscard]] CompiledCircuit compile(netlist::Circuit circuit);

}  // namespace enb::analysis
