#include "analysis/lint.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <optional>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/static_reason.hpp"
#include "fault/untestable.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/topo.hpp"

namespace enb::analysis {

const char* to_string(LintSeverity severity) noexcept {
  switch (severity) {
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "error";
}

const char* to_string(LintRule rule) noexcept {
  switch (rule) {
    case LintRule::kSyntax:
      return "syntax";
    case LintRule::kCycle:
      return "cycle";
    case LintRule::kUndrivenNet:
      return "undriven-net";
    case LintRule::kMultiDrivenNet:
      return "multi-driven-net";
    case LintRule::kZeroFaninGate:
      return "zero-fanin-gate";
    case LintRule::kDuplicateName:
      return "duplicate-name";
    case LintRule::kNoOutputs:
      return "no-outputs";
    case LintRule::kVoterReplicas:
      return "voter-replicas";
    case LintRule::kFloatingOutput:
      return "floating-output";
    case LintRule::kUnreachable:
      return "unreachable";
    case LintRule::kUnusedInput:
      return "unused-input";
    case LintRule::kExhaustiveCap:
      return "exhaustive-cap";
    case LintRule::kConstantNet:
      return "constant-net";
    case LintRule::kRedundantGate:
      return "redundant-gate";
    case LintRule::kUntestableFault:
      return "untestable-fault";
  }
  return "syntax";
}

std::size_t LintReport::errors() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const LintDiagnostic& d) {
                      return d.severity == LintSeverity::kError;
                    }));
}

std::size_t LintReport::warnings() const noexcept {
  return diagnostics.size() - errors();
}

namespace {

void add(std::vector<LintDiagnostic>& out, LintSeverity severity,
         LintRule rule, std::string site, std::string message) {
  out.push_back(LintDiagnostic{severity, rule, std::move(site),
                               std::move(message)});
}

std::string circuit_site(const netlist::Circuit& circuit) {
  return circuit.name().empty() ? "circuit" : circuit.name();
}

}  // namespace

// ---- circuit-level rules ---------------------------------------------------

LintReport lint_circuit(const netlist::Circuit& circuit,
                        const LintOptions& options) {
  LintReport report;
  report.nodes = circuit.node_count();
  std::vector<LintDiagnostic> errors;
  std::vector<LintDiagnostic> warnings;

  if (circuit.num_outputs() == 0) {
    add(errors, LintSeverity::kError, LintRule::kNoOutputs,
        circuit_site(circuit),
        "circuit has no primary outputs; every analysis cone is empty");
  }

  std::vector<bool> is_output(circuit.node_count(), false);
  for (const netlist::NodeId id : circuit.outputs()) is_output[id] = true;

  // Duplicate names: explicit names can collide with each other or with a
  // synthesized "n<id>", making .bench round-trips and fault-site reports
  // ambiguous.
  std::map<std::string, netlist::NodeId> first_by_name;
  std::set<std::string> reported_names;
  for (netlist::NodeId id = 0; id < circuit.node_count(); ++id) {
    const std::string name = circuit.node_name(id);
    const auto [it, inserted] = first_by_name.emplace(name, id);
    if (!inserted && reported_names.insert(name).second) {
      add(errors, LintSeverity::kError, LintRule::kDuplicateName, name,
          "net name '" + name + "' refers to both node " +
              std::to_string(it->second) + " and node " + std::to_string(id));
    }
  }

  // A MAJ voter whose fanins are not distinct does not vote over independent
  // replicas: a duplicated driver holds a guaranteed majority, so the
  // redundancy analysis would credit masking the structure cannot deliver.
  // A warning, not an error: multiplex restorative stages legitimately wire
  // one bundle wire into several voter slots (the bundle is the replica
  // set), so structure alone cannot prove a defect. allow_voter_replicas
  // silences the rule for those variants.
  if (!options.allow_voter_replicas) {
    for (netlist::NodeId id = 0; id < circuit.node_count(); ++id) {
      if (circuit.type(id) != netlist::GateType::kMaj) continue;
      const std::span<const netlist::NodeId> fanins = circuit.fanins(id);
      const std::set<netlist::NodeId> distinct(fanins.begin(), fanins.end());
      if (distinct.size() < fanins.size()) {
        add(warnings, LintSeverity::kWarning, LintRule::kVoterReplicas,
            circuit.node_name(id),
            "majority voter '" + circuit.node_name(id) + "' has only " +
                std::to_string(distinct.size()) + " distinct driver(s) for " +
                std::to_string(fanins.size()) +
                " fanins; the duplicated replica always wins the vote");
      }
    }
  }

  const std::vector<int> fanout = netlist::fanout_counts(circuit);
  const std::vector<bool> reachable = netlist::reachable_from_outputs(circuit);
  for (netlist::NodeId id = 0; id < circuit.node_count(); ++id) {
    const netlist::GateType type = circuit.type(id);
    const std::string name = circuit.node_name(id);
    if (netlist::counts_as_gate(type)) {
      if (fanout[id] == 0 && !is_output[id]) {
        add(warnings, LintSeverity::kWarning, LintRule::kFloatingOutput, name,
            "gate '" + name +
                "' drives nothing and is not a primary output; it still "
                "counts toward S0 and switching energy");
      } else if (!reachable[id]) {
        add(warnings, LintSeverity::kWarning, LintRule::kUnreachable, name,
            "gate '" + name +
                "' is outside every primary-output cone (dead logic)");
      }
    } else if (netlist::is_input(type) && fanout[id] == 0 && !is_output[id]) {
      add(warnings, LintSeverity::kWarning, LintRule::kUnusedInput, name,
          "primary input '" + name + "' feeds no gate and no output");
    }
  }

  // Semantic rules, backed by proofs instead of syntax. Constant nets come
  // from the implication engine's fixpoint (probing included: a probe-learned
  // constant is a sound statement about the fault-free circuit, which is all
  // the linter speaks about). Redundant gates come from structural hashing
  // with those constants folded in. Untestable faults come from the
  // tier-one-only prover in fault/untestable.hpp.
  const ConstantFacts facts = analyze_constants(circuit);
  for (netlist::NodeId id = 0; id < circuit.node_count(); ++id) {
    if (!netlist::counts_as_gate(circuit.type(id))) continue;
    if (facts.proved[id] == LogicValue::kUnknown) continue;
    const char* value = facts.proved[id] == LogicValue::kOne ? "1" : "0";
    add(warnings, LintSeverity::kWarning, LintRule::kConstantNet,
        circuit.node_name(id),
        "gate '" + circuit.node_name(id) + "' evaluates to " + value +
            " under every input assignment; fold it to a constant");
  }

  {
    StructuralHasher hasher(circuit.num_inputs());
    const std::vector<std::uint32_t> values =
        hasher.hash_circuit(circuit, &facts.proved);
    std::vector<netlist::NodeId> first_node(hasher.num_values(),
                                            netlist::kInvalidNode);
    for (netlist::NodeId id = 0; id < circuit.node_count(); ++id) {
      const netlist::NodeId earlier = first_node[values[id]];
      if (earlier == netlist::kInvalidNode) {
        first_node[values[id]] = id;
        continue;
      }
      // Buffers exist to alias nets and constants are constant-net's
      // business; warn only on gates recomputing earlier logic.
      if (!netlist::counts_as_gate(circuit.type(id))) continue;
      if (circuit.type(id) == netlist::GateType::kBuf) continue;
      if (facts.proved[id] != LogicValue::kUnknown) continue;
      add(warnings, LintSeverity::kWarning, LintRule::kRedundantGate,
          circuit.node_name(id),
          "gate '" + circuit.node_name(id) +
              "' computes the same function as net '" +
              circuit.node_name(earlier) + "'; the gates can be merged");
    }
  }

  if (circuit.num_outputs() > 0) {
    const fault::FaultUniverse universe = fault::FaultUniverse::build(circuit);
    const fault::UntestableReport untestable =
        fault::find_untestable(circuit, universe);
    if (untestable.untestable_classes > 0) {
      add(warnings, LintSeverity::kWarning, LintRule::kUntestableFault,
          circuit_site(circuit),
          std::to_string(untestable.untestable_classes) + " of " +
              std::to_string(universe.num_classes()) +
              " stuck-at classes are statically untestable (" +
              std::to_string(untestable.constant_nets) + " constant, " +
              std::to_string(untestable.dead_nets) + " dead, " +
              std::to_string(untestable.blocked_nets) +
              " blocked net(s)); campaigns can prune them with "
              "prune_untestable");
    }
  }

  if (options.exhaustive_cap >= 0 &&
      circuit.num_inputs() >
          static_cast<std::size_t>(options.exhaustive_cap)) {
    add(warnings, LintSeverity::kWarning, LintRule::kExhaustiveCap,
        circuit_site(circuit),
        "circuit has " + std::to_string(circuit.num_inputs()) +
            " inputs; exhaustive fault campaigns throw ExhaustiveCapError "
            "above " +
            std::to_string(options.exhaustive_cap) +
            " (use a sampled universe)");
  }

  report.diagnostics = std::move(errors);
  report.diagnostics.insert(report.diagnostics.end(),
                            std::make_move_iterator(warnings.begin()),
                            std::make_move_iterator(warnings.end()));
  return report;
}

// ---- source-level rules ----------------------------------------------------

namespace {

// Mirrors the bench_io dialect: '#' comments, names over [alnum _ . [ ] $ /],
// INPUT(x) / OUTPUT(x) declarations and `lhs = FUNC(a, b)` definitions — but
// never throws; anything the strict reader would reject becomes a diagnostic.

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '.' || c == '[' || c == ']' || c == '$' || c == '/';
}

std::string_view strip(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())) != 0) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back())) != 0) {
    text.remove_suffix(1);
  }
  return text;
}

bool equals_ignore_case(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

struct Call {
  std::string_view head;
  std::vector<std::string_view> args;
};

// Parses `HEAD(a, b, ...)`; returns nullopt on malformed shape.
std::optional<Call> parse_call(std::string_view text) {
  const std::size_t open = text.find('(');
  if (open == std::string_view::npos || text.back() != ')') return std::nullopt;
  Call call;
  call.head = strip(text.substr(0, open));
  if (call.head.empty()) return std::nullopt;
  for (const char c : call.head) {
    if (!is_name_char(c)) return std::nullopt;
  }
  std::string_view args = text.substr(open + 1, text.size() - open - 2);
  if (strip(args).empty()) return call;  // e.g. CONST0()
  while (true) {
    const std::size_t comma = args.find(',');
    const std::string_view arg =
        strip(comma == std::string_view::npos ? args : args.substr(0, comma));
    if (arg.empty()) return std::nullopt;
    for (const char c : arg) {
      if (!is_name_char(c)) return std::nullopt;
    }
    call.args.push_back(arg);
    if (comma == std::string_view::npos) break;
    args.remove_prefix(comma + 1);
  }
  return call;
}

struct SourceScan {
  // Net -> line of its first driver (INPUT declaration or definition).
  std::map<std::string, int> driven_at;
  // Gate definitions in file order, for cycle detection.
  std::map<std::string, std::vector<std::string>> gate_fanins;
  // Net -> line of first use (fanin or OUTPUT listing) with no driver seen
  // anywhere in the file.
  std::map<std::string, int> first_use;
  std::vector<LintDiagnostic> errors;
};

void note_use(SourceScan& scan, std::string_view net, int line) {
  scan.first_use.emplace(std::string(net), line);
}

void note_driver(SourceScan& scan, std::string_view net, int line) {
  const auto [it, inserted] = scan.driven_at.emplace(std::string(net), line);
  if (!inserted) {
    add(scan.errors, LintSeverity::kError, LintRule::kMultiDrivenNet,
        std::string(net),
        "net '" + std::string(net) + "' is driven on line " +
            std::to_string(line) + " and on line " +
            std::to_string(it->second));
  }
}

void scan_line(SourceScan& scan, std::string_view line, int number) {
  const auto syntax = [&](std::string message) {
    add(scan.errors, LintSeverity::kError, LintRule::kSyntax,
        "line " + std::to_string(number), std::move(message));
  };

  const std::size_t eq = line.find('=');
  if (eq == std::string_view::npos) {
    const std::optional<Call> call = parse_call(line);
    if (!call || call->args.size() != 1) {
      syntax("expected INPUT(name), OUTPUT(name), or 'net = GATE(...)': '" +
             std::string(line) + "'");
      return;
    }
    const std::optional<netlist::GateType> head =
        netlist::gate_type_from_string(call->head);
    if (head == netlist::GateType::kInput) {
      note_driver(scan, call->args[0], number);
    } else if (equals_ignore_case(call->head, "OUTPUT")) {
      note_use(scan, call->args[0], number);
    } else {
      syntax("unknown declaration '" + std::string(call->head) +
             "' (expected INPUT or OUTPUT)");
    }
    return;
  }

  const std::string_view lhs = strip(line.substr(0, eq));
  if (lhs.empty() ||
      !std::all_of(lhs.begin(), lhs.end(),
                   [](char c) { return is_name_char(c); })) {
    syntax("malformed net name before '=': '" + std::string(line) + "'");
    return;
  }
  const std::optional<Call> call = parse_call(strip(line.substr(eq + 1)));
  if (!call) {
    syntax("malformed gate call after '=': '" + std::string(line) + "'");
    return;
  }
  const std::optional<netlist::GateType> type =
      netlist::gate_type_from_string(call->head);
  if (!type || *type == netlist::GateType::kInput) {
    syntax("unknown gate type '" + std::string(call->head) +
           "' (sequential elements are not supported)");
    return;
  }
  note_driver(scan, lhs, number);
  const netlist::ArityRange arity = netlist::arity_range(*type);
  if (call->args.empty() && arity.min > 0) {
    add(scan.errors, LintSeverity::kError, LintRule::kZeroFaninGate,
        std::string(lhs),
        "gate '" + std::string(lhs) + "' (" + std::string(call->head) +
            ") has no fanins; " + std::string(netlist::to_string(*type)) +
            " needs at least " + std::to_string(arity.min));
  }
  std::vector<std::string> fanins;
  fanins.reserve(call->args.size());
  for (const std::string_view arg : call->args) {
    note_use(scan, arg, number);
    fanins.emplace_back(arg);
  }
  scan.gate_fanins.emplace(std::string(lhs), std::move(fanins));
}

// Depth-first search over the gate-definition graph; reports each back edge
// as one cycle diagnostic carrying the full "a -> b -> a" path.
void find_cycles(const SourceScan& scan,
                 std::vector<LintDiagnostic>& errors) {
  enum class Visit : std::uint8_t { kFresh, kActive, kDone };
  std::map<std::string, Visit> state;
  std::vector<std::string> path;

  const std::function<void(const std::string&)> visit =
      [&](const std::string& net) {
        state[net] = Visit::kActive;
        path.push_back(net);
        const auto it = scan.gate_fanins.find(net);
        if (it != scan.gate_fanins.end()) {
          for (const std::string& fanin : it->second) {
            const auto seen = state.find(fanin);
            const Visit mark =
                seen == state.end() ? Visit::kFresh : seen->second;
            if (mark == Visit::kFresh) {
              visit(fanin);
            } else if (mark == Visit::kActive) {
              std::string rendered;
              for (auto at = std::find(path.begin(), path.end(), fanin);
                   at != path.end(); ++at) {
                rendered += *at;
                rendered += " -> ";
              }
              rendered += fanin;
              add(errors, LintSeverity::kError, LintRule::kCycle, fanin,
                  "combinational cycle: " + rendered);
            }
          }
        }
        path.pop_back();
        state[net] = Visit::kDone;
      };

  for (const auto& [net, fanins] : scan.gate_fanins) {
    (void)fanins;
    if (const auto it = state.find(net);
        it == state.end() || it->second == Visit::kFresh) {
      visit(net);
    }
  }
}

}  // namespace

LintReport lint_bench_text(const std::string& text, const std::string& name,
                           const LintOptions& options) {
  SourceScan scan;
  std::istringstream in(text);
  std::string raw;
  for (int number = 1; std::getline(in, raw); ++number) {
    std::string_view line(raw);
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = strip(line);
    if (line.empty()) continue;
    scan_line(scan, line, number);
  }

  for (const auto& [net, line] : scan.first_use) {
    if (scan.driven_at.contains(net)) continue;
    add(scan.errors, LintSeverity::kError, LintRule::kUndrivenNet, net,
        "net '" + net + "' is used on line " + std::to_string(line) +
            " but never driven (no INPUT declaration or gate definition)");
  }
  find_cycles(scan, scan.errors);

  if (!scan.errors.empty()) {
    LintReport report;
    report.diagnostics = std::move(scan.errors);
    return report;
  }

  // Source-clean: build the netlist and run the circuit rules. Residual
  // build failures (e.g. an arity the lenient scan does not model) surface
  // as syntax diagnostics instead of exceptions.
  try {
    const netlist::Circuit circuit = netlist::read_bench_string(text, name);
    return lint_circuit(circuit, options);
  } catch (const std::exception& error) {
    LintReport report;
    add(report.diagnostics, LintSeverity::kError, LintRule::kSyntax, name,
        error.what());
    return report;
  }
}

void write_lint_text(std::ostream& out, const LintReport& report) {
  for (const LintDiagnostic& d : report.diagnostics) {
    out << to_string(d.severity) << '[' << to_string(d.rule) << "] " << d.site
        << ": " << d.message << '\n';
  }
  out << report.errors() << " errors, " << report.warnings() << " warnings\n";
}

}  // namespace enb::analysis
