// Structural netlist linter.
//
// The paper's pipeline (and every engine in this repo) assumes structurally
// well-formed combinational netlists; gen/ builders, hand-written .bench
// files, and ft/ transforms can silently produce dead logic, dangling
// nets, or redundancy schemes that do not actually vote. The linter is the
// static-analysis pass that surfaces those defects as typed diagnostics
// before they show up as wrong coverage numbers deep inside a campaign.
//
// Two entry points:
//   lint_circuit     — rules over a built netlist::Circuit. The IR is
//                      append-only (fanins must exist, so cycles and
//                      undriven nets are unrepresentable), which leaves the
//                      reachability/fanout/redundancy rules.
//   lint_bench_text  — rules over raw .bench source, where the defects the
//                      IR cannot represent live: combinational cycles (with
//                      the cycle path), undriven and multi-driven nets,
//                      zero-fanin gates, unparseable lines. When the source
//                      is clean enough to build, the circuit rules run too.
//
// Severity: kError marks netlists the engines would mis-analyze or reject
// (cycles, undriven/multi-driven nets, no outputs); kWarning marks
// legal-but-suspect structure (dead logic, unused inputs, starved voters,
// inputs past the exhaustive-campaign cap). gen/'s suite circuits lint with
// zero errors; scale-suite circuits legitimately warn about the exhaustive
// cap.
//
// Beyond the structural rules, three semantic rules are backed by proofs
// from the static reasoning engine (analysis/static_reason.hpp) and the
// untestability prover (fault/untestable.hpp) rather than syntax:
//   constant-net     — a gate net proved to hold the same value under every
//                      input assignment (implication fixpoint + probing).
//   redundant-gate   — a gate whose canonical strash value was already
//                      computed by an earlier net; the diagnostic names it.
//   untestable-fault — summary warning when the circuit carries stuck-at
//                      classes no pattern can ever detect (prune them with
//                      faultsim --prune-untestable).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "netlist/circuit.hpp"

namespace enb::analysis {

enum class LintSeverity : std::uint8_t { kWarning, kError };

[[nodiscard]] const char* to_string(LintSeverity severity) noexcept;

enum class LintRule : std::uint8_t {
  kSyntax,          // unparseable .bench line
  kCycle,           // combinational cycle (message carries the path)
  kUndrivenNet,     // net used but never defined or declared INPUT
  kMultiDrivenNet,  // net defined more than once (or INPUT + definition)
  kZeroFaninGate,   // gate call with no operands where the type needs some
  kDuplicateName,   // two nodes share one net name
  kNoOutputs,       // circuit has no primary outputs
  kVoterReplicas,   // MAJ voter fed by fewer distinct drivers than fanins
  kFloatingOutput,  // gate output feeding nothing and not a primary output
  kUnreachable,     // live-looking gate outside every primary-output cone
  kUnusedInput,     // primary input feeding nothing and not an output
  kExhaustiveCap,   // inputs exceed fault::kMaxExhaustiveCampaignInputs
  kConstantNet,     // gate net proved constant by the implication engine
  kRedundantGate,   // gate strash-equivalent to an earlier net
  kUntestableFault, // stuck-at classes proved statically untestable
};

// Stable kebab-case rule id ("undriven-net") for CLI/JSON output and tests.
[[nodiscard]] const char* to_string(LintRule rule) noexcept;

struct LintDiagnostic {
  LintSeverity severity = LintSeverity::kError;
  LintRule rule = LintRule::kSyntax;
  // The net/gate name the finding anchors to ("line N" for syntax errors).
  std::string site;
  std::string message;

  friend bool operator==(const LintDiagnostic&,
                         const LintDiagnostic&) = default;
};

struct LintOptions {
  // Logical-input count above which exhaustive fault campaigns throw
  // ExhaustiveCapError; the linter warns at the same threshold.
  int exhaustive_cap = fault::kMaxExhaustiveCampaignInputs;
  // Suppress the voter-replicas warning entirely. Multiplex restorative
  // stages legitimately route one bundle wire into several voter slots, so
  // ft/ multiplexing variants set this to lint clean.
  bool allow_voter_replicas = false;

  friend bool operator==(const LintOptions&, const LintOptions&) = default;
};

struct LintReport {
  std::vector<LintDiagnostic> diagnostics;
  // Nodes inspected; 0 when source-level errors prevented building the
  // circuit at all.
  std::uint64_t nodes = 0;

  [[nodiscard]] std::size_t errors() const noexcept;
  [[nodiscard]] std::size_t warnings() const noexcept;
  [[nodiscard]] bool clean() const noexcept { return errors() == 0; }

  friend bool operator==(const LintReport&, const LintReport&) = default;
};

// Lints a built circuit (see the rule list above; source-only rules cannot
// fire here). Diagnostics are ordered errors first, then warnings, each
// group in discovery (node-id) order — deterministic for any thread count.
[[nodiscard]] LintReport lint_circuit(const netlist::Circuit& circuit,
                                      const LintOptions& options = {});

// Lints .bench source text: the source-level rules, then — when no source
// errors were found and the netlist builds — the circuit rules as well.
// Never throws BenchParseError; parse failures become diagnostics.
[[nodiscard]] LintReport lint_bench_text(const std::string& text,
                                         const std::string& name = "bench",
                                         const LintOptions& options = {});

// Renders one "severity[rule] site: message" row per diagnostic plus a
// closing "N errors, M warnings" summary line.
void write_lint_text(std::ostream& out, const LintReport& report);

}  // namespace enb::analysis
