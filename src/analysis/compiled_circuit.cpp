#include "analysis/compiled_circuit.hpp"

#include <atomic>
#include <stdexcept>
#include <utility>

#include <chrono>

#include "netlist/bench_io.hpp"
#include "netlist/topo.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "synth/library.hpp"
#include "synth/mapper.hpp"
#include "util/sync.hpp"

namespace enb::analysis {

namespace {

// Profile-cache observability: hits (the amortization the handle design
// buys) vs extractions (the work it avoids repeating), plus extraction
// wall-clock. Counts only — the cached values themselves are untouched.
struct ProfileMetrics {
  obs::Counter& hits =
      obs::Registry::global().counter("analysis-profile-cache-hits-total");
  obs::Counter& extractions =
      obs::Registry::global().counter("analysis-profile-extractions-total");
  obs::Histogram& seconds =
      obs::Registry::global().histogram("analysis-extraction-seconds");
};

ProfileMetrics& profile_metrics() {
  static ProfileMetrics metrics;
  return metrics;
}

}  // namespace

ProfileKey profile_key(const core::ProfileOptions& options) noexcept {
  ProfileKey key;
  key.activity_pairs = options.activity_pairs;
  key.prefer_exact_activity = options.prefer_exact_activity;
  key.exact_activity_max_inputs = options.exact_activity_max_inputs;
  key.sensitivity_exact_max_inputs = options.sensitivity_exact_max_inputs;
  key.sensitivity_sample_words = options.sensitivity_sample_words;
  key.seed = options.seed;
  return key;
}

// All cached artifacts live behind one mutex. Computation happens under the
// lock: first-use costs serialize, but every artifact is computed exactly
// once and the lock is never contended on the hot (cache-hit) path for more
// than a lookup. Profiles are stored behind shared_ptr so the references
// handed out stay stable while the cache vector grows.
struct CompiledCircuit::Impl {
  explicit Impl(netlist::Circuit c) : circuit(std::move(c)) {}

  const netlist::Circuit circuit;

  mutable util::Mutex mutex;
  mutable std::optional<netlist::CircuitStats> stats ENB_GUARDED_BY(mutex);
  mutable std::optional<std::vector<int>> levels ENB_GUARDED_BY(mutex);
  mutable std::optional<std::vector<int>> fanout_counts ENB_GUARDED_BY(mutex);
  mutable std::vector<std::pair<ProfileKey,
                                std::shared_ptr<const core::CircuitProfile>>>
      profiles ENB_GUARDED_BY(mutex);
  mutable std::vector<std::pair<int, CompiledCircuit>> mapped
      ENB_GUARDED_BY(mutex);
  mutable std::optional<std::uint64_t> fingerprint ENB_GUARDED_BY(mutex);
  mutable std::atomic<std::uint64_t> extractions{0};
};

CompiledCircuit::Impl& CompiledCircuit::checked() const {
  if (impl_ == nullptr) {
    throw std::logic_error("CompiledCircuit: empty handle");
  }
  return *impl_;
}

const netlist::Circuit& CompiledCircuit::circuit() const {
  return checked().circuit;
}

const std::string& CompiledCircuit::name() const {
  return checked().circuit.name();
}

const netlist::CircuitStats& CompiledCircuit::stats() const {
  Impl& impl = checked();
  const util::LockGuard lock(impl.mutex);
  if (!impl.stats.has_value()) {
    impl.stats = netlist::compute_stats(impl.circuit);
  }
  return *impl.stats;
}

const std::vector<int>& CompiledCircuit::levels() const {
  Impl& impl = checked();
  const util::LockGuard lock(impl.mutex);
  if (!impl.levels.has_value()) {
    impl.levels = netlist::levels(impl.circuit);
  }
  return *impl.levels;
}

const std::vector<int>& CompiledCircuit::fanout_counts() const {
  Impl& impl = checked();
  const util::LockGuard lock(impl.mutex);
  if (!impl.fanout_counts.has_value()) {
    impl.fanout_counts = netlist::fanout_counts(impl.circuit);
  }
  return *impl.fanout_counts;
}

const core::CircuitProfile& CompiledCircuit::profile(
    const core::ProfileOptions& options, exec::Parallelism how) const {
  Impl& impl = checked();
  const ProfileKey key = profile_key(options);
  const util::LockGuard lock(impl.mutex);
  for (const auto& [cached_key, cached] : impl.profiles) {
    if (cached_key == key) {
      profile_metrics().hits.add(1);
      return *cached;
    }
  }
  // A miss extracts under the lock: concurrent callers with the same key
  // block here and hit the cache instead of re-extracting.
  const obs::Span span("profile-extraction", {}, impl.circuit.name());
  const auto start = std::chrono::steady_clock::now();
  auto extracted = std::make_shared<const core::CircuitProfile>(
      core::extract_profile(impl.circuit, options, how));
  profile_metrics().seconds.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  profile_metrics().extractions.add(1);
  impl.extractions.fetch_add(1, std::memory_order_relaxed);
  impl.profiles.emplace_back(key, extracted);
  return *impl.profiles.back().second;
}

std::optional<core::CircuitProfile> CompiledCircuit::cached_profile(
    const core::ProfileOptions& options) const {
  Impl& impl = checked();
  const ProfileKey key = profile_key(options);
  const util::LockGuard lock(impl.mutex);
  for (const auto& [cached_key, cached] : impl.profiles) {
    if (cached_key == key) {
      profile_metrics().hits.add(1);
      return *cached;
    }
  }
  return std::nullopt;
}

void CompiledCircuit::store_profile(const core::ProfileOptions& options,
                                    core::CircuitProfile profile) const {
  Impl& impl = checked();
  const ProfileKey key = profile_key(options);
  const util::LockGuard lock(impl.mutex);
  profile_metrics().extractions.add(1);
  impl.extractions.fetch_add(1, std::memory_order_relaxed);
  for (const auto& [cached_key, cached] : impl.profiles) {
    if (cached_key == key) return;  // existing entry wins (values equal)
  }
  impl.profiles.emplace_back(
      key, std::make_shared<const core::CircuitProfile>(std::move(profile)));
}

std::uint64_t CompiledCircuit::profile_extractions() const {
  return checked().extractions.load(std::memory_order_relaxed);
}

CompiledCircuit CompiledCircuit::mapped(int max_fanin) const {
  Impl& impl = checked();
  const util::LockGuard lock(impl.mutex);
  for (const auto& [fanin, handle] : impl.mapped) {
    if (fanin == max_fanin) return handle;
  }
  synth::MapOptions options;
  options.library = synth::Library::generic(max_fanin);
  CompiledCircuit handle =
      compile(synth::map_to_library(impl.circuit, options).circuit);
  impl.mapped.emplace_back(max_fanin, handle);
  return handle;
}

std::uint64_t CompiledCircuit::content_fingerprint() const {
  Impl& impl = checked();
  const util::LockGuard lock(impl.mutex);
  if (!impl.fingerprint.has_value()) {
    // FNV-1a over the .bench text: stable across processes and recompiles
    // of the same netlist, which is all the result cache needs.
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : netlist::write_bench_string(impl.circuit)) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 0x100000001b3ULL;
    }
    impl.fingerprint = hash;
  }
  return *impl.fingerprint;
}

CompiledCircuit compile(netlist::Circuit circuit) {
  return CompiledCircuit(
      std::make_shared<CompiledCircuit::Impl>(std::move(circuit)));
}

}  // namespace enb::analysis
