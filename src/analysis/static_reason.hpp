// Static reasoning over the netlist IR: constant propagation, FIRE-style
// implication learning, structural hashing, and combinational equivalence
// checking. This layer proves facts about a circuit without simulating a
// single pattern — it is the semantic counterpart to the syntactic linter
// and the correctness oracle the `harden` optimizer calls on every
// candidate rewrite.
//
// Three provers live here:
//
//   analyze_constants  — a two-tier constant prover. Tier one is plain
//       forward propagation from constant gates (a gate whose output is
//       forced by already-proved-constant fanins is itself constant); its
//       proofs survive any single stuck-at fault on a net that is not
//       itself proved constant, which is what makes them usable for
//       untestability arguments (see fault/untestable.hpp). Tier two adds
//       backward implications and probing: assume net = 0 and net = 1 in
//       turn, push direct implications (forward gate evaluation with
//       partial values plus backward controlling-value rules) to a
//       fixpoint, and learn a constant whenever one branch contradicts
//       itself or both branches agree on some other net. Tier-two facts
//       hold for the fault-free circuit only.
//
//   StructuralHasher   — functional-flavored structural hashing. Every cone
//       maps to a canonical value id; NAND/NOR/XNOR normalize to
//       NOT(AND/OR/XOR), fanins sort and dedupe, constants fold,
//       BUF(x) = x, NOT(NOT(x)) = x, XOR cancels equal pairs, and
//       MAJ(r, r, x) = r. Two cones with equal ids compute the same
//       function; hashing two circuits into one hasher makes the ids
//       comparable across circuits, which is how CEC discharges
//       TMR'd / strash-rewritten variants without touching a BDD.
//
//   check_equivalence  — three-stage CEC: (1) 64-bit random-simulation
//       signatures refute inequivalent output pairs almost instantly and
//       name the first differing output; (2) surviving pairs are
//       discharged structurally via a shared StructuralHasher; (3) the
//       remainder goes to the bdd/ engine (one shared manager, inputs
//       mapped positionally), where Ref equality is exact functional
//       equivalence. A BDD node-budget blowout is reported as
//       `inconclusive`, never as a verdict.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/circuit.hpp"

namespace enb::analysis {

// Three-valued lattice for per-net facts.
enum class LogicValue : std::uint8_t { kUnknown = 0, kZero = 1, kOne = 2 };

[[nodiscard]] constexpr LogicValue to_logic(bool value) noexcept {
  return value ? LogicValue::kOne : LogicValue::kZero;
}
[[nodiscard]] constexpr LogicValue negate(LogicValue value) noexcept {
  if (value == LogicValue::kZero) return LogicValue::kOne;
  if (value == LogicValue::kOne) return LogicValue::kZero;
  return LogicValue::kUnknown;
}

struct StaticReasonOptions {
  // Probe-learning sweeps over all nets; each sweep is a full implication
  // fixpoint per (net, value) pair. The cap bounds pathological circuits;
  // real netlists converge in one or two rounds.
  int max_probe_rounds = 3;
};

struct ConstantFacts {
  // Tier one: constants provable by forward propagation from constant
  // gates alone. The derivation of every entry is supported entirely by
  // other proved-constant nets, so these values still hold in any faulty
  // circuit whose stuck-at site is a net *outside* this set — the property
  // the untestability prover depends on.
  std::vector<LogicValue> forward;
  // Tier two: the full implication/probing fixpoint (a superset of
  // `forward`). Sound for the fault-free circuit only; lint, strash and
  // CEC material.
  std::vector<LogicValue> proved;
  std::size_t probes = 0;          // (net, value) probes performed
  std::size_t learned = 0;         // constants proved beyond `forward`
  std::size_t probe_rounds = 0;    // sweeps until fixpoint (or the cap)
};

[[nodiscard]] ConstantFacts analyze_constants(
    const netlist::Circuit& circuit, const StaticReasonOptions& options = {});

// Canonical value ids: 0 = const0, 1 = const1, 2 + i = primary input i,
// then interned gate classes. Input ids are positional, so hashing two
// circuits with the same input count into one hasher yields directly
// comparable ids.
class StructuralHasher {
 public:
  explicit StructuralHasher(std::size_t num_inputs);

  // Canonical id per node of `circuit` (indexed by NodeId). When
  // `constants` is non-null, nets proved constant fold to the constant ids
  // regardless of their structure. Throws std::invalid_argument when the
  // circuit has more inputs than the hasher was sized for.
  std::vector<std::uint32_t> hash_circuit(
      const netlist::Circuit& circuit,
      const std::vector<LogicValue>* constants = nullptr);

  [[nodiscard]] static constexpr std::uint32_t const_id(bool value) noexcept {
    return value ? 1u : 0u;
  }
  [[nodiscard]] std::uint32_t input_id(std::size_t position) const;

  // Total distinct values interned so far (constants + inputs + classes).
  [[nodiscard]] std::size_t num_values() const noexcept { return next_id_; }

 private:
  struct Key {
    std::uint8_t op;  // static_cast<uint8_t>(GateType): kAnd/kOr/kXor/kMaj
    std::vector<std::uint32_t> args;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept;
  };

  std::uint32_t intern(netlist::GateType op, std::vector<std::uint32_t> args);
  std::uint32_t make_not(std::uint32_t arg);
  std::uint32_t make_and_or(netlist::GateType op,
                            std::vector<std::uint32_t> args);
  std::uint32_t make_xor(std::vector<std::uint32_t> args);
  std::uint32_t make_maj(std::uint32_t a, std::uint32_t b, std::uint32_t c);
  [[nodiscard]] bool complements(std::uint32_t a, std::uint32_t b) const;

  std::size_t num_inputs_;
  std::uint32_t next_id_;
  std::unordered_map<Key, std::uint32_t, KeyHash> classes_;
  std::unordered_map<std::uint32_t, std::uint32_t> not_cache_;
  // not_arg_[id] = x when id was interned as NOT(x); kNoNot otherwise.
  std::vector<std::uint32_t> not_arg_;
};

struct CecOptions {
  std::uint64_t seed = 0xCEC5;
  // 64 random patterns per signature word.
  int signature_words = 8;
  // Node budget for the BDD fallback stage; exhaustion is `inconclusive`.
  std::size_t bdd_node_limit = std::size_t{1} << 22;

  friend bool operator==(const CecOptions&, const CecOptions&) = default;
};

struct CecResult {
  bool equivalent = false;
  // True when the BDD stage ran out of nodes before reaching a verdict on
  // some output pair; `equivalent` is false but nothing was refuted.
  bool inconclusive = false;
  std::uint64_t outputs = 0;
  std::uint64_t refuted = 0;            // output pairs refuted (sim or BDD)
  std::uint64_t proved_structural = 0;  // discharged by StructuralHasher
  std::uint64_t proved_bdd = 0;         // discharged by the bdd/ engine
  std::uint64_t signature_words = 0;
  // Name (in circuit `a`) of the first output pair proved different;
  // empty when nothing was refuted.
  std::string first_mismatch_output;

  friend bool operator==(const CecResult&, const CecResult&) = default;
};

// Combinational equivalence of `a` and `b` under positional input/output
// mapping. Throws std::invalid_argument when the interfaces disagree
// (input or output counts differ) — the circuits are not even comparable.
[[nodiscard]] CecResult check_equivalence(const netlist::Circuit& a,
                                          const netlist::Circuit& b,
                                          const CecOptions& options = {});

}  // namespace enb::analysis
