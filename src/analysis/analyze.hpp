// The analysis layer's front door: handle-based overloads of the six
// standalone estimator entry points, plus a generic evaluate() over typed
// requests.
//
// These are the single-request counterparts of exec::BatchEvaluator — same
// request vocabulary, same results (bit-identical: both schedule the
// estimators' shard-level building blocks over the same counter-based
// streams). Prefer these for one-off analyses and the batch evaluator when
// fanning out many requests.
#pragma once

#include "analysis/compiled_circuit.hpp"
#include "analysis/request.hpp"
#include "core/analyzer.hpp"

namespace enb::analysis {

// ---- the six standalone entry points, on shared handles ------------------
// Parallelism routes through `how` exclusively (the deprecated
// Options::threads knobs are ignored here).

[[nodiscard]] sim::ReliabilityResult estimate_reliability(
    const CompiledCircuit& circuit, double epsilon,
    const sim::ReliabilityOptions& options = {}, exec::Parallelism how = {});

[[nodiscard]] sim::ReliabilityResult estimate_reliability_vs(
    const CompiledCircuit& noisy, const CompiledCircuit& golden,
    double epsilon, const sim::ReliabilityOptions& options = {},
    exec::Parallelism how = {});

[[nodiscard]] sim::WorstCaseResult estimate_worst_case_reliability(
    const CompiledCircuit& noisy, const CompiledCircuit& golden,
    double epsilon, const sim::WorstCaseOptions& options = {},
    exec::Parallelism how = {});

[[nodiscard]] sim::ActivityResult estimate_activity(
    const CompiledCircuit& circuit, const sim::ActivityOptions& options = {},
    exec::Parallelism how = {});

[[nodiscard]] sim::SensitivityResult compute_sensitivity(
    const CompiledCircuit& circuit,
    const sim::SensitivityOptions& options = {}, exec::Parallelism how = {});

// Cached on the handle: repeated calls (and batch jobs sharing the handle)
// extract at most once per profile key.
[[nodiscard]] const core::CircuitProfile& extract_profile(
    const CompiledCircuit& circuit, const core::ProfileOptions& options = {},
    exec::Parallelism how = {});

// Theorem 1-4 bounds at (epsilon, delta) for the handle's cached profile
// (extracting it on first use).
[[nodiscard]] core::BoundReport analyze(
    const CompiledCircuit& circuit, double epsilon, double delta,
    const core::EnergyModelOptions& energy = {},
    const core::ProfileOptions& profile_options = {},
    exec::Parallelism how = {});

// ---- generic typed front door --------------------------------------------

// Evaluates one request. Never throws for per-request problems: invalid
// options or a throwing evaluation produce ok = false with the error text,
// exactly like a batch job. result.index is 0.
[[nodiscard]] AnalysisResult evaluate(const AnalysisRequest& request,
                                      exec::Parallelism how = {});

}  // namespace enb::analysis
