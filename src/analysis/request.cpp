#include "analysis/request.hpp"

#include <algorithm>
#include <ios>
#include <sstream>

namespace enb::analysis {

namespace {

// The variant orders must mirror AnalysisKind (kind() and kind_of rely on
// the indices).
static_assert(std::is_same_v<std::variant_alternative_t<0, RequestOptions>,
                             ReliabilityRequest>);
static_assert(std::is_same_v<std::variant_alternative_t<1, RequestOptions>,
                             WorstCaseRequest>);
static_assert(std::is_same_v<std::variant_alternative_t<2, RequestOptions>,
                             ActivityRequest>);
static_assert(std::is_same_v<std::variant_alternative_t<3, RequestOptions>,
                             SensitivityRequest>);
static_assert(std::is_same_v<std::variant_alternative_t<4, RequestOptions>,
                             EnergyBoundRequest>);
static_assert(std::is_same_v<std::variant_alternative_t<5, RequestOptions>,
                             ProfileRequest>);
static_assert(std::is_same_v<std::variant_alternative_t<6, RequestOptions>,
                             FaultCampaignRequest>);
static_assert(std::is_same_v<std::variant_alternative_t<7, RequestOptions>,
                             LintRequest>);
static_assert(std::is_same_v<std::variant_alternative_t<8, RequestOptions>,
                             CecRequest>);
static_assert(std::is_same_v<std::variant_alternative_t<9, RequestOptions>,
                             HardenRequest>);
static_assert(std::variant_size_v<RequestOptions> + 1 ==
              std::variant_size_v<ResultPayload>);
static_assert(std::is_same_v<
              std::variant_alternative_t<std::variant_size_v<ResultPayload> - 1,
                                         ResultPayload>,
              harden::ParetoResult>);

using Metrics = std::vector<std::pair<std::string, double>>;

void push(Metrics& m, const char* name, double value) {
  m.emplace_back(name, value);
}

void push(Metrics& m, const std::string& name, double value) {
  m.emplace_back(name, value);
}

Metrics flatten(const sim::ReliabilityResult& r) {
  Metrics m;
  push(m, "delta_hat", r.delta_hat);
  push(m, "ci_low", r.ci_low);
  push(m, "ci_high", r.ci_high);
  push(m, "failures", static_cast<double>(r.failures));
  push(m, "trials", static_cast<double>(r.trials));
  push(m, "requested_trials", static_cast<double>(r.requested_trials));
  return m;
}

Metrics flatten(const sim::WorstCaseResult& w) {
  Metrics m;
  push(m, "worst_delta_hat", w.worst.delta_hat);
  push(m, "worst_ci_low", w.worst.ci_low);
  push(m, "worst_ci_high", w.worst.ci_high);
  push(m, "worst_failures", static_cast<double>(w.worst.failures));
  push(m, "trials_per_input", static_cast<double>(w.worst.trials));
  push(m, "requested_trials_per_input",
       static_cast<double>(w.worst.requested_trials));
  push(m, "average_delta", w.average_delta);
  return m;
}

Metrics flatten(const sim::ActivityResult& a) {
  Metrics m;
  push(m, "avg_gate_toggle_rate", a.avg_gate_toggle_rate);
  push(m, "avg_gate_one_probability", a.avg_gate_one_probability);
  push(m, "sample_pairs", static_cast<double>(a.sample_pairs));
  return m;
}

Metrics flatten(const sim::SensitivityResult& s) {
  Metrics m;
  push(m, "sensitivity", static_cast<double>(s.sensitivity));
  push(m, "total_influence", s.total_influence);
  push(m, "assignments", static_cast<double>(s.assignments));
  push(m, "exact", s.exact ? 1.0 : 0.0);
  return m;
}

Metrics flatten(const core::BoundReport& b) {
  Metrics m;
  push(m, "eps", b.epsilon);
  push(m, "delta", b.delta);
  push(m, "sw_noisy", b.sw_noisy);
  push(m, "redundancy_gates", b.redundancy_gates);
  push(m, "size_factor", b.size_factor);
  push(m, "switching_factor", b.energy.switching_factor);
  push(m, "leakage_factor", b.energy.leakage_factor);
  push(m, "total_factor", b.energy.total_factor);
  push(m, "leakage_ratio", b.leakage_ratio);
  push(m, "delay_factor", b.metrics.delay);
  push(m, "edp_factor", b.metrics.edp);
  push(m, "avg_power_factor", b.metrics.avg_power);
  push(m, "depth_feasible", b.depth_feasible ? 1.0 : 0.0);
  return m;
}

Metrics flatten(const fault::FaultCampaignResult& f) {
  Metrics m;
  push(m, "nets", static_cast<double>(f.nets));
  push(m, "sites", static_cast<double>(f.sites));
  push(m, "classes", static_cast<double>(f.classes));
  push(m, "sampled", static_cast<double>(f.sampled));
  push(m, "detected", static_cast<double>(f.detected));
  push(m, "coverage", f.coverage);
  push(m, "coverage_ci_low", f.coverage_ci_low);
  push(m, "coverage_ci_high", f.coverage_ci_high);
  push(m, "masked_fraction", f.masked_fraction);
  push(m, "patterns", static_cast<double>(f.patterns));
  push(m, "sim_passes", static_cast<double>(f.sim_passes));
  push(m, "detect_outputs", static_cast<double>(f.detect_outputs));
  push(m, "gates", static_cast<double>(f.gates));
  push(m, "golden_gates", static_cast<double>(f.golden_gates));
  push(m, "gate_overhead", f.gate_overhead);
  push(m, "overhead_per_masked", f.overhead_per_masked);
  return m;
}

Metrics flatten(const CecResult& c) {
  Metrics m;
  push(m, "equivalent", c.equivalent ? 1.0 : 0.0);
  push(m, "inconclusive", c.inconclusive ? 1.0 : 0.0);
  push(m, "outputs", static_cast<double>(c.outputs));
  push(m, "refuted", static_cast<double>(c.refuted));
  push(m, "proved_structural", static_cast<double>(c.proved_structural));
  push(m, "proved_bdd", static_cast<double>(c.proved_bdd));
  push(m, "signature_words", static_cast<double>(c.signature_words));
  return m;
}

Metrics flatten(const harden::ParetoResult& h) {
  Metrics m;
  push(m, "candidates", static_cast<double>(h.candidates.size()));
  push(m, "frontier_size", static_cast<double>(h.frontier.size()));
  push(m, "refuted", static_cast<double>(h.refuted));
  push(m, "lint_errors", static_cast<double>(h.lint_errors));
  // One row group per frontier point, in frontier (enumeration) order; the
  // row count is data-dependent like a sweep's, and deterministic because
  // the frontier is.
  for (std::size_t i = 0; i < h.frontier.size(); ++i) {
    const harden::Candidate& c = h.candidates[h.frontier[i]];
    const std::string prefix = "frontier" + std::to_string(i);
    push(m, prefix + "_index", static_cast<double>(h.frontier[i]));
    push(m, prefix + "_gates", static_cast<double>(c.gates));
    push(m, prefix + "_energy_factor", c.energy_factor);
    push(m, prefix + "_protection", c.protection);
    push(m, prefix + "_coverage", c.coverage);
  }
  return m;
}

Metrics flatten(const LintReport& l) {
  Metrics m;
  push(m, "errors", static_cast<double>(l.errors()));
  push(m, "warnings", static_cast<double>(l.warnings()));
  push(m, "findings", static_cast<double>(l.diagnostics.size()));
  push(m, "nodes", static_cast<double>(l.nodes));
  return m;
}

Metrics flatten(const core::CircuitProfile& p) {
  Metrics m;
  push(m, "num_inputs", p.num_inputs);
  push(m, "num_outputs", p.num_outputs);
  push(m, "size_s0", p.size_s0);
  push(m, "depth_d0", p.depth_d0);
  push(m, "avg_fanin_k", p.avg_fanin_k);
  push(m, "max_fanin", p.max_fanin);
  push(m, "avg_activity_sw0", p.avg_activity_sw0);
  push(m, "sensitivity_s", p.sensitivity_s);
  push(m, "sensitivity_exact", p.sensitivity_exact ? 1.0 : 0.0);
  return m;
}

// ---- canonical spec ------------------------------------------------------
//
// One writer per option struct; every value-relevant field appears, in a
// fixed order, so the string is a complete value identity for the request's
// options. Doubles go out as hexfloat (exact round trip), bools as 0/1.

class SpecWriter {
 public:
  SpecWriter(const char* kind) { out_ << kind; }

  SpecWriter& field(const char* name, double value) {
    out_ << ' ' << name << '=' << std::hexfloat << value << std::defaultfloat;
    return *this;
  }
  SpecWriter& field(const char* name, bool value) {
    out_ << ' ' << name << '=' << (value ? 1 : 0);
    return *this;
  }
  template <typename Int>
  SpecWriter& field(const char* name, Int value) {
    out_ << ' ' << name << '=' << value;
    return *this;
  }
  SpecWriter& text(const char* name, const std::string& value) {
    // Length prefix keeps arbitrary text (circuit names) unambiguous.
    out_ << ' ' << name << '=' << value.size() << ':' << value;
    return *this;
  }

  [[nodiscard]] std::string str() const { return out_.str(); }

 private:
  std::ostringstream out_;
};

SpecWriter& write_profile_options(SpecWriter& w,
                                  const core::ProfileOptions& p) {
  return w.field("activity_pairs", p.activity_pairs)
      .field("prefer_exact_activity", p.prefer_exact_activity)
      .field("exact_activity_max_inputs", p.exact_activity_max_inputs)
      .field("sensitivity_exact_max_inputs", p.sensitivity_exact_max_inputs)
      .field("sensitivity_sample_words", p.sensitivity_sample_words)
      .field("profile_seed", p.seed);
}

std::string spec_of(const ReliabilityRequest& r) {
  return SpecWriter("reliability")
      .field("eps", r.epsilon)
      .field("trials", r.options.trials)
      .field("seed", r.options.seed)
      .field("p1", r.options.input_one_probability)
      .field("shard_passes", r.options.shard_passes)
      .str();
}

std::string spec_of(const WorstCaseRequest& r) {
  return SpecWriter("worst-case")
      .field("eps", r.epsilon)
      .field("num_inputs", r.options.num_inputs)
      .field("trials_per_input", r.options.trials_per_input)
      .field("seed", r.options.seed)
      .str();
}

std::string spec_of(const ActivityRequest& r) {
  return SpecWriter("activity")
      .field("sample_pairs", r.options.sample_pairs)
      .field("seed", r.options.seed)
      .field("p1", r.options.input_one_probability)
      .field("shard_pairs", r.options.shard_pairs)
      .str();
}

std::string spec_of(const SensitivityRequest& r) {
  return SpecWriter("sensitivity")
      .field("max_exact_inputs", r.options.max_exact_inputs)
      .field("sample_words", r.options.sample_words)
      .field("seed", r.options.seed)
      .field("shard_words", r.options.shard_words)
      .str();
}

std::string spec_of(const EnergyBoundRequest& r) {
  SpecWriter w("energy-bound");
  w.field("eps", r.epsilon)
      .field("delta", r.delta)
      .field("leakage_fraction", r.energy.leakage_fraction)
      .field("couple_leakage_to_delay", r.energy.couple_leakage_to_delay);
  write_profile_options(w, r.profile);
  if (r.profile_override.has_value()) {
    const core::CircuitProfile& p = *r.profile_override;
    w.text("override_name", p.name)
        .field("override_inputs", p.num_inputs)
        .field("override_outputs", p.num_outputs)
        .field("override_s0", p.size_s0)
        .field("override_d0", p.depth_d0)
        .field("override_k", p.avg_fanin_k)
        .field("override_max_fanin", p.max_fanin)
        .field("override_sw0", p.avg_activity_sw0)
        .field("override_s", p.sensitivity_s)
        .field("override_exact", p.sensitivity_exact);
  }
  return w.str();
}

std::string spec_of(const ProfileRequest& r) {
  SpecWriter w("profile");
  write_profile_options(w, r.options);
  return w.str();
}

std::string spec_of(const FaultCampaignRequest& r) {
  // options.lanes is deliberately absent: lane width is execution policy
  // (results are normalized to be width-independent), so requests differing
  // only in lanes share one cache entry. drop and sample ARE value-relevant
  // (sim_passes and the simulated set change).
  return SpecWriter("fault-campaign")
      .field("patterns", r.options.patterns)
      .field("exhaustive", r.options.exhaustive)
      .field("seed", r.options.seed)
      .field("shard_patterns", r.options.shard_patterns)
      .field("bundle_width", r.options.bundle_width)
      .field("collapse", r.options.collapse)
      .field("drop", r.options.drop)
      .field("sample", r.options.sample)
      .field("prune", r.options.prune_untestable)
      .str();
}

std::string spec_of(const LintRequest& r) {
  return SpecWriter("lint")
      .field("exhaustive_cap", r.options.exhaustive_cap)
      .field("allow_voter_replicas", r.options.allow_voter_replicas)
      .str();
}

std::string spec_of(const CecRequest& r) {
  // Both circuit fingerprints are part of the serve cache key (the second
  // circuit is the request's golden handle); the spec covers the knobs.
  return SpecWriter("cec")
      .field("seed", r.options.seed)
      .field("signature_words", r.options.signature_words)
      .field("bdd_node_limit", r.options.bdd_node_limit)
      .str();
}

std::string spec_of(const HardenRequest& r) {
  // The campaign's lanes knob is excluded exactly as in the fault-campaign
  // spec (execution policy, results are lane-width independent); everything
  // else — sweep restriction, voter style, grading campaign, CEC knobs, and
  // the energy operating point — is value-relevant.
  const harden::SweepOptions& o = r.options;
  SpecWriter w("harden");
  w.text("style",
         o.style.has_value() ? std::string(harden::to_string(*o.style))
                             : std::string("all"))
      .text("granularity",
            o.granularity.has_value()
                ? std::string(harden::to_string(*o.granularity))
                : std::string("all"))
      .field("top_k", o.top_k)
      .field("voter", static_cast<int>(o.voter))
      .field("eps", o.epsilon)
      .field("delta", o.delta)
      .field("leakage_fraction", o.leakage_fraction)
      .field("patterns", o.campaign.patterns)
      .field("exhaustive", o.campaign.exhaustive)
      .field("seed", o.campaign.seed)
      .field("shard_patterns", o.campaign.shard_patterns)
      .field("bundle_width", o.campaign.bundle_width)
      .field("collapse", o.campaign.collapse)
      .field("drop", o.campaign.drop)
      .field("sample", o.campaign.sample)
      .field("prune", o.campaign.prune_untestable)
      .field("cec_seed", o.cec.seed)
      .field("cec_signature_words", o.cec.signature_words)
      .field("cec_bdd_node_limit", o.cec.bdd_node_limit);
  return w.str();
}

}  // namespace

std::string canonical_spec(const RequestOptions& options) {
  return std::visit([](const auto& spec) { return spec_of(spec); }, options);
}

const char* to_string(AnalysisKind kind) noexcept {
  switch (kind) {
    case AnalysisKind::kReliability:
      return "reliability";
    case AnalysisKind::kWorstCase:
      return "worst-case";
    case AnalysisKind::kActivity:
      return "activity";
    case AnalysisKind::kSensitivity:
      return "sensitivity";
    case AnalysisKind::kEnergyBound:
      return "energy-bound";
    case AnalysisKind::kProfile:
      return "profile";
    case AnalysisKind::kFaultCampaign:
      return "fault-campaign";
    case AnalysisKind::kLint:
      return "lint";
    case AnalysisKind::kCec:
      return "cec";
    case AnalysisKind::kHarden:
      return "harden";
  }
  return "unknown";
}

std::optional<AnalysisKind> parse_analysis_kind(std::string_view name) {
  std::string canonical(name);
  std::replace(canonical.begin(), canonical.end(), '_', '-');
  if (canonical == "reliability") return AnalysisKind::kReliability;
  if (canonical == "worst-case") return AnalysisKind::kWorstCase;
  if (canonical == "activity") return AnalysisKind::kActivity;
  if (canonical == "sensitivity") return AnalysisKind::kSensitivity;
  if (canonical == "energy-bound") return AnalysisKind::kEnergyBound;
  if (canonical == "profile") return AnalysisKind::kProfile;
  if (canonical == "fault-campaign") return AnalysisKind::kFaultCampaign;
  if (canonical == "lint") return AnalysisKind::kLint;
  if (canonical == "cec") return AnalysisKind::kCec;
  if (canonical == "harden") return AnalysisKind::kHarden;
  return std::nullopt;
}

std::optional<double> AnalysisResult::metric(std::string_view name) const {
  for (const auto& [key, value] : metrics) {
    if (key == name) return value;
  }
  return std::nullopt;
}

std::vector<std::pair<std::string, double>> flatten_metrics(
    const ResultPayload& payload) {
  return std::visit(
      [](const auto& value) -> Metrics {
        if constexpr (std::is_same_v<std::decay_t<decltype(value)>,
                                     std::monostate>) {
          return {};
        } else {
          return flatten(value);
        }
      },
      payload);
}

void set_payload(AnalysisResult& result, ResultPayload payload) {
  result.metrics = flatten_metrics(payload);
  if (const auto* p = std::get_if<core::CircuitProfile>(&payload)) {
    result.profile = *p;
  }
  result.payload = std::move(payload);
}

AnalysisResult make_result(std::string name, ResultPayload payload) {
  AnalysisResult result;
  result.name = std::move(name);
  // Payload alternatives follow AnalysisKind shifted by the monostate slot.
  result.kind = static_cast<AnalysisKind>(payload.index() - 1);
  result.ok = true;
  set_payload(result, std::move(payload));
  return result;
}

}  // namespace enb::analysis
