// Typed analysis requests and results: the job vocabulary of the analysis
// layer.
//
// An AnalysisRequest is one analysis over one CompiledCircuit handle: the
// kind and its options live together in a std::variant (no kind enum with
// six half-initialized option structs to keep in sync), and the circuit is a
// shared handle, so enqueueing a hundred requests over one design costs a
// hundred shared_ptr copies — never a netlist clone. The matching
// AnalysisResult carries the estimator's full typed payload plus the flat
// (metric, value) rows the CSV/JSON writers consume.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "analysis/compiled_circuit.hpp"
#include "analysis/lint.hpp"
#include "analysis/static_reason.hpp"
#include "core/analyzer.hpp"
#include "core/energy_bound.hpp"
#include "core/profile.hpp"
#include "fault/campaign.hpp"
#include "harden/types.hpp"
#include "sim/activity.hpp"
#include "sim/reliability.hpp"
#include "sim/sensitivity.hpp"

namespace enb::analysis {

enum class AnalysisKind {
  kReliability,   // Monte-Carlo delta estimate (vs golden when provided)
  kWorstCase,     // worst sampled-input delta (vs golden when provided)
  kActivity,      // Monte-Carlo switching activity
  kSensitivity,   // Boolean sensitivity (exact or sampled)
  kEnergyBound,   // Theorem 1-4 bound report at (eps, delta)
  kProfile,       // (s, S0, sw0, k, d0) profile extraction
  kFaultCampaign, // stuck-at fault campaign (coverage / masking vs golden)
  kLint,          // structural netlist lint (typed diagnostics)
  kCec,           // combinational equivalence check (circuit vs golden)
  kHarden,        // redundancy-insertion Pareto sweep (style x granularity x K)
};

[[nodiscard]] const char* to_string(AnalysisKind kind) noexcept;
[[nodiscard]] std::optional<AnalysisKind> parse_analysis_kind(
    std::string_view name);

// ---- per-kind request options --------------------------------------------

struct ReliabilityRequest {
  double epsilon = 0.01;
  sim::ReliabilityOptions options;
};

struct WorstCaseRequest {
  double epsilon = 0.01;
  sim::WorstCaseOptions options;
};

struct ActivityRequest {
  sim::ActivityOptions options;
};

struct SensitivityRequest {
  sim::SensitivityOptions options;
};

struct EnergyBoundRequest {
  double epsilon = 0.01;
  double delta = 0.01;
  core::EnergyModelOptions energy;
  // Extraction knobs; the extracted profile is cached on the handle, so
  // requests sharing a handle and a profile key share one extraction.
  core::ProfileOptions profile;
  // Analyze this profile directly instead of extracting from the circuit
  // (the request's circuit handle may then be empty).
  std::optional<core::CircuitProfile> profile_override;
};

struct ProfileRequest {
  core::ProfileOptions options;
};

struct FaultCampaignRequest {
  // The request's golden handle (when present) is the reference the faulty
  // circuit is graded against — the masking view; absent, the circuit is
  // graded against its own fault-free behaviour — the coverage view.
  fault::CampaignOptions options;
};

struct LintRequest {
  LintOptions options;
};

struct CecRequest {
  // The second circuit of the comparison rides the request's golden handle
  // — the same slot every vs-reference analysis uses — so the serve result
  // cache covers both fingerprints with zero new plumbing. A CecRequest
  // without a golden handle is an error.
  CecOptions options;
};

struct HardenRequest {
  // The request's circuit is the base design: every candidate variant is
  // derived from it, proved equivalent, and graded inside the evaluation,
  // so the base fingerprint plus this canonical spec fully keys the result
  // — no golden handle and zero new cache plumbing.
  harden::SweepOptions options;
};

// Alternative order mirrors AnalysisKind (kind() relies on it).
using RequestOptions =
    std::variant<ReliabilityRequest, WorstCaseRequest, ActivityRequest,
                 SensitivityRequest, EnergyBoundRequest, ProfileRequest,
                 FaultCampaignRequest, LintRequest, CecRequest, HardenRequest>;

struct AnalysisRequest {
  std::string name;
  // Shared handle — copying a request never copies a netlist. May be an
  // empty handle only for an EnergyBoundRequest with profile_override.
  CompiledCircuit circuit;
  // Reference implementation for kReliability / kWorstCase; when absent the
  // circuit is compared against its own noise-free evaluation.
  std::optional<CompiledCircuit> golden;
  RequestOptions options;

  [[nodiscard]] AnalysisKind kind() const noexcept {
    return static_cast<AnalysisKind>(options.index());
  }
};

// ---- results -------------------------------------------------------------

// Typed payload; monostate only for failed analyses.
using ResultPayload =
    std::variant<std::monostate, sim::ReliabilityResult, sim::WorstCaseResult,
                 sim::ActivityResult, sim::SensitivityResult, core::BoundReport,
                 core::CircuitProfile, fault::FaultCampaignResult, LintReport,
                 CecResult, harden::ParetoResult>;

// Per-request outcome. Failures are isolated: a request whose options are
// invalid (or whose evaluation throws) reports ok = false with the error
// text while the rest of its batch completes normally.
struct AnalysisResult {
  std::size_t index = 0;  // submission index within its batch (0 standalone)
  std::string name;
  AnalysisKind kind = AnalysisKind::kReliability;
  bool ok = false;
  std::string error;
  // Flat (metric, value) pairs in a fixed per-kind order — the CSV/JSON row.
  std::vector<std::pair<std::string, double>> metrics;
  // The profile behind a kProfile result or a kEnergyBound extraction.
  std::optional<core::CircuitProfile> profile;
  ResultPayload payload;
  // Wall-clock from batch prepare to emission, filled by the batch engine
  // (0 when the result was built another way). Observability only: never
  // serialized — write_result_json and the cache key ignore it, so timed
  // and untimed results stay byte-identical.
  double elapsed_seconds = 0.0;

  // The value of `metric`, if present.
  [[nodiscard]] std::optional<double> metric(std::string_view name) const;

  // The typed payload if it holds a T, else nullptr.
  template <typename T>
  [[nodiscard]] const T* get() const noexcept {
    return std::get_if<T>(&payload);
  }
};

// Canonical, value-complete serialization of a request's options: the kind
// name followed by every field that can reach the result (Monte-Carlo
// budgets, seeds, shard shapes — shard decomposition feeds the counter-based
// streams — and model knobs), with doubles rendered in hexfloat so equal
// values serialize identically and nothing is lost to rounding. The
// deprecated Options::threads knobs are excluded: they never change a
// result. Two requests with equal canonical specs over the same circuit
// (and golden) produce bit-identical results by the determinism contract,
// which is what makes this string a safe cross-request cache-key component
// (see serve::result_cache_key).
[[nodiscard]] std::string canonical_spec(const RequestOptions& options);

// Flattens a payload into the writers' fixed (metric, value) rows.
[[nodiscard]] std::vector<std::pair<std::string, double>> flatten_metrics(
    const ResultPayload& payload);

// Installs `payload` into `result`: metrics flattened, profile payloads
// mirrored into result.profile, payload moved in. The one place the
// payload-to-result mapping lives (make_result and the batch engine both
// route through it).
void set_payload(AnalysisResult& result, ResultPayload payload);

// An ok result with kind and metrics derived from `payload` (how the CLI
// reuses the batch CSV/JSON writers for single analyses and sweeps).
// Precondition: payload is not monostate.
[[nodiscard]] AnalysisResult make_result(std::string name,
                                         ResultPayload payload);

}  // namespace enb::analysis
