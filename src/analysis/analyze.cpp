#include "analysis/analyze.hpp"

#include <stdexcept>
#include <utility>

#include "harden/pareto.hpp"

namespace enb::analysis {

sim::ReliabilityResult estimate_reliability(const CompiledCircuit& circuit,
                                            double epsilon,
                                            const sim::ReliabilityOptions& options,
                                            exec::Parallelism how) {
  return sim::estimate_reliability(circuit.circuit(), epsilon, options, how);
}

sim::ReliabilityResult estimate_reliability_vs(
    const CompiledCircuit& noisy, const CompiledCircuit& golden, double epsilon,
    const sim::ReliabilityOptions& options, exec::Parallelism how) {
  return sim::estimate_reliability_vs(noisy.circuit(), golden.circuit(),
                                      epsilon, options, how);
}

sim::WorstCaseResult estimate_worst_case_reliability(
    const CompiledCircuit& noisy, const CompiledCircuit& golden, double epsilon,
    const sim::WorstCaseOptions& options, exec::Parallelism how) {
  return sim::estimate_worst_case_reliability(noisy.circuit(), golden.circuit(),
                                              epsilon, options, how);
}

sim::ActivityResult estimate_activity(const CompiledCircuit& circuit,
                                      const sim::ActivityOptions& options,
                                      exec::Parallelism how) {
  return sim::estimate_activity(circuit.circuit(), options, how);
}

sim::SensitivityResult compute_sensitivity(const CompiledCircuit& circuit,
                                           const sim::SensitivityOptions& options,
                                           exec::Parallelism how) {
  return sim::compute_sensitivity(circuit.circuit(), options, how);
}

const core::CircuitProfile& extract_profile(const CompiledCircuit& circuit,
                                            const core::ProfileOptions& options,
                                            exec::Parallelism how) {
  return circuit.profile(options, how);
}

core::BoundReport analyze(const CompiledCircuit& circuit, double epsilon,
                          double delta, const core::EnergyModelOptions& energy,
                          const core::ProfileOptions& profile_options,
                          exec::Parallelism how) {
  return core::analyze(circuit.profile(profile_options, how), epsilon, delta,
                       energy);
}

AnalysisResult evaluate(const AnalysisRequest& request, exec::Parallelism how) {
  AnalysisResult result;
  result.name = request.name;
  result.kind = request.kind();
  try {
    ResultPayload payload = std::visit(
        [&](const auto& spec) -> ResultPayload {
          using Spec = std::decay_t<decltype(spec)>;
          if constexpr (std::is_same_v<Spec, ReliabilityRequest>) {
            return request.golden.has_value()
                       ? estimate_reliability_vs(request.circuit,
                                                 *request.golden, spec.epsilon,
                                                 spec.options, how)
                       : estimate_reliability(request.circuit, spec.epsilon,
                                              spec.options, how);
          } else if constexpr (std::is_same_v<Spec, WorstCaseRequest>) {
            const CompiledCircuit& golden = request.golden.has_value()
                                                ? *request.golden
                                                : request.circuit;
            return estimate_worst_case_reliability(request.circuit, golden,
                                                   spec.epsilon, spec.options,
                                                   how);
          } else if constexpr (std::is_same_v<Spec, ActivityRequest>) {
            return estimate_activity(request.circuit, spec.options, how);
          } else if constexpr (std::is_same_v<Spec, SensitivityRequest>) {
            return compute_sensitivity(request.circuit, spec.options, how);
          } else if constexpr (std::is_same_v<Spec, EnergyBoundRequest>) {
            if (spec.profile_override.has_value()) {
              return core::analyze(*spec.profile_override, spec.epsilon,
                                   spec.delta, spec.energy);
            }
            const core::CircuitProfile& profile =
                request.circuit.profile(spec.profile, how);
            result.profile = profile;
            return core::analyze(profile, spec.epsilon, spec.delta,
                                 spec.energy);
          } else if constexpr (std::is_same_v<Spec, ProfileRequest>) {
            return request.circuit.profile(spec.options, how);
          } else if constexpr (std::is_same_v<Spec, FaultCampaignRequest>) {
            const netlist::Circuit* golden =
                request.golden.has_value() ? &request.golden->circuit()
                                           : nullptr;
            return fault::run_campaign(request.circuit.circuit(), golden,
                                       spec.options, how);
          } else if constexpr (std::is_same_v<Spec, LintRequest>) {
            return lint_circuit(request.circuit.circuit(), spec.options);
          } else if constexpr (std::is_same_v<Spec, CecRequest>) {
            if (!request.golden.has_value()) {
              throw std::invalid_argument(
                  "cec requires a golden circuit to compare against");
            }
            return check_equivalence(request.circuit.circuit(),
                                     request.golden->circuit(), spec.options);
          } else {
            static_assert(std::is_same_v<Spec, HardenRequest>);
            return harden::pareto_sweep(request.circuit, spec.options, how);
          }
        },
        request.options);
    set_payload(result, std::move(payload));
    result.ok = true;
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
    result.profile.reset();
  }
  return result;
}

}  // namespace enb::analysis
