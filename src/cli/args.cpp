#include "cli/args.hpp"

#include <cstddef>

#include "util/numeric.hpp"

namespace enb::cli {

Args parse_args(const std::vector<std::string>& argv) {
  Args args;
  const std::size_t argc = argv.size();
  for (std::size_t i = 0; i < argc && args.ok(); ++i) {
    const std::string& arg = argv[i];

    // Fetches the flag's value argument, bounds-checked: a trailing flag
    // reports an error instead of reading past the end.
    const auto next_value = [&](const std::string& flag,
                                std::string& slot) -> bool {
      if (i + 1 >= argc) {
        args.error = "option " + flag + " requires a value";
        return false;
      }
      slot = argv[++i];
      return true;
    };
    const auto next_double = [&](const std::string& flag,
                                 double& slot) -> bool {
      std::string text;
      if (!next_value(flag, text)) return false;
      if (!util::parse_double(text, slot)) {
        args.error = "option " + flag + " expects a number, got '" + text + "'";
        return false;
      }
      return true;
    };
    const auto next_int = [&](const std::string& flag, int& slot) -> bool {
      std::string text;
      if (!next_value(flag, text)) return false;
      if (!util::parse_int(text, slot)) {
        args.error =
            "option " + flag + " expects an integer, got '" + text + "'";
        return false;
      }
      return true;
    };

    const auto next_uint64 = [&](const std::string& flag,
                                 std::uint64_t& slot) -> bool {
      std::string text;
      if (!next_value(flag, text)) return false;
      if (!util::parse_uint64(text, slot)) {
        args.error = "option " + flag +
                     " expects a non-negative integer, got '" + text + "'";
        return false;
      }
      return true;
    };

    if (arg == "--eps") {
      next_double(arg, args.eps);
    } else if (arg == "--delta") {
      next_double(arg, args.delta);
    } else if (arg == "--leakage") {
      next_double(arg, args.leakage);
    } else if (arg == "--eps-lo") {
      next_double(arg, args.eps_lo);
    } else if (arg == "--eps-hi") {
      next_double(arg, args.eps_hi);
    } else if (arg == "--couple-leakage") {
      args.couple_leakage = true;
    } else if (arg == "--stream") {
      args.stream = true;
    } else if (arg == "--map") {
      next_int(arg, args.map_fanin);
    } else if (arg == "--points") {
      next_int(arg, args.points);
    } else if (arg == "--threads") {
      int threads = 0;
      if (next_int(arg, threads) && threads < 0) {
        args.error = "option --threads expects a count >= 0, got '" +
                     std::to_string(threads) + "'";
      } else {
        args.threads = static_cast<unsigned>(threads);
      }
    } else if (arg == "--socket") {
      next_value(arg, args.socket);
    } else if (arg == "--max-handles") {
      int capacity = 0;
      if (next_int(arg, capacity) && capacity < 1) {
        args.error = "option --max-handles expects a count >= 1, got '" +
                     std::to_string(capacity) + "'";
      } else {
        args.max_handles = capacity;
      }
    } else if (arg == "--max-cache") {
      int capacity = 0;
      if (next_int(arg, capacity) && capacity < 1) {
        args.error = "option --max-cache expects a count >= 1, got '" +
                     std::to_string(capacity) + "'";
      } else {
        args.max_cache = capacity;
      }
    } else if (arg == "--patterns") {
      next_uint64(arg, args.patterns);
    } else if (arg == "--seed") {
      next_uint64(arg, args.seed);
    } else if (arg == "--exhaustive") {
      args.exhaustive = true;
    } else if (arg == "--bundle-width") {
      next_int(arg, args.bundle_width);
    } else if (arg == "--no-collapse") {
      args.no_collapse = true;
    } else if (arg == "--check-scalar") {
      args.check_scalar = true;
    } else if (arg == "--drop") {
      args.drop = true;
    } else if (arg == "--lanes") {
      next_uint64(arg, args.lanes);
    } else if (arg == "--sample") {
      next_uint64(arg, args.sample);
    } else if (arg == "--prune-untestable") {
      args.prune_untestable = true;
    } else if (arg == "--allow-voter-replicas") {
      args.allow_voter_replicas = true;
    } else if (arg == "--tmr") {
      args.gen_tmr = true;
    } else if (arg == "--strash") {
      args.gen_strash = true;
    } else if (arg == "--golden") {
      next_value(arg, args.golden);
    } else if (arg == "--style") {
      next_value(arg, args.style);
    } else if (arg == "--granularity") {
      next_value(arg, args.granularity);
    } else if (arg == "--top-k") {
      next_uint64(arg, args.top_k);
    } else if (arg == "--emit") {
      next_value(arg, args.emit);
    } else if (arg == "--ans") {
      next_value(arg, args.ans);
    } else if (arg == "--trace") {
      next_value(arg, args.trace);
    } else if (arg == "-o") {
      next_value(arg, args.out);
    } else if (arg == "--csv") {
      next_value(arg, args.csv);
    } else if (arg == "--json") {
      next_value(arg, args.json);
    } else if (!arg.empty() && arg[0] == '-') {
      args.error = "unknown option: " + arg;
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

const std::vector<std::string>& known_commands() {
  static const std::vector<std::string> commands = {
      "profile", "analyze", "sweep",  "batch", "faultsim", "cec",
      "lint",    "harden",  "serve",  "client", "gen",     "list"};
  return commands;
}

bool is_known_command(const std::string& name) {
  for (const std::string& command : known_commands()) {
    if (command == name) return true;
  }
  return false;
}

}  // namespace enb::cli
