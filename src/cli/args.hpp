// Argument parsing for the enbound command-line tool, split out of tools/
// so the edge cases (trailing value-taking flags, non-numeric values) are
// unit-testable without spawning the binary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace enb::cli {

struct Args {
  std::vector<std::string> positional;
  double eps = 0.01;
  double delta = 0.01;
  double leakage = 0.5;
  bool couple_leakage = false;
  int map_fanin = 3;  // 0 = do not map
  double eps_lo = 1e-3;
  double eps_hi = 0.4;
  int points = 20;
  unsigned threads = 0;  // batch: 0 = global pool, 1 = serial, N = dedicated
  bool stream = false;   // batch: print each result as its job finishes
  std::string socket;    // serve/client: Unix domain socket path
  int max_handles = 64;  // serve: handle-registry LRU capacity
  int max_cache = 4096;  // serve: result-cache LRU capacity
  // faultsim knobs (defaults mirror fault::CampaignOptions).
  std::uint64_t patterns = 256;  // random-pattern budget
  bool exhaustive = false;       // enumerate all logical assignments
  std::uint64_t seed = 0xFA17;   // campaign pattern-stream seed
  int bundle_width = 1;          // ft/ bundle decode width (1 = plain)
  bool no_collapse = false;      // disable equivalence collapsing
  bool check_scalar = false;     // diff vs the scalar reference simulator
  bool drop = false;             // fault dropping (retire detected classes)
  std::uint64_t lanes = 64;      // SIMD fault lanes per sweep
  std::uint64_t sample = 0;      // sampled class count (0 = full universe)
  bool prune_untestable = false; // drop statically-untestable classes
  std::string golden;            // golden circuit spec (masking campaigns)
  // lint / gen knobs.
  bool allow_voter_replicas = false;  // lint: silence voter-replicas
  bool gen_tmr = false;               // gen: emit the TMR'd circuit
  bool gen_strash = false;            // gen: emit the strash-rewritten circuit
  // harden knobs (empty / 0 = sweep the full axis).
  std::string style;        // pin the redundancy style (tmr|dwc|selective)
  std::string granularity;  // pin the insertion granularity (gate|cone|output)
  std::uint64_t top_k = 0;  // pin the selective cone count
  std::string emit;         // directory for frontier-winner .bench files
  std::string ans;               // .ans output path
  std::string trace;             // Chrome trace-event JSON output path
  std::string out;
  std::string csv;
  std::string json;

  // Non-empty when parsing failed; names the offending flag and why, e.g.
  // "option --eps requires a value". Flags and positionals parsed before the
  // failure are still filled in.
  std::string error;

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

// Parses everything after argv[0]. Never throws and never reads past the
// end of `argv`: a value-taking flag with no following argument, or with a
// malformed value, reports through Args::error instead.
[[nodiscard]] Args parse_args(const std::vector<std::string>& argv);

// The tool's subcommand vocabulary, in usage order. main() rejects anything
// else up front — naming the valid commands — instead of falling through to
// the generic usage text.
[[nodiscard]] const std::vector<std::string>& known_commands();
[[nodiscard]] bool is_known_command(const std::string& name);

}  // namespace enb::cli
