// Column-aligned text tables (plain or markdown) for bench output.
#pragma once

#include <string>
#include <vector>

namespace enb::report {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row of pre-formatted cells; must match the header count.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with `precision` significant digits;
  // non-finite values render as "inf"/"-inf"/"nan".
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 4);

  [[nodiscard]] std::string to_text() const;      // aligned, padded columns
  [[nodiscard]] std::string to_markdown() const;  // GitHub-style pipes

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_columns() const noexcept {
    return headers_.size();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Shared numeric formatting (also used by the CSV writer).
[[nodiscard]] std::string format_double(double value, int precision = 6);

}  // namespace enb::report
