#include "report/csv.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "report/table.hpp"

namespace enb::report {

namespace {

std::string escape_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

void write_csv_row(std::ostream& out, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out << ",";
    out << escape_cell(cells[i]);
  }
  out << "\n";
}

void write_csv(std::ostream& out, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  write_csv_row(out, header);
  for (const auto& row : rows) {
    if (row.size() != header.size()) {
      throw std::invalid_argument("write_csv: row width mismatch");
    }
    write_csv_row(out, row);
  }
}

void write_series_csv(std::ostream& out, const std::string& x_name,
                      const std::vector<Series>& series) {
  if (series.empty()) {
    throw std::invalid_argument("write_series_csv: no series");
  }
  const std::size_t n = series.front().size();
  for (const Series& s : series) {
    if (s.size() != n) {
      throw std::invalid_argument(
          "write_series_csv: series lengths differ (" + s.name + ")");
    }
  }
  std::vector<std::string> header{x_name};
  for (const Series& s : series) header.push_back(s.name);
  write_csv_row(out, header);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::string> row;
    row.reserve(series.size() + 1);
    row.push_back(format_double(series.front().x[i], 10));
    for (const Series& s : series) row.push_back(format_double(s.y[i], 10));
    write_csv_row(out, row);
  }
}

bool ensure_directory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  return std::filesystem::is_directory(path, ec);
}

namespace {

std::ofstream open_or_throw(const std::string& path) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) ensure_directory(parent.string());
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write file: " + path);
  return out;
}

}  // namespace

void write_csv_file(const std::string& path,
                    const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows) {
  auto out = open_or_throw(path);
  write_csv(out, header, rows);
}

void write_series_csv_file(const std::string& path, const std::string& x_name,
                           const std::vector<Series>& series) {
  auto out = open_or_throw(path);
  write_series_csv(out, x_name, series);
}

}  // namespace enb::report
