#include "report/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace enb::report {

std::string format_double(double value, int precision) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  std::ostringstream out;
  out.precision(precision);
  out << value;
  return out.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::add_row(const std::string& label, const std::vector<double>& values,
                    int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << cells[c];
      out << std::string(width[c] - cells[c].size(), ' ');
    }
    out << "\n";
  };
  emit_row(headers_);
  std::size_t total = headers_.size() > 0 ? 2 * (headers_.size() - 1) : 0;
  for (std::size_t w : width) total += w;
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_markdown() const {
  std::ostringstream out;
  out << "|";
  for (const auto& h : headers_) out << " " << h << " |";
  out << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out << "---|";
  out << "\n";
  for (const auto& row : rows_) {
    out << "|";
    for (const auto& cell : row) out << " " << cell << " |";
    out << "\n";
  }
  return out.str();
}

}  // namespace enb::report
