// Named (x, y) series: the common currency between the sweep producers and
// the table/chart/CSV writers.
#pragma once

#include <string>
#include <vector>

namespace enb::report {

struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;

  Series() = default;
  Series(std::string series_name, std::vector<double> xs, std::vector<double> ys);

  void push(double xv, double yv);
  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }
  [[nodiscard]] bool empty() const noexcept { return x.empty(); }

  // Min/max over finite y values; returns false when no finite value exists.
  [[nodiscard]] bool finite_y_range(double& lo, double& hi) const noexcept;
};

}  // namespace enb::report
