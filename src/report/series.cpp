#include "report/series.hpp"

#include <cmath>
#include <stdexcept>

namespace enb::report {

Series::Series(std::string series_name, std::vector<double> xs,
               std::vector<double> ys)
    : name(std::move(series_name)), x(std::move(xs)), y(std::move(ys)) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("Series: x and y must have equal length");
  }
}

void Series::push(double xv, double yv) {
  x.push_back(xv);
  y.push_back(yv);
}

bool Series::finite_y_range(double& lo, double& hi) const noexcept {
  bool any = false;
  for (double v : y) {
    if (!std::isfinite(v)) continue;
    if (!any) {
      lo = hi = v;
      any = true;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  return any;
}

}  // namespace enb::report
