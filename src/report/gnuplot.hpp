// Emits .dat + .gp file pairs so any figure can be re-rendered with gnuplot
// (`gnuplot bench_out/fig3.gp` produces fig3.png).
#pragma once

#include <string>
#include <vector>

#include "report/series.hpp"

namespace enb::report {

struct GnuplotOptions {
  std::string title;
  std::string x_label;
  std::string y_label;
  bool log_x = false;
  bool log_y = false;
};

// Writes <dir>/<stem>.dat (whitespace table: x then one column per series)
// and <dir>/<stem>.gp (a plot script producing <stem>.png). All series must
// share the same x grid.
void write_gnuplot(const std::string& dir, const std::string& stem,
                   const std::vector<Series>& series,
                   const GnuplotOptions& options = {});

}  // namespace enb::report
