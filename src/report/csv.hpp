// CSV export for downstream plotting (gnuplot/python). Values are written
// with full precision; cells containing commas/quotes are quoted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "report/series.hpp"

namespace enb::report {

void write_csv_row(std::ostream& out, const std::vector<std::string>& cells);

// Generic table-shaped CSV.
void write_csv(std::ostream& out, const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

// Series-shaped CSV: one x column (taken from the first series — all series
// must share x) and one column per series.
void write_series_csv(std::ostream& out, const std::string& x_name,
                      const std::vector<Series>& series);

// File variants; create the parent directory first (see ensure_directory).
void write_csv_file(const std::string& path,
                    const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows);
void write_series_csv_file(const std::string& path, const std::string& x_name,
                           const std::vector<Series>& series);

// mkdir -p equivalent; returns true if the directory exists afterwards.
bool ensure_directory(const std::string& path);

}  // namespace enb::report
