#include "report/gnuplot.hpp"

#include <fstream>
#include <stdexcept>

#include "report/csv.hpp"
#include "report/table.hpp"

namespace enb::report {

void write_gnuplot(const std::string& dir, const std::string& stem,
                   const std::vector<Series>& series,
                   const GnuplotOptions& options) {
  if (series.empty()) {
    throw std::invalid_argument("write_gnuplot: no series");
  }
  const std::size_t n = series.front().size();
  for (const Series& s : series) {
    if (s.size() != n) {
      throw std::invalid_argument("write_gnuplot: series lengths differ");
    }
  }
  if (!ensure_directory(dir)) {
    throw std::runtime_error("write_gnuplot: cannot create directory " + dir);
  }

  const std::string dat_path = dir + "/" + stem + ".dat";
  std::ofstream dat(dat_path);
  if (!dat) throw std::runtime_error("cannot write " + dat_path);
  dat << "# x";
  for (const Series& s : series) dat << " " << s.name;
  dat << "\n";
  for (std::size_t i = 0; i < n; ++i) {
    dat << format_double(series.front().x[i], 10);
    for (const Series& s : series) dat << " " << format_double(s.y[i], 10);
    dat << "\n";
  }

  const std::string gp_path = dir + "/" + stem + ".gp";
  std::ofstream gp(gp_path);
  if (!gp) throw std::runtime_error("cannot write " + gp_path);
  gp << "set terminal pngcairo size 900,600\n";
  gp << "set output '" << stem << ".png'\n";
  if (!options.title.empty()) gp << "set title '" << options.title << "'\n";
  if (!options.x_label.empty()) gp << "set xlabel '" << options.x_label << "'\n";
  if (!options.y_label.empty()) gp << "set ylabel '" << options.y_label << "'\n";
  if (options.log_x) gp << "set logscale x\n";
  if (options.log_y) gp << "set logscale y\n";
  gp << "set key outside\n";
  gp << "plot ";
  for (std::size_t si = 0; si < series.size(); ++si) {
    if (si != 0) gp << ", \\\n     ";
    gp << "'" << stem << ".dat' using 1:" << (si + 2)
       << " with linespoints title '" << series[si].name << "'";
  }
  gp << "\n";
}

}  // namespace enb::report
