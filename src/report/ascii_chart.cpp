#include "report/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "report/table.hpp"

namespace enb::report {

namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

double axis_transform(double v, bool log_scale) {
  return log_scale ? std::log10(v) : v;
}

bool usable(double v, bool log_scale) {
  return std::isfinite(v) && (!log_scale || v > 0.0);
}

}  // namespace

std::string line_chart(const std::vector<Series>& series,
                       const ChartOptions& options) {
  if (series.empty()) {
    throw std::invalid_argument("line_chart: no series");
  }
  const int w = std::max(16, options.width);
  const int h = std::max(6, options.height);

  // Collect usable points to establish ranges.
  double x_lo = 0, x_hi = 0, y_lo = 0, y_hi = 0;
  bool any = false;
  for (const Series& s : series) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (!usable(s.x[i], options.log_x) || !usable(s.y[i], options.log_y)) {
        continue;
      }
      const double xv = axis_transform(s.x[i], options.log_x);
      const double yv = axis_transform(s.y[i], options.log_y);
      if (!any) {
        x_lo = x_hi = xv;
        y_lo = y_hi = yv;
        any = true;
      } else {
        x_lo = std::min(x_lo, xv);
        x_hi = std::max(x_hi, xv);
        y_lo = std::min(y_lo, yv);
        y_hi = std::max(y_hi, yv);
      }
    }
  }
  if (!any) return "(no plottable points)\n";
  if (x_hi == x_lo) x_hi = x_lo + 1.0;
  if (y_hi == y_lo) y_hi = y_lo + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    const Series& s = series[si];
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (!usable(s.x[i], options.log_x) || !usable(s.y[i], options.log_y)) {
        continue;
      }
      const double xv = axis_transform(s.x[i], options.log_x);
      const double yv = axis_transform(s.y[i], options.log_y);
      const int col = static_cast<int>(
          std::lround((xv - x_lo) / (x_hi - x_lo) * (w - 1)));
      const int row = static_cast<int>(
          std::lround((yv - y_lo) / (y_hi - y_lo) * (h - 1)));
      grid[static_cast<std::size_t>(h - 1 - row)][static_cast<std::size_t>(col)] =
          glyph;
    }
  }

  std::ostringstream out;
  if (!options.title.empty()) out << options.title << "\n";
  const auto y_at = [&](int row) {
    const double t = y_lo + (y_hi - y_lo) * (h - 1 - row) / (h - 1);
    return options.log_y ? std::pow(10.0, t) : t;
  };
  for (int row = 0; row < h; ++row) {
    std::string label = format_double(y_at(row), 3);
    if (row % 4 != 0) label.clear();
    out << (label.size() < 10 ? std::string(10 - label.size(), ' ') : "")
        << label << " |" << grid[static_cast<std::size_t>(row)] << "\n";
  }
  out << std::string(11, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-')
      << "\n";
  const double x_left = options.log_x ? std::pow(10.0, x_lo) : x_lo;
  const double x_right = options.log_x ? std::pow(10.0, x_hi) : x_hi;
  std::string x_line = format_double(x_left, 3);
  const std::string x_right_text = format_double(x_right, 3);
  const int pad = w - static_cast<int>(x_line.size()) -
                  static_cast<int>(x_right_text.size());
  out << std::string(12, ' ') << x_line << std::string(std::max(1, pad), ' ')
      << x_right_text << "\n";
  if (!options.x_label.empty() || !options.y_label.empty()) {
    out << std::string(12, ' ') << options.x_label;
    if (!options.y_label.empty()) out << "   (y: " << options.y_label << ")";
    out << "\n";
  }
  out << "  legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out << "  " << kGlyphs[si % sizeof(kGlyphs)] << " " << series[si].name;
  }
  out << "\n";
  return out.str();
}

std::string bar_chart(const std::vector<std::string>& value_names,
                      const std::vector<BarGroup>& groups,
                      const ChartOptions& options) {
  if (value_names.empty() || groups.empty()) {
    throw std::invalid_argument("bar_chart: empty input");
  }
  double hi = 0.0;
  std::size_t label_w = 0;
  for (const BarGroup& g : groups) {
    if (g.values.size() != value_names.size()) {
      throw std::invalid_argument("bar_chart: group width mismatch");
    }
    label_w = std::max(label_w, g.label.size());
    for (double v : g.values) {
      if (std::isfinite(v)) hi = std::max(hi, v);
    }
  }
  if (hi <= 0.0) hi = 1.0;
  const int w = std::max(16, options.width - static_cast<int>(label_w) - 14);

  std::ostringstream out;
  if (!options.title.empty()) out << options.title << "\n";
  for (const BarGroup& g : groups) {
    for (std::size_t vi = 0; vi < g.values.size(); ++vi) {
      const std::string label = vi == 0 ? g.label : std::string();
      out << label << std::string(label_w - label.size(), ' ') << " ";
      const char glyph = kGlyphs[vi % sizeof(kGlyphs)];
      const double v = g.values[vi];
      int len = 0;
      if (std::isfinite(v)) {
        len = static_cast<int>(std::lround(v / hi * w));
        len = std::clamp(len, v > 0 ? 1 : 0, w);
      }
      out << std::string(static_cast<std::size_t>(len), glyph);
      if (std::isfinite(v)) {
        out << " " << format_double(v, 4);
      } else {
        out << " inf";
      }
      out << "\n";
    }
  }
  out << "  legend:";
  for (std::size_t vi = 0; vi < value_names.size(); ++vi) {
    out << "  " << kGlyphs[vi % sizeof(kGlyphs)] << " " << value_names[vi];
  }
  out << "\n";
  return out.str();
}

}  // namespace enb::report
