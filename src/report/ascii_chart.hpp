// Terminal plotting: multi-series line charts and grouped bar charts with
// optional logarithmic axes. The repro_why note for this paper flags the
// plotting tooling as the clunky part — this module makes every figure
// viewable directly in the bench output.
#pragma once

#include <string>
#include <vector>

#include "report/series.hpp"

namespace enb::report {

struct ChartOptions {
  int width = 72;   // plot area columns
  int height = 20;  // plot area rows
  bool log_x = false;
  bool log_y = false;
  std::string title;
  std::string x_label;
  std::string y_label;
};

// Renders the series overlaid; each series uses its own glyph and the legend
// maps glyphs to names. Non-finite points are skipped.
[[nodiscard]] std::string line_chart(const std::vector<Series>& series,
                                     const ChartOptions& options = {});

// Grouped horizontal bar chart: one group per label, one bar per series
// value (e.g. per-benchmark bars at three epsilons, Figures 7/8).
struct BarGroup {
  std::string label;
  std::vector<double> values;  // one per series name
};

[[nodiscard]] std::string bar_chart(const std::vector<std::string>& value_names,
                                    const std::vector<BarGroup>& groups,
                                    const ChartOptions& options = {});

}  // namespace enb::report
