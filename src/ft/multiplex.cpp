#include "ft/multiplex.hpp"

#include <numeric>
#include <stdexcept>
#include <string>

#include "ft/voter.hpp"
#include "sim/bitpack.hpp"
#include "sim/logic_sim.hpp"
#include "sim/noise.hpp"
#include "sim/prng.hpp"

namespace enb::ft {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

namespace {

std::vector<std::size_t> random_permutation(std::size_t n,
                                            sim::Xoshiro256& rng) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  return perm;
}

}  // namespace

MultiplexedCircuit multiplex_transform(const Circuit& circuit,
                                       const MultiplexOptions& options) {
  const int n = options.bundle_width;
  if (n < 3 || n % 2 == 0) {
    throw std::invalid_argument(
        "multiplex_transform: bundle_width must be odd and >= 3");
  }
  if (options.restorative_stages < 0) {
    throw std::invalid_argument(
        "multiplex_transform: restorative_stages must be >= 0");
  }
  sim::Xoshiro256 rng(options.seed);

  MultiplexedCircuit result;
  result.bundle_width = n;
  Circuit& out = result.circuit;
  out.set_name(circuit.name() + "_mux" + std::to_string(n));

  // bundle[id] = wires of the multiplexed version of original node id.
  std::vector<std::vector<NodeId>> bundle(circuit.node_count());

  // Each original primary input becomes N input wires (the environment is
  // assumed to supply N copies — inputs are error-free in the paper's model).
  for (NodeId id : circuit.inputs()) {
    std::vector<NodeId> wires;
    wires.reserve(static_cast<std::size_t>(n));
    for (int w = 0; w < n; ++w) {
      wires.push_back(
          out.add_input(circuit.node_name(id) + "_w" + std::to_string(w)));
    }
    bundle[id] = std::move(wires);
  }
  result.replica_begin = static_cast<NodeId>(out.node_count());

  const auto restore = [&](std::vector<NodeId> wires) {
    for (int stage = 0; stage < options.restorative_stages; ++stage) {
      // Three independent shuffles; wire i of the new bundle votes over the
      // i-th element of each shuffle. Distinctness per-triple is not
      // guaranteed (von Neumann's construction doesn't need it).
      const auto p1 = random_permutation(wires.size(), rng);
      const auto p2 = random_permutation(wires.size(), rng);
      const auto p3 = random_permutation(wires.size(), rng);
      std::vector<NodeId> next;
      next.reserve(wires.size());
      for (std::size_t i = 0; i < wires.size(); ++i) {
        next.push_back(append_maj3(out, wires[p1[i]], wires[p2[i]],
                                   wires[p3[i]], VoterStyle::kTwoInput));
      }
      wires = std::move(next);
    }
    return wires;
  };

  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    const auto& node = circuit.node(id);
    if (node.type == GateType::kInput) continue;
    if (netlist::is_constant(node.type)) {
      std::vector<NodeId> wires;
      for (int w = 0; w < n; ++w) {
        wires.push_back(out.add_const(node.type == GateType::kConst1));
      }
      bundle[id] = std::move(wires);
      continue;
    }
    if (node.fanins.size() > 2) {
      throw std::invalid_argument(
          "multiplex_transform: gate " + circuit.node_name(id) + " has " +
          std::to_string(node.fanins.size()) +
          " fanins; map to a 2-input basis first");
    }
    // Executive stage: N copies of the gate over permuted input bundles.
    std::vector<NodeId> wires;
    wires.reserve(static_cast<std::size_t>(n));
    if (node.fanins.size() == 1) {
      const auto& src = bundle[node.fanins[0]];
      const auto perm = random_permutation(src.size(), rng);
      for (int w = 0; w < n; ++w) {
        wires.push_back(out.add_gate(node.type, src[perm[static_cast<std::size_t>(w)]]));
      }
    } else {
      const auto& src_a = bundle[node.fanins[0]];
      const auto& src_b = bundle[node.fanins[1]];
      const auto pa = random_permutation(src_a.size(), rng);
      const auto pb = random_permutation(src_b.size(), rng);
      for (int w = 0; w < n; ++w) {
        wires.push_back(out.add_gate(node.type,
                                     src_a[pa[static_cast<std::size_t>(w)]],
                                     src_b[pb[static_cast<std::size_t>(w)]]));
      }
    }
    bundle[id] = restore(std::move(wires));
  }
  result.replica_end = static_cast<NodeId>(out.node_count());

  result.output_bundles.reserve(circuit.num_outputs());
  for (std::size_t pos = 0; pos < circuit.num_outputs(); ++pos) {
    const auto& wires = bundle[circuit.outputs()[pos]];
    result.output_bundles.push_back(wires);
    for (int w = 0; w < n; ++w) {
      out.add_output(wires[static_cast<std::size_t>(w)],
                     circuit.output_name(pos) + "_w" + std::to_string(w));
    }
  }
  return result;
}

sim::ReliabilityResult estimate_multiplexed_reliability(
    const MultiplexedCircuit& mc, const Circuit& golden, double epsilon,
    const sim::ReliabilityOptions& options) {
  if (mc.circuit.num_inputs() !=
      golden.num_inputs() * static_cast<std::size_t>(mc.bundle_width)) {
    throw std::invalid_argument(
        "estimate_multiplexed_reliability: input bundle mismatch");
  }
  if (mc.output_bundles.size() != golden.num_outputs()) {
    throw std::invalid_argument(
        "estimate_multiplexed_reliability: output bundle mismatch");
  }
  if (options.trials == 0) {
    throw std::invalid_argument(
        "estimate_multiplexed_reliability: trials must be > 0");
  }
  const std::uint64_t passes =
      (options.trials + sim::kWordBits - 1) / sim::kWordBits;

  sim::Xoshiro256 rng(options.seed);
  sim::NoisySim noisy(mc.circuit, epsilon, rng.next());
  sim::LogicSim clean(golden);
  std::vector<sim::Word> golden_inputs(golden.num_inputs());
  std::vector<sim::Word> mux_inputs(mc.circuit.num_inputs());
  sim::LaneCounter counter(mc.bundle_width);

  std::uint64_t failures = 0;
  for (std::uint64_t pass = 0; pass < passes; ++pass) {
    for (std::size_t i = 0; i < golden_inputs.size(); ++i) {
      const sim::Word w = options.input_one_probability == 0.5
                              ? rng.next()
                              : sim::bernoulli_word(
                                    rng, options.input_one_probability);
      golden_inputs[i] = w;
      // All wires of an input bundle carry the same (error-free) value.
      for (int b = 0; b < mc.bundle_width; ++b) {
        mux_inputs[i * static_cast<std::size_t>(mc.bundle_width) +
                   static_cast<std::size_t>(b)] = w;
      }
    }
    noisy.eval(mux_inputs);
    clean.eval(golden_inputs);

    sim::Word wrong = 0;
    for (std::size_t pos = 0; pos < mc.output_bundles.size(); ++pos) {
      counter.reset();
      for (NodeId wire : mc.output_bundles[pos]) {
        counter.add(noisy.value(wire));
      }
      const sim::Word decoded = counter.greater_than(mc.bundle_width / 2);
      wrong |= decoded ^ clean.value(golden.outputs()[pos]);
    }
    failures += static_cast<std::uint64_t>(sim::popcount(wrong));
  }
  return sim::wilson_interval(failures, passes * sim::kWordBits);
}

}  // namespace enb::ft
