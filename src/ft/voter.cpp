#include "ft/voter.hpp"

#include <stdexcept>
#include <string>

namespace enb::ft {

using netlist::Circuit;
using netlist::GateType;
using netlist::NodeId;

NodeId append_maj3(Circuit& c, NodeId a, NodeId b, NodeId d,
                   VoterStyle style) {
  if (style == VoterStyle::kMajGate) {
    return c.add_gate(GateType::kMaj, a, b, d);
  }
  const NodeId ab = c.add_gate(GateType::kAnd, a, b);
  const NodeId a_or_b = c.add_gate(GateType::kOr, a, b);
  const NodeId d_sel = c.add_gate(GateType::kAnd, d, a_or_b);
  return c.add_gate(GateType::kOr, ab, d_sel);
}

namespace {

// {sum, carry} of a 1-bit addition.
struct Compressed {
  NodeId sum;
  NodeId carry;
};

Compressed full_add(Circuit& c, NodeId a, NodeId b, NodeId cin) {
  const NodeId axb = c.add_gate(GateType::kXor, a, b);
  const NodeId sum = c.add_gate(GateType::kXor, axb, cin);
  const NodeId ab = c.add_gate(GateType::kAnd, a, b);
  const NodeId ct = c.add_gate(GateType::kAnd, cin, axb);
  return {sum, c.add_gate(GateType::kOr, ab, ct)};
}

Compressed half_add(Circuit& c, NodeId a, NodeId b) {
  return {c.add_gate(GateType::kXor, a, b), c.add_gate(GateType::kAnd, a, b)};
}

}  // namespace

NodeId append_majority(Circuit& c, const std::vector<NodeId>& signals,
                       VoterStyle style) {
  const std::size_t n = signals.size();
  if (n < 3 || n % 2 == 0) {
    throw std::invalid_argument(
        "append_majority: need an odd count >= 3, got " + std::to_string(n));
  }
  if (n == 3) return append_maj3(c, signals[0], signals[1], signals[2], style);

  // Population count via column compression (Wallace-style over one column),
  // then compare against the threshold N/2 (i.e. count >= (N+1)/2).
  std::vector<std::vector<NodeId>> columns(1, signals);
  for (std::size_t w = 0; w < columns.size(); ++w) {
    while (columns[w].size() >= 3) {
      const NodeId x = columns[w][0];
      const NodeId y = columns[w][1];
      const NodeId z = columns[w][2];
      columns[w].erase(columns[w].begin(), columns[w].begin() + 3);
      const Compressed fa = full_add(c, x, y, z);
      columns[w].push_back(fa.sum);
      if (w + 1 == columns.size()) columns.emplace_back();
      columns[w + 1].push_back(fa.carry);
    }
    if (columns[w].size() == 2) {
      const Compressed ha = half_add(c, columns[w][0], columns[w][1]);
      columns[w].assign(1, ha.sum);
      if (w + 1 == columns.size()) columns.emplace_back();
      columns[w + 1].push_back(ha.carry);
    }
  }
  // columns[w] now holds bit w of the count. Compare count >= threshold.
  const auto threshold = static_cast<std::uint64_t>((n + 1) / 2);
  // count >= threshold  <=>  OR over prefixes where count's bit > threshold's
  // bit and all higher bits equal, or all bits equal.
  NodeId ge = c.add_const(true);  // running "suffix so far equal" -> >= holds
  // Process from LSB to MSB maintaining: ge = (count[0..w] >= thr[0..w]).
  for (std::size_t w = 0; w < columns.size(); ++w) {
    const NodeId bit = columns[w][0];
    const bool tbit = ((threshold >> w) & 1U) != 0;
    if (tbit) {
      // ge' = bit & (ge | ...) : count bit 1 keeps previous, 0 fails unless
      // higher bits compensate (handled at next iterations). Exact update:
      // ge' = bit ? ge_prev_or_equal : 0 when thr bit is 1 ->
      // ge' = bit & ge  |  bit & !ge ... simplifies to: ge' = bit & ge | bit & ~ge? No:
      // standard: ge' = (bit > tbit) | (bit == tbit) & ge = (bit & !tbit) | (bit XNOR tbit) & ge.
      ge = c.add_gate(GateType::kAnd, bit, ge);
    } else {
      ge = c.add_gate(GateType::kOr, bit, ge);
    }
  }
  return ge;
}

}  // namespace enb::ft
