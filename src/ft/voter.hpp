// Majority voters, the glue of every modular-redundancy scheme. Voters are
// built from ordinary gates so they are themselves failure-prone when
// simulated with NoisySim — matching the paper's setting where *all* internal
// gates fail independently.
#pragma once

#include <vector>

#include "netlist/circuit.hpp"

namespace enb::ft {

enum class VoterStyle {
  kMajGate,   // a single MAJ3 gate per 3-way vote
  kTwoInput,  // ab + c(a|b): four 2-input gates per 3-way vote
};

// Appends a majority-of-3 and returns its output node.
[[nodiscard]] netlist::NodeId append_maj3(netlist::Circuit& c,
                                          netlist::NodeId a, netlist::NodeId b,
                                          netlist::NodeId d,
                                          VoterStyle style = VoterStyle::kTwoInput);

// Appends an exact majority-of-N (N odd, >= 3): population count with
// full/half adders followed by a threshold comparison against N/2. For N == 3
// this reduces to append_maj3.
[[nodiscard]] netlist::NodeId append_majority(
    netlist::Circuit& c, const std::vector<netlist::NodeId>& signals,
    VoterStyle style = VoterStyle::kTwoInput);

}  // namespace enb::ft
