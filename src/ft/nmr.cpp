#include "ft/nmr.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "netlist/transform.hpp"

namespace enb::ft {

using netlist::Circuit;
using netlist::NodeId;

NmrResult nmr_transform(const Circuit& circuit, const NmrOptions& options) {
  if (options.copies < 3 || options.copies % 2 == 0) {
    throw std::invalid_argument("nmr_transform: copies must be odd and >= 3");
  }
  NmrResult result;
  Circuit& out = result.circuit;
  out.set_name(circuit.name() + "_nmr" + std::to_string(options.copies));

  std::vector<NodeId> inputs;
  inputs.reserve(circuit.num_inputs());
  for (NodeId id : circuit.inputs()) {
    inputs.push_back(out.add_input(circuit.node_name(id)));
  }

  // replica_outputs[copy][output position]
  result.replica_begin = static_cast<NodeId>(out.node_count());
  std::vector<std::vector<NodeId>> replica_outputs;
  replica_outputs.reserve(static_cast<std::size_t>(options.copies));
  for (int copy = 0; copy < options.copies; ++copy) {
    replica_outputs.push_back(netlist::append_circuit(out, circuit, inputs));
  }
  result.replica_gates = out.gate_count();
  result.replica_end = static_cast<NodeId>(out.node_count());

  for (std::size_t pos = 0; pos < circuit.num_outputs(); ++pos) {
    std::vector<NodeId> votes;
    votes.reserve(static_cast<std::size_t>(options.copies));
    for (int copy = 0; copy < options.copies; ++copy) {
      votes.push_back(replica_outputs[static_cast<std::size_t>(copy)][pos]);
    }
    out.add_output(append_majority(out, votes, options.voter),
                   circuit.output_name(pos));
  }
  result.voter_gates = out.gate_count() - result.replica_gates;
  return result;
}

Circuit cascaded_tmr(const Circuit& circuit, int levels, VoterStyle voter) {
  if (levels < 0 || levels > 4) {
    throw std::invalid_argument("cascaded_tmr: levels must be in [0, 4]");
  }
  Circuit current = netlist::clone(circuit);
  NmrOptions options;
  options.copies = 3;
  options.voter = voter;
  for (int level = 0; level < levels; ++level) {
    current = nmr_transform(current, options).circuit;
  }
  current.set_name(circuit.name() + "_tmr_l" + std::to_string(levels));
  return current;
}

}  // namespace enb::ft
