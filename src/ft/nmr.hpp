// N-modular redundancy: N copies of the circuit vote per output. The voters
// are built from ordinary gates, so they fail like everything else — von
// Neumann's setting, and the redundancy baseline the paper's Theorem 2 bound
// is compared against in the empirical-vs-bound experiment.
#pragma once

#include "ft/voter.hpp"
#include "netlist/circuit.hpp"

namespace enb::ft {

struct NmrOptions {
  int copies = 3;  // odd, >= 3
  VoterStyle voter = VoterStyle::kTwoInput;
};

struct NmrResult {
  netlist::Circuit circuit;
  std::size_t replica_gates = 0;  // gates in the N replicas
  std::size_t voter_gates = 0;    // gates in the voting stage
  // Node-id range [replica_begin, replica_end) holding the replica logic:
  // ids below it are the shared primary inputs, ids at or above replica_end
  // are the voting stage. The fault-campaign property tests use it to
  // assert that every single stuck-at fault inside a replica is masked.
  netlist::NodeId replica_begin = 0;
  netlist::NodeId replica_end = 0;
};

// Builds the NMR version of `circuit` (same interface: inputs are shared by
// the copies; each output is the majority over the N replica outputs).
[[nodiscard]] NmrResult nmr_transform(const netlist::Circuit& circuit,
                                      const NmrOptions& options = {});

// Recursive TMR: applies nmr_transform(copies=3) `levels` times. Size grows
// by > 3x per level; levels is capped at 4.
[[nodiscard]] netlist::Circuit cascaded_tmr(const netlist::Circuit& circuit,
                                            int levels,
                                            VoterStyle voter = VoterStyle::kTwoInput);

}  // namespace enb::ft
