// Von Neumann multiplexing ("parallel restitution" in the paper's wording):
// every logical signal becomes a bundle of N wires; each gate becomes an
// executive stage of N gate copies with randomly permuted input bundles,
// followed by restorative stages of majority elements over random wire
// triples. The decoded value of a bundle is its majority.
//
// This is the second classic redundancy baseline (besides NMR) used in the
// empirical-vs-bound experiment.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "netlist/circuit.hpp"
#include "sim/reliability.hpp"

namespace enb::ft {

struct MultiplexOptions {
  int bundle_width = 5;        // N wires per logical signal (odd, >= 3)
  int restorative_stages = 1;  // majority rounds after each executive stage
  std::uint64_t seed = 0xF00D; // permutation seed
};

struct MultiplexedCircuit {
  netlist::Circuit circuit;
  int bundle_width = 0;
  // For each original output position, the node ids of its bundle wires
  // (the circuit's own output list is the concatenation of these bundles).
  std::vector<std::vector<netlist::NodeId>> output_bundles;
  // Node-id range [replica_begin, replica_end) holding the multiplexed
  // logic (executive + restorative stages), mirroring
  // NmrResult::replica_begin/replica_end: ids below it are the input
  // bundles, and the construction adds nothing after it. The fault-campaign
  // property tests use it to reason about faults inside the redundant
  // fabric.
  netlist::NodeId replica_begin = 0;
  netlist::NodeId replica_end = 0;

  // The replica range as a half-open pair, for callers that iterate.
  [[nodiscard]] std::pair<netlist::NodeId, netlist::NodeId> replica_range()
      const noexcept {
    return {replica_begin, replica_end};
  }
};

// Builds the multiplexed version. Gates wider than 2 inputs are rejected —
// run the mapper first (von Neumann's construction is defined for 2-input
// executives).
[[nodiscard]] MultiplexedCircuit multiplex_transform(
    const netlist::Circuit& circuit, const MultiplexOptions& options = {});

// Reliability of the multiplexed implementation against the original:
// a trial fails when any output bundle's majority decode differs from the
// golden output.
[[nodiscard]] sim::ReliabilityResult estimate_multiplexed_reliability(
    const MultiplexedCircuit& mc, const netlist::Circuit& golden,
    double epsilon, const sim::ReliabilityOptions& options = {});

}  // namespace enb::ft
