// Span-based tracing into a bounded lock-free ring buffer, exported as
// Chrome trace-event JSON (chrome://tracing, Perfetto's "Open trace file").
//
// An obs::Span is RAII: construction stamps the start, destruction records
// one complete event. Parentage is explicit — a task body receives its
// parent's SpanHandle by value and passes it to the child span's
// constructor. No thread-local "current span" exists, deliberately: pool
// workers interleave tasks from many logical operations, so an implicit
// TLS parent would stitch unrelated work together.
//
// The recorder is disabled by default and every span constructed while
// disabled is a no-op (one relaxed load), which is what keeps `--trace`
// opt-in with zero cost when off. Recording is lock-free: a writer claims a
// slot with one fetch_add and fills it with relaxed atomic stores, so
// concurrent writers — including two lapping writers overwriting the same
// slot — never race under TSan. The ring drops oldest: once more events
// than `capacity` have been recorded, the export window is the most recent
// `capacity` events and dropped() counts the rest.
//
// Contract: enable()/disable()/write_chrome_trace() are control-plane calls
// — run them from one thread while no spans are in flight (the CLI enables
// before dispatch and exports after the command returns; tests join their
// writers first). record() vs record() is safe from any number of threads.
//
// Purely observational, like all of obs/: spans never touch results, cache
// keys, or canonical specs, so traced and untraced runs are bit-identical.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace enb::obs {

// Identity of a recorded span, passed by value to children. id 0 = "no
// span" (the root parent, or a span constructed while tracing is off).
struct SpanHandle {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const noexcept { return id != 0; }
};

class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;
  // Short free-text payload per event ("job=rca8", "verb=batch").
  static constexpr std::size_t kDetailBytes = 32;

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  static TraceRecorder& global();

  // Arms the recorder with a ring of `capacity` events (rounded up to a
  // power of two) and resets the clock epoch and counters.
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable();
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Fresh nonzero span id.
  [[nodiscard]] std::uint64_t new_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // Records one completed span. `name` must outlive the recorder (string
  // literals); `detail` is copied, truncated to kDetailBytes.
  void record(const char* name, SpanHandle handle, SpanHandle parent,
              std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end,
              std::string_view detail = {}) noexcept;

  [[nodiscard]] std::uint64_t recorded() const noexcept;  // total ever
  [[nodiscard]] std::uint64_t dropped() const noexcept;   // overwritten

  // Chrome trace-event JSON: {"traceEvents": [...], "droppedEvents": N}.
  // Events export oldest-first within the retained window.
  void write_chrome_trace(std::ostream& out) const;

 private:
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> id{0};
    std::atomic<std::uint64_t> parent{0};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> dur_ns{0};
    std::atomic<std::uint32_t> tid{0};
    // Detail text packed into words so slot reuse stays a data-race-free
    // atomic overwrite (a char array would race when the ring laps).
    std::array<std::atomic<std::uint64_t>, kDetailBytes / 8> detail{};
  };

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> cursor_{0};  // slots ever claimed
  std::vector<Slot> slots_;               // size is a power of two
  std::chrono::steady_clock::time_point epoch_{};
};

// RAII span: stamps steady_clock on construction, records on destruction.
// Cheap no-op while the recorder is disabled.
class Span {
 public:
  explicit Span(const char* name, SpanHandle parent = {},
                std::string_view detail = {}) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // This span's identity, for constructing children. Invalid while tracing
  // is off — children then record nothing either, so the handle is safe to
  // pass unconditionally.
  [[nodiscard]] SpanHandle handle() const noexcept { return handle_; }

  // Replaces the detail recorded at destruction (e.g. an outcome computed
  // mid-span). Truncated to TraceRecorder::kDetailBytes.
  void set_detail(std::string_view detail) noexcept;

 private:
  const char* name_;
  SpanHandle handle_{};
  SpanHandle parent_{};
  std::chrono::steady_clock::time_point start_{};
  std::array<char, TraceRecorder::kDetailBytes> detail_{};
  std::size_t detail_size_ = 0;
  bool armed_ = false;
};

}  // namespace enb::obs
