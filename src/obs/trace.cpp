#include "obs/trace.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <iomanip>

namespace enb::obs {

namespace {

// Small dense per-thread tag for the Chrome `tid` field — display identity
// only, never causality (parents are explicit handles).
std::uint32_t thread_tag() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tag =
      next.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) noexcept {
  const auto delta =
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count();
  return delta > 0 ? static_cast<std::uint64_t>(delta) : 0;
}

void json_escape(std::ostream& out, std::string_view text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << "\\u" << std::hex << std::setw(4) << std::setfill('0')
          << static_cast<int>(c) << std::dec << std::setfill(' ');
    } else {
      out << c;
    }
  }
}

}  // namespace

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  slots_ = std::vector<Slot>(std::bit_ceil(capacity));
  cursor_.store(0, std::memory_order_relaxed);
  next_id_.store(1, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
}

void TraceRecorder::disable() {
  enabled_.store(false, std::memory_order_release);
}

void TraceRecorder::record(const char* name, SpanHandle handle,
                           SpanHandle parent,
                           std::chrono::steady_clock::time_point start,
                           std::chrono::steady_clock::time_point end,
                           std::string_view detail) noexcept {
  if (!enabled() || slots_.empty()) return;
  const std::uint64_t pos = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[pos & (slots_.size() - 1)];
  slot.name.store(name, std::memory_order_relaxed);
  slot.id.store(handle.id, std::memory_order_relaxed);
  slot.parent.store(parent.id, std::memory_order_relaxed);
  slot.start_ns.store(elapsed_ns(epoch_, start), std::memory_order_relaxed);
  slot.dur_ns.store(elapsed_ns(start, end), std::memory_order_relaxed);
  slot.tid.store(thread_tag(), std::memory_order_relaxed);
  std::array<char, kDetailBytes> packed{};
  if (!detail.empty()) {
    std::memcpy(packed.data(), detail.data(),
                std::min(detail.size(), kDetailBytes));
  }
  for (std::size_t w = 0; w < slot.detail.size(); ++w) {
    std::uint64_t word = 0;
    std::memcpy(&word, packed.data() + w * 8, 8);
    slot.detail[w].store(word, std::memory_order_relaxed);
  }
}

std::uint64_t TraceRecorder::recorded() const noexcept {
  return cursor_.load(std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::dropped() const noexcept {
  const std::uint64_t total = recorded();
  return total > slots_.size() ? total - slots_.size() : 0;
}

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  const std::uint64_t total = recorded();
  const std::uint64_t begin =
      total > slots_.size() ? total - slots_.size() : 0;
  out << "{\"traceEvents\": [";
  // Fixed-point microseconds: the default 6-significant-digit float
  // rendering would round away sub-millisecond timing on a long trace.
  out << std::fixed << std::setprecision(3);
  bool first = true;
  for (std::uint64_t pos = begin; pos < total; ++pos) {
    const Slot& slot = slots_[pos & (slots_.size() - 1)];
    const char* name = slot.name.load(std::memory_order_relaxed);
    if (name == nullptr) continue;
    std::array<char, kDetailBytes + 1> detail{};
    for (std::size_t w = 0; w < slot.detail.size(); ++w) {
      const std::uint64_t word = slot.detail[w].load(std::memory_order_relaxed);
      std::memcpy(detail.data() + w * 8, &word, 8);
    }
    out << (first ? "\n" : ",\n");
    first = false;
    out << "{\"name\": \"";
    json_escape(out, name);
    // Complete ("X") events; timestamps and durations are microseconds.
    out << "\", \"cat\": \"enb\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
        << slot.tid.load(std::memory_order_relaxed) << ", \"ts\": "
        << static_cast<double>(slot.start_ns.load(std::memory_order_relaxed)) /
               1e3
        << ", \"dur\": "
        << static_cast<double>(slot.dur_ns.load(std::memory_order_relaxed)) /
               1e3
        << ", \"args\": {\"id\": " << slot.id.load(std::memory_order_relaxed)
        << ", \"parent\": " << slot.parent.load(std::memory_order_relaxed)
        << ", \"detail\": \"";
    json_escape(out, detail.data());
    out << "\"}}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\", \"droppedEvents\": " << dropped()
      << "}\n";
}

// ---- Span -----------------------------------------------------------------

Span::Span(const char* name, SpanHandle parent,
           std::string_view detail) noexcept
    : name_(name), parent_(parent) {
  TraceRecorder& recorder = TraceRecorder::global();
  if (!recorder.enabled()) return;
  armed_ = true;
  handle_ = SpanHandle{recorder.new_id()};
  set_detail(detail);
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!armed_) return;
  TraceRecorder::global().record(
      name_, handle_, parent_, start_, std::chrono::steady_clock::now(),
      std::string_view(detail_.data(), detail_size_));
}

void Span::set_detail(std::string_view detail) noexcept {
  if (!armed_) return;
  detail_size_ = std::min(detail.size(), detail_.size());
  if (detail_size_ > 0) std::memcpy(detail_.data(), detail.data(), detail_size_);
}

}  // namespace enb::obs
