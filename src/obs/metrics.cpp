#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace enb::obs {

namespace {

// Shard selection: each thread sticks to one cacheline for its whole life,
// so a counter add is an uncontended fetch_add unless two threads hash to
// the same shard. (Thread-local slot assignment, not span parentage — the
// no-TLS rule in obs/trace.hpp is about causality, not load spreading.)
std::size_t counter_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

bool valid_metric_name(std::string_view name) {
  if (name.empty() || name.front() == '-' || name.back() == '-') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
    if (!ok) return false;
  }
  return true;
}

// kebab-case -> Prometheus identifier with the project prefix.
std::string prometheus_name(const std::string& kebab) {
  std::string out = "enb_";
  for (const char c : kebab) out += (c == '-') ? '_' : c;
  return out;
}

std::string label_suffix(const std::string& key, const std::string& value) {
  if (key.empty()) return "";
  return "{" + key + "=\"" + value + "\"}";
}

// `le` label carrying an extra label pair when the family has one.
std::string le_suffix(const std::string& key, const std::string& value,
                      const std::string& bound) {
  std::string out = "{";
  if (!key.empty()) out += key + "=\"" + value + "\",";
  out += "le=\"" + bound + "\"}";
  return out;
}

std::string format_value(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

}  // namespace

// ---- Counter --------------------------------------------------------------

void Counter::add(std::uint64_t n) noexcept {
  shards_[counter_shard() % kShards].value.fetch_add(n,
                                                     std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

// ---- Gauge ----------------------------------------------------------------

void Gauge::set(double value) noexcept {
  bits_.store(std::bit_cast<std::uint64_t>(value), std::memory_order_relaxed);
}

void Gauge::add(double delta) noexcept {
  std::uint64_t expected = bits_.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t desired =
        std::bit_cast<std::uint64_t>(std::bit_cast<double>(expected) + delta);
    if (bits_.compare_exchange_weak(expected, desired,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

double Gauge::value() const noexcept {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

// ---- Histogram ------------------------------------------------------------

const std::vector<double>& Histogram::boundaries() {
  // 10^(k/4) for k in [-28, 8]: 1e-7 s .. 1e2 s, four buckets per decade.
  static const std::vector<double> bounds = [] {
    std::vector<double> b(kFiniteBuckets);
    for (std::size_t k = 0; k < kFiniteBuckets; ++k) {
      b[k] = std::pow(10.0, (static_cast<double>(k) - 28.0) / 4.0);
    }
    return b;
  }();
  return bounds;
}

void Histogram::observe(double seconds) noexcept {
  if (!(seconds >= 0.0)) seconds = 0.0;  // NaN / negative clock skew
  const std::vector<double>& bounds = boundaries();
  const std::size_t bucket = static_cast<std::size_t>(
      std::upper_bound(bounds.begin(), bounds.end(), seconds) - bounds.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  const double nanos = seconds * 1e9;
  const auto clamped = nanos >= 1.8e19 ? ~std::uint64_t{0}
                                       : static_cast<std::uint64_t>(nanos);
  sum_nanos_.fetch_add(clamped, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.buckets.resize(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return snap;
}

double Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The observation with (1-based) rank ceil(q * count), located by
  // cumulative bucket counts and interpolated uniformly within its bucket.
  const double rank = std::max(1.0, q * static_cast<double>(count));
  const std::vector<double>& bounds = boundaries();
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (rank > static_cast<double>(cumulative)) continue;
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    // Overflow bucket has no finite upper edge; report its lower edge.
    if (i >= bounds.size()) return lower;
    const double fraction =
        (rank - before) / static_cast<double>(buckets[i]);
    return lower + (bounds[i] - lower) * fraction;
  }
  return bounds.back();
}

// ---- Registry -------------------------------------------------------------

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Registry::Record& Registry::find_or_create(std::string_view name, Kind kind,
                                           std::string_view label_key,
                                           std::string_view label_value) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("obs: metric name '" + std::string(name) +
                                "' is not kebab-case");
  }
  if (label_key.empty() != label_value.empty()) {
    throw std::invalid_argument("obs: metric '" + std::string(name) +
                                "' label key and value must come together");
  }
  std::string key(name);
  key += '\x1f';
  key += label_value;
  if (const auto it = index_.find(key); it != index_.end()) {
    Record& record = records_[it->second];
    if (record.kind != kind || record.label_key != label_key) {
      throw std::invalid_argument("obs: metric '" + std::string(name) +
                                  "' re-registered with a different kind or "
                                  "label key");
    }
    return record;
  }
  // New label value joining an existing family must keep the family's shape.
  for (const Record& existing : records_) {
    if (existing.name == name &&
        (existing.kind != kind || existing.label_key != label_key)) {
      throw std::invalid_argument("obs: metric '" + std::string(name) +
                                  "' re-registered with a different kind or "
                                  "label key");
    }
  }
  Record& record = records_.emplace_back();
  record.name = std::string(name);
  record.kind = kind;
  record.label_key = std::string(label_key);
  record.label_value = std::string(label_value);
  index_.emplace(std::move(key), records_.size() - 1);
  return record;
}

Counter& Registry::counter(std::string_view name, std::string_view label_key,
                           std::string_view label_value) {
  const util::LockGuard lock(mutex_);
  Record& record = find_or_create(name, Kind::kCounter, label_key, label_value);
  if (record.counter == nullptr) record.counter = &counters_.emplace_back();
  return const_cast<Counter&>(*record.counter);
}

Gauge& Registry::gauge(std::string_view name, std::string_view label_key,
                       std::string_view label_value) {
  const util::LockGuard lock(mutex_);
  Record& record = find_or_create(name, Kind::kGauge, label_key, label_value);
  if (record.gauge == nullptr) record.gauge = &gauges_.emplace_back();
  return const_cast<Gauge&>(*record.gauge);
}

Histogram& Registry::histogram(std::string_view name,
                               std::string_view label_key,
                               std::string_view label_value) {
  const util::LockGuard lock(mutex_);
  Record& record =
      find_or_create(name, Kind::kHistogram, label_key, label_value);
  if (record.histogram == nullptr) {
    record.histogram = &histograms_.emplace_back();
  }
  return const_cast<Histogram&>(*record.histogram);
}

std::string Registry::render_prometheus() const {
  std::vector<const Record*> sorted;
  {
    const util::LockGuard lock(mutex_);
    sorted.reserve(records_.size());
    for (const Record& record : records_) sorted.push_back(&record);
  }
  // The deques never shrink and instruments are atomic inside, so reading
  // them outside the lock is safe; only the record list needed the lock.
  std::sort(sorted.begin(), sorted.end(),
            [](const Record* a, const Record* b) {
              if (a->name != b->name) return a->name < b->name;
              return a->label_value < b->label_value;
            });

  std::ostringstream out;
  const std::string* open_family = nullptr;
  for (const Record* record : sorted) {
    const std::string name = prometheus_name(record->name);
    if (open_family == nullptr || *open_family != record->name) {
      open_family = &record->name;
      out << "# TYPE " << name << ' '
          << (record->kind == Kind::kCounter
                  ? "counter"
                  : record->kind == Kind::kGauge ? "gauge" : "histogram")
          << '\n';
    }
    switch (record->kind) {
      case Kind::kCounter:
        out << name << label_suffix(record->label_key, record->label_value)
            << ' ' << record->counter->value() << '\n';
        break;
      case Kind::kGauge:
        out << name << label_suffix(record->label_key, record->label_value)
            << ' ' << format_value(record->gauge->value()) << '\n';
        break;
      case Kind::kHistogram: {
        const Histogram::Snapshot snap = record->histogram->snapshot();
        const std::vector<double>& bounds = Histogram::boundaries();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
          cumulative += snap.buckets[i];
          const std::string bound =
              i < bounds.size() ? format_value(bounds[i]) : "+Inf";
          out << name << "_bucket"
              << le_suffix(record->label_key, record->label_value, bound)
              << ' ' << cumulative << '\n';
        }
        out << name << "_sum"
            << label_suffix(record->label_key, record->label_value) << ' '
            << format_value(snap.sum) << '\n';
        out << name << "_count"
            << label_suffix(record->label_key, record->label_value) << ' '
            << snap.count << '\n';
        break;
      }
    }
  }
  return out.str();
}

}  // namespace enb::obs
