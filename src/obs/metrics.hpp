// Process-wide metrics: sharded counters, double gauges, and fixed-boundary
// log-scale latency histograms, registered by stable kebab-case name and
// rendered as Prometheus-style text exposition.
//
// Observability is purely observational by contract: nothing here feeds a
// result, a cache key, or a canonical spec — every instrument is a sink.
// Updates are lock-free atomics (a counter add is one relaxed fetch_add on
// a cacheline-private shard), so instrumented hot paths stay hot and the
// TSan lane stays clean. Registration and exposition serialize on a
// util::Mutex; the intended pattern caches the instrument reference once:
//
//   static obs::Counter& tasks =
//       obs::Registry::global().counter("exec-tasks-total");
//   tasks.add(1);
//
// Exposition converts kebab-case to the Prometheus grammar with an `enb_`
// prefix: "serve-requests-total" with label ("verb", "batch") renders as
//   enb_serve_requests_total{verb="batch"} 12
// Histogram families render the full _bucket/_sum/_count triplet with
// cumulative `le` buckets. A snapshot derives its count from one pass over
// the bucket atomics, so count == sum(buckets) holds within every scrape.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/sync.hpp"

namespace enb::obs {

// Monotonically increasing event count. Sharded over cachelines so
// concurrent writers (pool workers, serve sessions) never contend on one
// atomic; value() sums the shards (monotone, may lag in-flight adds).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept;
  [[nodiscard]] std::uint64_t value() const noexcept;

 private:
  static constexpr std::size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_{};
};

// Last-write-wins instantaneous value (queue depth, occupancy, uptime).
// Stored as the bit pattern of a double in one atomic word.
class Gauge {
 public:
  void set(double value) noexcept;
  void add(double delta) noexcept;  // CAS loop; use for up/down tracking
  [[nodiscard]] double value() const noexcept;

 private:
  std::atomic<std::uint64_t> bits_{0};  // std::bit_cast of the double
};

// Latency histogram over fixed log-scale boundaries: four buckets per
// decade from 100 ns to 100 s (inclusive upper bounds), plus an overflow
// bucket. Fixed boundaries keep observe() allocation-free and make every
// histogram in the process mergeable/comparable; quantiles interpolate
// within the owning bucket, which is the usual few-percent-accurate
// Prometheus estimate — exact enough for p50/p90/p99 reporting.
class Histogram {
 public:
  // Upper bounds of the finite buckets, ascending (excludes +Inf).
  [[nodiscard]] static const std::vector<double>& boundaries();

  void observe(double seconds) noexcept;

  struct Snapshot {
    std::vector<std::uint64_t> buckets;  // boundaries().size() + 1 (+Inf last)
    std::uint64_t count = 0;             // == sum over buckets
    double sum = 0.0;                    // total observed seconds
    // Interpolated value at quantile q in [0, 1]; 0 when empty.
    [[nodiscard]] double quantile(double q) const noexcept;
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  static constexpr std::size_t kFiniteBuckets = 37;  // 1e-7 .. 1e2, 4/decade
  std::array<std::atomic<std::uint64_t>, kFiniteBuckets + 1> buckets_{};
  std::atomic<std::uint64_t> sum_nanos_{0};
};

// Name + (kind, label key) -> instrument table. Instruments live in deques,
// so a returned reference stays valid for the registry's lifetime; the
// global() registry lives for the process. Names are kebab-case
// ([a-z0-9], '-' separators); labels carry at most one (key, value) pair —
// enough for per-verb / per-kind families without a label-set algebra.
// A name registered twice must agree on kind and label key (throws
// std::invalid_argument otherwise); the same (name, label value) returns
// the same instrument.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  Counter& counter(std::string_view name, std::string_view label_key = {},
                   std::string_view label_value = {});
  Gauge& gauge(std::string_view name, std::string_view label_key = {},
               std::string_view label_value = {});
  Histogram& histogram(std::string_view name, std::string_view label_key = {},
                       std::string_view label_value = {});

  // Prometheus text exposition: families sorted by name, entries sorted by
  // label value, one # TYPE line per family, every metric prefixed `enb_`
  // with kebab dashes mapped to underscores.
  [[nodiscard]] std::string render_prometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Record {
    std::string name;  // kebab-case
    Kind kind = Kind::kCounter;
    std::string label_key;    // empty = unlabeled
    std::string label_value;  // empty = unlabeled
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };

  Record& find_or_create(std::string_view name, Kind kind,
                         std::string_view label_key,
                         std::string_view label_value)
      ENB_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  std::deque<Counter> counters_ ENB_GUARDED_BY(mutex_);
  std::deque<Gauge> gauges_ ENB_GUARDED_BY(mutex_);
  std::deque<Histogram> histograms_ ENB_GUARDED_BY(mutex_);
  std::deque<Record> records_ ENB_GUARDED_BY(mutex_);
  // (name + '\x1f' + label value) -> record index, for O(1) re-registration.
  std::unordered_map<std::string, std::size_t> index_ ENB_GUARDED_BY(mutex_);
};

}  // namespace enb::obs
