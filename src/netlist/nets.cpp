#include "netlist/nets.hpp"

namespace enb::netlist {

std::vector<NetInfo> enumerate_nets(const Circuit& circuit) {
  std::vector<NetInfo> nets;
  nets.reserve(circuit.node_count());
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    nets.push_back({id, circuit.node_name(id)});
  }
  return nets;
}

}  // namespace enb::netlist
