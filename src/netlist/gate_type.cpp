#include "netlist/gate_type.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <limits>
#include <stdexcept>
#include <string>

namespace enb::netlist {
namespace {

constexpr int kUnbounded = std::numeric_limits<int>::max();

std::string to_upper(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

}  // namespace

ArityRange arity_range(GateType type) noexcept {
  switch (type) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return {0, 0};
    case GateType::kBuf:
    case GateType::kNot:
      return {1, 1};
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor:
      return {1, kUnbounded};
    case GateType::kMaj:
      return {3, 3};
  }
  return {0, 0};
}

std::string_view to_string(GateType type) noexcept {
  switch (type) {
    case GateType::kInput:
      return "INPUT";
    case GateType::kConst0:
      return "CONST0";
    case GateType::kConst1:
      return "CONST1";
    case GateType::kBuf:
      return "BUF";
    case GateType::kNot:
      return "NOT";
    case GateType::kAnd:
      return "AND";
    case GateType::kNand:
      return "NAND";
    case GateType::kOr:
      return "OR";
    case GateType::kNor:
      return "NOR";
    case GateType::kXor:
      return "XOR";
    case GateType::kXnor:
      return "XNOR";
    case GateType::kMaj:
      return "MAJ";
  }
  return "?";
}

std::optional<GateType> gate_type_from_string(std::string_view name) noexcept {
  const std::string upper = to_upper(name);
  if (upper == "INPUT") return GateType::kInput;
  if (upper == "CONST0" || upper == "GND" || upper == "ZERO") return GateType::kConst0;
  if (upper == "CONST1" || upper == "VDD" || upper == "ONE") return GateType::kConst1;
  if (upper == "BUF" || upper == "BUFF") return GateType::kBuf;
  if (upper == "NOT" || upper == "INV") return GateType::kNot;
  if (upper == "AND") return GateType::kAnd;
  if (upper == "NAND") return GateType::kNand;
  if (upper == "OR") return GateType::kOr;
  if (upper == "NOR") return GateType::kNor;
  if (upper == "XOR") return GateType::kXor;
  if (upper == "XNOR") return GateType::kXnor;
  if (upper == "MAJ" || upper == "MAJ3") return GateType::kMaj;
  return std::nullopt;
}

std::uint64_t eval_word(GateType type, std::span<const std::uint64_t> inputs) {
  const auto [min_arity, max_arity] = arity_range(type);
  const int n = static_cast<int>(inputs.size());
  if (n < min_arity || n > max_arity) {
    throw std::invalid_argument("eval_word: bad arity " + std::to_string(n) +
                                " for gate " + std::string(to_string(type)));
  }
  switch (type) {
    case GateType::kInput:
      throw std::invalid_argument("eval_word: kInput has no evaluation rule");
    case GateType::kConst0:
      return 0;
    case GateType::kConst1:
      return ~std::uint64_t{0};
    case GateType::kBuf:
      return inputs[0];
    case GateType::kNot:
      return ~inputs[0];
    case GateType::kAnd:
    case GateType::kNand: {
      std::uint64_t acc = ~std::uint64_t{0};
      for (std::uint64_t w : inputs) acc &= w;
      return type == GateType::kAnd ? acc : ~acc;
    }
    case GateType::kOr:
    case GateType::kNor: {
      std::uint64_t acc = 0;
      for (std::uint64_t w : inputs) acc |= w;
      return type == GateType::kOr ? acc : ~acc;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      std::uint64_t acc = 0;
      for (std::uint64_t w : inputs) acc ^= w;
      return type == GateType::kXor ? acc : ~acc;
    }
    case GateType::kMaj:
      return (inputs[0] & inputs[1]) | (inputs[0] & inputs[2]) |
             (inputs[1] & inputs[2]);
  }
  throw std::invalid_argument("eval_word: unknown gate type");
}

bool eval_bit(GateType type, const std::vector<bool>& inputs) {
  std::array<std::uint64_t, 16> words{};
  if (inputs.size() > words.size()) {
    throw std::invalid_argument("eval_bit: more than 16 fanins unsupported");
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    words[i] = inputs[i] ? ~std::uint64_t{0} : 0;
  }
  return (eval_word(type, std::span<const std::uint64_t>(words.data(),
                                                         inputs.size())) &
          1U) != 0;
}

}  // namespace enb::netlist
