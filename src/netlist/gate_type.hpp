// Gate vocabulary for the netlist IR.
//
// The paper models circuits built from k-input gates; this enum covers the
// usual structural-netlist vocabulary (ISCAS .bench compatible) plus MAJ,
// which the fault-tolerance transforms use for voters.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace enb::netlist {

enum class GateType : std::uint8_t {
  kInput,   // primary input (no fanins)
  kConst0,  // constant 0 (no fanins)
  kConst1,  // constant 1 (no fanins)
  kBuf,     // identity, 1 fanin
  kNot,     // inversion, 1 fanin
  kAnd,     // conjunction, >= 1 fanins
  kNand,    // negated conjunction, >= 1 fanins
  kOr,      // disjunction, >= 1 fanins
  kNor,     // negated disjunction, >= 1 fanins
  kXor,     // parity, >= 1 fanins
  kXnor,    // negated parity, >= 1 fanins
  kMaj,     // majority-of-3, exactly 3 fanins
};

// Inclusive fanin-count range a gate type accepts.
struct ArityRange {
  int min = 0;
  int max = 0;
};

[[nodiscard]] ArityRange arity_range(GateType type) noexcept;

// True for kInput.
[[nodiscard]] constexpr bool is_input(GateType type) noexcept {
  return type == GateType::kInput;
}

// True for kConst0 / kConst1.
[[nodiscard]] constexpr bool is_constant(GateType type) noexcept {
  return type == GateType::kConst0 || type == GateType::kConst1;
}

// True for the types that count as switching devices: everything except
// primary inputs and constants. This is the gate count S0 used by the
// energy bounds (buffers and inverters are devices too).
[[nodiscard]] constexpr bool counts_as_gate(GateType type) noexcept {
  return !is_input(type) && !is_constant(type);
}

// True when fanin order is irrelevant (used by structural hashing).
[[nodiscard]] constexpr bool is_commutative(GateType type) noexcept {
  switch (type) {
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor:
    case GateType::kXor:
    case GateType::kXnor:
    case GateType::kMaj:
      return true;
    default:
      return false;
  }
}

// Canonical upper-case name, matching .bench usage (e.g. "NAND").
[[nodiscard]] std::string_view to_string(GateType type) noexcept;

// Parses a gate name case-insensitively. Accepts the canonical names plus
// the .bench aliases BUFF (buffer) and INV (inverter). Returns nullopt for
// unknown names (e.g. DFF, which this combinational IR rejects upstream).
[[nodiscard]] std::optional<GateType> gate_type_from_string(
    std::string_view name) noexcept;

// Word-parallel evaluation: each of the 64 bit lanes is an independent
// evaluation. `inputs` holds one word per fanin; its size must respect
// arity_range(). kInput is not evaluable and must be handled by the caller.
[[nodiscard]] std::uint64_t eval_word(GateType type,
                                      std::span<const std::uint64_t> inputs);

// Single-bit convenience wrapper over eval_word. Takes a vector (not a span)
// because std::vector<bool> is bit-packed and cannot view as a span.
[[nodiscard]] bool eval_bit(GateType type, const std::vector<bool>& inputs);

}  // namespace enb::netlist
