// Structural well-formedness checks.
//
// Construction already enforces the hard invariants (acyclicity, arity); the
// validator reports the softer issues a synthesis pass or file import can
// introduce: dangling logic, unused inputs, missing outputs.
#pragma once

#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace enb::netlist {

struct ValidationReport {
  // Issues that make downstream analysis meaningless (e.g. no outputs).
  std::vector<std::string> errors;
  // Suspicious but analyzable conditions (e.g. dead gates).
  std::vector<std::string> warnings;

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
};

[[nodiscard]] ValidationReport validate(const Circuit& circuit);

// Throws std::runtime_error listing the errors if validation fails.
void validate_or_throw(const Circuit& circuit);

}  // namespace enb::netlist
