// Circuit composition and restructuring primitives.
//
// These are the building blocks of the redundancy transforms (NMR,
// multiplexing) and the synthesis passes: instantiate one circuit inside
// another, extract output cones, and garbage-collect unreachable logic.
#pragma once

#include <vector>

#include "netlist/circuit.hpp"

namespace enb::netlist {

// Instantiates `src` inside `dst`, wiring src's primary inputs to
// `input_substitutes` (one dst node per src input, in src input order).
// Returns the dst node ids corresponding to src's primary outputs. Constants
// and gates are copied; names are not (the instance is anonymous logic).
std::vector<NodeId> append_circuit(Circuit& dst, const Circuit& src,
                                   std::span<const NodeId> input_substitutes);

// Deep copy (also compacts nothing; ids are preserved).
[[nodiscard]] Circuit clone(const Circuit& circuit);

// Returns a circuit containing exactly the transitive fanin of the selected
// output positions. Inputs of the original circuit are kept (in order) even
// when unused so that input indexing is stable across extraction.
[[nodiscard]] Circuit extract_cone(const Circuit& circuit,
                                   std::span<const std::size_t> output_positions);

// Removes every node that is not a primary input and not reachable from any
// output. Names and output order are preserved.
[[nodiscard]] Circuit remove_dead_nodes(const Circuit& circuit);

}  // namespace enb::netlist
