// Aggregate structural statistics: the (S0, k, d0, ...) tuple that feeds the
// paper's bounds, plus descriptive histograms.
#pragma once

#include <map>
#include <string>

#include "netlist/circuit.hpp"

namespace enb::netlist {

struct CircuitStats {
  std::string name;
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
  std::size_t num_nodes = 0;
  std::size_t num_gates = 0;  // counts_as_gate() nodes: the paper's S0
  int depth = 0;              // the paper's d0
  double avg_fanin = 0.0;     // mean fanin over gates: the paper's k
  int max_fanin = 0;
  double avg_fanout = 0.0;  // mean fanout over non-output-only nodes
  int max_fanout = 0;
  std::map<GateType, std::size_t> gate_histogram;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] CircuitStats compute_stats(const Circuit& circuit);

}  // namespace enb::netlist
