#include "netlist/topo.hpp"

#include <algorithm>

namespace enb::netlist {

std::vector<int> levels(const Circuit& circuit) {
  std::vector<int> level(circuit.node_count(), 0);
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    const auto& node = circuit.node(id);
    if (!counts_as_gate(node.type)) continue;
    int max_in = -1;
    for (NodeId f : node.fanins) max_in = std::max(max_in, level[f]);
    level[id] = max_in + 1;
  }
  return level;
}

int depth(const Circuit& circuit) {
  const std::vector<int> level = levels(circuit);
  int d = 0;
  for (NodeId out : circuit.outputs()) d = std::max(d, level[out]);
  return d;
}

std::vector<int> fanout_counts(const Circuit& circuit) {
  std::vector<int> fanout(circuit.node_count(), 0);
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    for (NodeId f : circuit.fanins(id)) ++fanout[f];
  }
  return fanout;
}

std::vector<bool> transitive_fanin(const Circuit& circuit,
                                   std::span<const NodeId> roots) {
  std::vector<bool> mark(circuit.node_count(), false);
  for (NodeId r : roots) {
    if (circuit.is_valid(r)) mark[r] = true;
  }
  // Reverse id order is a reverse-topological sweep: when we visit a marked
  // node all of its markers have already been applied.
  for (NodeId id = static_cast<NodeId>(circuit.node_count()); id-- > 0;) {
    if (!mark[id]) continue;
    for (NodeId f : circuit.fanins(id)) mark[f] = true;
  }
  return mark;
}

std::vector<bool> reachable_from_outputs(const Circuit& circuit) {
  return transitive_fanin(circuit, circuit.outputs());
}

}  // namespace enb::netlist
