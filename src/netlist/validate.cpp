#include "netlist/validate.hpp"

#include <stdexcept>

#include "netlist/topo.hpp"

namespace enb::netlist {

ValidationReport validate(const Circuit& circuit) {
  ValidationReport report;
  if (circuit.num_outputs() == 0) {
    report.errors.push_back("circuit has no primary outputs");
  }
  if (circuit.node_count() == 0) {
    report.errors.push_back("circuit is empty");
    return report;
  }

  const std::vector<bool> live = reachable_from_outputs(circuit);
  const std::vector<int> fanout = fanout_counts(circuit);
  std::size_t dead_gates = 0;
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    const auto& node = circuit.node(id);
    if (counts_as_gate(node.type) && !live[id]) ++dead_gates;
    if (node.type == GateType::kInput && fanout[id] == 0 && !live[id]) {
      report.warnings.push_back("unused primary input " +
                                circuit.node_name(id));
    }
  }
  if (dead_gates > 0) {
    report.warnings.push_back(std::to_string(dead_gates) +
                              " gate(s) not in any output cone");
  }
  return report;
}

void validate_or_throw(const Circuit& circuit) {
  const ValidationReport report = validate(circuit);
  if (report.ok()) return;
  std::string message = "circuit validation failed:";
  for (const std::string& e : report.errors) message += "\n  " + e;
  throw std::runtime_error(message);
}

}  // namespace enb::netlist
