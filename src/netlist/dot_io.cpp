#include "netlist/dot_io.hpp"

#include <ostream>
#include <sstream>

#include "netlist/nets.hpp"

namespace enb::netlist {
namespace {

const char* shape_for(GateType type) {
  switch (type) {
    case GateType::kInput:
      return "invtriangle";
    case GateType::kConst0:
    case GateType::kConst1:
      return "plaintext";
    case GateType::kBuf:
    case GateType::kNot:
      return "triangle";
    default:
      return "box";
  }
}

}  // namespace

void write_dot(const Circuit& circuit, std::ostream& out) {
  out << "digraph \"" << (circuit.name().empty() ? "circuit" : circuit.name())
      << "\" {\n  rankdir=LR;\n";
  // One node statement per net, in the canonical net order (shared with the
  // fault engine's site enumeration, so diagrams and campaign reports agree
  // on naming and sequence).
  for (const NetInfo& net : enumerate_nets(circuit)) {
    const auto& node = circuit.node(net.node);
    out << "  n" << net.node << " [label=\"" << net.name << "\\n"
        << to_string(node.type) << "\" shape=" << shape_for(node.type)
        << "];\n";
  }
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    for (NodeId f : circuit.fanins(id)) {
      out << "  n" << f << " -> n" << id << ";\n";
    }
  }
  for (std::size_t pos = 0; pos < circuit.num_outputs(); ++pos) {
    out << "  out" << pos << " [label=\"" << circuit.output_name(pos)
        << "\" shape=doublecircle];\n";
    out << "  n" << circuit.outputs()[pos] << " -> out" << pos << ";\n";
  }
  out << "}\n";
}

std::string write_dot_string(const Circuit& circuit) {
  std::ostringstream out;
  write_dot(circuit, out);
  return out.str();
}

}  // namespace enb::netlist
