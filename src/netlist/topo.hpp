// Structural queries over the circuit DAG: levels, depth, fanout, cones.
//
// Because Circuit is append-only, id order is already topological; these
// helpers compute the derived quantities the energy bounds and the synthesis
// passes need.
#pragma once

#include <vector>

#include "netlist/circuit.hpp"

namespace enb::netlist {

// Logic level per node: inputs and constants are level 0; every gate
// (including buffers/inverters — they are devices) is 1 + max fanin level.
[[nodiscard]] std::vector<int> levels(const Circuit& circuit);

// Circuit depth d0: maximum level over the primary outputs (0 for circuits
// whose outputs are inputs/constants).
[[nodiscard]] int depth(const Circuit& circuit);

// Number of fanout edges per node (output listings do not count as fanout).
[[nodiscard]] std::vector<int> fanout_counts(const Circuit& circuit);

// Marks every node in the transitive fanin of any primary output,
// outputs included.
[[nodiscard]] std::vector<bool> reachable_from_outputs(const Circuit& circuit);

// Marks every node in the transitive fanin of `roots` (roots included).
[[nodiscard]] std::vector<bool> transitive_fanin(const Circuit& circuit,
                                                 std::span<const NodeId> roots);

}  // namespace enb::netlist
