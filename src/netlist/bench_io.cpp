#include "netlist/bench_io.hpp"

#include <cctype>
#include <fstream>
#include <functional>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace enb::netlist {
namespace {

struct Definition {
  GateType type = GateType::kInput;
  std::vector<std::string> operands;
  int line = 0;
};

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '.' || c == '[' || c == ']' || c == '$' || c == '/';
}

std::string strip(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

[[noreturn]] void fail(int line, const std::string& message) {
  throw BenchParseError("bench parse error at line " + std::to_string(line) +
                        ": " + message);
}

// Parses "FUNC(a, b, c)" into (FUNC, [a,b,c]).
std::pair<std::string, std::vector<std::string>> parse_call(
    const std::string& text, int line) {
  const std::size_t open = text.find('(');
  const std::size_t close = text.rfind(')');
  if (open == std::string::npos || close == std::string::npos || close < open) {
    fail(line, "expected FUNC(args): '" + text + "'");
  }
  const std::string func = strip(text.substr(0, open));
  std::vector<std::string> args;
  std::string current;
  for (std::size_t i = open + 1; i < close; ++i) {
    const char c = text[i];
    if (c == ',') {
      args.push_back(strip(current));
      current.clear();
    } else {
      current += c;
    }
  }
  const std::string last = strip(current);
  if (!last.empty()) args.push_back(last);
  for (const std::string& a : args) {
    if (a.empty()) fail(line, "empty operand in '" + text + "'");
    for (char c : a) {
      if (!is_name_char(c)) fail(line, "bad signal name '" + a + "'");
    }
  }
  return {func, args};
}

}  // namespace

Circuit read_bench(std::istream& in, std::string name) {
  std::vector<std::string> input_order;
  std::vector<std::pair<std::string, int>> output_order;
  std::unordered_map<std::string, Definition> defs;

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = raw;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = strip(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      const auto [func, args] = parse_call(line, line_no);
      if (args.size() != 1) fail(line_no, "expected one argument: '" + line + "'");
      const auto type = gate_type_from_string(func);
      if (type == GateType::kInput) {
        if (defs.count(args[0]) != 0) fail(line_no, "duplicate INPUT " + args[0]);
        defs[args[0]] = Definition{GateType::kInput, {}, line_no};
        input_order.push_back(args[0]);
      } else if (func == "OUTPUT" || func == "output" || func == "Output") {
        output_order.emplace_back(args[0], line_no);
      } else {
        fail(line_no, "expected INPUT(...) or OUTPUT(...): '" + line + "'");
      }
      continue;
    }

    const std::string lhs = strip(line.substr(0, eq));
    if (lhs.empty()) fail(line_no, "missing signal name before '='");
    for (char c : lhs) {
      if (!is_name_char(c)) fail(line_no, "bad signal name '" + lhs + "'");
    }
    const auto [func, args] = parse_call(line.substr(eq + 1), line_no);
    const auto type = gate_type_from_string(func);
    if (!type.has_value() || *type == GateType::kInput) {
      fail(line_no, "unsupported gate '" + func +
                        "' (sequential elements are not supported)");
    }
    if (defs.count(lhs) != 0) fail(line_no, "duplicate definition of " + lhs);
    defs[lhs] = Definition{*type, args, line_no};
  }

  // Resolve definitions depth-first so forward references work; a visit
  // state of "in progress" means a combinational cycle.
  Circuit circuit(std::move(name));
  std::unordered_map<std::string, NodeId> resolved;
  enum class Visit : std::uint8_t { kFresh, kActive, kDone };
  std::unordered_map<std::string, Visit> state;

  const std::function<NodeId(const std::string&, int)> resolve =
      [&](const std::string& signal, int use_line) -> NodeId {
    const auto hit = resolved.find(signal);
    if (hit != resolved.end()) return hit->second;
    const auto def_it = defs.find(signal);
    if (def_it == defs.end()) fail(use_line, "undefined signal '" + signal + "'");
    const Definition& def = def_it->second;
    if (state[signal] == Visit::kActive) {
      fail(def.line, "combinational cycle through '" + signal + "'");
    }
    state[signal] = Visit::kActive;
    NodeId id = kInvalidNode;
    if (def.type == GateType::kInput) {
      id = circuit.add_input(signal);
    } else {
      std::vector<NodeId> fanins;
      fanins.reserve(def.operands.size());
      for (const std::string& operand : def.operands) {
        fanins.push_back(resolve(operand, def.line));
      }
      try {
        id = circuit.add_gate(def.type, std::move(fanins));
      } catch (const std::invalid_argument& e) {
        fail(def.line, e.what());
      }
      circuit.set_node_name(id, signal);
    }
    state[signal] = Visit::kDone;
    resolved.emplace(signal, id);
    return id;
  };

  // Inputs first, in declaration order, so input_index matches the file.
  for (const std::string& input : input_order) resolve(input, 0);
  for (const auto& [signal, line] : output_order) {
    circuit.add_output(resolve(signal, line), signal);
  }
  // Also materialize any dangling definitions so the circuit round-trips.
  for (const auto& [signal, def] : defs) resolve(signal, def.line);
  return circuit;
}

Circuit read_bench_string(const std::string& text, std::string name) {
  std::istringstream in(text);
  return read_bench(in, std::move(name));
}

Circuit read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw BenchParseError("cannot open bench file: " + path);
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const std::size_t dot = name.rfind('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return read_bench(in, std::move(name));
}

void write_bench(const Circuit& circuit, std::ostream& out) {
  out << "# " << (circuit.name().empty() ? "enbound circuit" : circuit.name())
      << "\n";
  for (NodeId id : circuit.inputs()) {
    out << "INPUT(" << circuit.node_name(id) << ")\n";
  }
  for (NodeId id : circuit.outputs()) {
    out << "OUTPUT(" << circuit.node_name(id) << ")\n";
  }
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    const auto& node = circuit.node(id);
    if (node.type == GateType::kInput) continue;
    out << circuit.node_name(id) << " = " << to_string(node.type) << "(";
    for (std::size_t i = 0; i < node.fanins.size(); ++i) {
      if (i != 0) out << ", ";
      out << circuit.node_name(node.fanins[i]);
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Circuit& circuit) {
  std::ostringstream out;
  write_bench(circuit, out);
  return out.str();
}

void write_bench_file(const Circuit& circuit, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write bench file: " + path);
  write_bench(circuit, out);
}

}  // namespace enb::netlist
