#include "netlist/transform.hpp"

#include <stdexcept>
#include <string>

#include "netlist/topo.hpp"

namespace enb::netlist {

std::vector<NodeId> append_circuit(Circuit& dst, const Circuit& src,
                                   std::span<const NodeId> input_substitutes) {
  if (input_substitutes.size() != src.num_inputs()) {
    throw std::invalid_argument(
        "append_circuit: " + std::to_string(src.num_inputs()) +
        " inputs required, got " + std::to_string(input_substitutes.size()));
  }
  std::vector<NodeId> map(src.node_count(), kInvalidNode);
  for (std::size_t i = 0; i < src.num_inputs(); ++i) {
    map[src.inputs()[i]] = input_substitutes[i];
  }
  for (NodeId id = 0; id < src.node_count(); ++id) {
    const auto& node = src.node(id);
    if (node.type == GateType::kInput) continue;
    if (is_constant(node.type)) {
      map[id] = dst.add_const(node.type == GateType::kConst1);
      continue;
    }
    std::vector<NodeId> fanins;
    fanins.reserve(node.fanins.size());
    for (NodeId f : node.fanins) fanins.push_back(map[f]);
    map[id] = dst.add_gate(node.type, std::move(fanins));
  }
  std::vector<NodeId> outputs;
  outputs.reserve(src.num_outputs());
  for (NodeId out : src.outputs()) outputs.push_back(map[out]);
  return outputs;
}

Circuit clone(const Circuit& circuit) {
  Circuit copy(circuit.name());
  std::vector<NodeId> inputs;
  inputs.reserve(circuit.num_inputs());
  for (NodeId id : circuit.inputs()) {
    inputs.push_back(copy.add_input(circuit.node_name(id)));
  }
  const std::vector<NodeId> outs = append_circuit(copy, circuit, inputs);
  for (std::size_t pos = 0; pos < circuit.num_outputs(); ++pos) {
    copy.add_output(outs[pos], circuit.output_name(pos));
  }
  return copy;
}

namespace {

// Shared rebuilt-copy helper: keeps all inputs, keeps nodes with keep[id],
// re-emits the selected output positions.
Circuit rebuild(const Circuit& circuit, const std::vector<bool>& keep,
                std::span<const std::size_t> output_positions) {
  Circuit out(circuit.name());
  std::vector<NodeId> map(circuit.node_count(), kInvalidNode);
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    const auto& node = circuit.node(id);
    if (node.type == GateType::kInput) {
      map[id] = out.add_input(circuit.node_name(id));
      continue;
    }
    if (!keep[id]) continue;
    if (is_constant(node.type)) {
      map[id] = out.add_const(node.type == GateType::kConst1);
    } else {
      std::vector<NodeId> fanins;
      fanins.reserve(node.fanins.size());
      for (NodeId f : node.fanins) fanins.push_back(map[f]);
      map[id] = out.add_gate(node.type, std::move(fanins));
    }
    out.set_node_name(map[id], circuit.node_name(id));
  }
  for (std::size_t pos : output_positions) {
    if (pos >= circuit.num_outputs()) {
      throw std::out_of_range("rebuild: no output position " +
                              std::to_string(pos));
    }
    out.add_output(map[circuit.outputs()[pos]], circuit.output_name(pos));
  }
  return out;
}

}  // namespace

Circuit extract_cone(const Circuit& circuit,
                     std::span<const std::size_t> output_positions) {
  std::vector<NodeId> roots;
  roots.reserve(output_positions.size());
  for (std::size_t pos : output_positions) {
    if (pos >= circuit.num_outputs()) {
      throw std::out_of_range("extract_cone: no output position " +
                              std::to_string(pos));
    }
    roots.push_back(circuit.outputs()[pos]);
  }
  const std::vector<bool> keep = transitive_fanin(circuit, roots);
  return rebuild(circuit, keep, output_positions);
}

Circuit remove_dead_nodes(const Circuit& circuit) {
  const std::vector<bool> keep = reachable_from_outputs(circuit);
  std::vector<std::size_t> all(circuit.num_outputs());
  for (std::size_t pos = 0; pos < all.size(); ++pos) all[pos] = pos;
  return rebuild(circuit, keep, all);
}

}  // namespace enb::netlist
