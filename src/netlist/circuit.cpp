#include "netlist/circuit.hpp"

#include <atomic>
#include <stdexcept>

namespace enb::netlist {

namespace {
std::atomic<std::uint64_t> g_circuit_copies{0};
}  // namespace

Circuit::Circuit(const Circuit& other)
    : name_(other.name_),
      nodes_(other.nodes_),
      inputs_(other.inputs_),
      outputs_(other.outputs_),
      output_names_(other.output_names_),
      node_names_(other.node_names_),
      input_index_(other.input_index_),
      gate_count_(other.gate_count_) {
  g_circuit_copies.fetch_add(1, std::memory_order_relaxed);
}

Circuit& Circuit::operator=(const Circuit& other) {
  if (this != &other) {
    name_ = other.name_;
    nodes_ = other.nodes_;
    inputs_ = other.inputs_;
    outputs_ = other.outputs_;
    output_names_ = other.output_names_;
    node_names_ = other.node_names_;
    input_index_ = other.input_index_;
    gate_count_ = other.gate_count_;
    g_circuit_copies.fetch_add(1, std::memory_order_relaxed);
  }
  return *this;
}

std::uint64_t Circuit::copies_made() noexcept {
  return g_circuit_copies.load(std::memory_order_relaxed);
}

NodeId Circuit::append_node(Node node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  if (counts_as_gate(node.type)) ++gate_count_;
  nodes_.push_back(std::move(node));
  return id;
}

void Circuit::check_valid(NodeId id, const char* context) const {
  if (!is_valid(id)) {
    throw std::invalid_argument(std::string(context) + ": invalid node id " +
                                std::to_string(id));
  }
}

NodeId Circuit::add_input(std::string name) {
  const NodeId id = append_node(Node{GateType::kInput, {}});
  input_index_.emplace(id, static_cast<int>(inputs_.size()));
  inputs_.push_back(id);
  if (!name.empty()) set_node_name(id, std::move(name));
  return id;
}

NodeId Circuit::add_const(bool value) {
  return append_node(
      Node{value ? GateType::kConst1 : GateType::kConst0, {}});
}

NodeId Circuit::add_gate(GateType type, std::vector<NodeId> fanins) {
  if (type == GateType::kInput) {
    throw std::invalid_argument("add_gate: use add_input for primary inputs");
  }
  const auto [min_arity, max_arity] = arity_range(type);
  const int n = static_cast<int>(fanins.size());
  if (n < min_arity || n > max_arity) {
    throw std::invalid_argument(
        "add_gate: arity " + std::to_string(n) + " illegal for " +
        std::string(to_string(type)));
  }
  for (NodeId f : fanins) check_valid(f, "add_gate fanin");
  return append_node(Node{type, std::move(fanins)});
}

NodeId Circuit::add_gate(GateType type, NodeId a) {
  return add_gate(type, std::vector<NodeId>{a});
}

NodeId Circuit::add_gate(GateType type, NodeId a, NodeId b) {
  return add_gate(type, std::vector<NodeId>{a, b});
}

NodeId Circuit::add_gate(GateType type, NodeId a, NodeId b, NodeId c) {
  return add_gate(type, std::vector<NodeId>{a, b, c});
}

void Circuit::add_output(NodeId id, std::string name) {
  check_valid(id, "add_output");
  outputs_.push_back(id);
  output_names_.push_back(std::move(name));
}

void Circuit::set_node_name(NodeId id, std::string name) {
  check_valid(id, "set_node_name");
  node_names_[id] = std::move(name);
}

const Circuit::Node& Circuit::node(NodeId id) const {
  check_valid(id, "node");
  return nodes_[id];
}

int Circuit::input_index(NodeId id) const {
  const auto it = input_index_.find(id);
  return it == input_index_.end() ? -1 : it->second;
}

std::string Circuit::node_name(NodeId id) const {
  check_valid(id, "node_name");
  const auto it = node_names_.find(id);
  if (it != node_names_.end()) return it->second;
  return "n" + std::to_string(id);
}

std::string Circuit::output_name(std::size_t pos) const {
  if (pos >= outputs_.size()) {
    throw std::out_of_range("output_name: no output " + std::to_string(pos));
  }
  if (!output_names_[pos].empty()) return output_names_[pos];
  return node_name(outputs_[pos]);
}

}  // namespace enb::netlist
