#include "netlist/stats.hpp"

#include <algorithm>
#include <sstream>

#include "netlist/topo.hpp"

namespace enb::netlist {

CircuitStats compute_stats(const Circuit& circuit) {
  CircuitStats stats;
  stats.name = circuit.name();
  stats.num_inputs = circuit.num_inputs();
  stats.num_outputs = circuit.num_outputs();
  stats.num_nodes = circuit.node_count();
  stats.num_gates = circuit.gate_count();
  stats.depth = depth(circuit);

  std::size_t fanin_sum = 0;
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    const auto& node = circuit.node(id);
    if (!counts_as_gate(node.type)) continue;
    ++stats.gate_histogram[node.type];
    fanin_sum += node.fanins.size();
    stats.max_fanin =
        std::max(stats.max_fanin, static_cast<int>(node.fanins.size()));
  }
  stats.avg_fanin = stats.num_gates == 0
                        ? 0.0
                        : static_cast<double>(fanin_sum) /
                              static_cast<double>(stats.num_gates);

  const std::vector<int> fanout = fanout_counts(circuit);
  std::size_t fanout_sum = 0;
  std::size_t driver_count = 0;
  for (NodeId id = 0; id < circuit.node_count(); ++id) {
    fanout_sum += static_cast<std::size_t>(fanout[id]);
    stats.max_fanout = std::max(stats.max_fanout, fanout[id]);
    if (fanout[id] > 0) ++driver_count;
  }
  stats.avg_fanout = driver_count == 0
                         ? 0.0
                         : static_cast<double>(fanout_sum) /
                               static_cast<double>(driver_count);
  return stats;
}

std::string CircuitStats::to_string() const {
  std::ostringstream out;
  out << "circuit " << (name.empty() ? "<unnamed>" : name) << ": "
      << num_inputs << " inputs, " << num_outputs << " outputs, " << num_gates
      << " gates (of " << num_nodes << " nodes), depth " << depth
      << ", avg fanin " << avg_fanin << ", max fanin " << max_fanin << "\n";
  for (const auto& [type, count] : gate_histogram) {
    out << "  " << netlist::to_string(type) << ": " << count << "\n";
  }
  return out.str();
}

}  // namespace enb::netlist
