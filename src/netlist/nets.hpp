// Stable net enumeration.
//
// Every node of the combinational IR drives exactly one net (fanout branches
// are not separate nets in this representation), so "all nets" is "all
// nodes" — but the *order* matters: the fault engine derives fault-site
// indices from it, campaign results are keyed by it, and reports list nets
// in it. One helper owns that order (node-id order, which is construction
// and therefore topological order) so fault universes, DOT output, and
// future report writers can never drift apart.
#pragma once

#include <string>
#include <vector>

#include "netlist/circuit.hpp"

namespace enb::netlist {

struct NetInfo {
  NodeId node = kInvalidNode;  // the driving node (its id names the net)
  std::string name;            // node_name(node): explicit or "n<id>"
};

// All nets of `circuit` in the canonical order: ascending driving-node id.
// This order is stable across runs and re-parses of the same construction
// sequence; tests pin it so campaign outputs stay reproducible.
[[nodiscard]] std::vector<NetInfo> enumerate_nets(const Circuit& circuit);

}  // namespace enb::netlist
