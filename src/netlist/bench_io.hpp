// ISCAS .bench reader/writer.
//
// The .bench dialect accepted:
//   # comment
//   INPUT(a)
//   OUTPUT(sum)
//   sum = XOR(a, b)
//   g0  = NAND(a, sum)
//   k0  = CONST0()          # extension: constants
// Signals may be defined after first use (the reader resolves forward
// references); sequential elements (DFF) are rejected — the IR is
// combinational, matching the paper's scope ("future work includes the
// treatment of sequential circuits").
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "netlist/circuit.hpp"

namespace enb::netlist {

// Error type for malformed .bench input; the message carries the line number.
class BenchParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[nodiscard]] Circuit read_bench(std::istream& in, std::string name = "");
[[nodiscard]] Circuit read_bench_string(const std::string& text,
                                        std::string name = "");
[[nodiscard]] Circuit read_bench_file(const std::string& path);

void write_bench(const Circuit& circuit, std::ostream& out);
[[nodiscard]] std::string write_bench_string(const Circuit& circuit);
void write_bench_file(const Circuit& circuit, const std::string& path);

}  // namespace enb::netlist
