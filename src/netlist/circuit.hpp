// Combinational gate-level circuit IR.
//
// A Circuit is an append-only DAG: every node's fanins must already exist
// when the node is created, so node-id order is always a valid topological
// order. Transforms build new circuits rather than mutating in place, which
// keeps ids stable and invariants trivial to maintain.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/gate_type.hpp"

namespace enb::netlist {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = ~NodeId{0};

class Circuit {
 public:
  struct Node {
    GateType type = GateType::kInput;
    std::vector<NodeId> fanins;
  };

  Circuit() = default;
  explicit Circuit(std::string name) : name_(std::move(name)) {}

  // Copy construction/assignment is counted (one relaxed atomic increment)
  // so the zero-copy layers above — analysis::CompiledCircuit handles and
  // the batch engine — can assert that hot paths never clone a netlist.
  Circuit(const Circuit& other);
  Circuit& operator=(const Circuit& other);
  Circuit(Circuit&&) = default;
  Circuit& operator=(Circuit&&) = default;

  // Process-wide monotonic count of Circuit copies; tests measure deltas.
  [[nodiscard]] static std::uint64_t copies_made() noexcept;

  // ---- construction ----

  // Appends a primary input. `name` is optional; unnamed nodes render as
  // "n<id>".
  NodeId add_input(std::string name = "");

  // Appends a constant node.
  NodeId add_const(bool value);

  // Appends a gate. Throws std::invalid_argument if the arity is illegal for
  // `type` or any fanin id is not an existing node (this is what enforces
  // acyclicity).
  NodeId add_gate(GateType type, std::vector<NodeId> fanins);

  // Convenience forms for the common arities.
  NodeId add_gate(GateType type, NodeId a);
  NodeId add_gate(GateType type, NodeId a, NodeId b);
  NodeId add_gate(GateType type, NodeId a, NodeId b, NodeId c);

  // Marks a node as a primary output (a node may be listed more than once;
  // each listing is a distinct output port).
  void add_output(NodeId id, std::string name = "");

  void set_name(std::string name) { name_ = std::move(name); }
  void set_node_name(NodeId id, std::string name);

  // ---- inspection ----

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] GateType type(NodeId id) const { return node(id).type; }
  [[nodiscard]] std::span<const NodeId> fanins(NodeId id) const {
    return node(id).fanins;
  }

  [[nodiscard]] std::span<const NodeId> inputs() const noexcept { return inputs_; }
  [[nodiscard]] std::span<const NodeId> outputs() const noexcept { return outputs_; }
  [[nodiscard]] std::size_t num_inputs() const noexcept { return inputs_.size(); }
  [[nodiscard]] std::size_t num_outputs() const noexcept { return outputs_.size(); }

  // Count of nodes with counts_as_gate(type): the S0 of the energy bounds.
  [[nodiscard]] std::size_t gate_count() const noexcept { return gate_count_; }

  // Position of `id` in the input list, or -1 if it is not an input.
  [[nodiscard]] int input_index(NodeId id) const;

  // Node name; synthesizes "n<id>" when no name was assigned.
  [[nodiscard]] std::string node_name(NodeId id) const;
  // Name of output port `pos` (falls back to the driving node's name).
  [[nodiscard]] std::string output_name(std::size_t pos) const;

  // True if `id` refers to an existing node.
  [[nodiscard]] bool is_valid(NodeId id) const noexcept {
    return id < nodes_.size();
  }

 private:
  NodeId append_node(Node node);
  void check_valid(NodeId id, const char* context) const;

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<std::string> output_names_;
  std::unordered_map<NodeId, std::string> node_names_;
  std::unordered_map<NodeId, int> input_index_;
  std::size_t gate_count_ = 0;
};

}  // namespace enb::netlist
