// Graphviz export for debugging and documentation figures.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/circuit.hpp"

namespace enb::netlist {

void write_dot(const Circuit& circuit, std::ostream& out);
[[nodiscard]] std::string write_dot_string(const Circuit& circuit);

}  // namespace enb::netlist
