// enbound — command-line front end to the bounds framework.
//
//   enbound profile <file.bench> [--map K]
//   enbound analyze <file.bench> [--eps E] [--delta D] [--map K]
//                   [--leakage L] [--couple-leakage]
//   enbound sweep   <file.bench> [--eps-lo A] [--eps-hi B] [--points N]
//                   [--delta D] [--map K] [--csv out.csv]
//   enbound gen     <name> [-o out.bench]      (suite circuit to .bench)
//   enbound list                                (available suite circuits)
//
// Exit codes: 0 ok, 1 usage error, 2 processing error.
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "gen/suite.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/stats.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "synth/mapper.hpp"

namespace {

using namespace enb;

struct Args {
  std::vector<std::string> positional;
  double eps = 0.01;
  double delta = 0.01;
  double leakage = 0.5;
  bool couple_leakage = false;
  int map_fanin = 3;   // 0 = do not map
  double eps_lo = 1e-3;
  double eps_hi = 0.4;
  int points = 20;
  std::string out;
  std::string csv;
};

int usage() {
  std::cerr
      << "usage: enbound <command> [options]\n"
         "  profile <file.bench> [--map K]\n"
         "  analyze <file.bench> [--eps E] [--delta D] [--map K]\n"
         "          [--leakage L] [--couple-leakage]\n"
         "  sweep   <file.bench> [--eps-lo A] [--eps-hi B] [--points N]\n"
         "          [--delta D] [--map K] [--csv out.csv]\n"
         "  gen     <name> [-o out.bench]\n"
         "  list\n"
         "notes: --map 0 analyzes the netlist as-is; default maps to the\n"
         "paper's generic max-fanin-3 library first.\n";
  return 1;
}

std::optional<Args> parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](double& slot) -> bool {
      if (i + 1 >= argc) return false;
      slot = std::stod(argv[++i]);
      return true;
    };
    if (arg == "--eps") {
      if (!need_value(args.eps)) return std::nullopt;
    } else if (arg == "--delta") {
      if (!need_value(args.delta)) return std::nullopt;
    } else if (arg == "--leakage") {
      if (!need_value(args.leakage)) return std::nullopt;
    } else if (arg == "--eps-lo") {
      if (!need_value(args.eps_lo)) return std::nullopt;
    } else if (arg == "--eps-hi") {
      if (!need_value(args.eps_hi)) return std::nullopt;
    } else if (arg == "--couple-leakage") {
      args.couple_leakage = true;
    } else if (arg == "--map") {
      if (i + 1 >= argc) return std::nullopt;
      args.map_fanin = std::stoi(argv[++i]);
    } else if (arg == "--points") {
      if (i + 1 >= argc) return std::nullopt;
      args.points = std::stoi(argv[++i]);
    } else if (arg == "-o") {
      if (i + 1 >= argc) return std::nullopt;
      args.out = argv[++i];
    } else if (arg == "--csv") {
      if (i + 1 >= argc) return std::nullopt;
      args.csv = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return std::nullopt;
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

netlist::Circuit load_and_map(const Args& args, const std::string& path) {
  netlist::Circuit circuit = netlist::read_bench_file(path);
  if (args.map_fanin > 0) {
    synth::MapOptions options;
    options.library = synth::Library::generic(args.map_fanin);
    circuit = synth::map_to_library(circuit, options).circuit;
  }
  return circuit;
}

void print_profile(const core::CircuitProfile& p) {
  report::Table t({"field", "value"});
  t.add_row({std::string("name"), p.name});
  t.add_row({std::string("inputs"), std::to_string(p.num_inputs)});
  t.add_row({std::string("outputs"), std::to_string(p.num_outputs)});
  t.add_row({std::string("gates S0"), report::format_double(p.size_s0, 6)});
  t.add_row({std::string("depth d0"), std::to_string(p.depth_d0)});
  t.add_row({std::string("avg fanin k"),
             report::format_double(p.avg_fanin_k, 4)});
  t.add_row({std::string("avg activity sw0"),
             report::format_double(p.avg_activity_sw0, 4)});
  t.add_row({std::string(p.sensitivity_exact ? "sensitivity s (exact)"
                                             : "sensitivity s (sampled >=)"),
             report::format_double(p.sensitivity_s, 4)});
  std::cout << t.to_text();
}

int cmd_profile(const Args& args) {
  const auto circuit = load_and_map(args, args.positional[1]);
  print_profile(core::extract_profile(circuit));
  return 0;
}

int cmd_analyze(const Args& args) {
  const auto circuit = load_and_map(args, args.positional[1]);
  const core::CircuitProfile profile = core::extract_profile(circuit);
  print_profile(profile);
  core::EnergyModelOptions model;
  model.leakage_fraction = args.leakage;
  model.couple_leakage_to_delay = args.couple_leakage;
  const core::BoundReport r =
      core::analyze(profile, args.eps, args.delta, model);
  std::cout << "\nbounds at eps = " << args.eps << ", delta = " << args.delta
            << " (leakage share " << args.leakage << "):\n";
  report::Table t({"metric", "lower bound"});
  t.add_row({std::string("redundancy (gates)"),
             report::format_double(r.redundancy_gates, 5)});
  t.add_row({std::string("size factor"),
             report::format_double(r.size_factor, 5)});
  t.add_row({std::string("switching energy factor"),
             report::format_double(r.energy.switching_factor, 5)});
  t.add_row({std::string("total energy factor"),
             report::format_double(r.energy.total_factor, 5)});
  t.add_row({std::string("leakage ratio W_L/W_L0"),
             report::format_double(r.leakage_ratio, 5)});
  t.add_row({std::string("delay factor"),
             report::format_double(r.metrics.delay, 5)});
  t.add_row({std::string("energy x delay factor"),
             report::format_double(r.metrics.edp, 5)});
  t.add_row({std::string("avg power factor"),
             report::format_double(r.metrics.avg_power, 5)});
  t.add_row({std::string("depth-feasible"),
             std::string(r.depth_feasible ? "yes" : "no (xi^2 <= 1/k)")});
  std::cout << t.to_text();
  return 0;
}

int cmd_sweep(const Args& args) {
  const auto circuit = load_and_map(args, args.positional[1]);
  const core::CircuitProfile profile = core::extract_profile(circuit);
  const auto grid = core::log_grid(args.eps_lo, args.eps_hi, args.points);
  const auto reports = core::sweep_epsilon(profile, grid, args.delta);
  report::Table t({"eps", "E_total", "delay", "edp", "power"});
  std::vector<std::vector<std::string>> rows;
  for (const auto& r : reports) {
    t.add_row(report::format_double(r.epsilon, 4),
              {r.energy.total_factor, r.metrics.delay, r.metrics.edp,
               r.metrics.avg_power});
    rows.push_back({report::format_double(r.epsilon, 8),
                    report::format_double(r.energy.total_factor, 8),
                    report::format_double(r.metrics.delay, 8)});
  }
  std::cout << t.to_text();
  if (!args.csv.empty()) {
    report::write_csv_file(args.csv, {"eps", "E_total", "delay"}, rows);
    std::cout << "wrote " << args.csv << "\n";
  }
  return 0;
}

int cmd_gen(const Args& args) {
  const gen::BenchmarkSpec spec = gen::find_benchmark(args.positional[1]);
  const netlist::Circuit circuit = spec.build();
  if (args.out.empty()) {
    netlist::write_bench(circuit, std::cout);
  } else {
    netlist::write_bench_file(circuit, args.out);
    std::cout << "wrote " << args.out << " ("
              << netlist::compute_stats(circuit).num_gates << " gates)\n";
  }
  return 0;
}

int cmd_list() {
  report::Table t({"name", "family", "inputs", "gates"});
  for (const gen::BenchmarkSpec& spec : gen::standard_suite()) {
    const auto c = spec.build();
    t.add_row({spec.name, spec.family, std::to_string(c.num_inputs()),
               std::to_string(c.gate_count())});
  }
  std::cout << t.to_text();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse(argc, argv);
  if (!args.has_value() || args->positional.empty()) return usage();
  const std::string& command = args->positional[0];
  try {
    if (command == "list") return cmd_list();
    if (args->positional.size() < 2) return usage();
    if (command == "profile") return cmd_profile(*args);
    if (command == "analyze") return cmd_analyze(*args);
    if (command == "sweep") return cmd_sweep(*args);
    if (command == "gen") return cmd_gen(*args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return usage();
}
