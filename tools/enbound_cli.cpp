// enbound — command-line front end to the bounds framework.
//
//   enbound profile <file.bench> [--map K]
//   enbound analyze <file.bench> [--eps E] [--delta D] [--map K]
//                   [--leakage L] [--couple-leakage] [--json out.json]
//   enbound sweep   <file.bench> [--eps-lo A] [--eps-hi B] [--points N]
//                   [--delta D] [--map K] [--csv out.csv] [--json out.json]
//   enbound batch   <manifest>   [--map K] [--threads N] [--stream]
//                   [--csv out.csv] [--json out.json]
//   enbound gen     <name> [-o out.bench]      (suite circuit to .bench)
//   enbound list                                (available suite circuits)
//
// All analysis commands run on the analysis layer: the netlist is compiled
// once into a shared CompiledCircuit handle, derived artifacts (stats,
// profile) are cached on it, and sweeps/batches fan out typed
// AnalysisRequests over the handle — zero netlist copies, one profile
// extraction per design. `batch --stream` prints each result as its job
// finishes (completion order; payloads identical to the blocking run).
//
// Exit codes: 0 ok, 1 usage error, 2 processing error (including any failed
// batch job).
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/analyze.hpp"
#include "analysis/compiled_circuit.hpp"
#include "analysis/request.hpp"
#include "cli/args.hpp"
#include "core/analyzer.hpp"
#include "exec/batch.hpp"
#include "gen/suite.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/stats.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

namespace {

using namespace enb;
using cli::Args;

int usage() {
  std::cerr
      << "usage: enbound <command> [options]\n"
         "  profile <file.bench> [--map K]\n"
         "  analyze <file.bench> [--eps E] [--delta D] [--map K]\n"
         "          [--leakage L] [--couple-leakage] [--json out.json]\n"
         "  sweep   <file.bench> [--eps-lo A] [--eps-hi B] [--points N]\n"
         "          [--delta D] [--map K] [--csv out.csv] [--json out.json]\n"
         "  batch   <manifest> [--map K] [--threads N] [--stream]\n"
         "          [--csv out.csv] [--json out.json]\n"
         "  gen     <name> [-o out.bench]\n"
         "  list\n"
         "notes: --map 0 analyzes netlists as-is; default maps to the\n"
         "paper's generic max-fanin-3 library first. batch --stream prints\n"
         "each job as it finishes. Batch manifests hold one job per line:\n"
         "  <name> kind=<reliability|worst-case|activity|sensitivity|\n"
         "         energy-bound|profile> circuit=<suite name or .bench path>\n"
         "         [golden=<spec>] [eps=E] [delta=D] [budget=N] [seed=S]\n"
         "         [leakage=L]\n";
  return 1;
}

netlist::Circuit build_circuit(const std::string& spec) {
  const bool is_path = spec.find('/') != std::string::npos ||
                       (spec.size() > 6 &&
                        spec.compare(spec.size() - 6, 6, ".bench") == 0);
  return is_path ? netlist::read_bench_file(spec)
                 : gen::find_benchmark(spec).build();
}

// Compiles (and optionally maps) a circuit spec. The mapped variant is
// cached on the base handle, so repeated specs share everything.
analysis::CompiledCircuit load_compiled(const Args& args,
                                        const std::string& spec) {
  analysis::CompiledCircuit compiled = analysis::compile(build_circuit(spec));
  if (args.map_fanin > 0) compiled = compiled.mapped(args.map_fanin);
  return compiled;
}

void print_profile(const core::CircuitProfile& p) {
  report::Table t({"field", "value"});
  t.add_row({std::string("name"), p.name});
  t.add_row({std::string("inputs"), std::to_string(p.num_inputs)});
  t.add_row({std::string("outputs"), std::to_string(p.num_outputs)});
  t.add_row({std::string("gates S0"), report::format_double(p.size_s0, 6)});
  t.add_row({std::string("depth d0"), std::to_string(p.depth_d0)});
  t.add_row({std::string("avg fanin k"),
             report::format_double(p.avg_fanin_k, 4)});
  t.add_row({std::string("avg activity sw0"),
             report::format_double(p.avg_activity_sw0, 4)});
  t.add_row({std::string(p.sensitivity_exact ? "sensitivity s (exact)"
                                             : "sensitivity s (sampled >=)"),
             report::format_double(p.sensitivity_s, 4)});
  std::cout << t.to_text();
}

void write_json_file(const std::string& path,
                     const std::vector<analysis::AnalysisResult>& results) {
  std::ofstream out(path);
  exec::write_batch_json(out, results);
  std::cout << "wrote " << path << "\n";
}

int cmd_profile(const Args& args) {
  const analysis::CompiledCircuit compiled =
      load_compiled(args, args.positional[1]);
  print_profile(compiled.profile());
  return 0;
}

int cmd_analyze(const Args& args) {
  const analysis::CompiledCircuit compiled =
      load_compiled(args, args.positional[1]);
  // profile() caches on the handle: the analyze() call below reuses this
  // extraction.
  const core::CircuitProfile& profile = compiled.profile();
  print_profile(profile);
  core::EnergyModelOptions model;
  model.leakage_fraction = args.leakage;
  model.couple_leakage_to_delay = args.couple_leakage;
  const core::BoundReport r =
      analysis::analyze(compiled, args.eps, args.delta, model);
  std::cout << "\nbounds at eps = " << args.eps << ", delta = " << args.delta
            << " (leakage share " << args.leakage << "):\n";
  report::Table t({"metric", "lower bound"});
  t.add_row({std::string("redundancy (gates)"),
             report::format_double(r.redundancy_gates, 5)});
  t.add_row({std::string("size factor"),
             report::format_double(r.size_factor, 5)});
  t.add_row({std::string("switching energy factor"),
             report::format_double(r.energy.switching_factor, 5)});
  t.add_row({std::string("total energy factor"),
             report::format_double(r.energy.total_factor, 5)});
  t.add_row({std::string("leakage ratio W_L/W_L0"),
             report::format_double(r.leakage_ratio, 5)});
  t.add_row({std::string("delay factor"),
             report::format_double(r.metrics.delay, 5)});
  t.add_row({std::string("energy x delay factor"),
             report::format_double(r.metrics.edp, 5)});
  t.add_row({std::string("avg power factor"),
             report::format_double(r.metrics.avg_power, 5)});
  t.add_row({std::string("depth-feasible"),
             std::string(r.depth_feasible ? "yes" : "no (xi^2 <= 1/k)")});
  std::cout << t.to_text();

  if (!args.json.empty()) {
    std::vector<analysis::AnalysisResult> results;
    results.push_back(analysis::make_result(compiled.name(), r));
    write_json_file(args.json, results);
  }
  return 0;
}

int cmd_sweep(const Args& args) {
  const analysis::CompiledCircuit compiled =
      load_compiled(args, args.positional[1]);
  const std::vector<double> grid =
      core::log_grid(args.eps_lo, args.eps_hi, args.points);

  // Every grid point is an independent energy-bound request on the shared
  // handle: the batch engine extracts the profile once (shards parallelized
  // over the pool) and fans the cheap per-point analyses out over it.
  exec::BatchEvaluator batch(exec::Parallelism{args.threads});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    analysis::AnalysisRequest request;
    request.name = "eps_" + std::to_string(i);
    request.circuit = compiled;
    analysis::EnergyBoundRequest spec;
    spec.epsilon = grid[i];
    spec.delta = args.delta;
    request.options = spec;
    batch.submit(std::move(request));
  }
  const std::vector<analysis::AnalysisResult> results = batch.run();

  report::Table t({"eps", "E_total", "delay", "edp", "power"});
  std::vector<std::vector<std::string>> rows;
  for (const analysis::AnalysisResult& result : results) {
    if (!result.ok) {
      std::cerr << "error: sweep point " << result.name << " failed: "
                << result.error << "\n";
      return 2;
    }
    const core::BoundReport& r = *result.get<core::BoundReport>();
    t.add_row(report::format_double(r.epsilon, 4),
              {r.energy.total_factor, r.metrics.delay, r.metrics.edp,
               r.metrics.avg_power});
    rows.push_back({report::format_double(r.epsilon, 8),
                    report::format_double(r.energy.total_factor, 8),
                    report::format_double(r.metrics.delay, 8)});
  }
  std::cout << t.to_text();
  if (!args.csv.empty()) {
    report::write_csv_file(args.csv, {"eps", "E_total", "delay"}, rows);
    std::cout << "wrote " << args.csv << "\n";
  }
  if (!args.json.empty()) write_json_file(args.json, results);
  return 0;
}

// The headline metric shown in the per-job summary table; the full metric
// set goes to --csv/--json.
const char* headline_metric(analysis::AnalysisKind kind) {
  switch (kind) {
    case analysis::AnalysisKind::kReliability:
      return "delta_hat";
    case analysis::AnalysisKind::kWorstCase:
      return "worst_delta_hat";
    case analysis::AnalysisKind::kActivity:
      return "avg_gate_toggle_rate";
    case analysis::AnalysisKind::kSensitivity:
      return "sensitivity";
    case analysis::AnalysisKind::kEnergyBound:
      return "total_factor";
    case analysis::AnalysisKind::kProfile:
      return "size_s0";
  }
  return "";
}

std::string headline_of(const analysis::AnalysisResult& r) {
  if (!r.ok) return "-";
  const char* metric = headline_metric(r.kind);
  if (const auto value = r.metric(metric); value.has_value()) {
    return std::string(metric) + " = " + report::format_double(*value, 6);
  }
  return "-";
}

int cmd_batch(const Args& args) {
  const std::string& manifest_path = args.positional[1];
  std::ifstream manifest(manifest_path);
  if (!manifest) {
    std::cerr << "error: cannot open manifest " << manifest_path << "\n";
    return 2;
  }
  // Handles are memoized per spec: jobs naming the same circuit share one
  // compiled handle — and therefore one profile extraction per profile key.
  std::map<std::string, analysis::CompiledCircuit> handles;
  std::vector<analysis::AnalysisRequest> requests = exec::parse_manifest_requests(
      manifest, [&](const std::string& spec) {
        const auto it = handles.find(spec);
        if (it != handles.end()) return it->second;
        return handles.emplace(spec, load_compiled(args, spec)).first->second;
      });
  if (requests.empty()) {
    std::cerr << "error: manifest " << manifest_path << " holds no jobs\n";
    return 2;
  }

  exec::BatchEvaluator batch(exec::Parallelism{args.threads});
  for (analysis::AnalysisRequest& request : requests) {
    batch.submit(std::move(request));
  }

  std::vector<analysis::AnalysisResult> results;
  if (args.stream) {
    // Streaming: one line per job in completion order, results collected
    // for the summary/CSV/JSON below (restored to submission order).
    results.resize(batch.pending());
    batch.run([&](analysis::AnalysisResult result) {
      std::cout << "done " << result.name << " ["
                << analysis::to_string(result.kind) << "] "
                << (result.ok ? headline_of(result) : "FAILED: " + result.error)
                << "\n";
      results[result.index] = std::move(result);
    });
  } else {
    results = batch.run();
  }

  report::Table t({"job", "kind", "status", "headline"});
  bool all_ok = true;
  for (const analysis::AnalysisResult& r : results) {
    if (!r.ok) all_ok = false;
    t.add_row({r.name, std::string(analysis::to_string(r.kind)),
               r.ok ? std::string("ok") : "FAILED: " + r.error,
               headline_of(r)});
  }
  std::cout << t.to_text();

  if (!args.csv.empty()) {
    std::ofstream out(args.csv);
    exec::write_batch_csv(out, results);
    std::cout << "wrote " << args.csv << "\n";
  }
  if (!args.json.empty()) write_json_file(args.json, results);
  return all_ok ? 0 : 2;
}

int cmd_gen(const Args& args) {
  const gen::BenchmarkSpec spec = gen::find_benchmark(args.positional[1]);
  const netlist::Circuit circuit = spec.build();
  if (args.out.empty()) {
    netlist::write_bench(circuit, std::cout);
  } else {
    netlist::write_bench_file(circuit, args.out);
    std::cout << "wrote " << args.out << " ("
              << netlist::compute_stats(circuit).num_gates << " gates)\n";
  }
  return 0;
}

int cmd_list() {
  report::Table t({"name", "family", "inputs", "gates"});
  for (const gen::BenchmarkSpec& spec : gen::standard_suite()) {
    const auto c = spec.build();
    t.add_row({spec.name, spec.family, std::to_string(c.num_inputs()),
               std::to_string(c.gate_count())});
  }
  std::cout << t.to_text();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args =
      cli::parse_args(std::vector<std::string>(argv + 1, argv + argc));
  if (!args.ok()) {
    std::cerr << "error: " << args.error << "\n";
    return usage();
  }
  if (args.positional.empty()) return usage();
  const std::string& command = args.positional[0];
  try {
    if (command == "list") return cmd_list();
    if (args.positional.size() < 2) return usage();
    if (command == "profile") return cmd_profile(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "batch") return cmd_batch(args);
    if (command == "gen") return cmd_gen(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return usage();
}
