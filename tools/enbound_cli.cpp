// enbound — command-line front end to the bounds framework.
//
//   enbound profile <file.bench> [--map K]
//   enbound analyze <file.bench> [--eps E] [--delta D] [--map K]
//                   [--leakage L] [--couple-leakage] [--json out.json]
//   enbound sweep   <file.bench> [--eps-lo A] [--eps-hi B] [--points N]
//                   [--delta D] [--map K] [--csv out.csv] [--json out.json]
//   enbound batch   <manifest>   [--map K] [--threads N] [--stream]
//                   [--trace trace.json] [--csv out.csv] [--json out.json]
//   enbound faultsim <file.bench> [--golden spec] [--patterns N]
//                   [--exhaustive] [--seed S] [--bundle-width B]
//                   [--no-collapse] [--check-scalar] [--map K]
//                   [--prune-untestable] [--threads N] [--ans out.ans]
//                   [--trace trace.json] [--json out.json]
//   enbound cec     <a.bench> <b.bench> [--map K] [--json out.json]
//   enbound lint    <file.bench or suite name> [--allow-voter-replicas]
//                   [--json out.json]
//   enbound harden  <file.bench or suite name> [--style S] [--granularity G]
//                   [--top-k N] [--patterns N] [--seed S] [--eps E]
//                   [--delta D] [--leakage L] [--map K] [--threads N]
//                   [--emit dir] [--json out.json]
//   enbound serve   --socket <path> [--map K] [--threads N]
//                   [--max-handles N] [--max-cache N] [--trace trace.json]
//   enbound client  --socket <path> <verb> [...]
//   enbound gen     <name> [--tmr] [--strash] [-o out.bench]
//   enbound list                                (available suite circuits)
//
// All analysis commands run on the analysis layer: the netlist is compiled
// once into a shared CompiledCircuit handle, derived artifacts (stats,
// profile) are cached on it, and sweeps/batches fan out typed
// AnalysisRequests over the handle — zero netlist copies, one profile
// extraction per design. `batch --stream` prints each result as its job
// finishes (completion order; payloads identical to the blocking run).
// `serve` keeps handles and results alive *across* invocations: it owns a
// Unix domain socket, and `client` submits the same manifests against it —
// byte-identical output, amortized compile/extraction, memoized repeats.
//
// `--trace <file>` (any command) records spans for the whole invocation and
// writes them as Chrome trace-event JSON on exit — load the file in
// chrome://tracing or Perfetto. Purely observational: results and output
// bytes are identical with tracing on or off.
//
// Exit codes: 0 ok, 1 usage error, 2 processing error (malformed input or
// any failed batch job), 3 input file missing/unreadable.
#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyze.hpp"
#include "analysis/compiled_circuit.hpp"
#include "analysis/lint.hpp"
#include "analysis/request.hpp"
#include "cli/args.hpp"
#include "fault/campaign.hpp"
#include "fault/fault_sim.hpp"
#include "core/analyzer.hpp"
#include "exec/batch.hpp"
#include "ft/nmr.hpp"
#include "gen/suite.hpp"
#include "harden/pareto.hpp"
#include "obs/trace.hpp"
#include "synth/strash.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/stats.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "serve/client.hpp"
#include "sim/logic_sim.hpp"
#include "serve/server.hpp"

namespace {

using namespace enb;
using cli::Args;

// A missing input file is an environment problem, not a parse problem; it
// gets its own exit code so scripts can tell "fix the path" from "fix the
// file".
constexpr int kExitProcessing = 2;
constexpr int kExitMissingInput = 3;

int usage() {
  std::cerr
      << "usage: enbound <command> [options]\n"
         "  profile <file.bench> [--map K]\n"
         "  analyze <file.bench> [--eps E] [--delta D] [--map K]\n"
         "          [--leakage L] [--couple-leakage] [--json out.json]\n"
         "  sweep   <file.bench> [--eps-lo A] [--eps-hi B] [--points N]\n"
         "          [--delta D] [--map K] [--csv out.csv] [--json out.json]\n"
         "  batch   <manifest> [--map K] [--threads N] [--stream]\n"
         "          [--trace trace.json] [--csv out.csv] [--json out.json]\n"
         "  faultsim <file.bench> [--golden spec] [--patterns N]\n"
         "          [--exhaustive] [--seed S] [--bundle-width B]\n"
         "          [--no-collapse] [--check-scalar] [--drop]\n"
         "          [--lanes 64|128|256|512] [--sample N] [--map K]\n"
         "          [--prune-untestable] [--threads N] [--ans out.ans]\n"
         "          [--trace trace.json] [--json out.json]\n"
         "  cec     <a.bench> <b.bench> [--map K] [--json out.json]\n"
         "  lint    <file.bench or suite name> [--allow-voter-replicas]\n"
         "          [--json out.json]\n"
         "  harden  <file.bench or suite name> [--style tmr|dwc|selective]\n"
         "          [--granularity gate|cone|output] [--top-k N]\n"
         "          [--patterns N] [--seed S] [--eps E] [--delta D]\n"
         "          [--leakage L] [--map K] [--threads N] [--emit dir]\n"
         "          [--json out.json]\n"
         "  serve   --socket <path> [--map K] [--threads N]\n"
         "          [--max-handles N] [--max-cache N] [--trace trace.json]\n"
         "  client  --socket <path> load <spec> [name] [--map K]\n"
         "  client  --socket <path> batch <manifest> [--json out.json]\n"
         "  client  --socket <path> analyze <handle> kind=<kind> [key=val...]\n"
         "  client  --socket <path> stats|metrics|evict [name]|ping|shutdown\n"
         "  gen     <name> [--tmr] [--strash] [-o out.bench]\n"
         "  list\n"
         "notes: --map 0 analyzes netlists as-is; default maps to the\n"
         "paper's generic max-fanin-3 library first. batch --stream prints\n"
         "each job as it finishes. cec exits 0 when the circuits are proved\n"
         "equivalent and 2 when refuted (naming the first differing output)\n"
         "or inconclusive. --trace <file> (any command) writes Chrome\n"
         "trace-event JSON for the invocation; client metrics prints the\n"
         "server's Prometheus-style exposition. Batch manifests hold one\n"
         "job per line:\n"
         "  <name> kind=<reliability|worst-case|activity|sensitivity|\n"
         "         energy-bound|profile|fault-campaign|lint|cec|harden>\n"
         "         circuit=<suite name or .bench path>\n"
         "         [golden=<spec>] [eps=E] [delta=D] [budget=N] [seed=S]\n"
         "         [leakage=L] [mode=random|exhaustive] [drop=0|1]\n"
         "         [lanes=64|128|256|512] [sample=N] [prune=0|1]\n"
         "         [style=tmr|dwc|selective] [granularity=gate|cone|output]\n"
         "         [top_k=N]\n"
         "harden sweeps redundancy insertion (TMR / DWC / selective) over\n"
         "the base circuit, proves every candidate equivalent, and prints\n"
         "the (energy, protection, gates) Pareto frontier; --emit dir\n"
         "regenerates the frontier winners as .bench files. harden exits 2\n"
         "if any candidate's equivalence proof is refuted.\n"
         "exit codes: 0 ok, 1 usage, 2 processing/parse error or failed\n"
         "job, 3 input file missing\n";
  return 1;
}

// Opens an input file with the missing-vs-malformed distinction: a path
// that does not exist (or cannot be opened) returns kExitMissingInput
// through `error_exit`; parse errors remain the caller's (exit 2).
bool open_input_file(const std::string& path, const char* what,
                     std::ifstream& in, int& error_exit) {
  in.open(path);
  if (in) return true;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    std::cerr << "error: " << what << " file not found: " << path << "\n";
  } else {
    std::cerr << "error: cannot open " << what << " file: " << path << "\n";
  }
  error_exit = kExitMissingInput;
  return false;
}

// Missing-circuit-file check for commands whose positional is a .bench
// path; suite names never hit the filesystem.
bool circuit_file_missing(const std::string& spec) {
  std::error_code ec;
  return gen::spec_is_path(spec) && !std::filesystem::exists(spec, ec);
}

// Thrown by the batch resolver so a manifest naming a nonexistent .bench
// routes to kExitMissingInput like a missing positional path does (the
// documented missing-vs-malformed contract covers both).
struct MissingInputError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Compiles (and optionally maps) a circuit spec. The mapped variant is
// cached on the base handle, so repeated specs share everything.
analysis::CompiledCircuit load_compiled(const Args& args,
                                        const std::string& spec) {
  analysis::CompiledCircuit compiled =
      analysis::compile(gen::build_circuit_spec(spec));
  if (args.map_fanin > 0) compiled = compiled.mapped(args.map_fanin);
  return compiled;
}

void print_profile(const core::CircuitProfile& p) {
  report::Table t({"field", "value"});
  t.add_row({std::string("name"), p.name});
  t.add_row({std::string("inputs"), std::to_string(p.num_inputs)});
  t.add_row({std::string("outputs"), std::to_string(p.num_outputs)});
  t.add_row({std::string("gates S0"), report::format_double(p.size_s0, 6)});
  t.add_row({std::string("depth d0"), std::to_string(p.depth_d0)});
  t.add_row({std::string("avg fanin k"),
             report::format_double(p.avg_fanin_k, 4)});
  t.add_row({std::string("avg activity sw0"),
             report::format_double(p.avg_activity_sw0, 4)});
  t.add_row({std::string(p.sensitivity_exact ? "sensitivity s (exact)"
                                             : "sensitivity s (sampled >=)"),
             report::format_double(p.sensitivity_s, 4)});
  std::cout << t.to_text();
}

void write_json_file(const std::string& path,
                     const std::vector<analysis::AnalysisResult>& results) {
  std::ofstream out(path);
  exec::write_batch_json(out, results);
  std::cout << "wrote " << path << "\n";
}

int cmd_profile(const Args& args) {
  if (circuit_file_missing(args.positional[1])) {
    std::cerr << "error: circuit file not found: " << args.positional[1]
              << "\n";
    return kExitMissingInput;
  }
  const analysis::CompiledCircuit compiled =
      load_compiled(args, args.positional[1]);
  print_profile(compiled.profile());
  return 0;
}

int cmd_analyze(const Args& args) {
  if (circuit_file_missing(args.positional[1])) {
    std::cerr << "error: circuit file not found: " << args.positional[1]
              << "\n";
    return kExitMissingInput;
  }
  const analysis::CompiledCircuit compiled =
      load_compiled(args, args.positional[1]);
  // profile() caches on the handle: the analyze() call below reuses this
  // extraction.
  const core::CircuitProfile& profile = compiled.profile();
  print_profile(profile);
  core::EnergyModelOptions model;
  model.leakage_fraction = args.leakage;
  model.couple_leakage_to_delay = args.couple_leakage;
  const core::BoundReport r =
      analysis::analyze(compiled, args.eps, args.delta, model);
  std::cout << "\nbounds at eps = " << args.eps << ", delta = " << args.delta
            << " (leakage share " << args.leakage << "):\n";
  report::Table t({"metric", "lower bound"});
  t.add_row({std::string("redundancy (gates)"),
             report::format_double(r.redundancy_gates, 5)});
  t.add_row({std::string("size factor"),
             report::format_double(r.size_factor, 5)});
  t.add_row({std::string("switching energy factor"),
             report::format_double(r.energy.switching_factor, 5)});
  t.add_row({std::string("total energy factor"),
             report::format_double(r.energy.total_factor, 5)});
  t.add_row({std::string("leakage ratio W_L/W_L0"),
             report::format_double(r.leakage_ratio, 5)});
  t.add_row({std::string("delay factor"),
             report::format_double(r.metrics.delay, 5)});
  t.add_row({std::string("energy x delay factor"),
             report::format_double(r.metrics.edp, 5)});
  t.add_row({std::string("avg power factor"),
             report::format_double(r.metrics.avg_power, 5)});
  t.add_row({std::string("depth-feasible"),
             std::string(r.depth_feasible ? "yes" : "no (xi^2 <= 1/k)")});
  std::cout << t.to_text();

  if (!args.json.empty()) {
    std::vector<analysis::AnalysisResult> results;
    results.push_back(analysis::make_result(compiled.name(), r));
    write_json_file(args.json, results);
  }
  return 0;
}

int cmd_sweep(const Args& args) {
  if (circuit_file_missing(args.positional[1])) {
    std::cerr << "error: circuit file not found: " << args.positional[1]
              << "\n";
    return kExitMissingInput;
  }
  const analysis::CompiledCircuit compiled =
      load_compiled(args, args.positional[1]);
  const std::vector<double> grid =
      core::log_grid(args.eps_lo, args.eps_hi, args.points);

  // Every grid point is an independent energy-bound request on the shared
  // handle: the batch engine extracts the profile once (shards parallelized
  // over the pool) and fans the cheap per-point analyses out over it.
  exec::BatchEvaluator batch(exec::Parallelism{args.threads});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    analysis::AnalysisRequest request;
    request.name = "eps_" + std::to_string(i);
    request.circuit = compiled;
    analysis::EnergyBoundRequest spec;
    spec.epsilon = grid[i];
    spec.delta = args.delta;
    request.options = spec;
    batch.submit(std::move(request));
  }
  const std::vector<analysis::AnalysisResult> results = batch.run();

  report::Table t({"eps", "E_total", "delay", "edp", "power"});
  std::vector<std::vector<std::string>> rows;
  for (const analysis::AnalysisResult& result : results) {
    if (!result.ok) {
      std::cerr << "error: sweep point " << result.name << " failed: "
                << result.error << "\n";
      return 2;
    }
    const core::BoundReport& r = *result.get<core::BoundReport>();
    t.add_row(report::format_double(r.epsilon, 4),
              {r.energy.total_factor, r.metrics.delay, r.metrics.edp,
               r.metrics.avg_power});
    rows.push_back({report::format_double(r.epsilon, 8),
                    report::format_double(r.energy.total_factor, 8),
                    report::format_double(r.metrics.delay, 8)});
  }
  std::cout << t.to_text();
  if (!args.csv.empty()) {
    report::write_csv_file(args.csv, {"eps", "E_total", "delay"}, rows);
    std::cout << "wrote " << args.csv << "\n";
  }
  if (!args.json.empty()) write_json_file(args.json, results);
  return 0;
}

// The headline metric shown in the per-job summary table; the full metric
// set goes to --csv/--json.
const char* headline_metric(analysis::AnalysisKind kind) {
  switch (kind) {
    case analysis::AnalysisKind::kReliability:
      return "delta_hat";
    case analysis::AnalysisKind::kWorstCase:
      return "worst_delta_hat";
    case analysis::AnalysisKind::kActivity:
      return "avg_gate_toggle_rate";
    case analysis::AnalysisKind::kSensitivity:
      return "sensitivity";
    case analysis::AnalysisKind::kEnergyBound:
      return "total_factor";
    case analysis::AnalysisKind::kProfile:
      return "size_s0";
    case analysis::AnalysisKind::kFaultCampaign:
      return "coverage";
    case analysis::AnalysisKind::kLint:
      return "errors";
    case analysis::AnalysisKind::kCec:
      return "equivalent";
    case analysis::AnalysisKind::kHarden:
      return "frontier_size";
  }
  return "";
}

std::string headline_of(const analysis::AnalysisResult& r) {
  if (!r.ok) return "-";
  const char* metric = headline_metric(r.kind);
  if (const auto value = r.metric(metric); value.has_value()) {
    return std::string(metric) + " = " + report::format_double(*value, 6);
  }
  return "-";
}

int cmd_batch(const Args& args) {
  const std::string& manifest_path = args.positional[1];
  std::ifstream manifest;
  int error_exit = kExitProcessing;
  if (!open_input_file(manifest_path, "manifest", manifest, error_exit)) {
    return error_exit;
  }
  // Handles are memoized per spec: jobs naming the same circuit share one
  // compiled handle — and therefore one profile extraction per profile key.
  std::map<std::string, analysis::CompiledCircuit> handles;
  std::vector<analysis::AnalysisRequest> requests;
  try {
    requests = exec::parse_manifest_requests(
        manifest, [&](const std::string& spec) {
          const auto it = handles.find(spec);
          if (it != handles.end()) return it->second;
          if (circuit_file_missing(spec)) {
            throw MissingInputError("circuit file not found: " + spec);
          }
          return handles.emplace(spec, load_compiled(args, spec)).first->second;
        });
  } catch (const MissingInputError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitMissingInput;
  }
  if (requests.empty()) {
    std::cerr << "error: manifest " << manifest_path << " holds no jobs\n";
    return 2;
  }

  exec::BatchEvaluator batch(exec::Parallelism{args.threads});
  for (analysis::AnalysisRequest& request : requests) {
    batch.submit(std::move(request));
  }

  std::vector<analysis::AnalysisResult> results;
  if (args.stream) {
    // Streaming: one line per job in completion order, results collected
    // for the summary/CSV/JSON below (restored to submission order).
    results.resize(batch.pending());
    batch.run([&](analysis::AnalysisResult result) {
      std::cout << "done " << result.name << " ["
                << analysis::to_string(result.kind) << "] "
                << (result.ok ? headline_of(result) : "FAILED: " + result.error)
                << "\n";
      results[result.index] = std::move(result);
    });
  } else {
    results = batch.run();
  }

  report::Table t({"job", "kind", "status", "elapsed", "headline"});
  bool all_ok = true;
  for (const analysis::AnalysisResult& r : results) {
    if (!r.ok) all_ok = false;
    t.add_row({r.name, std::string(analysis::to_string(r.kind)),
               r.ok ? std::string("ok") : "FAILED: " + r.error,
               report::format_double(r.elapsed_seconds, 3) + "s",
               headline_of(r)});
  }
  std::cout << t.to_text();

  if (!args.csv.empty()) {
    std::ofstream out(args.csv);
    exec::write_batch_csv(out, results);
    std::cout << "wrote " << args.csv << "\n";
  }
  if (!args.json.empty()) write_json_file(args.json, results);
  return all_ok ? 0 : 2;
}

// ---- netlist lint --------------------------------------------------------

void json_escape(std::ostream& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u00" << std::hex << static_cast<int>(c) << std::dec;
        } else {
          out << c;
        }
    }
  }
}

// Lint results carry typed diagnostics, not (metric, value) rows, so the
// lint subcommand has its own JSON shape instead of write_result_json's.
void write_lint_json(std::ostream& out, const std::string& name,
                     const analysis::LintReport& report) {
  out << "{\"name\": \"";
  json_escape(out, name);
  out << "\", \"nodes\": " << report.nodes
      << ", \"errors\": " << report.errors()
      << ", \"warnings\": " << report.warnings() << ", \"diagnostics\": [";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const analysis::LintDiagnostic& d = report.diagnostics[i];
    out << (i == 0 ? "" : ", ") << "{\"severity\": \""
        << analysis::to_string(d.severity) << "\", \"rule\": \""
        << analysis::to_string(d.rule) << "\", \"site\": \"";
    json_escape(out, d.site);
    out << "\", \"message\": \"";
    json_escape(out, d.message);
    out << "\"}";
  }
  out << "]}\n";
}

int cmd_lint(const Args& args) {
  const std::string& spec = args.positional[1];
  analysis::LintOptions options;
  options.allow_voter_replicas = args.allow_voter_replicas;
  analysis::LintReport report;
  if (gen::spec_is_path(spec)) {
    std::ifstream in;
    int error_exit = kExitProcessing;
    if (!open_input_file(spec, "circuit", in, error_exit)) return error_exit;
    std::ostringstream text;
    text << in.rdbuf();
    report = analysis::lint_bench_text(text.str(), spec, options);
  } else {
    // Suite circuits are built programmatically, so there is no source text
    // to scan; the circuit rules are the whole story.
    report = analysis::lint_circuit(gen::build_circuit_spec(spec), options);
  }
  analysis::write_lint_text(std::cout, report);
  if (!args.json.empty()) {
    std::ofstream out(args.json);
    write_lint_json(out, spec, report);
    std::cout << "wrote " << args.json << "\n";
  }
  return report.clean() ? 0 : kExitProcessing;
}

// ---- fault campaigns -----------------------------------------------------

int cmd_faultsim(const Args& args) {
  const std::string& spec = args.positional[1];
  if (circuit_file_missing(spec)) {
    std::cerr << "error: circuit file not found: " << spec << "\n";
    return kExitMissingInput;
  }
  if (!args.golden.empty() && circuit_file_missing(args.golden)) {
    std::cerr << "error: golden circuit file not found: " << args.golden
              << "\n";
    return kExitMissingInput;
  }
  const analysis::CompiledCircuit compiled = load_compiled(args, spec);
  std::optional<analysis::CompiledCircuit> golden;
  if (!args.golden.empty()) golden = load_compiled(args, args.golden);

  fault::CampaignOptions options;
  options.patterns = args.patterns;
  options.exhaustive = args.exhaustive;
  options.seed = args.seed;
  options.bundle_width = args.bundle_width;
  options.collapse = !args.no_collapse;
  options.drop = args.drop;
  options.sample = args.sample;
  options.prune_untestable = args.prune_untestable;
  const std::optional<fault::LaneWidth> lanes =
      fault::parse_lane_width(args.lanes);
  if (!lanes.has_value()) {
    std::cerr << "error: --lanes must be 64, 128, 256, or 512\n";
    return kExitProcessing;
  }
  options.lanes = *lanes;
  if (!args.ans.empty() && options.sample != 0) {
    std::cerr << "error: --ans rows need the full universe; "
                 "drop --sample or --ans\n";
    return kExitProcessing;
  }

  const netlist::Circuit& circuit = compiled.circuit();
  const netlist::Circuit& reference =
      golden.has_value() ? golden->circuit() : circuit;
  fault::validate_campaign_inputs(circuit, reference, options);
  const exec::Parallelism how{args.threads};
  // The summary always comes from the aggregate campaign, so it reflects
  // the requested dropping/sampling/lane policy. The row-level consumers
  // (--ans, --check-scalar) additionally build the per-pattern detection
  // table, which never drops (rows must be complete) — its detection bits
  // and first-detection records are bit-identical to the aggregate's by
  // construction (pinned by tests/test_fault_campaign.cpp).
  const fault::FaultCampaignResult result = fault::run_campaign(
      circuit, golden.has_value() ? &reference : nullptr, options, how);
  std::optional<fault::FaultUniverse> universe;
  std::optional<fault::DetectionTable> table;
  if (args.check_scalar || !args.ans.empty()) {
    universe = fault::FaultUniverse::build(circuit, options.collapse,
                                           options.prune_untestable);
    table = fault::build_detection_table(circuit, reference, *universe,
                                         options, how);
  }

  report::Table t({"field", "value"});
  t.add_row({std::string("circuit"), compiled.name()});
  t.add_row({std::string("golden"),
             golden.has_value() ? golden->name() : compiled.name() + " (self)"});
  t.add_row({std::string("nets"), std::to_string(result.nets)});
  t.add_row({std::string("fault sites"), std::to_string(result.sites)});
  t.add_row({std::string("collapsed classes"),
             std::to_string(result.classes)});
  if (options.prune_untestable) {
    t.add_row({std::string("untestable classes"),
               std::to_string(result.untestable)});
  }
  t.add_row({std::string("sampled classes"), std::to_string(result.sampled)});
  t.add_row({std::string("patterns"), std::to_string(result.patterns)});
  t.add_row({std::string("detected classes"),
             std::to_string(result.detected)});
  t.add_row({std::string("first-detect outputs"),
             std::to_string(result.detect_outputs)});
  t.add_row({std::string("sim passes"), std::to_string(result.sim_passes)});
  t.add_row({std::string("lane width"),
             std::string(fault::to_string(options.lanes))});
  t.add_row({std::string("fault dropping"),
             std::string(options.drop ? "on" : "off")});
  t.add_row({std::string("gate overhead"),
             report::format_double(result.gate_overhead, 4)});
  std::cout << t.to_text();
  std::cout << "coverage " << report::format_double(result.coverage, 6) << " ("
            << result.detected << "/" << result.sampled
            << (options.prune_untestable ? " testable" : "")
            << " classes), masked_fraction "
            << report::format_double(result.masked_fraction, 6) << "\n";
  if (result.sampled < result.classes - result.untestable) {
    std::cout << "coverage_ci ["
              << report::format_double(result.coverage_ci_low, 6) << ", "
              << report::format_double(result.coverage_ci_high, 6)
              << "] (Wilson 95%, " << result.sampled << "/" << result.classes
              << " classes sampled)\n";
  }

  if (args.check_scalar) {
    // Cross-check every (pattern, sampled class) bit against the scalar
    // one-fault-at-a-time reference — the two implementations share no
    // evaluation machinery, so agreement here is a real equivalence check
    // for whichever lane width ran.
    fault::ScalarFaultSim scalar(circuit, *universe, options.bundle_width);
    const std::vector<std::uint32_t> sampled =
        fault::sampled_classes(*universe, options);
    std::uint64_t scalar_passes = 0;
    std::uint64_t mismatches = 0;
    for (std::size_t p = 0; p < table->patterns.size(); ++p) {
      const std::vector<bool> expected =
          sim::eval_single(reference, table->patterns[p]);
      ++scalar_passes;
      for (const std::uint32_t c : sampled) {
        const bool parallel_bit =
            ((table->detected[p][c / sim::kWordBits] >>
              (c % sim::kWordBits)) &
             1) != 0;
        if (scalar.detect(c, table->patterns[p], expected) != parallel_bit) {
          ++mismatches;
        }
      }
    }
    scalar_passes += scalar.passes();
    if (mismatches != 0) {
      std::cerr << "error: bit-parallel and scalar fault simulation disagree "
                << "on " << mismatches << " (pattern, fault) pairs\n";
      return kExitProcessing;
    }
    const double reduction = table->passes == 0
                                 ? 0.0
                                 : static_cast<double>(scalar_passes) /
                                       static_cast<double>(table->passes);
    std::cout << "scalar check ok: " << scalar_passes << " scalar vs "
              << table->passes << " bit-parallel passes ("
              << report::format_double(reduction, 2) << "x reduction)\n";
  }

  if (!args.ans.empty()) {
    std::ofstream out(args.ans);
    fault::write_ans(out, circuit, *universe, *table);
    std::cout << "wrote " << args.ans << "\n";
  }
  if (!args.json.empty()) {
    std::vector<analysis::AnalysisResult> results;
    results.push_back(analysis::make_result(compiled.name(), result));
    write_json_file(args.json, results);
  }
  return 0;
}

// ---- redundancy hardening ------------------------------------------------

// Frontier-winner filenames derive from the candidate label with '/'
// replaced ("selective/cone/k2" -> "selective-cone-k2.bench"), so emitted
// directories sort by style.
std::string emit_filename(const std::string& label) {
  std::string name = label;
  for (char& c : name) {
    if (c == '/') c = '-';
  }
  return name + ".bench";
}

int cmd_harden(const Args& args) {
  const std::string& spec = args.positional[1];
  if (circuit_file_missing(spec)) {
    std::cerr << "error: circuit file not found: " << spec << "\n";
    return kExitMissingInput;
  }

  harden::SweepOptions options;
  if (!args.style.empty()) {
    const auto style = harden::parse_style(args.style);
    if (!style.has_value()) {
      std::cerr << "error: --style must be tmr, dwc, or selective\n";
      return kExitProcessing;
    }
    options.style = *style;
  }
  if (!args.granularity.empty()) {
    const auto granularity = harden::parse_granularity(args.granularity);
    if (!granularity.has_value()) {
      std::cerr << "error: --granularity must be gate, cone, or output\n";
      return kExitProcessing;
    }
    options.granularity = *granularity;
  }
  options.top_k = static_cast<std::uint32_t>(args.top_k);
  options.epsilon = args.eps;
  options.delta = args.delta;
  options.leakage_fraction = args.leakage;
  options.campaign.patterns = args.patterns;
  options.campaign.exhaustive = args.exhaustive;
  options.campaign.seed = args.seed;
  options.campaign.drop = args.drop;
  options.campaign.sample = args.sample;
  // The sweep default prunes untestable classes; the flag only re-asserts it.
  options.campaign.prune_untestable =
      options.campaign.prune_untestable || args.prune_untestable;
  const std::optional<fault::LaneWidth> lanes =
      fault::parse_lane_width(args.lanes);
  if (!lanes.has_value()) {
    std::cerr << "error: --lanes must be 64, 128, 256, or 512\n";
    return kExitProcessing;
  }
  options.campaign.lanes = *lanes;

  const analysis::CompiledCircuit compiled = load_compiled(args, spec);
  const exec::Parallelism how{args.threads};
  const harden::ParetoResult result =
      harden::pareto_sweep(compiled, options, how);

  report::Table t({"candidate", "gates", "voters", "checks", "energy",
                   "protection", "coverage", "status", "frontier"});
  for (const harden::Candidate& c : result.candidates) {
    std::string status;
    if (!c.equivalent) {
      status = "REFUTED";
    } else if (!c.lint_clean) {
      status = "LINT";
    } else {
      status = "ok";
    }
    t.add_row({c.label, std::to_string(c.gates), std::to_string(c.voter_gates),
               std::to_string(c.check_outputs),
               report::format_double(c.energy_factor, 5),
               report::format_double(c.protection, 5),
               report::format_double(c.coverage, 5), status,
               std::string(c.on_frontier ? "*" : "")});
  }
  std::cout << t.to_text();
  std::cout << result.frontier.size() << " frontier point(s) over "
            << result.candidates.size() << " candidate(s)";
  if (result.refuted > 0) {
    std::cout << ", " << result.refuted << " REFUTED";
  }
  std::cout << "\n";

  if (!args.json.empty()) {
    std::vector<analysis::AnalysisResult> results;
    results.push_back(analysis::make_result(compiled.name(), result));
    write_json_file(args.json, results);
  }

  if (!args.emit.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(args.emit, ec);
    if (ec) {
      std::cerr << "error: cannot create emit directory " << args.emit << ": "
                << ec.message() << "\n";
      return kExitProcessing;
    }
    for (const std::uint32_t index : result.frontier) {
      const harden::Candidate& c = result.candidates[index];
      if (!c.hardened) continue;  // the baseline needs no regeneration
      const harden::HardenedCircuit variant =
          harden::rebuild_candidate(compiled.circuit(), options, c, how);
      const std::string path =
          (std::filesystem::path(args.emit) / emit_filename(c.label)).string();
      netlist::write_bench_file(variant.circuit, path);
      std::cout << "wrote " << path << " (" << variant.circuit.gate_count()
                << " gates)\n";
    }
  }

  return result.refuted > 0 ? kExitProcessing : 0;
}

// ---- combinational equivalence checking ----------------------------------

int cmd_cec(const Args& args) {
  if (args.positional.size() < 3) {
    std::cerr << "error: cec needs two circuits to compare\n";
    return 1;
  }
  for (std::size_t p = 1; p <= 2; ++p) {
    if (circuit_file_missing(args.positional[p])) {
      std::cerr << "error: circuit file not found: " << args.positional[p]
                << "\n";
      return kExitMissingInput;
    }
  }
  const analysis::CompiledCircuit a = load_compiled(args, args.positional[1]);
  const analysis::CompiledCircuit b = load_compiled(args, args.positional[2]);
  const analysis::CecResult result =
      analysis::check_equivalence(a.circuit(), b.circuit());

  report::Table t({"field", "value"});
  t.add_row({std::string("circuit a"), a.name()});
  t.add_row({std::string("circuit b"), b.name()});
  t.add_row({std::string("outputs"), std::to_string(result.outputs)});
  t.add_row({std::string("proved structural"),
             std::to_string(result.proved_structural)});
  t.add_row({std::string("proved bdd"), std::to_string(result.proved_bdd)});
  t.add_row({std::string("refuted"), std::to_string(result.refuted)});
  std::cout << t.to_text();

  if (!args.json.empty()) {
    std::vector<analysis::AnalysisResult> results;
    results.push_back(
        analysis::make_result(a.name() + "_vs_" + b.name(), result));
    write_json_file(args.json, results);
  }

  if (result.refuted > 0) {
    std::cout << "not equivalent: output '" << result.first_mismatch_output
              << "' differs\n";
    return kExitProcessing;
  }
  if (result.inconclusive) {
    std::cout << "inconclusive: BDD node limit exceeded before every output "
                 "pair was discharged\n";
    return kExitProcessing;
  }
  std::cout << "equivalent (" << result.proved_structural << " structural, "
            << result.proved_bdd << " bdd)\n";
  return 0;
}

// ---- server mode ---------------------------------------------------------

std::atomic<bool> g_serve_stop{false};

void serve_signal_handler(int) { g_serve_stop.store(true); }

int cmd_serve(const Args& args) {
  if (args.socket.empty()) {
    std::cerr << "error: serve requires --socket <path>\n";
    return 1;
  }
  serve::ServerOptions options;
  options.socket_path = args.socket;
  options.max_handles = static_cast<std::size_t>(args.max_handles);
  options.max_results = static_cast<std::size_t>(args.max_cache);
  options.default_map_fanin = args.map_fanin;
  options.how = exec::Parallelism{args.threads};
  options.external_stop = &g_serve_stop;

  // SIGINT/SIGTERM drain gracefully: in-flight evaluations finish, the
  // socket file is removed.
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);

  serve::Server server(std::move(options));
  server.bind();
  std::cout << "enbound_served listening on " << args.socket << "\n"
            << std::flush;
  server.run();

  const serve::RegistryStats registry = server.registry_stats();
  const serve::ResultCacheStats cache = server.cache_stats();
  const serve::ServerStats stats = server.stats();
  std::cout << "enbound_served stopped: " << stats.sessions_total
            << " sessions, " << stats.queries << " queries, " << stats.results
            << " results (" << cache.hits << " cache hits), "
            << registry.loads << " circuit loads\n";
  return 0;
}

// ---- client mode ---------------------------------------------------------

void print_client_results(const serve::QueryOutcome& outcome) {
  report::Table t({"job", "kind", "status", "cached", "headline"});
  for (const serve::ResultRecord& r : outcome.results) {
    t.add_row({r.name, r.kind, r.ok ? std::string("ok") : "FAILED",
               r.cached ? std::string("hit") : "miss",
               r.headline.empty() ? std::string("-") : r.headline});
  }
  std::cout << t.to_text() << outcome.cached << "/" << outcome.total
            << " served from the result cache\n";
}

void write_client_json(const std::string& path,
                       const serve::QueryOutcome& outcome) {
  std::ofstream out(path);
  outcome.assemble_json(out);
  std::cout << "wrote " << path << "\n";
}

int client_batch(serve::Client& client, const Args& args) {
  const std::string& manifest_path = args.positional[2];
  std::ifstream manifest;
  int error_exit = kExitProcessing;
  if (!open_input_file(manifest_path, "manifest", manifest, error_exit)) {
    return error_exit;
  }
  std::ostringstream text;
  text << manifest.rdbuf();

  const serve::QueryOutcome outcome =
      client.batch(text.str(), [](const serve::ResultRecord& r) {
        std::cout << "done " << r.name << " [" << r.kind << "] "
                  << (r.cached ? "(cached) " : "")
                  << (r.ok ? (r.headline.empty() ? "ok" : r.headline)
                           : "FAILED")
                  << "\n";
      });
  print_client_results(outcome);
  if (!args.json.empty()) write_client_json(args.json, outcome);
  return outcome.failed == 0 ? 0 : kExitProcessing;
}

int client_analyze(serve::Client& client, const Args& args) {
  const std::string& handle = args.positional[2];
  std::string kind;
  std::vector<std::string> tokens;
  for (std::size_t i = 3; i < args.positional.size(); ++i) {
    const std::string& token = args.positional[i];
    if (token.rfind("kind=", 0) == 0) {
      kind = token.substr(5);
    } else {
      tokens.push_back(token);
    }
  }
  if (kind.empty()) {
    std::cerr << "error: client analyze requires kind=<kind>\n";
    return 1;
  }
  const serve::QueryOutcome outcome = client.analyze(handle, kind, tokens);
  for (const serve::ResultRecord& r : outcome.results) {
    std::cout << r.json << "\n";
  }
  if (!args.json.empty()) write_client_json(args.json, outcome);
  return outcome.failed == 0 ? 0 : kExitProcessing;
}

int cmd_client(const Args& args) {
  if (args.socket.empty()) {
    std::cerr << "error: client requires --socket <path>\n";
    return 1;
  }
  if (args.positional.size() < 2) return usage();
  const std::string& verb = args.positional[1];
  serve::Client client(args.socket);

  if (verb == "batch") {
    if (args.positional.size() < 3) return usage();
    return client_batch(client, args);
  }
  if (verb == "analyze") {
    if (args.positional.size() < 3) return usage();
    return client_analyze(client, args);
  }
  if (verb == "load") {
    if (args.positional.size() < 3) return usage();
    const std::string& spec = args.positional[2];
    const std::string name =
        args.positional.size() > 3 ? args.positional[3] : "";
    const serve::Frame reply = client.load(spec, name, args.map_fanin);
    std::cout << "loaded handle=" << reply.arg("handle").value_or("?")
              << " fingerprint=" << reply.arg("fingerprint").value_or("?")
              << " gates=" << reply.arg("gates").value_or("?")
              << " depth=" << reply.arg("depth").value_or("?") << "\n";
    return 0;
  }
  if (verb == "stats") {
    const serve::Frame reply = client.stats();
    report::Table t({"counter", "value"});
    for (const auto& [key, value] : reply.args) t.add_row({key, value});
    std::cout << t.to_text();
    return 0;
  }
  if (verb == "metrics") {
    const serve::Frame reply = client.metrics();
    std::cout << reply.payload;
    return 0;
  }
  if (verb == "evict") {
    const std::string handle =
        args.positional.size() > 2 ? args.positional[2] : "";
    const serve::Frame reply = client.evict(handle);
    std::cout << "evicted " << reply.arg("evicted").value_or("0")
              << " handle(s)\n";
    return 0;
  }
  if (verb == "ping") {
    (void)client.ping();
    std::cout << "pong\n";
    return 0;
  }
  if (verb == "shutdown") {
    (void)client.shutdown_server();
    std::cout << "server shutting down\n";
    return 0;
  }
  std::cerr << "error: unknown client verb '" << verb << "'\n";
  return usage();
}

int cmd_gen(const Args& args) {
  const gen::BenchmarkSpec spec = gen::find_benchmark(args.positional[1]);
  netlist::Circuit circuit = spec.build();
  // Structure-changing emit modes, applied in redundancy-then-rewrite order:
  // --tmr triplicates with a majority voter, --strash merges structurally
  // identical gates. Both preserve the logical function, which is exactly
  // what `enbound cec` is expected to prove.
  if (args.gen_tmr) circuit = ft::nmr_transform(circuit).circuit;
  if (args.gen_strash) circuit = synth::strash(circuit);
  if (args.out.empty()) {
    netlist::write_bench(circuit, std::cout);
  } else {
    netlist::write_bench_file(circuit, args.out);
    std::cout << "wrote " << args.out << " ("
              << netlist::compute_stats(circuit).num_gates << " gates)\n";
  }
  return 0;
}

int cmd_list() {
  report::Table t({"name", "family", "inputs", "gates"});
  for (const std::vector<gen::BenchmarkSpec>& suite :
       {gen::standard_suite(), gen::scale_suite()}) {
    for (const gen::BenchmarkSpec& spec : suite) {
      const auto c = spec.build();
      t.add_row({spec.name, spec.family, std::to_string(c.num_inputs()),
                 std::to_string(c.gate_count())});
    }
  }
  std::cout << t.to_text();
  return 0;
}

int run_command(const std::string& command, const Args& args) {
  if (command == "list") return cmd_list();
  if (command == "serve") return cmd_serve(args);
  if (command == "client") return cmd_client(args);
  if (args.positional.size() < 2) return usage();
  if (command == "profile") return cmd_profile(args);
  if (command == "analyze") return cmd_analyze(args);
  if (command == "sweep") return cmd_sweep(args);
  if (command == "batch") return cmd_batch(args);
  if (command == "faultsim") return cmd_faultsim(args);
  if (command == "cec") return cmd_cec(args);
  if (command == "lint") return cmd_lint(args);
  if (command == "harden") return cmd_harden(args);
  if (command == "gen") return cmd_gen(args);
  return usage();
}

// Dumps the recorded spans as Chrome trace-event JSON. Runs after the
// command finished (success or error), so every evaluation thread has
// stopped and the recorder is quiescent.
int write_trace_file(const std::string& path, int code) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::global();
  recorder.disable();
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot open trace file: " << path << "\n";
    return code == 0 ? kExitProcessing : code;
  }
  recorder.write_chrome_trace(out);
  std::cout << "wrote " << path << " (" << recorder.recorded() << " spans";
  if (recorder.dropped() > 0) {
    std::cout << ", " << recorder.dropped() << " dropped";
  }
  std::cout << ")\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args =
      cli::parse_args(std::vector<std::string>(argv + 1, argv + argc));
  if (!args.ok()) {
    std::cerr << "error: " << args.error << "\n";
    return usage();
  }
  if (args.positional.empty()) return usage();
  const std::string& command = args.positional[0];
  if (!cli::is_known_command(command)) {
    std::cerr << "error: unknown command '" << command << "' (valid:";
    for (const std::string& name : cli::known_commands()) {
      std::cerr << ' ' << name;
    }
    std::cerr << ")\n";
    return kExitProcessing;
  }
  if (!args.trace.empty()) obs::TraceRecorder::global().enable();
  int code = 0;
  try {
    code = run_command(command, args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    code = kExitProcessing;
  }
  if (!args.trace.empty()) code = write_trace_file(args.trace, code);
  return code;
}
