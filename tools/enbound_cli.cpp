// enbound — command-line front end to the bounds framework.
//
//   enbound profile <file.bench> [--map K]
//   enbound analyze <file.bench> [--eps E] [--delta D] [--map K]
//                   [--leakage L] [--couple-leakage]
//   enbound sweep   <file.bench> [--eps-lo A] [--eps-hi B] [--points N]
//                   [--delta D] [--map K] [--csv out.csv]
//   enbound batch   <manifest>   [--map K] [--threads N]
//                   [--csv out.csv] [--json out.json]
//   enbound gen     <name> [-o out.bench]      (suite circuit to .bench)
//   enbound list                                (available suite circuits)
//
// Exit codes: 0 ok, 1 usage error, 2 processing error (including any failed
// batch job).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "core/analyzer.hpp"
#include "exec/batch.hpp"
#include "gen/suite.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/stats.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"
#include "synth/mapper.hpp"

namespace {

using namespace enb;
using cli::Args;

int usage() {
  std::cerr
      << "usage: enbound <command> [options]\n"
         "  profile <file.bench> [--map K]\n"
         "  analyze <file.bench> [--eps E] [--delta D] [--map K]\n"
         "          [--leakage L] [--couple-leakage]\n"
         "  sweep   <file.bench> [--eps-lo A] [--eps-hi B] [--points N]\n"
         "          [--delta D] [--map K] [--csv out.csv]\n"
         "  batch   <manifest> [--map K] [--threads N] [--csv out.csv]\n"
         "          [--json out.json]\n"
         "  gen     <name> [-o out.bench]\n"
         "  list\n"
         "notes: --map 0 analyzes netlists as-is; default maps to the\n"
         "paper's generic max-fanin-3 library first. Batch manifests hold\n"
         "one job per line:\n"
         "  <name> kind=<reliability|worst-case|activity|sensitivity|\n"
         "         energy-bound|profile> circuit=<suite name or .bench path>\n"
         "         [golden=<spec>] [eps=E] [delta=D] [budget=N] [seed=S]\n"
         "         [leakage=L]\n";
  return 1;
}

netlist::Circuit resolve_circuit(const Args& args, const std::string& spec) {
  const bool is_path = spec.find('/') != std::string::npos ||
                       (spec.size() > 6 &&
                        spec.compare(spec.size() - 6, 6, ".bench") == 0);
  netlist::Circuit circuit =
      is_path ? netlist::read_bench_file(spec) : gen::find_benchmark(spec).build();
  if (args.map_fanin > 0) {
    synth::MapOptions options;
    options.library = synth::Library::generic(args.map_fanin);
    circuit = synth::map_to_library(circuit, options).circuit;
  }
  return circuit;
}

netlist::Circuit load_and_map(const Args& args, const std::string& path) {
  netlist::Circuit circuit = netlist::read_bench_file(path);
  if (args.map_fanin > 0) {
    synth::MapOptions options;
    options.library = synth::Library::generic(args.map_fanin);
    circuit = synth::map_to_library(circuit, options).circuit;
  }
  return circuit;
}

void print_profile(const core::CircuitProfile& p) {
  report::Table t({"field", "value"});
  t.add_row({std::string("name"), p.name});
  t.add_row({std::string("inputs"), std::to_string(p.num_inputs)});
  t.add_row({std::string("outputs"), std::to_string(p.num_outputs)});
  t.add_row({std::string("gates S0"), report::format_double(p.size_s0, 6)});
  t.add_row({std::string("depth d0"), std::to_string(p.depth_d0)});
  t.add_row({std::string("avg fanin k"),
             report::format_double(p.avg_fanin_k, 4)});
  t.add_row({std::string("avg activity sw0"),
             report::format_double(p.avg_activity_sw0, 4)});
  t.add_row({std::string(p.sensitivity_exact ? "sensitivity s (exact)"
                                             : "sensitivity s (sampled >=)"),
             report::format_double(p.sensitivity_s, 4)});
  std::cout << t.to_text();
}

int cmd_profile(const Args& args) {
  const auto circuit = load_and_map(args, args.positional[1]);
  print_profile(core::extract_profile(circuit));
  return 0;
}

int cmd_analyze(const Args& args) {
  const auto circuit = load_and_map(args, args.positional[1]);
  const core::CircuitProfile profile = core::extract_profile(circuit);
  print_profile(profile);
  core::EnergyModelOptions model;
  model.leakage_fraction = args.leakage;
  model.couple_leakage_to_delay = args.couple_leakage;
  const core::BoundReport r =
      core::analyze(profile, args.eps, args.delta, model);
  std::cout << "\nbounds at eps = " << args.eps << ", delta = " << args.delta
            << " (leakage share " << args.leakage << "):\n";
  report::Table t({"metric", "lower bound"});
  t.add_row({std::string("redundancy (gates)"),
             report::format_double(r.redundancy_gates, 5)});
  t.add_row({std::string("size factor"),
             report::format_double(r.size_factor, 5)});
  t.add_row({std::string("switching energy factor"),
             report::format_double(r.energy.switching_factor, 5)});
  t.add_row({std::string("total energy factor"),
             report::format_double(r.energy.total_factor, 5)});
  t.add_row({std::string("leakage ratio W_L/W_L0"),
             report::format_double(r.leakage_ratio, 5)});
  t.add_row({std::string("delay factor"),
             report::format_double(r.metrics.delay, 5)});
  t.add_row({std::string("energy x delay factor"),
             report::format_double(r.metrics.edp, 5)});
  t.add_row({std::string("avg power factor"),
             report::format_double(r.metrics.avg_power, 5)});
  t.add_row({std::string("depth-feasible"),
             std::string(r.depth_feasible ? "yes" : "no (xi^2 <= 1/k)")});
  std::cout << t.to_text();
  return 0;
}

int cmd_sweep(const Args& args) {
  const auto circuit = load_and_map(args, args.positional[1]);
  const core::CircuitProfile profile = core::extract_profile(circuit);
  const auto grid = core::log_grid(args.eps_lo, args.eps_hi, args.points);
  const auto reports = core::sweep_epsilon(profile, grid, args.delta);
  report::Table t({"eps", "E_total", "delay", "edp", "power"});
  std::vector<std::vector<std::string>> rows;
  for (const auto& r : reports) {
    t.add_row(report::format_double(r.epsilon, 4),
              {r.energy.total_factor, r.metrics.delay, r.metrics.edp,
               r.metrics.avg_power});
    rows.push_back({report::format_double(r.epsilon, 8),
                    report::format_double(r.energy.total_factor, 8),
                    report::format_double(r.metrics.delay, 8)});
  }
  std::cout << t.to_text();
  if (!args.csv.empty()) {
    report::write_csv_file(args.csv, {"eps", "E_total", "delay"}, rows);
    std::cout << "wrote " << args.csv << "\n";
  }
  return 0;
}

// The headline metric shown in the per-job summary table; the full metric
// set goes to --csv/--json.
const char* headline_metric(exec::JobKind kind) {
  switch (kind) {
    case exec::JobKind::kReliability:
      return "delta_hat";
    case exec::JobKind::kWorstCase:
      return "worst_delta_hat";
    case exec::JobKind::kActivity:
      return "avg_gate_toggle_rate";
    case exec::JobKind::kSensitivity:
      return "sensitivity";
    case exec::JobKind::kEnergyBound:
      return "total_factor";
    case exec::JobKind::kProfile:
      return "size_s0";
  }
  return "";
}

int cmd_batch(const Args& args) {
  const std::string& manifest_path = args.positional[1];
  std::ifstream manifest(manifest_path);
  if (!manifest) {
    std::cerr << "error: cannot open manifest " << manifest_path << "\n";
    return 2;
  }
  const std::vector<exec::BatchJob> jobs = exec::parse_manifest(
      manifest,
      [&](const std::string& spec) { return resolve_circuit(args, spec); });
  if (jobs.empty()) {
    std::cerr << "error: manifest " << manifest_path << " holds no jobs\n";
    return 2;
  }
  const std::vector<exec::BatchResult> results =
      exec::evaluate_batch(jobs, exec::BatchOptions{args.threads});

  report::Table t({"job", "kind", "status", "headline"});
  bool all_ok = true;
  for (const exec::BatchResult& r : results) {
    std::string headline = "-";
    if (r.ok) {
      const char* metric = headline_metric(r.kind);
      if (const auto value = r.metric(metric); value.has_value()) {
        headline = std::string(metric) + " = " +
                   report::format_double(*value, 6);
      }
    } else {
      all_ok = false;
    }
    t.add_row({r.name, std::string(exec::to_string(r.kind)),
               r.ok ? std::string("ok") : "FAILED: " + r.error, headline});
  }
  std::cout << t.to_text();

  if (!args.csv.empty()) {
    std::ofstream out(args.csv);
    exec::write_batch_csv(out, results);
    std::cout << "wrote " << args.csv << "\n";
  }
  if (!args.json.empty()) {
    std::ofstream out(args.json);
    exec::write_batch_json(out, results);
    std::cout << "wrote " << args.json << "\n";
  }
  return all_ok ? 0 : 2;
}

int cmd_gen(const Args& args) {
  const gen::BenchmarkSpec spec = gen::find_benchmark(args.positional[1]);
  const netlist::Circuit circuit = spec.build();
  if (args.out.empty()) {
    netlist::write_bench(circuit, std::cout);
  } else {
    netlist::write_bench_file(circuit, args.out);
    std::cout << "wrote " << args.out << " ("
              << netlist::compute_stats(circuit).num_gates << " gates)\n";
  }
  return 0;
}

int cmd_list() {
  report::Table t({"name", "family", "inputs", "gates"});
  for (const gen::BenchmarkSpec& spec : gen::standard_suite()) {
    const auto c = spec.build();
    t.add_row({spec.name, spec.family, std::to_string(c.num_inputs()),
               std::to_string(c.gate_count())});
  }
  std::cout << t.to_text();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args =
      cli::parse_args(std::vector<std::string>(argv + 1, argv + argc));
  if (!args.ok()) {
    std::cerr << "error: " << args.error << "\n";
    return usage();
  }
  if (args.positional.empty()) return usage();
  const std::string& command = args.positional[0];
  try {
    if (command == "list") return cmd_list();
    if (args.positional.size() < 2) return usage();
    if (command == "profile") return cmd_profile(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "batch") return cmd_batch(args);
    if (command == "gen") return cmd_gen(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return usage();
}
