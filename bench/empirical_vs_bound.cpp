// Experiment V1 (extension beyond the paper): empirical soundness of the
// Theorem 2 size bound. Classic redundancy schemes — TMR, NMR-5, two-level
// cascaded TMR, and von Neumann multiplexing — are fault-simulated to
// measure their achieved output error δ̂; every achieved (gate count, δ̂)
// point must lie at or above the implementation-independent redundancy floor
// R(s, k, ε, δ̂) (the theorem's additional-gates term; the minimal error-free
// size it adds onto is unknown, so it is conservatively dropped).
#include "bench_common.hpp"
#include "core/validate_bounds.hpp"
#include "ft/multiplex.hpp"
#include "ft/nmr.hpp"
#include "gen/iscas.hpp"
#include "gen/parity.hpp"
#include "sim/reliability.hpp"

namespace {

using namespace enb;

struct SchemePoint {
  std::string scheme;
  netlist::Circuit circuit;  // interface-compatible with the base
};

void run_base(const netlist::Circuit& base, double eps,
              std::vector<std::vector<std::string>>& csv_rows) {
  const core::CircuitProfile profile = core::extract_profile(base);
  sim::ReliabilityOptions rel_options;
  rel_options.trials = bench::scaled(1 << 17, 1 << 10);

  report::Table table({"scheme", "gates", "delta_hat", "ci_high",
                       "required_gates", "slack", "consistent"});

  const auto check_and_print = [&](const std::string& scheme,
                                   std::size_t gates, double delta_hat,
                                   double ci_high) {
    core::EmpiricalPoint point;
    point.scheme = scheme;
    point.total_gates = static_cast<double>(gates);
    point.delta_hat = delta_hat;
    point.delta_ci_high = ci_high;
    const core::BoundCheck check = core::check_point(profile, eps, point);
    table.add_row({scheme, std::to_string(gates),
                   report::format_double(delta_hat, 4),
                   report::format_double(ci_high, 4),
                   report::format_double(check.required_size, 5),
                   report::format_double(check.slack, 5),
                   check.vacuous ? "(vacuous)"
                                 : (check.consistent ? "yes" : "VIOLATION")});
    csv_rows.push_back({base.name(), scheme, std::to_string(gates),
                        report::format_double(delta_hat, 8),
                        report::format_double(check.required_size, 8)});
  };

  // Bare circuit.
  const auto bare = sim::estimate_reliability(base, eps, rel_options);
  check_and_print("bare", base.gate_count(), bare.delta_hat, bare.ci_high);

  // TMR and NMR-5.
  for (int copies : {3, 5}) {
    ft::NmrOptions options;
    options.copies = copies;
    const ft::NmrResult nmr = ft::nmr_transform(base, options);
    const auto rel =
        sim::estimate_reliability_vs(nmr.circuit, base, eps, rel_options);
    check_and_print("nmr" + std::to_string(copies), nmr.circuit.gate_count(),
                    rel.delta_hat, rel.ci_high);
  }

  // Two-level cascaded TMR.
  const auto tmr2 = ft::cascaded_tmr(base, 2);
  const auto rel2 = sim::estimate_reliability_vs(tmr2, base, eps, rel_options);
  check_and_print("tmr^2", tmr2.gate_count(), rel2.delta_hat, rel2.ci_high);

  // Von Neumann multiplexing, bundle 5, one restorative stage.
  ft::MultiplexOptions mux_options;
  mux_options.bundle_width = 5;
  mux_options.restorative_stages = 1;
  const ft::MultiplexedCircuit mc = ft::multiplex_transform(base, mux_options);
  const auto mux_rel =
      ft::estimate_multiplexed_reliability(mc, base, eps, rel_options);
  check_and_print("mux5r1", mc.circuit.gate_count(), mux_rel.delta_hat,
                  mux_rel.ci_high);

  std::cout << "base circuit " << base.name() << " (S0 = " << base.gate_count()
            << ", s = " << profile.sensitivity_s << ", eps = " << eps
            << "):\n"
            << table.to_text() << "\n";
}

}  // namespace

int main() {
  using namespace enb;
  bench::banner("empirical_vs_bound",
                "redundancy schemes vs the Theorem 2 size bound");

  std::vector<std::vector<std::string>> csv_rows;
  run_base(gen::c17(), 0.01, csv_rows);
  run_base(gen::parity_tree(8, 2), 0.005, csv_rows);

  report::write_csv_file(
      std::string(bench::kOutDir) + "/empirical_vs_bound.csv",
      {"base", "scheme", "gates", "delta_hat", "required_gates"}, csv_rows);
  std::cout << "wrote " << bench::kOutDir << "/empirical_vs_bound.csv\n";
  std::cout << "\ncheck: no achieved point may fall below the bound "
               "(column 'consistent' must never read VIOLATION)\n";
  return 0;
}
