// Figure 2 reproduction: switching activity of error-prone devices as a
// function of the error-free switching activity, for a family of ε values.
// Expected shape: straight lines through the fixed point (0.5, 0.5) with
// slope (1−2ε)², collapsing onto sw = 0.5 as ε → 0.5.
#include "bench_common.hpp"
#include "core/activity_model.hpp"
#include "core/analyzer.hpp"

int main() {
  using namespace enb;
  bench::banner("fig2", "sw(z) vs sw(y) under the symmetric error channel");

  const std::vector<double> epsilons{0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5};
  const std::vector<double> sw_grid = core::linear_grid(0.0, 1.0, 21);

  std::vector<report::Series> series;
  for (double eps : epsilons) {
    report::Series s("eps=" + report::format_double(eps, 3), {}, {});
    for (double sw : sw_grid) s.push(sw, core::noisy_activity(sw, eps));
    series.push_back(std::move(s));
  }

  report::ChartOptions chart;
  chart.title = "Fig 2: noisy switching activity (fixed point at 0.5)";
  chart.x_label = "sw(y) error-free";
  chart.y_label = "sw(z)";
  bench::emit_sweep("fig2_switching_activity", "sw_clean", series, chart);

  // Shape checks mirrored in EXPERIMENTS.md.
  std::cout << "check: slope at eps=0.1 is (1-2e)^2 = "
            << core::activity_contraction(0.1) << " (expect 0.64)\n";
  std::cout << "check: eps=0.5 line is flat at "
            << core::noisy_activity(0.1, 0.5) << " (expect 0.5)\n";
  return 0;
}
