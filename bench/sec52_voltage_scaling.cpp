// Section 5.2 reproduction (discussion, no numbered figure): the voltage
// scaling trade-offs. "If the same energy budget as the error-free circuit
// is targeted, the fault-tolerant implementation will need to rely on a
// lower Vdd ... which in turn further increases overall latency. Similar
// conclusions ... if performance constraints need to be maintained instead:
// Vdd must be increased ... thus triggering an energy increase."
//
// Sweeps ε, computes the raw (unscaled) energy/delay bound factors for the
// Figure 3 instance, then solves both compensation strategies under the
// Chen–Hu alpha-power delay law.
#include <cmath>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "core/delay_model.hpp"

int main() {
  using namespace enb;
  bench::banner("sec52", "iso-energy / iso-delay voltage scaling trade-offs");

  const core::CircuitProfile profile =
      core::make_profile("parity10_shannon", 10, 21, 0.5, 2, 10);
  const core::TechnologyParams tech;  // 1.2 V nominal, Vt 0.3 V, alpha 1.3

  report::Series raw_delay("raw_delay", {}, {});
  report::Series iso_e_delay("iso_energy_delay", {}, {});
  report::Series raw_energy("raw_energy", {}, {});
  report::Series iso_d_energy("iso_delay_energy", {}, {});
  report::Table table({"eps", "raw E", "raw D", "isoE: Vdd", "isoE: D",
                       "isoD: Vdd", "isoD: E"});

  for (double eps : core::log_grid(1e-3, 0.12, 14)) {
    const core::BoundReport r = core::analyze(profile, eps, 0.01);
    const double e = r.energy.total_factor;
    const double d = r.metrics.delay;
    raw_energy.push(eps, e);
    raw_delay.push(eps, d);

    std::vector<double> row{e, d};
    double iso_e_d = std::nan("");
    double iso_d_e = std::nan("");
    try {
      const auto iso_e = core::apply_iso_energy(e, d, tech);
      row.push_back(iso_e.vdd);
      iso_e_d = iso_e.delay_factor;
      row.push_back(iso_e_d);
    } catch (const std::invalid_argument&) {
      row.push_back(std::nan(""));
      row.push_back(std::nan(""));
    }
    try {
      const auto iso_d = core::apply_iso_delay(e, d, tech);
      row.push_back(iso_d.vdd);
      iso_d_e = iso_d.energy_factor;
      row.push_back(iso_d_e);
    } catch (const std::invalid_argument&) {
      row.push_back(std::nan(""));
      row.push_back(std::nan(""));
    }
    iso_e_delay.push(eps, iso_e_d);
    iso_d_energy.push(eps, iso_d_e);
    table.add_row(report::format_double(eps, 4), row);
  }

  std::cout << table.to_text() << "\n";
  report::ChartOptions chart;
  chart.title = "Sec 5.2: delay cost of iso-energy compensation";
  chart.log_x = true;
  chart.x_label = "eps";
  bench::emit_sweep("sec52_delay", "eps", {raw_delay, iso_e_delay}, chart);
  chart.title = "Sec 5.2: energy cost of iso-delay compensation";
  bench::emit_sweep("sec52_energy", "eps", {raw_energy, iso_d_energy}, chart);

  std::cout << "check: iso-energy delay >= raw delay at every point "
               "(lower Vdd slows further); iso-delay energy >= raw energy "
               "(higher Vdd squares into CV^2) — both directions of the "
               "paper's Section 5.2 argument\n";
  return 0;
}
