// Ablation A2: mapping fanin. The paper maps with max fanin 3; this ablation
// re-maps the suite at k = 2, 3, 4 and shows how the measured profile
// (S0, depth, average fanin) and the resulting bounds move. Two effects
// compete: a larger library fanin reduces the theoretical redundancy bound
// (Theorem 2's k in the denominator at small ε) but mapping to wider gates
// also changes S0 and the measured k̄ itself.
#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "suite_common.hpp"

int main() {
  using namespace enb;
  bench::banner("ablation_mapping_fanin", "suite mapped at k = 2, 3, 4");

  const double eps = 0.01;
  const double delta = 0.01;

  report::Table table({"benchmark", "k_map", "S0", "depth", "avg_fanin",
                       "E_bound", "D_bound"});
  std::vector<std::vector<std::string>> csv_rows;
  for (int k : {2, 3, 4}) {
    for (const auto& pb : bench::profile_suite(k)) {
      const core::BoundReport r = core::analyze(pb.profile, eps, delta);
      table.add_row({pb.spec.name, std::to_string(k),
                     report::format_double(pb.profile.size_s0, 5),
                     std::to_string(pb.profile.depth_d0),
                     report::format_double(pb.profile.avg_fanin_k, 3),
                     report::format_double(r.energy.total_factor, 4),
                     report::format_double(r.metrics.delay, 4)});
      csv_rows.push_back({pb.spec.name, std::to_string(k),
                          report::format_double(pb.profile.size_s0, 8),
                          report::format_double(r.energy.total_factor, 8),
                          report::format_double(r.metrics.delay, 8)});
    }
  }
  std::cout << table.to_text() << "\n";
  report::write_csv_file(
      std::string(bench::kOutDir) + "/ablation_mapping_fanin.csv",
      {"benchmark", "k_map", "S0", "E_bound", "D_bound"}, csv_rows);
  std::cout << "wrote " << bench::kOutDir << "/ablation_mapping_fanin.csv\n";

  std::cout << "\nfinding: wider libraries shrink mapped S0 and depth; the "
               "delay bound falls with the measured average fanin (Theorem 4)"
               " while the energy bound moves with both k and the re-measured "
               "s/S0 — the paper's fixed k=3 choice sits between the "
               "extremes\n";
  return 0;
}
