// P1: substrate micro-benchmarks (google-benchmark). Not a paper figure —
// this measures the cost of the machinery that regenerates the figures:
// bit-parallel simulation, fault injection, activity estimation, BDD
// construction, sensitivity, mapping, and bound evaluation.
#include <benchmark/benchmark.h>

#include "bdd/circuit_to_bdd.hpp"
#include "core/analyzer.hpp"
#include "exec/thread_pool.hpp"
#include "core/size_bound.hpp"
#include "ft/nmr.hpp"
#include "gen/adders.hpp"
#include "gen/multipliers.hpp"
#include "sim/activity.hpp"
#include "sim/logic_sim.hpp"
#include "sim/noise.hpp"
#include "sim/prng.hpp"
#include "sim/reliability.hpp"
#include "sim/sensitivity.hpp"
#include "synth/mapper.hpp"

namespace {

using namespace enb;

void BM_LogicSimRca32(benchmark::State& state) {
  const auto c = gen::ripple_carry_adder(32);
  sim::LogicSim simulator(c);
  sim::Xoshiro256 rng(1);
  std::vector<sim::Word> inputs(c.num_inputs());
  for (auto& w : inputs) w = rng.next();
  for (auto _ : state) {
    simulator.eval(inputs);
    benchmark::DoNotOptimize(simulator.values().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.gate_count()) * 64);
}
BENCHMARK(BM_LogicSimRca32);

void BM_NoisySimRca32(benchmark::State& state) {
  const auto c = gen::ripple_carry_adder(32);
  sim::NoisySim simulator(c, 0.01, 7);
  sim::Xoshiro256 rng(1);
  std::vector<sim::Word> inputs(c.num_inputs());
  for (auto& w : inputs) w = rng.next();
  for (auto _ : state) {
    simulator.eval(inputs);
    benchmark::DoNotOptimize(simulator.values().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.gate_count()) * 64);
}
BENCHMARK(BM_NoisySimRca32);

void BM_ActivityEstimateMult8(benchmark::State& state) {
  const auto c = gen::array_multiplier(8);
  sim::ActivityOptions options;
  options.sample_pairs = 256;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::estimate_activity(c, options, exec::Parallelism::serial()));
  }
}
BENCHMARK(BM_ActivityEstimateMult8);

// Same estimate on the global pool; bit-identical result, wall-clock should
// scale with cores (shards of 64 pairs; 4096 pairs => 64 shards).
void BM_ActivityEstimateMult8Parallel(benchmark::State& state) {
  const auto c = gen::array_multiplier(8);
  sim::ActivityOptions options;
  options.sample_pairs = 4096;
  options.shard_pairs = 64;
  const exec::Parallelism how{static_cast<unsigned>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::estimate_activity(c, options, how));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(options.sample_pairs));
}
BENCHMARK(BM_ActivityEstimateMult8Parallel)->Arg(1)->Arg(0);

void BM_BddBuildMult4(benchmark::State& state) {
  const auto c = gen::array_multiplier(4);
  for (auto _ : state) {
    bdd::Bdd manager(static_cast<unsigned>(c.num_inputs()));
    benchmark::DoNotOptimize(bdd::build_output_bdds(manager, c));
  }
}
BENCHMARK(BM_BddBuildMult4);

void BM_SensitivityRca8(benchmark::State& state) {
  const auto c = gen::ripple_carry_adder(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::compute_sensitivity(c));
  }
}
BENCHMARK(BM_SensitivityRca8);

void BM_MapCla16(benchmark::State& state) {
  const auto c = gen::carry_lookahead_adder(16);
  synth::MapOptions options;
  options.verify = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::map_to_library(c, options));
  }
}
BENCHMARK(BM_MapCla16);

void BM_ReliabilityTmrC17(benchmark::State& state) {
  const auto base = gen::ripple_carry_adder(4);
  const auto tmr = ft::nmr_transform(base).circuit;
  sim::ReliabilityOptions options;
  options.trials = 1 << 12;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::estimate_reliability_vs(
        tmr, base, 0.01, options, exec::Parallelism::serial()));
  }
}
BENCHMARK(BM_ReliabilityTmrC17);

// Pool-parallel fault injection: arg 1 = serial, arg 0 = global pool.
void BM_ReliabilityTmrParallel(benchmark::State& state) {
  const auto base = gen::ripple_carry_adder(4);
  const auto tmr = ft::nmr_transform(base).circuit;
  sim::ReliabilityOptions options;
  options.trials = 1 << 16;
  options.shard_passes = 16;
  const exec::Parallelism how{static_cast<unsigned>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::estimate_reliability_vs(tmr, base, 0.01, options, how));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(options.trials));
}
BENCHMARK(BM_ReliabilityTmrParallel)->Arg(1)->Arg(0);

// Exact sensitivity sweep (2^17-assignment truth table), sharded over
// exhaustive blocks: arg 1 = serial, arg 0 = global pool.
void BM_SensitivityParallel(benchmark::State& state) {
  const auto c = gen::ripple_carry_adder(8);
  sim::SensitivityOptions options;
  const exec::Parallelism how{static_cast<unsigned>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::compute_sensitivity(c, options, how));
  }
}
BENCHMARK(BM_SensitivityParallel)->Arg(1)->Arg(0);

void BM_BoundEvaluation(benchmark::State& state) {
  const auto profile = core::make_profile("p", 10, 21, 0.5, 2, 10);
  double eps = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::analyze(profile, eps, 0.01));
    eps = eps < 0.4 ? eps * 1.01 : 0.001;
  }
}
BENCHMARK(BM_BoundEvaluation);

void BM_RedundancyBoundOnly(benchmark::State& state) {
  double eps = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::redundancy_lower_bound(10, 2, eps, 0.01));
    eps = eps < 0.4 ? eps * 1.01 : 0.001;
  }
}
BENCHMARK(BM_RedundancyBoundOnly);

}  // namespace

BENCHMARK_MAIN();
