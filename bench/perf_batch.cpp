// P2: batch-engine throughput. Not a paper figure — this measures the
// BatchEvaluator's jobs/sec on a mixed workload (reliability, worst-case,
// activity, sensitivity, energy-bound jobs over suite circuits) at 1 thread
// vs the global pool, i.e. the two-level (across-job + within-job shard)
// scheduling the server workloads lean on. Results are appended to stdout
// and recorded in BENCH_batch.json in the working directory.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exec/batch.hpp"
#include "exec/thread_pool.hpp"
#include "gen/suite.hpp"
#include "report/table.hpp"

namespace {

using namespace enb;

std::vector<exec::BatchJob> build_mixed_batch() {
  const std::uint64_t reliability_trials =
      bench::scaled(std::uint64_t{1} << 14, 1 << 8);
  const std::uint64_t worst_case_trials =
      bench::scaled(std::uint64_t{1} << 10, 1 << 7);
  const std::size_t activity_pairs =
      static_cast<std::size_t>(bench::scaled(1 << 12, 1 << 6));
  const std::uint64_t sensitivity_words = bench::scaled(256, 16);
  const int sensitivity_exact_max = bench::smoke_mode() ? 10 : 16;

  std::vector<exec::BatchJob> jobs;
  for (const char* name :
       {"c17", "parity8", "rca8", "mult4", "cla16", "cmp16"}) {
    const netlist::Circuit circuit = gen::find_benchmark(name).build();
    {
      exec::BatchJob job;
      job.name = std::string(name) + "/reliability";
      job.kind = exec::JobKind::kReliability;
      job.circuit = circuit;
      job.epsilon = 0.01;
      job.reliability.trials = reliability_trials;
      jobs.push_back(std::move(job));
    }
    {
      exec::BatchJob job;
      job.name = std::string(name) + "/worst-case";
      job.kind = exec::JobKind::kWorstCase;
      job.circuit = circuit;
      job.epsilon = 0.02;
      job.worst_case.num_inputs = 32;
      job.worst_case.trials_per_input = worst_case_trials;
      jobs.push_back(std::move(job));
    }
    {
      exec::BatchJob job;
      job.name = std::string(name) + "/activity";
      job.kind = exec::JobKind::kActivity;
      job.circuit = circuit;
      job.activity.sample_pairs = activity_pairs;
      jobs.push_back(std::move(job));
    }
    {
      exec::BatchJob job;
      job.name = std::string(name) + "/sensitivity";
      job.kind = exec::JobKind::kSensitivity;
      job.circuit = circuit;
      job.sensitivity.sample_words = sensitivity_words;
      job.sensitivity.max_exact_inputs = sensitivity_exact_max;
      jobs.push_back(std::move(job));
    }
    {
      exec::BatchJob job;
      job.name = std::string(name) + "/energy-bound";
      job.kind = exec::JobKind::kEnergyBound;
      job.circuit = circuit;
      job.epsilon = 0.01;
      job.profile.activity_pairs = activity_pairs;
      job.profile.sensitivity_exact_max_inputs = sensitivity_exact_max;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

struct Timing {
  unsigned threads = 0;
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
};

Timing time_batch(const std::vector<exec::BatchJob>& jobs, unsigned threads,
                  int repetitions) {
  double best = -1.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    std::vector<exec::BatchJob> copy = jobs;
    const auto start = std::chrono::steady_clock::now();
    const auto results =
        exec::evaluate_batch(std::move(copy), exec::BatchOptions{threads});
    const auto stop = std::chrono::steady_clock::now();
    for (const exec::BatchResult& r : results) {
      if (!r.ok) {
        std::cerr << "perf_batch: job " << r.name << " failed: " << r.error
                  << "\n";
        std::exit(2);
      }
    }
    const double seconds = std::chrono::duration<double>(stop - start).count();
    if (best < 0.0 || seconds < best) best = seconds;
  }
  Timing t;
  t.threads = threads;
  t.seconds = best;
  t.jobs_per_sec = static_cast<double>(jobs.size()) / best;
  return t;
}

}  // namespace

int main() {
  bench::banner("perf_batch", "batch-engine throughput (mixed jobs)");
  const std::vector<exec::BatchJob> jobs = build_mixed_batch();
  const int repetitions = bench::smoke_mode() ? 1 : 3;
  const unsigned pool_size = exec::default_thread_count();

  std::vector<Timing> timings;
  timings.push_back(time_batch(jobs, 1, repetitions));  // serial reference
  timings.push_back(time_batch(jobs, 0, repetitions));  // global pool

  report::Table table({"threads", "seconds", "jobs/sec", "speedup"});
  const double serial = timings.front().seconds;
  for (const Timing& t : timings) {
    table.add_row({t.threads == 0 ? "0 (pool=" + std::to_string(pool_size) + ")"
                                  : std::to_string(t.threads),
                   report::format_double(t.seconds, 4),
                   report::format_double(t.jobs_per_sec, 2),
                   report::format_double(serial / t.seconds, 2)});
  }
  std::cout << jobs.size() << " mixed jobs, best of " << repetitions
            << " runs:\n"
            << table.to_text();

  std::ofstream out("BENCH_batch.json");
  out << "{\n  \"benchmark\": \"perf_batch\",\n  \"jobs\": " << jobs.size()
      << ",\n  \"repetitions\": " << repetitions
      << ",\n  \"smoke\": " << (bench::smoke_mode() ? "true" : "false")
      << ",\n  \"pool_threads\": " << pool_size << ",\n  \"timings\": [\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    out << "    {\"threads\": " << timings[i].threads
        << ", \"seconds\": " << timings[i].seconds
        << ", \"jobs_per_sec\": " << timings[i].jobs_per_sec << "}"
        << (i + 1 == timings.size() ? "" : ",") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote BENCH_batch.json\n";
  return 0;
}
