// P2: batch-engine throughput. Not a paper figure — this measures the
// BatchEvaluator's jobs/sec on a mixed workload (reliability, worst-case,
// activity, sensitivity, energy-bound requests over suite circuits) at 1
// thread vs the global pool, i.e. the two-level (across-job + within-job
// shard) scheduling the server workloads lean on. Since PR 3 the workload is
// built on the analysis layer: the five requests per benchmark share one
// CompiledCircuit handle, so no netlist is ever cloned into the queue.
// Results are appended to stdout and recorded in BENCH_batch.json in the
// working directory.
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/compiled_circuit.hpp"
#include "analysis/request.hpp"
#include "bench_common.hpp"
#include "exec/batch.hpp"
#include "exec/thread_pool.hpp"
#include "gen/suite.hpp"
#include "report/table.hpp"

namespace {

using namespace enb;

std::vector<analysis::AnalysisRequest> build_mixed_requests() {
  const std::uint64_t reliability_trials =
      bench::scaled(std::uint64_t{1} << 14, 1 << 8);
  const std::uint64_t worst_case_trials =
      bench::scaled(std::uint64_t{1} << 10, 1 << 7);
  const std::size_t activity_pairs =
      static_cast<std::size_t>(bench::scaled(1 << 12, 1 << 6));
  const std::uint64_t sensitivity_words = bench::scaled(256, 16);
  const int sensitivity_exact_max = bench::smoke_mode() ? 10 : 16;

  std::vector<analysis::AnalysisRequest> requests;
  for (const char* name :
       {"c17", "parity8", "rca8", "mult4", "cla16", "cmp16"}) {
    // One shared handle per benchmark: all five requests reference it.
    const analysis::CompiledCircuit circuit =
        analysis::compile(gen::find_benchmark(name).build());
    {
      analysis::AnalysisRequest request;
      request.name = std::string(name) + "/reliability";
      request.circuit = circuit;
      analysis::ReliabilityRequest spec;
      spec.epsilon = 0.01;
      spec.options.trials = reliability_trials;
      request.options = spec;
      requests.push_back(std::move(request));
    }
    {
      analysis::AnalysisRequest request;
      request.name = std::string(name) + "/worst-case";
      request.circuit = circuit;
      analysis::WorstCaseRequest spec;
      spec.epsilon = 0.02;
      spec.options.num_inputs = 32;
      spec.options.trials_per_input = worst_case_trials;
      request.options = spec;
      requests.push_back(std::move(request));
    }
    {
      analysis::AnalysisRequest request;
      request.name = std::string(name) + "/activity";
      request.circuit = circuit;
      analysis::ActivityRequest spec;
      spec.options.sample_pairs = activity_pairs;
      request.options = spec;
      requests.push_back(std::move(request));
    }
    {
      analysis::AnalysisRequest request;
      request.name = std::string(name) + "/sensitivity";
      request.circuit = circuit;
      analysis::SensitivityRequest spec;
      spec.options.sample_words = sensitivity_words;
      spec.options.max_exact_inputs = sensitivity_exact_max;
      request.options = spec;
      requests.push_back(std::move(request));
    }
    {
      analysis::AnalysisRequest request;
      request.name = std::string(name) + "/energy-bound";
      request.circuit = circuit;
      analysis::EnergyBoundRequest spec;
      spec.epsilon = 0.01;
      spec.profile.activity_pairs = activity_pairs;
      spec.profile.sensitivity_exact_max_inputs = sensitivity_exact_max;
      request.options = spec;
      requests.push_back(std::move(request));
    }
  }
  return requests;
}

struct Timing {
  unsigned threads = 0;
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
};

// Rebuilds the request set per repetition (outside the clock) so every run
// starts from cold handle caches — otherwise repetition 2 would reuse the
// profiles extracted by repetition 1 and time a different workload.
Timing time_batch(
    const std::function<std::vector<analysis::AnalysisRequest>()>& build,
    unsigned threads, int repetitions) {
  double best = -1.0;
  std::size_t num_jobs = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    std::vector<analysis::AnalysisRequest> requests = build();
    num_jobs = requests.size();
    const auto start = std::chrono::steady_clock::now();
    const auto results = exec::evaluate_requests(std::move(requests),
                                                 exec::Parallelism{threads});
    const auto stop = std::chrono::steady_clock::now();
    for (const analysis::AnalysisResult& r : results) {
      if (!r.ok) {
        std::cerr << "perf_batch: job " << r.name << " failed: " << r.error
                  << "\n";
        std::exit(2);
      }
    }
    const double seconds = std::chrono::duration<double>(stop - start).count();
    if (best < 0.0 || seconds < best) best = seconds;
  }
  Timing t;
  t.threads = threads;
  t.seconds = best;
  t.jobs_per_sec = static_cast<double>(num_jobs) / best;
  return t;
}

}  // namespace

int main() {
  bench::banner("perf_batch", "batch-engine throughput (mixed requests)");
  const std::size_t num_jobs = build_mixed_requests().size();
  const int repetitions = bench::smoke_mode() ? 1 : 3;
  const unsigned pool_size = exec::default_thread_count();

  std::vector<Timing> timings;
  timings.push_back(time_batch(build_mixed_requests, 1, repetitions));
  timings.push_back(time_batch(build_mixed_requests, 0, repetitions));

  report::Table table({"threads", "seconds", "jobs/sec", "speedup"});
  const double serial = timings.front().seconds;
  for (const Timing& t : timings) {
    table.add_row({t.threads == 0 ? "0 (pool=" + std::to_string(pool_size) + ")"
                                  : std::to_string(t.threads),
                   report::format_double(t.seconds, 4),
                   report::format_double(t.jobs_per_sec, 2),
                   report::format_double(serial / t.seconds, 2)});
  }
  std::cout << num_jobs << " mixed requests, best of " << repetitions
            << " runs:\n"
            << table.to_text();

  std::ofstream out("BENCH_batch.json");
  out << "{\n  \"benchmark\": \"perf_batch\",\n  \"jobs\": " << num_jobs
      << ",\n  \"repetitions\": " << repetitions
      << ",\n  \"smoke\": " << (bench::smoke_mode() ? "true" : "false")
      << ",\n  \"pool_threads\": " << pool_size << ",\n  \"timings\": [\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    out << "    {\"threads\": " << timings[i].threads
        << ", \"seconds\": " << timings[i].seconds
        << ", \"jobs_per_sec\": " << timings[i].jobs_per_sec << "}"
        << (i + 1 == timings.size() ? "" : ",") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote BENCH_batch.json\n";
  return 0;
}
