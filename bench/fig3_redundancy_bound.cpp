// Figure 3 reproduction: minimum redundancy (Theorem 2 / Corollary 1 lower
// bound) as a function of the device error ε, for the paper's instance —
// 10-input parity, sensitivity s = 10, error-free size S0 = 21, δ = 0.01 —
// with 2-, 3- and 4-input gate implementations.
// Expected shape: monotone in ε, diverging at ε → 0.5, with more than an
// order of magnitude redundancy factor near 0.5; larger fanin lies lower.
#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "core/size_bound.hpp"

int main() {
  using namespace enb;
  bench::banner("fig3",
                "minimum redundancy vs eps (s=10, S0=21, delta=0.01)");

  const double s = 10;
  const double s0 = 21;
  const double delta = 0.01;
  const std::vector<double> eps_grid = core::log_grid(1e-3, 0.49, 25);

  std::vector<report::Series> gates_series;
  std::vector<report::Series> factor_series;
  for (int k : {2, 3, 4}) {
    report::Series gates("k=" + std::to_string(k), {}, {});
    report::Series factor("k=" + std::to_string(k), {}, {});
    for (double eps : eps_grid) {
      const double r = core::redundancy_lower_bound(s, k, eps, delta);
      gates.push(eps, r);
      factor.push(eps, (s0 + r) / s0);
    }
    gates_series.push_back(std::move(gates));
    factor_series.push_back(std::move(factor));
  }

  report::ChartOptions chart;
  chart.title = "Fig 3: redundancy lower bound (gates)";
  chart.x_label = "gate error eps";
  chart.y_label = "additional gates (log)";
  chart.log_x = true;
  chart.log_y = true;
  bench::emit_sweep("fig3_redundancy_bound", "eps", gates_series, chart);

  chart.title = "Fig 3 (factor form): (S0+R)/S0";
  chart.y_label = "size factor";
  bench::emit_sweep("fig3_redundancy_factor", "eps", factor_series, chart);

  const double near_half = core::redundancy_lower_bound(s, 2, 0.45, delta);
  std::cout << "check: redundancy factor at eps=0.45, k=2 is "
            << report::format_double((s0 + near_half) / s0, 4)
            << "x (paper: more than an order of magnitude near 0.5)\n";
  std::cout << "check: upper-bound shape O(S0 log S0) = "
            << core::size_upper_bound_shape(s0)
            << " gates for the error-free size, vs lower bound at eps=0.01, "
               "k=2: "
            << s0 + core::redundancy_lower_bound(s, 2, 0.01, delta) << "\n";
  return 0;
}
