// P6: what the campaign scale axes buy on a kilo-net circuit. The scalar
// reference simulates one fault per sweep; the lane engine packs W
// equivalence classes per vector; fault dropping retires detected classes
// between patterns so late patterns sweep only the hard tail. This bench
// times the scalar reference (on a small pattern subset — full scalar at
// this size is pointless), the no-drop 64-lane campaign, and dropping
// campaigns at every lane width, then records BENCH_fault.json with the
// pinned `pass_reduction_drop` (the >= 5x floor asserted by
// tests/test_property_fault_scale.cpp).
//
// Passes are normalized (a sweep over A active lanes costs ceil(A/64)), so
// drop-mode pass counts are identical across lane widths by design; the
// per-width rows differ only in wall clock.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exec/thread_pool.hpp"
#include "fault/campaign.hpp"
#include "fault/fault_sim.hpp"
#include "fault/lanes.hpp"
#include "gen/suite.hpp"
#include "report/table.hpp"
#include "sim/logic_sim.hpp"

namespace {

using namespace enb;

struct Timing {
  std::string mode;
  double seconds = 0.0;
  std::uint64_t passes = 0;
  double fault_evals_per_sec = 0.0;  // (pattern, class) pairs / second
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  bench::banner("perf_fault",
                "fault dropping and SIMD lane widths on a kilo-net campaign");

  const netlist::Circuit circuit = gen::find_benchmark("rca256").build();
  fault::CampaignOptions options;
  options.patterns = bench::scaled(1024, 128);
  options.shard_patterns = 128;
  const fault::FaultUniverse universe = fault::FaultUniverse::build(circuit);
  const std::uint64_t pairs =
      options.patterns * universe.num_classes();
  const int repetitions = bench::smoke_mode() ? 1 : 3;
  std::vector<Timing> timings;

  // Scalar reference: one faulty sweep per (pattern, class), timed on a
  // small subset and reported as throughput — the honest baseline without
  // hours of wall clock.
  {
    fault::CampaignOptions subset = options;
    subset.patterns = bench::scaled(8, 2);
    subset.shard_patterns = subset.patterns;
    const exec::ShardPlan plan = fault::campaign_shard_plan(circuit, subset);
    Timing scalar;
    scalar.mode = "scalar reference (subset)";
    std::uint64_t detected = 0;
    for (int rep = 0; rep < repetitions; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      fault::ScalarFaultSim sim(circuit, universe);
      std::uint64_t passes = 0;
      for (std::size_t s = 0; s < plan.num_shards(); ++s) {
        for (const std::vector<bool>& pattern : fault::shard_pattern_bits(
                 circuit.num_inputs(), subset, plan.shard(s))) {
          const std::vector<bool> expected =
              sim::eval_single(circuit, pattern);
          ++passes;
          for (std::size_t c = 0; c < universe.num_classes(); ++c) {
            detected += sim.detect(c, pattern, expected) ? 1 : 0;
          }
        }
      }
      passes += sim.passes();
      const double elapsed = seconds_since(start);
      if (scalar.seconds == 0.0 || elapsed < scalar.seconds) {
        scalar.seconds = elapsed;
        scalar.passes = passes;
      }
    }
    if (detected == 0) std::cerr << "warning: no faults detected\n";
    scalar.fault_evals_per_sec =
        static_cast<double>(subset.patterns * universe.num_classes()) /
        scalar.seconds;
    timings.push_back(scalar);
  }

  // Campaign flows: the engine exactly as batch jobs run it.
  const auto run_mode = [&](const std::string& label,
                            const fault::CampaignOptions& mode_options) {
    Timing timing;
    timing.mode = label;
    for (int rep = 0; rep < repetitions; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      const fault::FaultCampaignResult result = fault::run_campaign(
          circuit, nullptr, mode_options, exec::Parallelism::global_pool());
      const double elapsed = seconds_since(start);
      if (timing.seconds == 0.0 || elapsed < timing.seconds) {
        timing.seconds = elapsed;
        timing.passes = result.sim_passes;
      }
    }
    timing.fault_evals_per_sec = static_cast<double>(pairs) / timing.seconds;
    timings.push_back(timing);
    return timing;
  };

  const Timing no_drop = run_mode("no-drop lanes=64", options);
  Timing best_drop;
  for (const fault::LaneWidth width : fault::all_lane_widths()) {
    fault::CampaignOptions dropped = options;
    dropped.drop = true;
    dropped.lanes = width;
    const Timing timing =
        run_mode(std::string("drop lanes=") + fault::to_string(width),
                 dropped);
    if (best_drop.seconds == 0.0 || timing.seconds < best_drop.seconds) {
      best_drop = timing;
    }
  }

  const double pass_reduction_drop = static_cast<double>(no_drop.passes) /
                                     static_cast<double>(best_drop.passes);
  const double speedup_drop = no_drop.seconds / best_drop.seconds;

  report::Table table({"mode", "seconds", "passes", "fault-evals/s"});
  for (const Timing& t : timings) {
    table.add_row({t.mode, report::format_double(t.seconds, 5),
                   std::to_string(t.passes),
                   report::format_double(t.fault_evals_per_sec, 1)});
  }
  std::cout << table.to_text() << "\n"
            << "drop pass reduction "
            << report::format_double(pass_reduction_drop, 2)
            << "x, drop wall-clock speedup "
            << report::format_double(speedup_drop, 2) << "x on "
            << circuit.name() << " (" << universe.num_classes()
            << " classes, " << options.patterns << " patterns)\n";

  std::ofstream json("BENCH_fault.json");
  json << "{\n  \"benchmark\": \"perf_fault\",\n"
       << "  \"circuit\": \"" << circuit.name() << "\",\n"
       << "  \"patterns\": " << options.patterns << ",\n"
       << "  \"fault_sites\": " << universe.num_sites() << ",\n"
       << "  \"classes\": " << universe.num_classes() << ",\n"
       << "  \"repetitions\": " << repetitions << ",\n"
       << "  \"smoke\": " << (bench::smoke_mode() ? "true" : "false") << ",\n"
       << "  \"pool_threads\": " << exec::ThreadPool::global().size() << ",\n"
       << "  \"pass_reduction_drop\": "
       << report::format_double(pass_reduction_drop, 2)
       << ",\n  \"speedup_drop\": " << report::format_double(speedup_drop, 2)
       << ",\n  \"modes\": [\n";
  bool first = true;
  for (const Timing& t : timings) {
    json << (first ? "" : ",\n") << "    {\"mode\": \"" << t.mode
         << "\", \"seconds\": " << t.seconds << ", \"passes\": " << t.passes
         << ", \"fault_evals_per_sec\": " << t.fault_evals_per_sec << "}";
    first = false;
  }
  json << "\n  ]\n}\n";
  std::cout << "wrote BENCH_fault.json\n";
  return 0;
}
