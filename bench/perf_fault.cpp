// P5: what 64-wide fault packing buys on a stuck-at campaign. The scalar
// reference simulates one fault per sweep; the fault-parallel engine packs
// 64 equivalence classes per machine word, so a campaign's sweep count
// drops by ~64/(1 + classes/64-per-pattern overhead) — the >= 32x
// reduction pinned by tests/test_fault_sim.cpp. This bench times both
// flows on the same circuit and patterns, reports per-(pattern, fault)
// throughput, and records BENCH_fault.json in the working directory.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exec/thread_pool.hpp"
#include "fault/campaign.hpp"
#include "fault/fault_sim.hpp"
#include "gen/suite.hpp"
#include "report/table.hpp"
#include "sim/logic_sim.hpp"

namespace {

using namespace enb;

struct Timing {
  std::string mode;
  double seconds = 0.0;
  std::uint64_t passes = 0;
  double fault_evals_per_sec = 0.0;  // (pattern, class) pairs / second
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  bench::banner("perf_fault", "scalar vs 64-wide fault-parallel campaigns");

  const netlist::Circuit circuit = gen::find_benchmark("rca16").build();
  fault::CampaignOptions options;
  options.patterns = bench::scaled(256, 8);
  options.shard_patterns = 32;
  const fault::FaultUniverse universe = fault::FaultUniverse::build(circuit);
  const exec::ShardPlan plan = fault::campaign_shard_plan(circuit, options);
  const std::uint64_t pairs =
      static_cast<std::uint64_t>(plan.total()) * universe.num_classes();
  const int repetitions = bench::smoke_mode() ? 1 : 3;

  // Fault-parallel flow: the campaign engine exactly as batch jobs run it.
  Timing parallel;
  parallel.mode = "fault-parallel (64 classes/word)";
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const fault::DetectionTable table = fault::build_detection_table(
        circuit, circuit, universe, options, exec::Parallelism::global_pool());
    const double elapsed = seconds_since(start);
    if (parallel.seconds == 0.0 || elapsed < parallel.seconds) {
      parallel.seconds = elapsed;
      parallel.passes = table.passes;
    }
  }
  parallel.fault_evals_per_sec =
      static_cast<double>(pairs) / parallel.seconds;

  // Scalar reference flow: one golden pass per pattern, one faulty sweep
  // per (pattern, class).
  Timing scalar;
  scalar.mode = "scalar (one fault per sweep)";
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    fault::ScalarFaultSim sim(circuit, universe);
    std::uint64_t passes = 0;
    std::uint64_t detected = 0;
    for (std::size_t s = 0; s < plan.num_shards(); ++s) {
      const std::vector<std::vector<bool>> patterns = fault::shard_pattern_bits(
          circuit.num_inputs(), options, plan.shard(s));
      for (const std::vector<bool>& pattern : patterns) {
        const std::vector<bool> expected = sim::eval_single(circuit, pattern);
        ++passes;
        for (std::size_t c = 0; c < universe.num_classes(); ++c) {
          detected += sim.detect(c, pattern, expected) ? 1 : 0;
        }
      }
    }
    passes += sim.passes();
    const double elapsed = seconds_since(start);
    if (scalar.seconds == 0.0 || elapsed < scalar.seconds) {
      scalar.seconds = elapsed;
      scalar.passes = passes;
    }
    if (detected == 0) std::cerr << "warning: no faults detected\n";
  }
  scalar.fault_evals_per_sec = static_cast<double>(pairs) / scalar.seconds;

  const double pass_reduction = static_cast<double>(scalar.passes) /
                                static_cast<double>(parallel.passes);
  const double speedup = scalar.seconds / parallel.seconds;

  report::Table table({"mode", "seconds", "passes", "fault-evals/s"});
  for (const Timing& t : {scalar, parallel}) {
    table.add_row({t.mode, report::format_double(t.seconds, 5),
                   std::to_string(t.passes),
                   report::format_double(t.fault_evals_per_sec, 1)});
  }
  std::cout << table.to_text() << "\n"
            << "pass reduction " << report::format_double(pass_reduction, 2)
            << "x, wall-clock speedup " << report::format_double(speedup, 2)
            << "x on " << circuit.name() << " (" << universe.num_classes()
            << " classes, " << plan.total() << " patterns)\n";

  std::ofstream json("BENCH_fault.json");
  json << "{\n  \"benchmark\": \"perf_fault\",\n"
       << "  \"circuit\": \"" << circuit.name() << "\",\n"
       << "  \"patterns\": " << plan.total() << ",\n"
       << "  \"fault_sites\": " << universe.num_sites() << ",\n"
       << "  \"classes\": " << universe.num_classes() << ",\n"
       << "  \"repetitions\": " << repetitions << ",\n"
       << "  \"smoke\": " << (bench::smoke_mode() ? "true" : "false") << ",\n"
       << "  \"pool_threads\": " << exec::ThreadPool::global().size() << ",\n"
       << "  \"pass_reduction\": " << report::format_double(pass_reduction, 2)
       << ",\n  \"speedup\": " << report::format_double(speedup, 2)
       << ",\n  \"modes\": [\n";
  bool first = true;
  for (const Timing& t : {scalar, parallel}) {
    json << (first ? "" : ",\n") << "    {\"mode\": \"" << t.mode
         << "\", \"seconds\": " << t.seconds << ", \"passes\": " << t.passes
         << ", \"fault_evals_per_sec\": " << t.fault_evals_per_sec << "}";
    first = false;
  }
  json << "\n  ]\n}\n";
  std::cout << "wrote BENCH_fault.json\n";
  return 0;
}
