// Figure 7 reproduction: per-benchmark lower bounds for energy and delay at
// ε ∈ {0.001, 0.01, 0.1}, δ = 0.01, normalized to the error-free
// implementation, with equal switching/leakage contributions in the baseline.
//
// The paper's suite is a subset of ISCAS'85 plus ripple-carry adders and
// array multipliers mapped to a generic max-fanin-3 library; this repo's
// suite substitutes structural generators for the unavailable ISCAS netlists
// (see DESIGN.md). Expected shape: bounds grow with ε; the energy bound is
// circuit-dependent (via s/S0 and sw0) while the delay bound depends only on
// the average fanin; some circuit needs at least ~40% more energy at ε = 1%.
#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "suite_common.hpp"

int main() {
  using namespace enb;
  bench::banner("fig7", "per-benchmark energy and delay bounds");

  const std::vector<double> epsilons{0.001, 0.01, 0.1};
  const double delta = 0.01;
  const auto suite = bench::profile_suite();
  bench::print_profile_table(suite);

  report::Table table({"benchmark", "E(0.001)", "E(0.01)", "E(0.1)",
                       "D(0.001)", "D(0.01)", "D(0.1)"});
  std::vector<report::BarGroup> energy_bars;
  std::vector<report::BarGroup> delay_bars;
  std::vector<std::vector<std::string>> csv_rows;

  double max_energy_at_1pct = 0.0;
  std::string max_bench;
  for (const auto& pb : suite) {
    std::vector<double> row;
    report::BarGroup eg{pb.spec.name, {}};
    report::BarGroup dg{pb.spec.name, {}};
    std::vector<double> energies, delays;
    for (double eps : epsilons) {
      const core::BoundReport r = core::analyze(pb.profile, eps, delta);
      energies.push_back(r.energy.total_factor);
      delays.push_back(r.metrics.delay);
    }
    if (energies[1] > max_energy_at_1pct) {
      max_energy_at_1pct = energies[1];
      max_bench = pb.spec.name;
    }
    row = energies;
    row.insert(row.end(), delays.begin(), delays.end());
    table.add_row(pb.spec.name, row);
    eg.values = energies;
    dg.values = delays;
    energy_bars.push_back(std::move(eg));
    delay_bars.push_back(std::move(dg));

    std::vector<std::string> csv_row{pb.spec.name};
    for (double v : row) csv_row.push_back(report::format_double(v, 8));
    csv_rows.push_back(std::move(csv_row));
  }

  std::cout << table.to_text() << "\n";
  report::ChartOptions chart;
  chart.title = "Fig 7a: normalized energy lower bound";
  std::cout << report::bar_chart({"eps=0.001", "eps=0.01", "eps=0.1"},
                                 energy_bars, chart)
            << "\n";
  chart.title = "Fig 7b: normalized delay lower bound";
  std::cout << report::bar_chart({"eps=0.001", "eps=0.01", "eps=0.1"},
                                 delay_bars, chart)
            << "\n";

  report::write_csv_file(
      std::string(bench::kOutDir) + "/fig7_benchmark_energy_delay.csv",
      {"benchmark", "E_0.001", "E_0.01", "E_0.1", "D_0.001", "D_0.01",
       "D_0.1"},
      csv_rows);
  std::cout << "wrote " << bench::kOutDir
            << "/fig7_benchmark_energy_delay.csv\n";

  std::cout << "\ncheck: largest energy bound at eps=1% is "
            << report::format_double(max_energy_at_1pct, 4) << "x ("
            << max_bench
            << "); paper: 'at least 40% more energy' for some circuits\n";
  std::cout << "check: delay bounds coincide across benchmarks with equal "
               "average fanin (delay depends only on k)\n";
  return 0;
}
