// P3: what the CompiledCircuit redesign buys on the paper's hot path. An
// epsilon sweep is "one circuit, many analyses": N energy-bound jobs over
// one design. The pre-PR-3 shape cloned the netlist into every job and
// re-extracted the profile per job — reproduced here by compiling an
// independent handle per request (the BatchJob shims themselves are gone);
// the analysis API shares one handle, so the batch performs zero netlist
// copies and exactly one profile extraction. This bench times both shapes
// on the same sweep (global pool), counts the copies/extractions each
// performs, and records BENCH_compile.json in the working directory.
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/compiled_circuit.hpp"
#include "analysis/request.hpp"
#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "exec/batch.hpp"
#include "exec/thread_pool.hpp"
#include "gen/suite.hpp"
#include "netlist/circuit.hpp"
#include "report/table.hpp"

namespace {

using namespace enb;

// Sweep shape: N (eps, delta) points over one mapped multiplier.
struct SweepSpec {
  netlist::Circuit circuit;
  std::vector<double> epsilons;
  std::size_t activity_pairs = 0;
  int sensitivity_exact_max = 0;
};

SweepSpec make_sweep() {
  SweepSpec spec;
  spec.circuit = gen::find_benchmark("mult4").build();
  const int points = static_cast<int>(bench::scaled(64, 8));
  spec.epsilons = core::log_grid(1e-3, 0.2, points);
  spec.activity_pairs =
      static_cast<std::size_t>(bench::scaled(1 << 12, 1 << 6));
  spec.sensitivity_exact_max = bench::smoke_mode() ? 8 : 16;
  return spec;
}

struct Timing {
  std::string mode;
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
  std::uint64_t circuit_copies = 0;
  std::uint64_t extractions = 0;
};

// Pre-PR-3 shape: every request carries an independent handle over its own
// copy of the circuit, so every job extracts its own profile — the
// per-job-copy baseline the shared-handle redesign removes.
Timing run_legacy(const SweepSpec& spec, int repetitions) {
  double best = -1.0;
  std::uint64_t copies = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    // Copies are counted over enqueue + run: this shape clones the netlist
    // into every request's private handle at enqueue time.
    const std::uint64_t copies_before = netlist::Circuit::copies_made();
    const auto start = std::chrono::steady_clock::now();
    std::vector<analysis::AnalysisRequest> requests;
    for (std::size_t i = 0; i < spec.epsilons.size(); ++i) {
      analysis::AnalysisRequest request;
      request.name = "eps_" + std::to_string(i);
      netlist::Circuit copy = spec.circuit;  // per-job netlist clone
      request.circuit = analysis::compile(std::move(copy));
      analysis::EnergyBoundRequest bound;
      bound.epsilon = spec.epsilons[i];
      bound.profile.activity_pairs = spec.activity_pairs;
      bound.profile.sensitivity_exact_max_inputs = spec.sensitivity_exact_max;
      request.options = bound;
      requests.push_back(std::move(request));
    }
    const auto results = exec::evaluate_requests(std::move(requests));
    const auto stop = std::chrono::steady_clock::now();
    copies = netlist::Circuit::copies_made() - copies_before;
    for (const auto& r : results) {
      if (!r.ok) {
        std::cerr << "perf_compile: legacy job " << r.name << " failed: "
                  << r.error << "\n";
        std::exit(2);
      }
    }
    const double seconds = std::chrono::duration<double>(stop - start).count();
    if (best < 0.0 || seconds < best) best = seconds;
  }
  Timing t;
  t.mode = "per-job-copy (independent handles)";
  t.seconds = best;
  t.jobs_per_sec = static_cast<double>(spec.epsilons.size()) / best;
  t.circuit_copies = copies;
  // One extraction per job by construction.
  t.extractions = spec.epsilons.size();
  return t;
}

Timing run_shared(const SweepSpec& spec, int repetitions) {
  double best = -1.0;
  std::uint64_t copies = 0;
  std::uint64_t extractions = 0;
  for (int rep = 0; rep < repetitions; ++rep) {
    // Fresh handle per repetition: each run starts from a cold profile
    // cache. The one compile() below clones spec.circuit so later reps see
    // an unconsumed source; enqueue + run itself is copy-free, which is
    // what the counter pins.
    netlist::Circuit source = spec.circuit;
    const std::uint64_t copies_before = netlist::Circuit::copies_made();
    const auto start = std::chrono::steady_clock::now();
    const analysis::CompiledCircuit circuit =
        analysis::compile(std::move(source));
    std::vector<analysis::AnalysisRequest> requests;
    for (std::size_t i = 0; i < spec.epsilons.size(); ++i) {
      analysis::AnalysisRequest request;
      request.name = "eps_" + std::to_string(i);
      request.circuit = circuit;
      analysis::EnergyBoundRequest bound;
      bound.epsilon = spec.epsilons[i];
      bound.profile.activity_pairs = spec.activity_pairs;
      bound.profile.sensitivity_exact_max_inputs = spec.sensitivity_exact_max;
      request.options = bound;
      requests.push_back(std::move(request));
    }
    const auto results = exec::evaluate_requests(std::move(requests));
    const auto stop = std::chrono::steady_clock::now();
    copies = netlist::Circuit::copies_made() - copies_before;
    extractions = circuit.profile_extractions();
    for (const auto& r : results) {
      if (!r.ok) {
        std::cerr << "perf_compile: shared job " << r.name << " failed: "
                  << r.error << "\n";
        std::exit(2);
      }
    }
    const double seconds = std::chrono::duration<double>(stop - start).count();
    if (best < 0.0 || seconds < best) best = seconds;
  }
  Timing t;
  t.mode = "shared-handle (AnalysisRequest)";
  t.seconds = best;
  t.jobs_per_sec = static_cast<double>(spec.epsilons.size()) / best;
  t.circuit_copies = copies;
  t.extractions = extractions;
  return t;
}

}  // namespace

int main() {
  bench::banner("perf_compile",
                "shared-handle vs per-job-copy eps-sweep throughput");
  const SweepSpec spec = make_sweep();
  const int repetitions = bench::smoke_mode() ? 1 : 3;

  const Timing legacy = run_legacy(spec, repetitions);
  const Timing shared = run_shared(spec, repetitions);

  report::Table table(
      {"mode", "seconds", "jobs/sec", "speedup", "copies", "extractions"});
  for (const Timing& t : {legacy, shared}) {
    table.add_row({t.mode, report::format_double(t.seconds, 4),
                   report::format_double(t.jobs_per_sec, 2),
                   report::format_double(legacy.seconds / t.seconds, 2),
                   std::to_string(t.circuit_copies),
                   std::to_string(t.extractions)});
  }
  std::cout << spec.epsilons.size() << "-point eps sweep over "
            << spec.circuit.name() << " (global pool), best of " << repetitions
            << " runs:\n"
            << table.to_text();

  std::ofstream out("BENCH_compile.json");
  out << "{\n  \"benchmark\": \"perf_compile\",\n  \"points\": "
      << spec.epsilons.size() << ",\n  \"repetitions\": " << repetitions
      << ",\n  \"smoke\": " << (bench::smoke_mode() ? "true" : "false")
      << ",\n  \"pool_threads\": " << exec::default_thread_count()
      << ",\n  \"modes\": [\n";
  const Timing* timings[] = {&legacy, &shared};
  for (std::size_t i = 0; i < 2; ++i) {
    const Timing& t = *timings[i];
    out << "    {\"mode\": \"" << t.mode << "\", \"seconds\": " << t.seconds
        << ", \"jobs_per_sec\": " << t.jobs_per_sec
        << ", \"circuit_copies\": " << t.circuit_copies
        << ", \"profile_extractions\": " << t.extractions << "}"
        << (i == 0 ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote BENCH_compile.json\n";
  return 0;
}
