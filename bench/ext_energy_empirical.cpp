// Extension V2: empirical energy factors vs Corollary 2. The size-bound
// check (empirical_vs_bound) validates Theorem 2; this bench closes the loop
// on the *energy* side: estimate the switched-capacitance + leakage energy
// of real redundant implementations (activities measured under fault
// injection, Nemani–Najm-style capacitance model calibrated to the paper's
// 50%-leakage baseline) and place the measured factors against the
// analytical floor.
#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "core/energy_estimate.hpp"
#include "ft/multiplex.hpp"
#include "ft/nmr.hpp"
#include "gen/adders.hpp"
#include "gen/iscas.hpp"
#include "sim/reliability.hpp"

int main() {
  using namespace enb;
  bench::banner("ext_energy_empirical",
                "measured energy of real redundancy vs the Corollary 2 floor");

  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& [label, base] :
       std::vector<std::pair<std::string, netlist::Circuit>>{
           {"c17", gen::c17()}, {"rca8", gen::ripple_carry_adder(8)}}) {
    const core::CircuitProfile profile = core::extract_profile(base);

    report::Table table({"scheme", "eps", "measured E factor",
                         "Cor.2 floor", "delta_hat", "W_L redundant"});
    for (double eps : {0.001, 0.01, 0.05}) {
      const core::BoundReport bound = core::analyze(profile, eps, 0.01);

      for (const auto& [scheme, redundant] :
           std::vector<std::pair<std::string, netlist::Circuit>>{
               {"tmr", ft::nmr_transform(base).circuit},
               {"tmr^2", ft::cascaded_tmr(base, 2)}}) {
        const auto measured =
            core::empirical_energy_factor(base, redundant, eps);
        sim::ReliabilityOptions rel_options;
        rel_options.trials = bench::scaled(1 << 14, 1 << 9);
        const auto rel = sim::estimate_reliability_vs(redundant, base, eps,
                                                      rel_options);
        table.add_row({scheme, report::format_double(eps, 3),
                       report::format_double(measured.factor, 4),
                       report::format_double(bound.energy.total_factor, 4),
                       report::format_double(rel.delta_hat, 4),
                       report::format_double(measured.wl_redundant, 4)});
        csv_rows.push_back({label, scheme, report::format_double(eps, 8),
                            report::format_double(measured.factor, 8),
                            report::format_double(bound.energy.total_factor,
                                                  8)});
      }
    }
    std::cout << "base " << label << " (S0 = " << profile.size_s0
              << ", sw0 = "
              << report::format_double(profile.avg_activity_sw0, 3)
              << ", baseline W_L calibrated to 1):\n"
              << table.to_text() << "\n";
  }

  report::write_csv_file(
      std::string(bench::kOutDir) + "/ext_energy_empirical.csv",
      {"base", "scheme", "eps", "measured_E", "bound_E"}, csv_rows);
  std::cout << "wrote " << bench::kOutDir << "/ext_energy_empirical.csv\n";
  std::cout
      << "\ncheck: every measured factor must exceed the Corollary 2 floor "
         "for its (eps, delta=0.01) point — the floor is information-"
         "theoretic, real schemes pay the structural 3x/9x premium\n";
  return 0;
}
