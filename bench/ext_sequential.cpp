// Extension S1 (the paper's future work): sequential circuits. Two studies:
//
//  1. Error accumulation — Monte-Carlo per-cycle output/state error of an
//     LFSR and a counter under gate noise. Feedback machines accumulate
//     state error cycle over cycle; the observed saturation level is the
//     stationary error of the state "channel".
//  2. Bounds on the unrolled computation — time-frame unrolling turns T
//     cycles into one combinational function, to which Theorems 1–4 apply
//     directly; the per-cycle energy floor is the unrolled bound divided
//     by T.
#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "seq/seq_gen.hpp"
#include "seq/seq_sim.hpp"
#include "seq/unroll.hpp"

int main() {
  using namespace enb;
  bench::banner("ext_sequential",
                "sequential extension: error accumulation + unrolled bounds");

  const double eps = 0.005;

  // --- Study 1: per-cycle error accumulation. ---
  std::vector<report::Series> acc_series;
  for (const auto& [name, machine] :
       std::vector<std::pair<std::string, seq::SeqCircuit>>{
           {"lfsr8", seq::lfsr_maximal(8)},
           {"counter8", seq::counter(8)},
           {"shiftreg8", seq::shift_register(8)}}) {
    seq::SeqReliabilityOptions options;
    options.cycles = 24;
    options.word_passes = bench::scaled(256, 16);
    const auto points = seq::estimate_seq_reliability(machine, eps, options);
    report::Series s(name + "_state", {}, {});
    for (const auto& p : points) {
      s.push(p.cycle, p.state_error);
    }
    acc_series.push_back(std::move(s));
  }
  report::ChartOptions chart;
  chart.title = "state-error accumulation over cycles (eps = 0.005)";
  chart.x_label = "cycle";
  chart.y_label = "P(state wrong)";
  bench::emit_sweep("ext_sequential_accumulation", "cycle", acc_series, chart);

  std::cout << "finding: feedback machines (lfsr, counter) accumulate state "
               "error monotonically; the feed-forward shift register forgets "
               "errors after its pipeline depth — memory is what makes the "
               "sequential case harder than Theorem 1's per-gate picture\n\n";

  // --- Study 2: bounds on the unrolled computation. ---
  report::Table table({"machine", "T", "S0(unrolled)", "k", "sw0", "s(est)",
                       "E_bound", "E_bound/cycle"});
  for (int frames : {1, 2, 4, 8}) {
    seq::UnrollOptions u_options;
    u_options.frames = frames;
    u_options.outputs_every_frame = true;
    u_options.expose_final_state = true;
    // Analyze the T-cycle transition function (state as inputs), not one
    // fixed-initial-state trajectory.
    u_options.initial_state_as_inputs = true;
    const netlist::Circuit u = unroll(seq::counter(4), u_options);
    core::ProfileOptions p_options;
    p_options.sensitivity_exact_max_inputs = 12;
    const core::CircuitProfile profile = core::extract_profile(u, p_options);
    const core::BoundReport r = core::analyze(profile, eps, 0.01);
    table.add_row({"counter4", std::to_string(frames),
                   report::format_double(profile.size_s0, 5),
                   report::format_double(profile.avg_fanin_k, 3),
                   report::format_double(profile.avg_activity_sw0, 3),
                   report::format_double(profile.sensitivity_s, 3),
                   report::format_double(r.energy.total_factor, 4),
                   report::format_double(
                       1.0 + (r.energy.total_factor - 1.0) / frames, 4)});
  }
  std::cout << table.to_text() << "\n";
  std::cout << "finding: the unrolled energy-bound factor grows sublinearly "
               "with T (sensitivity grows slower than size), so the\n"
               "per-cycle overhead floor *decreases* with horizon — long "
               "computations amortize the redundancy, consistent with the\n"
               "paper's observation that the bounds are tight only for "
               "sensitivity-dense functions\n";
  return 0;
}
