// P10: what a hardening sweep costs end to end. Each sweep builds every
// style x granularity x K variant, proves it equivalent with the static
// oracle, and grades it (energy bound + fault campaign) through one batch.
// This bench times full sweeps on rca16 and c432 plus a pinned
// single-style sweep, reports the CEC share of the wall clock (from the
// harden-cec-seconds histogram), and records BENCH_harden.json.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/compiled_circuit.hpp"
#include "bench_common.hpp"
#include "exec/thread_pool.hpp"
#include "gen/iscas.hpp"
#include "gen/suite.hpp"
#include "harden/pareto.hpp"
#include "harden/types.hpp"
#include "obs/metrics.hpp"
#include "report/table.hpp"

namespace {

using namespace enb;

struct Timing {
  std::string sweep;
  double seconds = 0.0;
  double cec_seconds = 0.0;
  std::size_t candidates = 0;
  std::size_t frontier = 0;
  double candidates_per_sec = 0.0;
};

Timing run_sweep(const std::string& label, const netlist::Circuit& circuit,
                 const harden::SweepOptions& options, int repetitions) {
  const analysis::CompiledCircuit base = analysis::compile(circuit);
  obs::Histogram& cec =
      obs::Registry::global().histogram("harden-cec-seconds");
  Timing timing;
  timing.sweep = label;
  for (int rep = 0; rep < repetitions; ++rep) {
    const double cec_before = cec.snapshot().sum;
    const auto start = std::chrono::steady_clock::now();
    const harden::ParetoResult result =
        harden::pareto_sweep(base, options, exec::Parallelism::global_pool());
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (timing.seconds == 0.0 || elapsed < timing.seconds) {
      timing.seconds = elapsed;
      timing.cec_seconds = cec.snapshot().sum - cec_before;
      timing.candidates = result.candidates.size();
      timing.frontier = result.frontier.size();
    }
  }
  timing.candidates_per_sec =
      static_cast<double>(timing.candidates) / timing.seconds;
  return timing;
}

}  // namespace

int main() {
  bench::banner("perf_harden",
                "redundancy-insertion sweeps: build + prove + grade");

  const int repetitions = bench::smoke_mode() ? 1 : 3;
  std::vector<Timing> timings;

  // Full sweep on the 16-bit ripple-carry adder: 22 candidates (base + 21).
  {
    harden::SweepOptions options;
    options.campaign.patterns = bench::scaled(256, 32);
    timings.push_back(run_sweep("rca16 full sweep",
                                gen::find_benchmark("rca16").build(), options,
                                repetitions));
  }
  // Pinned style: the cheap slice a CI smoke or a CLI --style run evaluates.
  {
    harden::SweepOptions options;
    options.style = harden::Style::kTmr;
    options.campaign.patterns = bench::scaled(256, 32);
    timings.push_back(run_sweep("rca16 --style tmr",
                                gen::find_benchmark("rca16").build(), options,
                                repetitions));
  }
  // The ISCAS interrupt controller: wider (36 inputs), so sampled patterns.
  {
    harden::SweepOptions options;
    options.campaign.patterns = bench::scaled(128, 16);
    timings.push_back(
        run_sweep("c432 full sweep", gen::c432(), options, repetitions));
  }

  report::Table table({"sweep", "seconds", "cec-s", "candidates", "frontier",
                       "candidates/s"});
  for (const Timing& t : timings) {
    table.add_row({t.sweep, report::format_double(t.seconds, 4),
                   report::format_double(t.cec_seconds, 4),
                   std::to_string(t.candidates), std::to_string(t.frontier),
                   report::format_double(t.candidates_per_sec, 1)});
  }
  const double cec_share =
      timings.front().cec_seconds / timings.front().seconds;
  std::cout << table.to_text() << "\n"
            << "CEC share of the rca16 full sweep: "
            << report::format_double(100.0 * cec_share, 1) << "%\n";

  std::ofstream json("BENCH_harden.json");
  json << "{\n  \"benchmark\": \"perf_harden\",\n"
       << "  \"repetitions\": " << repetitions << ",\n"
       << "  \"smoke\": " << (bench::smoke_mode() ? "true" : "false") << ",\n"
       << "  \"pool_threads\": " << exec::ThreadPool::global().size() << ",\n"
       << "  \"cec_share_rca16\": " << report::format_double(cec_share, 4)
       << ",\n  \"sweeps\": [\n";
  bool first = true;
  for (const Timing& t : timings) {
    json << (first ? "" : ",\n") << "    {\"sweep\": \"" << t.sweep
         << "\", \"seconds\": " << t.seconds
         << ", \"cec_seconds\": " << t.cec_seconds
         << ", \"candidates\": " << t.candidates
         << ", \"frontier\": " << t.frontier
         << ", \"candidates_per_sec\": " << t.candidates_per_sec << "}";
    first = false;
  }
  json << "\n  ]\n}\n";
  std::cout << "wrote BENCH_harden.json\n";
  return 0;
}
