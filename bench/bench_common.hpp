// Shared output plumbing for the figure-reproduction benches: every bench
// prints its series as an aligned table plus an ASCII chart, and writes
// CSV + gnuplot files under bench_out/.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "report/ascii_chart.hpp"
#include "report/csv.hpp"
#include "report/gnuplot.hpp"
#include "report/series.hpp"
#include "report/table.hpp"

namespace enb::bench {

inline constexpr const char* kOutDir = "bench_out";

// True when ENB_SMOKE is set (to anything but "0"): bench binaries shrink
// their Monte-Carlo budgets so the `bench_smoke` target finishes in seconds
// while still exercising every code path.
inline bool smoke_mode() {
  const char* env = std::getenv("ENB_SMOKE");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

// `full` normally, `smoke` under ENB_SMOKE.
inline std::uint64_t scaled(std::uint64_t full, std::uint64_t smoke) {
  return smoke_mode() ? smoke : full;
}

inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n==== " << id << ": " << title << " ====\n\n";
}

// Emits the standard bundle for an x-sweep figure: table, chart, CSV, .gp.
inline void emit_sweep(const std::string& stem, const std::string& x_name,
                       const std::vector<report::Series>& series,
                       report::ChartOptions chart_options) {
  report::Table table([&] {
    std::vector<std::string> headers{x_name};
    for (const auto& s : series) headers.push_back(s.name);
    return headers;
  }());
  for (std::size_t i = 0; i < series.front().size(); ++i) {
    std::vector<double> values;
    for (const auto& s : series) values.push_back(s.y[i]);
    table.add_row(report::format_double(series.front().x[i], 4), values);
  }
  std::cout << table.to_text() << "\n";
  std::cout << report::line_chart(series, chart_options) << "\n";

  report::write_series_csv_file(std::string(kOutDir) + "/" + stem + ".csv",
                                x_name, series);
  report::GnuplotOptions gp;
  gp.title = chart_options.title;
  gp.x_label = chart_options.x_label;
  gp.y_label = chart_options.y_label;
  gp.log_x = chart_options.log_x;
  gp.log_y = chart_options.log_y;
  report::write_gnuplot(kOutDir, stem, series, gp);
  std::cout << "wrote " << kOutDir << "/" << stem << ".csv and " << stem
            << ".gp\n";
}

}  // namespace enb::bench
