// Figure 4 reproduction: normalized leakage/switching energy ratio
// W_L,ε,δ / W_L,0 (Theorem 3) as a function of ε for several error-free
// switching activities sw0. Log Y axis, as in the paper.
// Expected shape: < 1 and falling for sw0 < 0.5, ≡ 1 at sw0 = 0.5, > 1 and
// rising for sw0 > 0.5.
#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "core/leakage_model.hpp"

int main() {
  using namespace enb;
  bench::banner("fig4", "normalized leakage/switching ratio vs eps");

  const std::vector<double> sw_values{0.1, 0.2, 0.3, 0.5, 0.7, 0.8, 0.9};
  const std::vector<double> eps_grid = core::linear_grid(0.0, 0.5, 26);

  std::vector<report::Series> series;
  for (double sw0 : sw_values) {
    report::Series s("sw0=" + report::format_double(sw0, 2), {}, {});
    for (double eps : eps_grid) s.push(eps, core::leakage_ratio(sw0, eps));
    series.push_back(std::move(s));
  }

  report::ChartOptions chart;
  chart.title = "Fig 4: W_L,eps / W_L,0 (Theorem 3)";
  chart.x_label = "gate error eps";
  chart.y_label = "normalized leakage ratio (log)";
  chart.log_y = true;
  bench::emit_sweep("fig4_leakage_ratio", "eps", series, chart);

  std::cout << "check: sw0=0.5 stays at "
            << core::leakage_ratio(0.5, 0.3) << " for every eps (expect 1)\n";
  std::cout << "check: sw0=0.1 at eps=0.4: "
            << core::leakage_ratio(0.1, 0.4)
            << " (< 1: noisy gates idle less); sw0=0.9 at eps=0.4: "
            << core::leakage_ratio(0.9, 0.4) << " (> 1)\n";
  return 0;
}
