// What the daemon buys over per-invocation evaluation: cold-vs-warm request
// latency through a real Unix-domain-socket round trip.
//
// An in-process server is started on a temp socket; a client submits an
// N-point energy-bound sweep manifest three ways:
//   cold  — fresh server state: compile + map + one profile extraction +
//           N bound evaluations, all on this request's clock;
//   warm  — identical resubmission: every point is a result-cache hit, the
//           only work is key hashing and socket I/O;
//   ping  — empty round trips, isolating the protocol/socket floor.
// Records BENCH_serve.json in the working directory.
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "obs/metrics.hpp"
#include "report/table.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace enb;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  bench::banner("perf_serve",
                "daemon round-trip latency: cold vs cache-warm sweeps");
  const int points = static_cast<int>(bench::scaled(64, 8));
  const int ping_reps = static_cast<int>(bench::scaled(1000, 50));

  // The sweep manifest: N energy-bound points over one mapped multiplier —
  // the "one design, many bound queries" shape the server is built for.
  std::ostringstream manifest;
  const std::vector<double> grid = core::log_grid(1e-3, 0.2, points);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    manifest << "eps_" << i << " kind=energy-bound circuit=mult4 eps="
             << grid[i] << " budget=4096\n";
  }

  serve::ServerOptions options;
  options.socket_path =
      "/tmp/enb_perf_serve_" + std::to_string(::getpid()) + ".sock";
  serve::Server server(std::move(options));
  server.bind();
  std::thread runner([&server] { server.run(); });

  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  double ping_seconds = 0.0;
  std::size_t warm_hits = 0;
  {
    serve::Client client(server.socket_path());

    const auto cold_start = std::chrono::steady_clock::now();
    const serve::QueryOutcome cold = client.batch(manifest.str());
    cold_seconds = seconds_since(cold_start);
    if (cold.failed != 0) {
      std::cerr << "perf_serve: " << cold.failed << " cold jobs failed\n";
      return 2;
    }

    const auto warm_start = std::chrono::steady_clock::now();
    const serve::QueryOutcome warm = client.batch(manifest.str());
    warm_seconds = seconds_since(warm_start);
    warm_hits = warm.cached;
    if (warm.cached != warm.total) {
      std::cerr << "perf_serve: warm run missed the cache (" << warm.cached
                << "/" << warm.total << ")\n";
      return 2;
    }

    const auto ping_start = std::chrono::steady_clock::now();
    for (int i = 0; i < ping_reps; ++i) (void)client.ping();
    ping_seconds = seconds_since(ping_start);

    (void)client.shutdown_server();
  }
  runner.join();

  const double per_point_cold = cold_seconds / points;
  const double per_point_warm = warm_seconds / points;
  const double per_ping = ping_seconds / ping_reps;
  report::Table table({"phase", "seconds", "per-request", "speedup"});
  table.add_row({"cold sweep", report::format_double(cold_seconds, 5),
                 report::format_double(per_point_cold, 7), "1.00"});
  table.add_row({"warm sweep (cache hits)",
                 report::format_double(warm_seconds, 5),
                 report::format_double(per_point_warm, 7),
                 report::format_double(cold_seconds / warm_seconds, 2)});
  table.add_row({"ping floor", report::format_double(ping_seconds, 5),
                 report::format_double(per_ping, 7), "-"});
  std::cout << points << "-point served eps sweep over mult4, " << warm_hits
            << " warm cache hits:\n"
            << table.to_text();

  // The server ran in-process, so its per-verb request histograms are in
  // this process's global registry: batch covers the two sweep submissions
  // (cold + warm), ping the protocol-floor round trips.
  const obs::Histogram::Snapshot batch_lat =
      obs::Registry::global()
          .histogram("serve-request-seconds", "verb", "batch")
          .snapshot();
  const obs::Histogram::Snapshot ping_lat =
      obs::Registry::global()
          .histogram("serve-request-seconds", "verb", "ping")
          .snapshot();
  report::Table latency({"verb", "requests", "p50", "p99"});
  latency.add_row({"batch", std::to_string(batch_lat.count),
                   report::format_double(batch_lat.quantile(0.5), 6),
                   report::format_double(batch_lat.quantile(0.99), 6)});
  latency.add_row({"ping", std::to_string(ping_lat.count),
                   report::format_double(ping_lat.quantile(0.5), 6),
                   report::format_double(ping_lat.quantile(0.99), 6)});
  std::cout << "server-side request latency (histogram estimate):\n"
            << latency.to_text();

  std::ofstream out("BENCH_serve.json");
  out << "{\n  \"benchmark\": \"perf_serve\",\n  \"points\": " << points
      << ",\n  \"smoke\": " << (bench::smoke_mode() ? "true" : "false")
      << ",\n  \"cold_seconds\": " << cold_seconds
      << ",\n  \"warm_seconds\": " << warm_seconds
      << ",\n  \"cold_per_request_seconds\": " << per_point_cold
      << ",\n  \"warm_per_request_seconds\": " << per_point_warm
      << ",\n  \"warm_speedup\": " << cold_seconds / warm_seconds
      << ",\n  \"ping_round_trips\": " << ping_reps
      << ",\n  \"ping_seconds_per_round_trip\": " << per_ping
      << ",\n  \"batch_request_p50_seconds\": " << batch_lat.quantile(0.5)
      << ",\n  \"batch_request_p99_seconds\": " << batch_lat.quantile(0.99)
      << ",\n  \"ping_request_p50_seconds\": " << ping_lat.quantile(0.5)
      << ",\n  \"ping_request_p99_seconds\": " << ping_lat.quantile(0.99)
      << "\n}\n";
  std::cout << "wrote BENCH_serve.json\n";
  return 0;
}
