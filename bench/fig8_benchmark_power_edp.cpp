// Figure 8 reproduction: per-benchmark lower bounds for average power and
// energy×delay at ε ∈ {0.001, 0.01, 0.1}, δ = 0.01, normalized to the
// error-free implementation (equal switching/leakage shares).
// Expected shape: E×D rises steeply with ε (paper reports up to ≈2.8×);
// average power drops below 1 at ε = 0.1 because the depth (latency) bound
// grows faster than the energy bound.
#include <cmath>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "suite_common.hpp"

int main() {
  using namespace enb;
  bench::banner("fig8", "per-benchmark average power and energy-delay bounds");

  const std::vector<double> epsilons{0.001, 0.01, 0.1};
  const double delta = 0.01;
  const auto suite = bench::profile_suite();

  report::Table table({"benchmark", "P(0.001)", "P(0.01)", "P(0.1)",
                       "EDP(0.001)", "EDP(0.01)", "EDP(0.1)"});
  std::vector<report::BarGroup> power_bars;
  std::vector<report::BarGroup> edp_bars;
  std::vector<std::vector<std::string>> csv_rows;

  double max_edp = 0.0;
  int power_below_one_at_01 = 0;
  for (const auto& pb : suite) {
    report::BarGroup pg{pb.spec.name, {}};
    report::BarGroup eg{pb.spec.name, {}};
    for (double eps : epsilons) {
      const core::BoundReport r = core::analyze(pb.profile, eps, delta);
      pg.values.push_back(r.metrics.avg_power);
      eg.values.push_back(r.metrics.edp);
      if (std::isfinite(r.metrics.edp)) max_edp = std::max(max_edp, r.metrics.edp);
    }
    if (pg.values[2] < 1.0) ++power_below_one_at_01;
    std::vector<double> row = pg.values;
    row.insert(row.end(), eg.values.begin(), eg.values.end());
    table.add_row(pb.spec.name, row);

    std::vector<std::string> csv_row{pb.spec.name};
    for (double v : row) csv_row.push_back(report::format_double(v, 8));
    csv_rows.push_back(std::move(csv_row));
    power_bars.push_back(std::move(pg));
    edp_bars.push_back(std::move(eg));
  }

  std::cout << table.to_text() << "\n";
  report::ChartOptions chart;
  chart.title = "Fig 8a: normalized average power";
  std::cout << report::bar_chart({"eps=0.001", "eps=0.01", "eps=0.1"},
                                 power_bars, chart)
            << "\n";
  chart.title = "Fig 8b: normalized energy x delay";
  std::cout << report::bar_chart({"eps=0.001", "eps=0.01", "eps=0.1"},
                                 edp_bars, chart)
            << "\n";

  report::write_csv_file(
      std::string(bench::kOutDir) + "/fig8_benchmark_power_edp.csv",
      {"benchmark", "P_0.001", "P_0.01", "P_0.1", "EDP_0.001", "EDP_0.01",
       "EDP_0.1"},
      csv_rows);
  std::cout << "wrote " << bench::kOutDir
            << "/fig8_benchmark_power_edp.csv\n";

  std::cout << "\ncheck: max finite EDP bound across suite: "
            << report::format_double(max_edp, 4)
            << "x (paper reports up to ~2.8x at eps=0.1)\n";
  std::cout << "check: benchmarks with average power < 1 at eps=0.1: "
            << power_below_one_at_01 << "/" << suite.size()
            << " (paper: power reduced by the latency blow-up)\n";
  return 0;
}
