// The abstract's headline: "99% error resilience is possible for
// fault-tolerant designs, but at the expense of at least 40% more energy if
// individual gates fail independently with probability of 1%."
// This bench evaluates the energy lower bound at (ε, δ) = (0.01, 0.01)
// across the mapped suite plus the paper's own parity instance and reports
// where the 40% threshold is crossed.
#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "suite_common.hpp"

int main() {
  using namespace enb;
  bench::banner("headline", "99% resilience costs >= 40% energy at eps = 1%");

  const double eps = 0.01;
  const double delta = 0.01;  // 1 - delta = 99% resilience

  report::Table table(
      {"circuit", "s/S0", "sw0", "E_switching", "E_total", ">=1.4x"});
  std::vector<std::vector<std::string>> csv_rows;

  const auto add_row = [&](const std::string& name,
                           const core::CircuitProfile& profile) {
    const core::BoundReport r = core::analyze(profile, eps, delta);
    table.add_row(
        {name,
         report::format_double(profile.sensitivity_s / profile.size_s0, 3),
         report::format_double(profile.avg_activity_sw0, 3),
         report::format_double(r.energy.switching_factor, 4),
         report::format_double(r.energy.total_factor, 4),
         r.energy.switching_factor >= 1.4 || r.energy.total_factor >= 1.4
             ? "yes"
             : "no"});
    csv_rows.push_back({name,
                        report::format_double(r.energy.switching_factor, 8),
                        report::format_double(r.energy.total_factor, 8)});
    return std::max(r.energy.switching_factor, r.energy.total_factor);
  };

  double best = 0.0;
  for (const auto& pb : bench::profile_suite()) {
    best = std::max(best, add_row(pb.spec.name, pb.profile));
  }
  // High s/S0 instances — small arithmetic slices — are where the paper's
  // "in some cases" lives; include explicit extremal profiles.
  best = std::max(best, add_row("and4_tree (s=4,S0=3)",
                                core::make_profile("and4", 4, 3, 0.3, 2, 4)));
  best = std::max(best,
                  add_row("parity10_shannon (paper Fig 3 instance)",
                          core::make_profile("parity10", 10, 21, 0.5, 2, 10)));

  std::cout << table.to_text() << "\n";
  report::write_csv_file(std::string(bench::kOutDir) + "/headline_claim.csv",
                         {"circuit", "E_switching", "E_total"}, csv_rows);
  std::cout << "wrote " << bench::kOutDir << "/headline_claim.csv\n\n";

  std::cout << "verdict: max energy lower bound at (eps, delta) = (1%, 1%) is "
            << report::format_double(best, 4) << "x -> the paper's "
            << "'at least 40% more energy' claim "
            << (best >= 1.4 ? "REPRODUCES" : "DOES NOT REPRODUCE")
            << " (claim reads 'in some cases', i.e. max over circuits)\n";
  return 0;
}
