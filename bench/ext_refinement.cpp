// Extension R1 (the paper's future work): refinement of the lower bounds by
// circuit functionality. Compares Corollary 1's whole-function redundancy
// floor against the per-output-cone refinement across the suite.
#include "bench_common.hpp"
#include "core/refine.hpp"
#include "gen/suite.hpp"
#include "synth/mapper.hpp"

int main() {
  using namespace enb;
  bench::banner("ext_refinement",
                "whole-function vs per-output-cone size bounds");

  const double eps = 0.01;
  const double delta = 0.01;

  report::Table table({"benchmark", "R_whole", "R_refined", "gain",
                       "dominant output"});
  std::vector<std::vector<std::string>> csv_rows;
  int helped = 0;
  int total = 0;
  for (const gen::BenchmarkSpec& spec : gen::standard_suite()) {
    const auto mapped = synth::map_to_library(spec.build(), {});
    // Cone profiling is exhaustive-sensitive; keep it tractable.
    core::ProfileOptions options;
    options.sensitivity_exact_max_inputs = bench::smoke_mode() ? 12 : 16;
    options.activity_pairs =
        static_cast<std::size_t>(bench::scaled(1 << 10, 1 << 6));
    const core::RefinedReport r =
        core::refine_size_bound(mapped.circuit, eps, delta, options);
    std::string dominant = "-";
    double best = -1.0;
    for (const auto& ob : r.outputs) {
      if (ob.redundancy_gates > best) {
        best = ob.redundancy_gates;
        dominant = ob.output_name;
      }
    }
    table.add_row({spec.name, report::format_double(r.whole_redundancy, 4),
                   report::format_double(r.refined_redundancy, 4),
                   report::format_double(
                       r.refined_redundancy / std::max(1e-12, r.whole_redundancy),
                       4),
                   dominant});
    csv_rows.push_back({spec.name,
                        report::format_double(r.whole_redundancy, 8),
                        report::format_double(r.refined_redundancy, 8)});
    ++total;
    if (r.refinement_helps()) ++helped;
  }
  std::cout << table.to_text() << "\n";
  report::write_csv_file(std::string(bench::kOutDir) + "/ext_refinement.csv",
                         {"benchmark", "R_whole", "R_refined"}, csv_rows);
  std::cout << "wrote " << bench::kOutDir << "/ext_refinement.csv\n";
  std::cout << "\nfinding: the per-output refinement tightened the floor on "
            << helped << "/" << total << " benchmarks";
  if (helped == 0) {
    std::cout << " — on this suite every benchmark's sensitivity-dominant "
                 "output cone already has the same average fanin as the "
                 "whole netlist, so Corollary 1 is per-output-tight here; "
                 "the refinement wins only on heterogeneous-cone circuits "
                 "(see test_refine.RefinementCanBeatGlobalBound for a "
                 "constructed example)";
  } else {
    std::cout << " — it wins exactly where one output's cone has smaller "
                 "average fanin or concentrated sensitivity relative to the "
                 "whole netlist";
  }
  std::cout << "\n";
  return 0;
}
