// Extension N1: the closed voltage–noise–redundancy loop. The paper
// contrasts its redundancy bounds with Hegde–Shanbhag [11], where lowering
// Vdd trades energy for noise. Coupling the two: as Vdd drops,
//   * switching energy falls as V² (the [11] win), but
//   * the gate error ε(Vdd) = Q(Vdd/2σ) rises, so the paper's bounds demand
//     more redundancy, more depth, more total energy.
// The product of the two effects yields an interior optimum supply — the
// quantitative version of the paper's "our goal is different" remark.
#include <cmath>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "core/delay_model.hpp"
#include "core/noise_voltage.hpp"

int main() {
  using namespace enb;
  bench::banner("ext_voltage_noise",
                "voltage scaling with noise-coupled gate error");

  const core::CircuitProfile profile =
      core::make_profile("parity10_shannon", 10, 21, 0.5, 2, 10);
  const core::TechnologyParams tech;
  core::NoiseVoltageParams noise;
  noise.sigma = 0.06;  // 60 mV RMS noise

  report::Series raw_energy("cv2_energy", {}, {});
  report::Series bound_energy("bound_total_energy", {}, {});
  report::Table table(
      {"Vdd", "eps(Vdd)", "CV^2 scale", "bound factor", "combined"});

  double best_combined = 1e300;
  double best_vdd = 0.0;
  const auto vdd_grid = core::linear_grid(0.05, 1.4, 28);
  for (double vdd : vdd_grid) {
    const double eps = core::epsilon_of_vdd(vdd, noise);
    const double cv2 = core::energy_scale(vdd, tech);
    double combined = std::numeric_limits<double>::infinity();
    double bound = std::numeric_limits<double>::infinity();
    if (eps < 0.5) {
      const core::BoundReport r =
          core::analyze(profile, std::min(eps, 0.499), 0.01);
      bound = r.energy.total_factor;
      combined = cv2 * bound;
    }
    table.add_row(report::format_double(vdd, 3),
                  {eps, cv2, bound, combined});
    raw_energy.push(vdd, cv2);
    bound_energy.push(vdd, combined);
    if (combined < best_combined) {
      best_combined = combined;
      best_vdd = vdd;
    }
  }
  std::cout << table.to_text() << "\n";

  report::ChartOptions chart;
  chart.title = "energy vs Vdd: bare CV^2 vs noise-coupled bound";
  chart.x_label = "Vdd (V)";
  chart.log_y = true;
  bench::emit_sweep("ext_voltage_noise", "vdd", {raw_energy, bound_energy},
                    chart);

  const bool interior =
      best_vdd > vdd_grid.front() + 1e-9 && best_vdd < vdd_grid.back() - 1e-9;
  std::cout << "finding: bare CV^2 says 'always lower Vdd' ([11]'s lever); "
               "with the noise coupling the redundancy floor takes over and "
               "the combined energy factor is minimized at Vdd = "
            << report::format_double(best_vdd, 3) << " V (factor "
            << report::format_double(best_combined, 4) << ", "
            << (interior ? "an interior optimum" : "at the sweep edge")
            << ") — the two levers compose into a single optimum instead of "
               "competing\n";
  std::cout << "note: the sweep deliberately extends below V_T; only the "
               "CV^2 energy and the redundancy floor are combined here "
               "(delay is reported separately by Theorem 4 and diverges "
               "before the energy optimum)\n";
  return 0;
}
