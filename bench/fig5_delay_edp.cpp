// Figure 5 reproduction: normalized delay and energy×delay lower bounds vs
// ε for 2-, 3- and 4-input gate implementations. Parameters as in Figure 3
// (s=10, S0=21, δ=0.01) with sw0 = 0.5 and equal switching/leakage shares in
// the baseline. Log Y axis.
// Expected shape: both curves diverge at ξ² = 1/k (ε ≈ 0.146 / 0.211 / 0.25
// for k = 2/3/4); the E×D curve lies above the delay curve.
#include <cmath>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "core/depth_bound.hpp"

int main() {
  using namespace enb;
  bench::banner("fig5", "normalized delay and energy-delay vs eps");

  const core::CircuitProfile profile =
      core::make_profile("parity10_shannon", 10, 21, 0.5, 2, 10);
  const std::vector<double> eps_grid = core::log_grid(1e-3, 0.3, 30);

  std::vector<report::Series> delay_series;
  std::vector<report::Series> edp_series;
  for (int k : {2, 3, 4}) {
    core::CircuitProfile p = profile;
    p.avg_fanin_k = k;
    report::Series delay("delay_k" + std::to_string(k), {}, {});
    report::Series edp("edp_k" + std::to_string(k), {}, {});
    for (double eps : eps_grid) {
      const core::BoundReport r = core::analyze(p, eps, 0.01);
      delay.push(eps, r.metrics.delay);
      edp.push(eps, r.metrics.edp);
    }
    std::cout << "k=" << k << ": depth bound diverges at eps = "
              << report::format_double(core::max_feasible_epsilon(k), 4)
              << "\n";
    delay_series.push_back(std::move(delay));
    edp_series.push_back(std::move(edp));
  }
  std::cout << "\n";

  report::ChartOptions chart;
  chart.title = "Fig 5a: normalized delay lower bound";
  chart.x_label = "gate error eps";
  chart.y_label = "D_eps / D_0 (log)";
  chart.log_x = true;
  chart.log_y = true;
  bench::emit_sweep("fig5_delay", "eps", delay_series, chart);

  chart.title = "Fig 5b: normalized energy x delay lower bound";
  chart.y_label = "EDP factor (log)";
  bench::emit_sweep("fig5_edp", "eps", edp_series, chart);

  // Shape check: EDP >= delay pointwise (energy factor >= 1).
  bool edp_above = true;
  for (std::size_t i = 0; i < delay_series[0].size(); ++i) {
    if (std::isfinite(delay_series[0].y[i]) &&
        edp_series[0].y[i] < delay_series[0].y[i] - 1e-12) {
      edp_above = false;
    }
  }
  std::cout << "check: EDP curve above delay curve: "
            << (edp_above ? "yes" : "NO") << "\n";
  return 0;
}
