// Figure 6 reproduction: normalized average power (energy bound divided by
// delay bound) vs ε for fanin 2, 3 and 4. Parameters as in Figure 3 with
// sw0 = 0.5 and equal switching/leakage shares.
// Expected shape: > 1 at low ε (size and thus energy grows faster than
// delay) with larger fanin reducing the overhead; crossing below 1 at larger
// ε where the depth bound diverges faster, making fault-tolerant designs
// power-efficient at the cost of latency.
#include "bench_common.hpp"
#include "core/analyzer.hpp"

int main() {
  using namespace enb;
  bench::banner("fig6", "normalized average power vs eps");

  const std::vector<double> eps_grid = core::log_grid(1e-3, 0.24, 30);

  std::vector<report::Series> series;
  for (int k : {2, 3, 4}) {
    core::CircuitProfile p =
        core::make_profile("parity10_shannon", 10, 21, 0.5, k, 10);
    report::Series s("power_k" + std::to_string(k), {}, {});
    for (double eps : eps_grid) {
      const core::BoundReport r = core::analyze(p, eps, 0.01);
      s.push(eps, r.metrics.avg_power);
    }
    series.push_back(std::move(s));
  }

  report::ChartOptions chart;
  chart.title = "Fig 6: normalized average power";
  chart.x_label = "gate error eps";
  chart.y_label = "P_eps / P_0";
  chart.log_x = true;
  bench::emit_sweep("fig6_average_power", "eps", series, chart);

  // Crossover report per fanin.
  for (std::size_t si = 0; si < series.size(); ++si) {
    double crossover = -1.0;
    for (std::size_t i = 0; i < series[si].size(); ++i) {
      if (series[si].y[i] < 1.0 && series[si].y[i] > 0.0) {
        crossover = series[si].x[i];
        break;
      }
    }
    std::cout << "check: " << series[si].name
              << " drops below 1 at eps ~ "
              << (crossover > 0 ? report::format_double(crossover, 3)
                                : std::string("(none in range)"))
              << "\n";
  }
  std::cout << "check: at eps=0.01 the power overhead shrinks with fanin: ";
  for (int k : {2, 3, 4}) {
    core::CircuitProfile p =
        core::make_profile("x", 10, 21, 0.5, k, 10);
    std::cout << "k" << k << "="
              << report::format_double(
                     core::analyze(p, 0.01, 0.01).metrics.avg_power, 4)
              << " ";
  }
  std::cout << "\n";
  return 0;
}
