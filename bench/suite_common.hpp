// Shared benchmark-suite pipeline for the Figure 7/8 reproductions and the
// ablations: generate -> map to the paper's generic max-fanin-3 library ->
// extract the (s, S0, sw0, k, d0) profile.
#pragma once

#include <iostream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "analysis/compiled_circuit.hpp"
#include "analysis/request.hpp"
#include "bench_common.hpp"
#include "core/profile.hpp"
#include "exec/batch.hpp"
#include "exec/thread_pool.hpp"
#include "gen/suite.hpp"
#include "report/table.hpp"
#include "synth/mapper.hpp"

namespace enb::bench {

struct ProfiledBenchmark {
  gen::BenchmarkSpec spec;
  core::CircuitProfile profile;
  netlist::CircuitStats mapped_stats;
};

// Profiles the whole standard suite through the analysis layer: generate +
// map in parallel (slot-per-index writes), compile each mapped netlist into
// a shared handle, then submit one profile request per benchmark so the
// Monte-Carlo shards of *all* benchmarks interleave over the pool. Results
// are bit-identical to profiling each circuit alone.
inline std::vector<ProfiledBenchmark> profile_suite(int max_fanin = 3) {
  const std::vector<gen::BenchmarkSpec> specs = gen::standard_suite();
  std::vector<ProfiledBenchmark> out(specs.size());
  std::vector<netlist::Circuit> mapped(specs.size());
  exec::for_each_index(specs.size(), [&](std::size_t i) {
    const netlist::Circuit base = specs[i].build();
    synth::MapOptions map_options;
    map_options.library = synth::Library::generic(max_fanin);
    synth::MapResult result = synth::map_to_library(base, map_options);
    out[i].spec = specs[i];
    out[i].mapped_stats = result.after;
    mapped[i] = std::move(result.circuit);
  });

  exec::BatchEvaluator batch;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    analysis::AnalysisRequest request;
    request.name = specs[i].name;
    request.circuit = analysis::compile(std::move(mapped[i]));
    analysis::ProfileRequest spec;
    spec.options.activity_pairs =
        static_cast<std::size_t>(scaled(1 << 12, 1 << 6));
    spec.options.sensitivity_exact_max_inputs = smoke_mode() ? 14 : 19;
    request.options = spec;
    batch.submit(std::move(request));
  }
  const std::vector<analysis::AnalysisResult> results = batch.run();
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok) {
      throw std::runtime_error("profile_suite: job " + results[i].name +
                               " failed: " + results[i].error);
    }
    out[i].profile = *results[i].profile;
  }
  return out;
}

inline void print_profile_table(const std::vector<ProfiledBenchmark>& suite) {
  report::Table table({"benchmark", "family", "inputs", "S0", "depth",
                       "avg_fanin", "sw0", "sensitivity", "s_exact"});
  for (const auto& pb : suite) {
    table.add_row({pb.spec.name, pb.spec.family,
                   std::to_string(pb.profile.num_inputs),
                   report::format_double(pb.profile.size_s0, 5),
                   std::to_string(pb.profile.depth_d0),
                   report::format_double(pb.profile.avg_fanin_k, 3),
                   report::format_double(pb.profile.avg_activity_sw0, 3),
                   report::format_double(pb.profile.sensitivity_s, 3),
                   pb.profile.sensitivity_exact ? "yes" : "sampled"});
  }
  std::cout << "mapped-suite profiles (generic library, the paper's "
               "max-fanin-3 setting):\n"
            << table.to_text() << "\n";
}

}  // namespace enb::bench
