// Shared benchmark-suite pipeline for the Figure 7/8 reproductions and the
// ablations: generate -> map to the paper's generic max-fanin-3 library ->
// extract the (s, S0, sw0, k, d0) profile.
#pragma once

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/profile.hpp"
#include "exec/thread_pool.hpp"
#include "gen/suite.hpp"
#include "report/table.hpp"
#include "synth/mapper.hpp"

namespace enb::bench {

struct ProfiledBenchmark {
  gen::BenchmarkSpec spec;
  core::CircuitProfile profile;
  netlist::CircuitStats mapped_stats;
};

// Profiles the whole standard suite, one benchmark per parallel task (each
// task writes only its own slot, so the result is identical to the serial
// sweep). Inner Monte-Carlo estimators run inline inside the pool workers.
inline std::vector<ProfiledBenchmark> profile_suite(int max_fanin = 3) {
  const std::vector<gen::BenchmarkSpec> specs = gen::standard_suite();
  std::vector<ProfiledBenchmark> out(specs.size());
  exec::for_each_index(specs.size(), [&](std::size_t i) {
    const gen::BenchmarkSpec& spec = specs[i];
    const netlist::Circuit base = spec.build();
    synth::MapOptions map_options;
    map_options.library = synth::Library::generic(max_fanin);
    const synth::MapResult mapped = synth::map_to_library(base, map_options);
    core::ProfileOptions profile_options;
    profile_options.activity_pairs =
        static_cast<std::size_t>(scaled(1 << 12, 1 << 6));
    profile_options.sensitivity_exact_max_inputs = smoke_mode() ? 14 : 19;
    out[i] = ProfiledBenchmark{
        spec, core::extract_profile(mapped.circuit, profile_options),
        mapped.after};
  });
  return out;
}

inline void print_profile_table(const std::vector<ProfiledBenchmark>& suite) {
  report::Table table({"benchmark", "family", "inputs", "S0", "depth",
                       "avg_fanin", "sw0", "sensitivity", "s_exact"});
  for (const auto& pb : suite) {
    table.add_row({pb.spec.name, pb.spec.family,
                   std::to_string(pb.profile.num_inputs),
                   report::format_double(pb.profile.size_s0, 5),
                   std::to_string(pb.profile.depth_d0),
                   report::format_double(pb.profile.avg_fanin_k, 3),
                   report::format_double(pb.profile.avg_activity_sw0, 3),
                   report::format_double(pb.profile.sensitivity_s, 3),
                   pb.profile.sensitivity_exact ? "yes" : "sampled"});
  }
  std::cout << "mapped-suite profiles (generic library, the paper's "
               "max-fanin-3 setting):\n"
            << table.to_text() << "\n";
}

}  // namespace enb::bench
