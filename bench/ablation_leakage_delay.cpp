// Ablation A1: leakage–delay coupling. The paper's leakage model
// E_L ∝ (1−sw)·S·V·K has no explicit time dependence; physically, leakage
// power integrates over the (longer) cycle of the slowed-down fault-tolerant
// design. This ablation quantifies how much the Figure 7 energy bounds move
// when the leakage term is multiplied by the Theorem 4 delay factor.
#include <cmath>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "suite_common.hpp"

int main() {
  using namespace enb;
  bench::banner("ablation_leakage_delay",
                "paper's static leakage vs delay-coupled leakage");

  const double delta = 0.01;
  const auto suite = bench::profile_suite();

  report::Table table({"benchmark", "eps", "E_static", "E_coupled",
                       "inflation"});
  std::vector<std::vector<std::string>> csv_rows;
  double max_inflation = 1.0;
  for (const auto& pb : suite) {
    for (double eps : {0.001, 0.01, 0.1}) {
      core::EnergyModelOptions static_model;
      core::EnergyModelOptions coupled_model;
      coupled_model.couple_leakage_to_delay = true;
      const double e_static =
          core::analyze(pb.profile, eps, delta, static_model)
              .energy.total_factor;
      const double e_coupled =
          core::analyze(pb.profile, eps, delta, coupled_model)
              .energy.total_factor;
      const double inflation = e_coupled / e_static;
      max_inflation = std::max(max_inflation, inflation);
      table.add_row({pb.spec.name, report::format_double(eps, 3),
                     report::format_double(e_static, 4),
                     report::format_double(e_coupled, 4),
                     report::format_double(inflation, 4)});
      csv_rows.push_back({pb.spec.name, report::format_double(eps, 8),
                          report::format_double(e_static, 8),
                          report::format_double(e_coupled, 8)});
    }
  }
  std::cout << table.to_text() << "\n";
  report::write_csv_file(
      std::string(bench::kOutDir) + "/ablation_leakage_delay.csv",
      {"benchmark", "eps", "E_static", "E_coupled"}, csv_rows);
  std::cout << "wrote " << bench::kOutDir << "/ablation_leakage_delay.csv\n";

  std::cout << "\nfinding: delay coupling inflates the energy bound by up to "
            << report::format_double(max_inflation, 4)
            << "x; the effect is negligible at eps <= 0.01 and material only "
               "near the depth-feasibility edge, so the paper's uncoupled "
               "model does not change the Figure 7 story at its operating "
               "points\n";
  return 0;
}
